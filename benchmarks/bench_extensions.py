"""Extension experiments beyond the paper's evaluated scope."""

from repro.bench.experiments import run_ext_tls13_resumption


def test_tls13_psk_resumption(run_experiment):
    run_experiment(run_ext_tls13_resumption)
