"""Figure 7a: TLS-RSA (2048) full-handshake CPS, five configurations."""

from repro.bench.experiments import run_fig7a


def test_fig7a(run_experiment):
    run_experiment(run_fig7a)
