"""Figure 11: average response time vs concurrency."""

from repro.bench.experiments import run_fig11


def test_fig11(run_experiment):
    run_experiment(run_fig11)
