"""Section 2.4's motivating claim: straight offload underutilizes both
CPU and accelerator; the async framework loads both."""

from repro.bench.experiments import run_utilization


def test_utilization(run_experiment):
    run_experiment(run_utilization)
