"""Figure 10: secure data-transfer throughput vs file size."""

from repro.bench.experiments import run_fig10


def test_fig10(run_experiment):
    run_experiment(run_fig10)
