"""Worker lifecycle supervision: crash respawn + graceful reload.

Runnable standalone for CI smoke checks::

    PYTHONPATH=src python benchmarks/bench_lifecycle.py --smoke

exits non-zero if any lifecycle check fails. Also writes a
machine-readable ``BENCH_lifecycle.json`` (crash-dip depth, recovery
ratio, reload error counts) so the robustness trajectory is tracked
across PRs; the payload is deterministic, so two runs with the same
seed must produce byte-identical files (CI diffs them).
"""

from repro.bench.experiments import run_lifecycle


def test_lifecycle(run_experiment):
    run_experiment(run_lifecycle)


def summary_payload(result) -> dict:
    """Metrics per scenario from the result rows, in a stable
    machine-readable shape."""
    payload: dict = {"experiment": result.exp_id, "scenarios": {}}
    for row in result.rows:
        scen = payload["scenarios"].setdefault(row["scenario"], {})
        scen[row["metric"]] = row["value"]
    crash = payload["scenarios"].get("crash", {})
    pre = crash.get("pre_crash_cps", 0.0)
    if pre:
        crash["dip_depth"] = 1.0 - crash.get("dip_cps", 0.0) / pre
        crash["recovery_ratio"] = crash.get("recovery_cps", 0.0) / pre
    payload["checks_pass"] = result.all_checks_pass
    return payload


if __name__ == "__main__":
    import argparse
    import json
    import sys

    parser = argparse.ArgumentParser(
        description="worker lifecycle supervision experiment")
    parser.add_argument("--smoke", action="store_true",
                        help="compressed timeline (CI)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out", default="BENCH_lifecycle.json",
                        help="machine-readable summary path")
    args = parser.parse_args()

    result = run_lifecycle(quick=True, seed=args.seed, smoke=args.smoke)
    print(result.render())
    with open(args.out, "w") as fh:
        json.dump(summary_payload(result), fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")
    sys.exit(0 if result.all_checks_pass else 1)
