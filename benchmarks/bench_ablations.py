"""Ablations for design choices beyond the paper's own figures."""

from repro.bench.experiments import (run_async_impl, run_fd_sharing,
                                     run_p256_montgomery, run_thresholds)


def test_heuristic_thresholds(run_experiment):
    run_experiment(run_thresholds)


def test_fiber_vs_stack_async(run_experiment):
    run_experiment(run_async_impl)


def test_notify_fd_sharing(run_experiment):
    run_experiment(run_fd_sharing)


def test_p256_montgomery_fast_path(run_experiment):
    run_experiment(run_p256_montgomery)


def test_interrupt_vs_polling(run_experiment):
    from repro.bench.experiments import run_interrupt_vs_polling
    run_experiment(run_interrupt_vs_polling)


def test_instances_per_worker(run_experiment):
    from repro.bench.experiments import run_instances_per_worker
    run_experiment(run_instances_per_worker)
