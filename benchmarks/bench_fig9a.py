"""Figure 9a: 100% abbreviated-handshake CPS (session resumption)."""

from repro.bench.experiments import run_fig9a


def test_fig9a(run_experiment):
    run_experiment(run_fig9a)
