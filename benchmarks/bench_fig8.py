"""Figure 8: TLS 1.3 ECDHE-RSA CPS (HKDF not offloadable)."""

from repro.bench.experiments import run_fig8


def test_fig8(run_experiment):
    run_experiment(run_fig8)
