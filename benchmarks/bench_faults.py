"""Fault injection: CPS through QAT fault -> degradation -> recovery.

Runnable standalone for CI smoke checks::

    PYTHONPATH=src python benchmarks/bench_faults.py --smoke

exits non-zero if any robustness check fails.
"""

from repro.bench.experiments import run_faults


def test_faults(run_experiment):
    run_experiment(run_faults)


if __name__ == "__main__":
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        description="QAT fault-injection robustness experiment")
    parser.add_argument("--smoke", action="store_true",
                        help="compressed single-config timeline (CI)")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    result = run_faults(quick=True, seed=args.seed, smoke=args.smoke)
    print(result.render())
    sys.exit(0 if result.all_checks_pass else 1)
