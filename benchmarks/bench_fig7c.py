"""Figure 7c: ECDHE-ECDSA CPS across six NIST curves."""

from repro.bench.experiments import run_fig7c


def test_fig7c(run_experiment):
    run_experiment(run_fig7c)
