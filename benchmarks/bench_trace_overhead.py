"""Tracing overhead: repro.obs off vs sampled vs fully on.

Runnable standalone for CI smoke checks::

    PYTHONPATH=src python benchmarks/bench_trace_overhead.py --smoke

exits non-zero if tracing perturbs the simulation, the export fails
schema validation, or the traced wall-clock escapes its envelope.
"""

from repro.bench.experiments import run_trace_overhead


def test_trace_overhead(run_experiment):
    run_experiment(run_trace_overhead)


if __name__ == "__main__":
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        description="request-lifecycle tracing overhead experiment")
    parser.add_argument("--smoke", action="store_true",
                        help="short windows (CI)")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    result = run_trace_overhead(quick=True, seed=args.seed,
                                smoke=args.smoke)
    print(result.render())
    sys.exit(0 if result.all_checks_pass else 1)
