"""Figure 3's narrative, measured: where worker-CPU cycles go."""

from repro.bench.experiments import run_cycles


def test_cycles(run_experiment):
    run_experiment(run_cycles)
