"""Offload backends: SW vs QTLS-QAT (un/batched) vs QTLS-remote.

Runnable standalone for CI smoke checks::

    PYTHONPATH=src python benchmarks/bench_backends.py --smoke

exits non-zero if any backend check fails.
"""

from repro.bench.experiments import run_backends


def test_backends(run_experiment):
    run_experiment(run_backends)


if __name__ == "__main__":
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        description="pluggable offload-backend comparison experiment")
    parser.add_argument("--smoke", action="store_true",
                        help="single worker, short windows (CI)")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    result = run_backends(quick=True, seed=args.seed, smoke=args.smoke)
    print(result.render())
    sys.exit(0 if result.all_checks_pass else 1)
