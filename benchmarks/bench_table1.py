"""Table 1: server-side crypto op counts per full handshake."""

from repro.bench.experiments import run_table1


def test_table1(run_experiment):
    run_experiment(run_table1)
