"""Class-aware offload scheduling under a mixed record + handshake
load.

Runnable standalone for CI smoke checks::

    PYTHONPATH=src python benchmarks/bench_mixed.py --smoke

exits non-zero if any scheduling check fails. Also writes a
machine-readable ``BENCH_mixed.json`` (handshake p99 / CPS / record
throughput per policy) so the perf trajectory is tracked across PRs.
"""

from repro.bench.experiments import run_mixed


def test_mixed(run_experiment):
    run_experiment(run_mixed)


def summary_payload(result) -> dict:
    """Per-policy metrics from the result rows, in a stable
    machine-readable shape."""
    payload: dict = {"experiment": result.exp_id, "policies": {}}
    for row in result.rows:
        pol = payload["policies"].setdefault(row["policy"], {})
        pol[row["metric"]] = row["value"]
    payload["checks_pass"] = result.all_checks_pass
    return payload


if __name__ == "__main__":
    import argparse
    import json
    import sys

    parser = argparse.ArgumentParser(
        description="class-aware offload scheduling experiment")
    parser.add_argument("--smoke", action="store_true",
                        help="short windows (CI)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out", default="BENCH_mixed.json",
                        help="machine-readable summary path")
    args = parser.parse_args()

    result = run_mixed(quick=True, seed=args.seed, smoke=args.smoke)
    print(result.render())
    with open(args.out, "w") as fh:
        json.dump(summary_payload(result), fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")
    sys.exit(0 if result.all_checks_pass else 1)
