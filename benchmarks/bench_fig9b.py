"""Figure 9b: mixed full:abbreviated = 1:9 CPS."""

from repro.bench.experiments import run_fig9b


def test_fig9b(run_experiment):
    run_experiment(run_fig9b)
