"""Figure 12: timer-based polling thread vs heuristic polling."""

from repro.bench.experiments import run_fig12a, run_fig12b, run_fig12c


def test_fig12a_handshake_cps(run_experiment):
    run_experiment(run_fig12a)


def test_fig12b_transfer_throughput(run_experiment):
    run_experiment(run_fig12b)


def test_fig12c_response_time(run_experiment):
    run_experiment(run_fig12c)
