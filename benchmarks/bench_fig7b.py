"""Figure 7b: ECDHE-RSA (2048) full-handshake CPS."""

from repro.bench.experiments import run_fig7b


def test_fig7b(run_experiment):
    run_experiment(run_fig7b)
