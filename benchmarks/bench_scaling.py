"""Instance-pool scaling: allocation policies x load shape, plus
admission control under overload.

Runnable standalone for CI smoke checks::

    PYTHONPATH=src python benchmarks/bench_scaling.py --smoke

exits non-zero if any scaling check fails. Also writes a
machine-readable ``BENCH_scaling.json`` (throughput + p99 per policy)
so the perf trajectory is tracked across PRs.
"""

from repro.bench.experiments import run_scaling


def test_scaling(run_experiment):
    run_experiment(run_scaling)


def summary_payload(result) -> dict:
    """Throughput/p99/imbalance per (scenario, policy) from the result
    rows, in a stable machine-readable shape."""
    payload: dict = {"experiment": result.exp_id, "scenarios": {}}
    for row in result.rows:
        scen = payload["scenarios"].setdefault(row["scenario"], {})
        pol = scen.setdefault(row["policy"], {})
        pol[row["metric"]] = row["value"]
    payload["checks_pass"] = result.all_checks_pass
    return payload


if __name__ == "__main__":
    import argparse
    import json
    import sys

    parser = argparse.ArgumentParser(
        description="instance-pool allocation-policy scaling experiment")
    parser.add_argument("--smoke", action="store_true",
                        help="short windows, single replay (CI)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out", default="BENCH_scaling.json",
                        help="machine-readable summary path")
    args = parser.parse_args()

    result = run_scaling(quick=True, seed=args.seed, smoke=args.smoke)
    print(result.render())
    with open(args.out, "w") as fh:
        json.dump(summary_payload(result), fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")
    sys.exit(0 if result.all_checks_pass else 1)
