"""Benchmark harness glue.

Each ``bench_*.py`` regenerates one paper table/figure via
pytest-benchmark (one round — these are deterministic simulations, not
microbenchmarks) and asserts the paper's shape claims.

Set ``REPRO_BENCH_FULL=1`` for the full paper-size sweeps (slower).
"""

import os

import pytest


@pytest.fixture(scope="session")
def quick() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "") != "1"


@pytest.fixture
def run_experiment(benchmark, quick):
    """Run one experiment under pytest-benchmark and verify its shape
    checks; returns the ExperimentResult."""

    def _run(fn, **kw):
        result = benchmark.pedantic(fn, kwargs=dict(quick=quick, **kw),
                                    rounds=1, iterations=1)
        print()
        print(result.render())
        failed = [c for c in result.checks if not c["ok"]]
        assert not failed, (
            f"{result.exp_id}: shape checks failed: "
            + "; ".join(c["claim"] for c in failed))
        return result

    return _run
