"""Benchmark harness glue.

Each ``bench_*.py`` regenerates one paper table/figure via
pytest-benchmark (one round — these are deterministic simulations, not
microbenchmarks) and asserts the paper's shape claims.

Set ``REPRO_BENCH_FULL=1`` for the full paper-size sweeps (slower).

Shared helpers (environment builders, check assertions, seeds) live in
:mod:`repro.testing` — the same source of truth ``tests/conftest.py``
uses — so the two suites cannot drift apart again.
"""

import os

import numpy as np
import pytest

from repro.sim import RngRegistry
from repro.testing import (TEST_REGISTRY_SEED, TEST_RNG_SEED,
                           assert_checks)


@pytest.fixture(scope="session")
def quick() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "") != "1"


@pytest.fixture
def rng() -> np.random.Generator:
    """Same deterministic RNG the unit-test suite uses."""
    return np.random.default_rng(TEST_RNG_SEED)


@pytest.fixture
def registry() -> RngRegistry:
    return RngRegistry(TEST_REGISTRY_SEED)


@pytest.fixture
def run_experiment(benchmark, quick):
    """Run one experiment under pytest-benchmark and verify its shape
    checks; returns the ExperimentResult."""

    def _run(fn, **kw):
        result = benchmark.pedantic(fn, kwargs=dict(quick=quick, **kw),
                                    rounds=1, iterations=1)
        print()
        print(result.render())
        assert_checks(result)
        return result

    return _run
