"""Measure line coverage of ``src/repro`` using only the stdlib.

The CI coverage job runs ``pytest --cov=repro --cov-fail-under=<N>``
with coverage.py; this tool exists to (re)measure the baseline ``N``
in environments where coverage.py is not installed. It runs the test
suite under :mod:`trace` (per-line tracing restricted to ``src/repro``
— everything else is ignored at the call level, so the slowdown stays
tolerable) and reports executed/executable lines per module and in
total.

Usage::

    PYTHONPATH=src python tools/measure_coverage.py [pytest args...]

Default pytest args: ``-x -q tests``. The summary line at the end is
the number to pin (coverage.py and this tool agree to within a couple
of points; pin a few points below the measured total so tool drift and
platform-dependent branches don't flap the gate).
"""

from __future__ import annotations

import os
import sys
import sysconfig
import trace as trace_mod

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")
PKG = os.path.join(SRC, "repro")


def _executable_lines(path: str) -> set:
    """Line numbers that compile to code (the coverage denominator)."""
    try:
        return set(trace_mod._find_executable_linenos(path))
    except Exception:
        return set()


def main() -> int:
    import pytest

    args = sys.argv[1:] or ["-x", "-q", "tests"]
    ignoredirs = [sys.prefix, sys.exec_prefix,
                  sysconfig.get_path("stdlib"),
                  sysconfig.get_path("purelib"),
                  os.path.join(REPO, "tests"),
                  os.path.join(REPO, "benchmarks")]
    tracer = trace_mod.Trace(count=1, trace=0, ignoredirs=ignoredirs)

    exit_code = [0]

    def run():
        exit_code[0] = pytest.main(args)

    print(f"measuring line coverage of {PKG} under: pytest {' '.join(args)}")
    tracer.runfunc(run)

    counts = tracer.results().counts  # (filename, lineno) -> hits
    executed = {}
    for (filename, lineno), hits in counts.items():
        if hits and filename.startswith(PKG):
            executed.setdefault(filename, set()).add(lineno)

    total_exec = total_lines = 0
    rows = []
    for dirpath, _dirnames, filenames in os.walk(PKG):
        for fn in sorted(filenames):
            if not fn.endswith(".py"):
                continue
            path = os.path.join(dirpath, fn)
            lines = _executable_lines(path)
            if not lines:
                continue
            hit = len(executed.get(path, set()) & lines)
            total_exec += hit
            total_lines += len(lines)
            rows.append((os.path.relpath(path, SRC), hit, len(lines)))

    print()
    width = max(len(r[0]) for r in rows)
    for name, hit, n in rows:
        print(f"{name:<{width}}  {hit:>5}/{n:<5}  {100 * hit / n:6.1f}%")
    pct = 100 * total_exec / total_lines if total_lines else 0.0
    print()
    print(f"TOTAL {total_exec}/{total_lines} lines = {pct:.1f}%")
    return exit_code[0]


if __name__ == "__main__":
    sys.exit(main())
