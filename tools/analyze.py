#!/usr/bin/env python
"""Run the repro.analysis static-checker suite (DESIGN.md §13).

Usage::

    python tools/analyze.py                     # report, exit 1 on findings
    python tools/analyze.py --ci                # CI gate (also fails on
                                                #   stale baseline entries)
    python tools/analyze.py --select RA1,RA3    # determinism + layering only
    python tools/analyze.py --ignore RA501      # drop one code/family
    python tools/analyze.py --list              # checker/code catalogue
    python tools/analyze.py --baseline-write    # grandfather current findings
    python tools/analyze.py --inject-violation RA301
                                                # canary: patch a known-bad
                                                #   pattern into a temp copy
                                                #   and prove it is caught

Findings print as ``path:line: CODE message``. Deliberate one-off
violations opt out inline (``# analysis: allow[RA101]``; the legacy
``# determinism: allowed`` mark still works for RA1xx/RA2xx);
grandfathered ones live in ``tools/analysis_baseline.txt`` with a
one-line justification each. Stdlib only — runs before any
dependency install.
"""

import argparse
import shutil
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src"
DEFAULT_BASELINE = REPO_ROOT / "tools" / "analysis_baseline.txt"

sys.path.insert(0, str(SRC_ROOT))

from repro.analysis import (AnalysisContext, Baseline,  # noqa: E402
                            checker_registry, run_analysis)

#: ``--inject-violation`` patch table: code -> (src-relative target
#: module, snippet appended to a temp copy). Each snippet is the
#: minimal real-world spelling of the violation the code exists to
#: catch, so this doubles as executable documentation.
INJECTIONS = {
    "RA101": ("repro/sim/kernel.py",
              "from time import monotonic as _mono\n"
              "def _injected_wall_clock():\n"
              "    return _mono()\n"),
    "RA102": ("repro/sim/rng.py",
              "import numpy as _np\n"
              "def _injected_unseeded():\n"
              "    return _np.random.default_rng()\n"),
    "RA103": ("repro/offload/scheduler.py",
              "def _injected_set_iter(lanes):\n"
              "    return [l for l in set(lanes)]\n"),
    "RA104": ("repro/offload/pool.py",
              "def _injected_id_sort(leases):\n"
              "    return sorted(leases, key=lambda l: id(l))\n"),
    "RA201": ("repro/server/worker.py",
              "import threading as _injected_threading\n"),
    "RA202": ("repro/server/polling/timer_thread.py",
              "import time as _t\n"
              "def _injected_sleep(dt):\n"
              "    _t.sleep(dt)\n"),
    "RA203": ("repro/crypto/provider.py",
              "import os as _os\n"
              "def _injected_entropy():\n"
              "    return _os.urandom(16)\n"),
    "RA301": ("repro/crypto/rsa.py",
              "from ..server.config import ServerConfig  # upward import\n"),
    "RA401": ("repro/offload/engine.py",
              "def _injected_leaked_span(obs, op, sim):\n"
              "    trace = obs.begin(op, -1, -1, 'leak', sim.now)\n"
              "    return None\n"),
    "RA501": ("repro/server/conf_text.py",
              "def _injected_parse(directive, value):\n"
              "    if directive == 'qat_undocumented_knob':\n"
              "        return value\n"),
    "RA502": ("repro/server/conf_text.py",
              "def _injected_parse(directive, value):\n"
              "    if directive == 'qat_undocumented_knob':\n"
              "        return value\n"),
    "RA601": ("repro/server/reactor.py",
              "class _InjectedSource(EventSource):\n"
              "    pass  # no name -> stats namespace collision\n"),
    "RA602": ("repro/server/reactor.py",
              "class _InjectedStage(EventSource):\n"
              "    name = 'injected-stage'\n"
              "    has_stage = True\n"
              "    def on_pass(self, owner):\n"
              "        return []  # not a generator\n"),
    "RA603": ("repro/server/reactor.py",
              "class _InjectedArity(EventSource):\n"
              "    name = 'injected-arity'\n"
              "    def next_timeout(self, now, slack):\n"
              "        return None\n"),
    "RA604": ("repro/server/reactor.py",
              "class _InjectedStats(EventSource):\n"
              "    name = 'injected-stats'\n"
              "    def stats(self):\n"
              "        return {'polls': 0}\n"),
}


def build_context(root: Path, paths) -> AnalysisContext:
    return AnalysisContext.from_paths(
        root, paths=paths, readme_path=root.parent / "README.md")


def list_catalogue() -> int:
    for name, checker in checker_registry().items():
        print(f"{name}:")
        for code, desc in sorted(checker.codes.items()):
            print(f"  {code}  {desc}")
    return 0


def inject_violation(code: str, select_only: bool) -> int:
    """Prove checker ``code`` still has teeth: copy src/ (+ README) to
    a temp tree, patch in the known-bad pattern, re-run, and require
    the finding to appear. Exit 0 = caught, 1 = checker rot."""
    entry = INJECTIONS.get(code)
    if entry is None:
        print(f"no injection recipe for {code}; known: "
              f"{', '.join(sorted(INJECTIONS))}")
        return 2
    relpath, snippet = entry
    with tempfile.TemporaryDirectory(prefix="repro-analysis-") as tmp:
        tmp_root = Path(tmp) / "src"
        shutil.copytree(SRC_ROOT, tmp_root,
                        ignore=shutil.ignore_patterns("__pycache__"))
        shutil.copy(REPO_ROOT / "README.md", Path(tmp) / "README.md")
        target = tmp_root / relpath
        target.write_text(target.read_text(encoding="utf-8")
                          + "\n\n" + snippet, encoding="utf-8")
        ctx = AnalysisContext.from_paths(
            tmp_root, readme_path=Path(tmp) / "README.md")
        result = run_analysis(
            ctx, select=[code] if select_only else None,
            baseline=Baseline.load(DEFAULT_BASELINE))
        hits = [f for f in result.findings
                if f.code == code and f.path == relpath]
        if hits:
            print(f"canary ok: {code} caught in patched copy:")
            for f in hits:
                print(f"  {f.render()}")
            return 0
        print(f"CHECKER ROT: injected {code} pattern into {relpath} "
              "but the checker missed it")
        for f in result.findings:
            print(f"  (saw) {f.render()}")
        return 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="repro.analysis static-checker suite")
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files/dirs under src/ (default: all of src/)")
    parser.add_argument("--ci", action="store_true",
                        help="strict gate: findings OR stale baseline "
                        "entries fail the run")
    parser.add_argument("--select", default=None,
                        help="comma-separated code prefixes / checker "
                        "names to run (e.g. RA1,layering)")
    parser.add_argument("--ignore", default=None,
                        help="comma-separated code prefixes / checker "
                        "names to skip")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE,
                        help="baseline file (default "
                        "tools/analysis_baseline.txt)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline entirely")
    parser.add_argument("--baseline-write", action="store_true",
                        help="write current findings to the baseline "
                        "file and exit")
    parser.add_argument("--list", action="store_true",
                        help="print the checker/code catalogue")
    parser.add_argument("--inject-violation", metavar="CODE",
                        help="self-check: patch a known-bad pattern "
                        "into a temp copy and assert CODE is caught")
    args = parser.parse_args(argv)

    if args.list:
        return list_catalogue()
    if args.inject_violation:
        return inject_violation(args.inject_violation.strip(),
                                select_only=True)

    select = ([s.strip() for s in args.select.split(",") if s.strip()]
              if args.select else None)
    ignore = ([s.strip() for s in args.ignore.split(",") if s.strip()]
              if args.ignore else None)
    ctx = build_context(SRC_ROOT, args.paths or None)

    if args.baseline_write:
        result = run_analysis(ctx, select=select, ignore=ignore)
        args.baseline.write_text(Baseline.render(result.findings),
                                 encoding="utf-8")
        print(f"wrote {len({f.baseline_key for f in result.findings})} "
              f"baseline entr(ies) to {args.baseline}")
        return 0

    baseline = (Baseline() if args.no_baseline
                else Baseline.load(args.baseline))
    result = run_analysis(ctx, select=select, ignore=ignore,
                          baseline=baseline)

    for f in result.findings:
        print(f.render())
    status = 0
    if result.findings:
        print(f"\nrepro.analysis: {len(result.findings)} finding(s) "
              f"across {result.files} file(s) "
              f"({result.suppressed} inline-suppressed, "
              f"{result.baselined} baselined)")
        print("fix them, opt out inline with '# analysis: allow[CODE]', "
              "or grandfather with --baseline-write + a justification")
        status = 1
    else:
        print(f"repro.analysis: clean — {result.files} file(s), "
              f"{result.checkers} checker(s), "
              f"{result.suppressed} inline-suppressed, "
              f"{result.baselined} baselined")
    if result.stale_baseline:
        print("\nstale baseline entries (no longer matched — prune):")
        for code, path in result.stale_baseline:
            print(f"  {code} {path}")
        if args.ci:
            status = status or 1
    return status


if __name__ == "__main__":
    raise SystemExit(main())
