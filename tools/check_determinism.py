#!/usr/bin/env python
"""Static lint: ban nondeterminism sources from the simulation tree.

Every experiment must replay bit-for-bit from its seed (DESIGN.md
section 2), so ``src/`` must never read ambient entropy or wall-clock
time. This scans ``src/**/*.py`` for the classic leaks:

- ``time.time(`` / ``time.monotonic(`` / ``time.perf_counter(`` —
  wall-clock reads; simulated time is ``sim.now``;
- ``random.random(`` — the global (process-seeded) stdlib generator;
- argless ``datetime.now()`` / ``datetime.utcnow()``;
- argless ``np.random.default_rng()`` — an OS-entropy-seeded stream.

Lines that are deliberate (e.g. wall-clock *reporting* in the CLI,
never fed back into the simulation) opt out with a trailing
``# determinism: allowed`` comment.

Usage::

    python tools/check_determinism.py

exits non-zero listing every violation as ``path:line: text``.
"""

import re
import sys
from pathlib import Path

ALLOW_MARK = "determinism: allowed"

#: (pattern, why it is banned)
BANNED = [
    (re.compile(r"\btime\.(time|monotonic|perf_counter)\s*\("),
     "wall-clock read; use sim.now"),
    (re.compile(r"\brandom\.random\s*\("),
     "process-seeded global RNG; use RngRegistry streams"),
    (re.compile(r"\bdatetime\.(now|utcnow)\s*\(\s*\)"),
     "wall-clock read; pass timestamps explicitly"),
    (re.compile(r"\bdefault_rng\s*\(\s*\)"),
     "unseeded RNG; default_rng(seed) only"),
]


def scan(root: Path):
    violations = []
    for path in sorted(root.rglob("*.py")):
        for lineno, line in enumerate(
                path.read_text(encoding="utf-8").splitlines(), 1):
            if ALLOW_MARK in line:
                continue
            for pattern, why in BANNED:
                if pattern.search(line):
                    violations.append(
                        f"{path}:{lineno}: {line.strip()}  [{why}]")
    return violations


def main() -> int:
    root = Path(__file__).resolve().parent.parent / "src"
    violations = scan(root)
    if violations:
        print("nondeterminism leaked into src/ "
              f"({len(violations)} violation(s)):")
        for v in violations:
            print(f"  {v}")
        print(f"\nannotate deliberate uses with '# {ALLOW_MARK}'")
        return 1
    print("determinism lint: clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
