#!/usr/bin/env python
"""Determinism lint — thin shim over ``repro.analysis``.

Historically this was a standalone regex scan for wall-clock and
global-RNG use in ``src/``. The AST-based ``determinism`` checker
(``repro.analysis.determinism``, codes RA1xx) supersedes it: it
resolves import aliases, sees the set-ordering and ``id()`` leaks the
regexes could not, never trips on strings or docstrings, and shares
the suppression/baseline machinery with the rest of the suite. This
entry point is kept so existing CI steps and muscle memory
(``python tools/check_determinism.py``) keep working; the legacy
``# determinism: allowed`` opt-out mark is still honored. For the
full suite run ``python tools/analyze.py``.
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import analyze  # noqa: E402


def main(argv=None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    return analyze.main(["--select", "determinism", *args])


if __name__ == "__main__":
    raise SystemExit(main())
