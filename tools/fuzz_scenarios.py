#!/usr/bin/env python
"""Deterministic scenario fuzzer for the QTLS simulation.

Generates seeded random scenarios (``repro.testing.scenario``), runs
each one to completion, and checks every registered cross-layer
invariant (``repro.testing.invariants``). A scenario is fully
identified by ``(harness_version, seed)`` — any failure this tool
reports is replayable with the printed command on any machine.

    python tools/fuzz_scenarios.py --n 500 --seed-base 0 --workers 4

On failure the spec is greedily shrunk (``repro.testing.shrink``) and
the tool prints the minimal replay command plus a pytest snippet ready
to paste into the regression corpus.

``--inject-bug lease-epoch`` disables the pool's retired-epoch check
for completions — a deliberate bug that the tombstone-isolation
invariant must catch. Used to validate that the harness has teeth.

``--determinism`` runs every scenario twice and requires byte-equal
world fingerprints (the same-seed reproducibility invariant).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List, Optional, Tuple

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.testing.invariants import check_all  # noqa: E402
from repro.testing.scenario import (  # noqa: E402
    HARNESS_VERSION, ScenarioGen, ScenarioSpec, run_scenario,
)
from repro.testing.shrink import shrink, shrink_report  # noqa: E402

INJECTABLE_BUGS = ("lease-epoch",)


def apply_bug_injection(name: Optional[str]) -> None:
    """Patch a deliberate bug into the production code (in-process
    only). Used to prove the invariants catch real regressions."""
    if name is None:
        return
    if name == "lease-epoch":
        from repro.offload.pool import InstancePool
        # Pretend no completion owner is ever tombstoned: late
        # completions for retired epochs flow into recreated inboxes.
        InstancePool.completion_retired = (  # type: ignore[method-assign]
            lambda self, owner: False)
    else:  # pragma: no cover - argparse choices guard this
        raise ValueError(f"unknown bug injection {name!r}")


def run_one(spec: ScenarioSpec, determinism: bool) -> Optional[str]:
    """Failure oracle: run the scenario, return a description of the
    first invariant violation / crash, or None if the world is clean."""
    try:
        result = run_scenario(spec)
    except Exception as exc:
        return f"crash: {type(exc).__name__}: {exc}"
    violations = check_all(result.bed)
    if violations:
        v = violations[0]
        extra = f" (+{len(violations) - 1} more)" if len(violations) > 1 \
            else ""
        return f"{v.invariant}: {v.detail}{extra}"
    if determinism:
        second = run_scenario(spec)
        if second.fingerprint != result.fingerprint:
            return "determinism: same-seed replay produced a different " \
                   "world fingerprint"
    return None


def _worker_entry(job: Tuple[dict, bool, Optional[str]]
                  ) -> Tuple[int, Optional[str]]:
    spec_dict, determinism, bug = job
    apply_bug_injection(bug)
    spec = ScenarioSpec.from_dict(spec_dict)
    return spec.seed, run_one(spec, determinism)


def fuzz(n: int, seed_base: int, workers: int, determinism: bool,
         bug: Optional[str]) -> List[Tuple[ScenarioSpec, str]]:
    """Run ``n`` seeds starting at ``seed_base``; return failing
    (spec, failure) pairs."""
    specs = [ScenarioGen(seed_base + i).generate() for i in range(n)]
    failures: List[Tuple[ScenarioSpec, str]] = []
    by_seed = {s.seed: s for s in specs}
    if workers > 1:
        import multiprocessing
        jobs = [(s.to_dict(), determinism, bug) for s in specs]
        ctx = multiprocessing.get_context("spawn")
        with ctx.Pool(workers) as pool:
            for seed, failure in pool.imap_unordered(_worker_entry, jobs):
                _report_progress(seed, failure)
                if failure is not None:
                    failures.append((by_seed[seed], failure))
    else:
        apply_bug_injection(bug)
        for spec in specs:
            failure = run_one(spec, determinism)
            _report_progress(spec.seed, failure)
            if failure is not None:
                failures.append((spec, failure))
    failures.sort(key=lambda pair: pair[0].seed)
    return failures


def _report_progress(seed: int, failure: Optional[str]) -> None:
    if failure is not None:
        print(f"seed {seed}: FAIL  {failure}")
    elif seed % 25 == 0:
        print(f"seed {seed}: ok")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--n", type=int, default=200,
                        help="number of scenarios to run (default 200)")
    parser.add_argument("--seed-base", type=int, default=0,
                        help="first seed; scenarios use seeds "
                             "[base, base+n)")
    parser.add_argument("--workers", type=int, default=1,
                        help="parallel worker processes (default 1)")
    parser.add_argument("--determinism", action="store_true",
                        help="run each scenario twice and require "
                             "byte-equal fingerprints")
    parser.add_argument("--inject-bug", choices=INJECTABLE_BUGS,
                        default=None,
                        help="patch a known bug in and expect the "
                             "invariants to catch it")
    parser.add_argument("--spec", default=None, metavar="JSON",
                        help="replay a single spec (JSON from a shrink "
                             "report) instead of fuzzing")
    parser.add_argument("--seed", type=int, default=None,
                        help="run exactly one generated seed")
    parser.add_argument("--no-shrink", action="store_true",
                        help="report failures without minimizing them")
    parser.add_argument("--report", default=None, metavar="PATH",
                        help="also write failure reports to this file")
    args = parser.parse_args(argv)

    print(f"harness v{HARNESS_VERSION}"
          + (f", injected bug: {args.inject_bug}" if args.inject_bug
             else ""))

    if args.spec is not None:
        apply_bug_injection(args.inject_bug)
        spec = ScenarioSpec.from_dict(json.loads(args.spec))
        failure = run_one(spec, args.determinism)
        if failure is None:
            print(f"replayed spec (seed {spec.seed}): PASS")
            return 0
        print(f"replayed spec (seed {spec.seed}): FAIL  {failure}")
        return 1

    if args.seed is not None:
        args.seed_base, args.n = args.seed, 1

    started = time.time()
    failures = fuzz(args.n, args.seed_base, args.workers,
                    args.determinism, args.inject_bug)
    elapsed = time.time() - started
    print(f"{args.n} scenario(s) in {elapsed:.1f}s, "
          f"{len(failures)} failing")
    if not failures:
        return 0

    apply_bug_injection(args.inject_bug)  # for in-process shrinking
    reports: List[str] = []
    for spec, failure in failures:
        print(f"\n=== seed {spec.seed}: {failure}")
        print(f"    repro: python tools/fuzz_scenarios.py "
              f"--seed {spec.seed}"
              + (f" --inject-bug {args.inject_bug}" if args.inject_bug
                 else "")
              + (" --determinism" if args.determinism else ""))
        if args.no_shrink:
            continue
        minimal, min_failure = shrink(
            spec, lambda s: run_one(s, args.determinism), log=print)
        report = shrink_report(minimal, min_failure)
        print(report)
        reports.append(f"seed {spec.seed}\n{report}")
    if args.report and reports:
        with open(args.report, "w") as fh:
            fh.write("\n\n".join(reports) + "\n")
        print(f"\nwrote {len(reports)} report(s) to {args.report}")
    return 1


if __name__ == "__main__":
    sys.exit(main())
