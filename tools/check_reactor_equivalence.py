#!/usr/bin/env python
"""Replay the fuzz corpus and compare fingerprints against the
checked-in manifest (tests/fuzz/corpus_fingerprints.json).

The manifest pins the byte-exact world digest of every corpus
scenario: the 16 legacy seeds were fingerprinted on the pre-reactor
event loop (hand-rolled ``_loop_timeout`` + hardcoded end-of-pass
block), so this check is the executable form of the refactor's
equivalence claim — the reactor must reproduce the old loop's
scheduling decisions to the byte, under every backend, instance
policy, fault kind, retrieval mode and lifecycle action the corpus
covers. Legacy seeds replay from their archived v1 specs; newer seeds
regenerate under the current harness version.

Exit status 0 = every fingerprint matches; 1 = divergence (a summary
of the first differing fingerprint lines is printed per bad seed).

Regenerating the manifest (only after an INTENTIONAL behaviour
change): python tools/check_reactor_equivalence.py --write
"""

from __future__ import annotations

import argparse
import difflib
import hashlib
import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.testing.scenario import (  # noqa: E402
    ScenarioGen, ScenarioSpec, run_scenario,
)

FUZZ_DIR = ROOT / "tests" / "fuzz"
MANIFEST = FUZZ_DIR / "corpus_fingerprints.json"
V1_SPECS = json.loads((FUZZ_DIR / "corpus_v1_specs.json").read_text())


def corpus_seeds() -> list:
    seeds = []
    for line in (FUZZ_DIR / "corpus.txt").read_text().splitlines():
        line = line.split("#", 1)[0].strip()
        if line:
            seeds.append(int(line))
    return seeds


def spec_for(seed: int) -> ScenarioSpec:
    if str(seed) in V1_SPECS:
        return ScenarioSpec.from_dict(V1_SPECS[str(seed)],
                                      allow_legacy=True)
    return ScenarioGen(seed).generate()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--write", action="store_true",
                        help="rewrite the manifest from this run")
    args = parser.parse_args()

    expected = ({} if args.write or not MANIFEST.exists()
                else json.loads(MANIFEST.read_text()))
    actual, texts, bad = {}, {}, []
    for seed in corpus_seeds():
        spec = spec_for(seed)
        result = run_scenario(spec)
        digest = hashlib.sha256(result.fingerprint.encode()).hexdigest()
        actual[str(seed)] = digest
        texts[str(seed)] = result.fingerprint
        if args.write:
            status = "recorded"
        elif str(seed) not in expected:
            status = "UNPINNED"
            bad.append(seed)
        elif digest == expected[str(seed)]:
            status = "ok"
        else:
            status = "DIVERGED"
            bad.append(seed)
        print(f"seed {seed:4d}  {digest[:16]}  {status}  "
              f"({spec.describe()})")

    if args.write:
        MANIFEST.write_text(json.dumps(actual, indent=1) + "\n")
        print(f"wrote {len(actual)} fingerprints to {MANIFEST}")
        return 0
    missing = sorted(set(expected) - set(actual), key=int)
    if missing:
        print(f"manifest pins absent seeds: {missing}")
        bad.extend(int(s) for s in missing)
    if not bad:
        print(f"all {len(actual)} corpus fingerprints match")
        return 0
    for seed in [s for s in bad if str(s) in expected
                 and str(s) in texts]:
        print(f"\n--- seed {seed}: fingerprint drift "
              f"(expected {expected[str(seed)][:16]}, "
              f"got {actual[str(seed)][:16]})")
        # The manifest stores digests only, so the best local evidence
        # is a fresh double-run diff: if the rerun matches itself, the
        # drift is vs the pinned baseline, not nondeterminism.
        rerun = run_scenario(spec_for(seed)).fingerprint
        if rerun != texts[str(seed)]:
            diff = difflib.unified_diff(
                texts[str(seed)].splitlines(), rerun.splitlines(),
                "run1", "run2", lineterm="", n=0)
            print("NONDETERMINISTIC — same-spec reruns differ:")
            print("\n".join(list(diff)[:20]))
        else:
            print("deterministic drift: the scenario replays "
                  "identically but no longer matches the pinned "
                  "baseline (a scheduling-visible code change)")
    print(f"\nFAILED seeds: {sorted(set(bad))}")
    return 1


if __name__ == "__main__":
    sys.exit(main())
