#!/usr/bin/env python
"""Walk through a real TLS 1.2 ECDHE-RSA handshake, op by op.

Uses the *real* from-scratch crypto (RSA PKCS#1 v1.5, P-256 ECDHE,
HMAC-SHA256 PRF): the signatures verify and both sides derive
identical keys. Every crypto operation the server performs is logged —
these are exactly the operations QTLS offloads, and the counts match
the paper's Table 1.

Run:  python examples/handshake_walkthrough.py
"""

import numpy as np

from repro.crypto.ops import CryptoOpKind as K
from repro.crypto.provider import RealCryptoProvider
from repro.tls import (ECDHE_RSA, OpLog, TlsClientConfig, TlsServerConfig,
                       client_handshake12, run_loopback_handshake,
                       server_handshake12)


def main() -> None:
    provider = RealCryptoProvider()
    rng = np.random.default_rng

    print("generating a 1024-bit RSA server key (real keygen) ...")
    cred = provider.make_rsa_credentials(1024, rng(1))

    server_cfg = TlsServerConfig(provider=provider, suites=(ECDHE_RSA,),
                                 rng=rng(2), curves=("P-256",),
                                 credentials_rsa=cred)
    client_cfg = TlsClientConfig(provider=provider, suites=(ECDHE_RSA,),
                                 rng=rng(3), curves=("P-256",))

    slog, clog = OpLog(), OpLog()
    print("running the ECDHE-RSA handshake ...\n")
    cres, sres = run_loopback_handshake(
        client_handshake12(client_cfg), server_handshake12(server_cfg),
        client_oplog=clog, server_oplog=slog)

    print("server-side crypto operations (the offload candidates):")
    for op, label in zip(slog.ops, slog.labels):
        flag = "QAT-offloadable" if op.qat_offloadable else "CPU only"
        print(f"  {label:24s} {op.describe():24s} [{flag}]")

    print("\nTable 1 check (ECDHE-RSA row: RSA=1, ECC=2, PRF=4):")
    print(f"  RSA  = {slog.count(K.RSA_PRIV)}")
    print(f"  ECC  = {slog.count(K.ECDH_KEYGEN, K.ECDH_COMPUTE)}")
    print(f"  PRF  = {slog.count(K.PRF)}")

    assert cres.master_secret == sres.master_secret
    assert cres.client_write_keys == sres.client_write_keys
    print("\nboth sides derived identical keys:")
    print(f"  master secret = {sres.master_secret.hex()[:48]}...")
    print(f"  resumable session id = {sres.session_id.hex() or '(none)'}")
    print("\nhandshake complete — the RSA signature over the "
          "ServerKeyExchange verified with real PKCS#1 v1.5 math.")


if __name__ == "__main__":
    main()
