#!/usr/bin/env python
"""Customizing offload behaviour via the SSL Engine Framework.

The paper's artifact (appendix A.7) extends the Nginx conf file with an
``ssl_engine`` block. This example drives the reproduction with that
exact configuration syntax, then flips individual knobs (polling mode,
notification scheme) and shows the effect on handshake throughput.

Run:  python examples/ssl_engine_framework.py
"""

from repro.bench import Windows
from repro.core import ClientMetrics, default_cost_model
from repro.clients import STimeFleet
from repro.crypto.provider import ModeledCryptoProvider
from repro.net import Network
from repro.qat import dh8970
from repro.server import TlsServer, server_config_from_text
from repro.sim import RngRegistry, Simulator
from repro.tls.config import TlsClientConfig
from repro.tls.suites import get_suite

# The appendix A.7 example, almost verbatim.
CONF_TEMPLATE = """
worker_processes 2;
load_module modules/ngx_ssl_engine_qat_module.so;
ssl_ciphers TLS-RSA;
ssl_asynch_notify {notify};
ssl_engine {{
    use qat_engine;
    default_algorithm RSA,EC,DH,PKEY_CRYPTO;
    qat_engine {{
        qat_offload_mode async;
        qat_notify_mode poll;
        qat_poll_mode {poll_mode};
        qat_timer_poll_interval {interval};
        qat_heuristic_poll_asym_threshold 48;
        qat_heuristic_poll_sym_threshold 24;
    }}
}}
"""

WINDOWS = Windows(warmup=0.08, measure=0.12)


def run_conf(conf_text: str) -> float:
    sim = Simulator()
    rng = RngRegistry(3)
    net = Network(sim)
    provider = ModeledCryptoProvider()
    config = server_config_from_text(conf_text)
    server = TlsServer(sim, net, config, provider, rng,
                       qat_device=dh8970(sim))
    server.start()
    metrics = ClientMetrics()
    suites = tuple(get_suite(s) for s in config.suites)

    def client_config(cid):
        return TlsClientConfig(provider=provider, suites=suites,
                               rng=rng.stream(f"c{cid}"), curves=("P-256",))

    STimeFleet(sim, net, server.addresses(), client_config,
               default_cost_model(), metrics,
               n_clients=100 * config.worker_processes,
               mix_rng=rng.stream("mix")).start()
    sim.run(until=WINDOWS.end)
    return metrics.cps(WINDOWS.warmup, WINDOWS.end)


def main() -> None:
    variants = [
        ("timer thread, 10us, FD notify",
         dict(poll_mode="timer", interval="0.00001", notify="fd")),
        ("heuristic polling, FD notify",
         dict(poll_mode="heuristic", interval="0.00001", notify="fd")),
        ("heuristic + kernel-bypass (full QTLS)",
         dict(poll_mode="heuristic", interval="0.00001", notify="queue")),
    ]
    print("SSL Engine Framework knobs (TLS-RSA, 2 workers):\n")
    base = None
    for label, params in variants:
        cps = run_conf(CONF_TEMPLATE.format(**params))
        base = base or cps
        print(f"  {label:42s} {cps:10,.0f} CPS  ({cps / base:.2f}x)")
    print("\neach knob corresponds to one step of the paper's "
          "QAT+A -> QAT+AH -> QTLS ladder")


if __name__ == "__main__":
    main()
