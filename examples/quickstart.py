#!/usr/bin/env python
"""Quickstart: the QTLS framework vs the software baseline.

Builds the paper's testbed in simulation — an event-driven TLS server,
an Intel DH8970-class QAT card, and a fleet of `openssl s_time`-style
clients — and measures full-handshake connections/second (TLS 1.2,
TLS-RSA 2048) under the software baseline and under the full QTLS
asynchronous offload framework.

Run:  python examples/quickstart.py
"""

from repro.bench import Testbed, Windows

WINDOWS = Windows(warmup=0.08, measure=0.12)


def measure(config_name: str) -> float:
    """Run one configuration and return connections/second."""
    bed = Testbed(config_name, workers=2, suites=("TLS-RSA",), seed=7)
    cps = bed.measure_cps(WINDOWS)

    # The artifact appendix suggests checking the accelerator's
    # firmware counters after each QAT run — same here:
    if bed.device is not None:
        counters = bed.device.fw_counter_totals()
        print(f"    fw_counters: {counters['total']:,} requests "
              f"({counters['kind.rsa_priv']:,} RSA, "
              f"{counters['cat.prf']:,} PRF)")
    return cps


def main() -> None:
    print("QTLS quickstart: TLS-RSA (2048-bit) full handshakes, "
          "2 workers\n")
    print("  [SW]   software crypto on the worker cores ...")
    sw = measure("SW")
    print(f"    {sw:,.0f} connections/second\n")

    print("  [QTLS] asynchronous QAT offload + heuristic polling "
          "+ kernel-bypass notification ...")
    qtls = measure("QTLS")
    print(f"    {qtls:,.0f} connections/second\n")

    print(f"  QTLS speedup: {qtls / sw:.1f}x  "
          f"(the paper reports up to 9x at 8 workers)")


if __name__ == "__main__":
    main()
