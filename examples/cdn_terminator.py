#!/usr/bin/env python
"""A CDN TLS-termination scenario (the paper's Wangsu/Alibaba use case).

A CDN edge node terminates HTTPS for many short-lived end-client
connections: a realistic mix of full and abbreviated handshakes
(session tickets restricted to an hour, so ~20% of connections pay the
full asymmetric cost) plus mid-size object transfers over keepalive
connections.

The script compares the software baseline against full QTLS on all
three axes the paper evaluates: handshake CPS, transfer throughput,
and end-client response time.

Run:  python examples/cdn_terminator.py
"""

from repro.bench import Testbed, Windows
from repro.crypto.provider import AccountingCryptoProvider

HS_WINDOWS = Windows(warmup=0.08, measure=0.12)
XFER_WINDOWS = Windows(warmup=0.25, measure=0.15)
LAT_WINDOWS = Windows(warmup=0.1, measure=0.2)

WORKERS = 4


def handshake_mix(config: str) -> float:
    """CPS with an 80% session-resumption hit rate, ECDHE-RSA."""
    bed = Testbed(config, workers=WORKERS, suites=("ECDHE-RSA",), seed=11)
    return bed.measure_cps(HS_WINDOWS, full_ratio=0.2)


def object_transfer(config: str) -> float:
    """Gbps serving 64 KB objects over keepalive connections."""
    bed = Testbed(config, workers=WORKERS, suites=("ECDHE-RSA",),
                  provider=AccountingCryptoProvider(), seed=11)
    return bed.measure_throughput(XFER_WINDOWS, n_clients=60 * WORKERS,
                                  file_size=64 * 1024) / 1e9


def response_time(config: str) -> float:
    """Mean ms to fetch a small object on a fresh connection, 32-way."""
    bed = Testbed(config, workers=WORKERS, suites=("ECDHE-RSA",), seed=11)
    return bed.measure_latency(LAT_WINDOWS, n_clients=32) * 1e3


def main() -> None:
    print(f"CDN edge terminator scenario ({WORKERS} workers, ECDHE-RSA, "
          "80% resumption)\n")
    rows = []
    for config in ("SW", "QTLS"):
        print(f"  measuring {config} ...")
        rows.append((config, handshake_mix(config),
                     object_transfer(config), response_time(config)))

    print(f"\n  {'config':8s} {'mixed CPS':>12s} {'64KB Gbps':>10s} "
          f"{'latency ms':>11s}")
    for config, cps, gbps, lat in rows:
        print(f"  {config:8s} {cps:12,.0f} {gbps:10.2f} {lat:11.2f}")

    (_, sw_cps, sw_gbps, sw_lat), (_, q_cps, q_gbps, q_lat) = rows
    print(f"\n  QTLS vs SW:  {q_cps / sw_cps:.1f}x CPS,  "
          f"{q_gbps / sw_gbps:.1f}x throughput,  "
          f"{(1 - q_lat / sw_lat) * 100:.0f}% lower latency")
    print("  (paper headline: up to 9x CPS, >2x throughput, "
          "~85% latency reduction)")


if __name__ == "__main__":
    main()
