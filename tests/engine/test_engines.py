"""Engine layer tests: software baseline, straight offload, async
submission, inflight counters, software fallback."""

import pytest

from repro.core.costmodel import CostModel
from repro.cpu import Core
from repro.crypto.ops import CryptoOp, CryptoOpKind
from repro.engine import ALGORITHM_GROUPS, QatEngine, SoftwareEngine
from repro.qat import QatDevice, QatUserspaceDriver, qat_service_time
from repro.sim import Simulator
from repro.ssl.async_job import FiberAsyncJob
from repro.tls.actions import CryptoCall


def rsa_call(result="sig"):
    return CryptoCall(CryptoOp(CryptoOpKind.RSA_PRIV, rsa_bits=2048),
                      compute=lambda: result)


def hkdf_call():
    return CryptoCall(CryptoOp(CryptoOpKind.HKDF, nbytes=32),
                      compute=lambda: b"okm")


def make_qat_env(ring_capacity=64, algorithms=("RSA", "EC", "PKEY_CRYPTO",
                                               "CIPHER")):
    sim = Simulator()
    core = Core(sim, 0)
    dev = QatDevice(sim, n_endpoints=1, ring_capacity=ring_capacity)
    drv = QatUserspaceDriver(dev.allocate_instances(1)[0])
    eng = QatEngine(drv, core, CostModel(), algorithms=algorithms)
    return sim, core, eng


# -- software engine ----------------------------------------------------------

def test_software_engine_charges_cpu():
    sim = Simulator()
    core = Core(sim, 0)
    cm = CostModel()
    eng = SoftwareEngine(core, cm)
    out = {}

    def proc(sim):
        out["r"] = yield from eng.execute_blocking(rsa_call(), owner="w")

    sim.process(proc(sim))
    sim.run()
    assert out["r"] == "sig"
    assert sim.now == pytest.approx(cm.software_cost(rsa_call().op))
    assert not eng.offloads(rsa_call())


def test_software_engine_propagates_compute_error():
    sim = Simulator()
    eng = SoftwareEngine(Core(sim, 0), CostModel())
    call = CryptoCall(CryptoOp(CryptoOpKind.PRF, nbytes=48),
                      compute=lambda: (_ for _ in ()).throw(ValueError("x")))
    caught = {}

    def proc(sim):
        try:
            yield from eng.execute_blocking(call, owner="w")
        except ValueError as e:
            caught["e"] = str(e)

    sim.process(proc(sim))
    sim.run()
    assert caught["e"] == "x"


# -- straight (blocking) offload -------------------------------------------------

def test_blocking_offload_burns_core_while_waiting():
    sim, core, eng = make_qat_env()
    out = {}

    def proc(sim):
        out["r"] = yield from eng.execute_blocking(rsa_call(), owner="w")

    sim.process(proc(sim))
    sim.run()
    assert out["r"] == "sig"
    # The worker spent (nearly) the whole elapsed time busy-waiting:
    # this is the paper's section 2.4 blocking observation.
    assert core.stats.busy_time >= 0.9 * sim.now
    assert sim.now > qat_service_time(rsa_call().op)
    assert eng.ops_offloaded == 1
    assert eng.inflight.total == 0


def test_blocking_offload_software_fallback_for_hkdf():
    sim, core, eng = make_qat_env()
    out = {}

    def proc(sim):
        out["r"] = yield from eng.execute_blocking(hkdf_call(), owner="w")

    sim.process(proc(sim))
    sim.run()
    assert out["r"] == b"okm"
    assert eng.ops_software == 1
    assert eng.ops_offloaded == 0


def test_algorithm_groups_restrict_offload():
    sim, core, eng = make_qat_env(algorithms=("EC",))
    assert not eng.offloads(rsa_call())
    cipher = CryptoCall(CryptoOp(CryptoOpKind.RECORD_CIPHER, nbytes=1024),
                        compute=lambda: b"")
    assert not eng.offloads(cipher)
    ec = CryptoCall(CryptoOp(CryptoOpKind.ECDH_COMPUTE, curve="P-256"),
                    compute=lambda: b"")
    assert eng.offloads(ec)


def test_unknown_algorithm_group_rejected():
    sim = Simulator()
    dev = QatDevice(sim, n_endpoints=1)
    drv = QatUserspaceDriver(dev.allocate_instances(1)[0])
    with pytest.raises(ValueError, match="unknown algorithm group"):
        QatEngine(drv, Core(sim, 0), CostModel(), algorithms=("BOGUS",))


# -- async offload ------------------------------------------------------------------

def _job():
    return FiberAsyncJob(lambda: iter(()), kind="handshake")


def test_submit_async_returns_immediately_and_counts_inflight():
    sim, core, eng = make_qat_env()
    job = _job()
    out = {}

    def proc(sim):
        out["ok"] = yield from eng.submit_async(rsa_call(), job, owner="w")
        out["t"] = sim.now

    sim.process(proc(sim))
    sim.run(until=1e-5)
    assert out["ok"]
    assert out["t"] < 1e-5  # returned right after the submit cost
    assert eng.inflight.total == 1
    assert eng.inflight.asym == 1


def test_poll_and_dispatch_delivers_and_decrements():
    sim, core, eng = make_qat_env()
    job = _job()
    job.mark_paused(rsa_call())
    got = {}

    def proc(sim):
        yield from eng.submit_async(rsa_call(), job, owner="w")
        while True:
            jobs = yield from eng.poll_and_dispatch(owner="w")
            if jobs:
                got["jobs"] = jobs
                return
            yield sim.timeout(10e-6)

    sim.process(proc(sim))
    sim.run()
    assert got["jobs"] == [job]
    assert job.response_ready
    assert job.take_resume() == ("sig", None)
    assert eng.inflight.total == 0


def test_submit_async_ring_full_returns_false():
    sim, core, eng = make_qat_env(ring_capacity=1)
    out = {}

    def proc(sim):
        j1, j2 = _job(), _job()
        j1.mark_paused(rsa_call())
        ok1 = yield from eng.submit_async(rsa_call(), j1, owner="w")
        ok2 = yield from eng.submit_async(rsa_call(), j2, owner="w")
        out["oks"] = (ok1, ok2)

    sim.process(proc(sim))
    sim.run(until=1e-4)
    assert out["oks"] == (True, False)
    assert eng.inflight.total == 1  # failed submit not counted


def test_submit_async_rejects_non_offloadable():
    sim, core, eng = make_qat_env()

    def proc(sim):
        yield from eng.submit_async(hkdf_call(), _job(), owner="w")

    sim.process(proc(sim))
    with pytest.raises(ValueError, match="non-offloadable"):
        sim.run()


def test_callback_notification_invoked_on_dispatch():
    sim, core, eng = make_qat_env()
    job = _job()
    job.mark_paused(rsa_call())
    fired = []
    job.wait_ctx.set_callback(lambda arg: fired.append(arg), "handler-arg")

    def proc(sim):
        yield from eng.submit_async(rsa_call(), job, owner="w")
        while not fired:
            yield from eng.poll_and_dispatch(owner="w")
            yield sim.timeout(10e-6)

    sim.process(proc(sim))
    sim.run()
    assert fired == ["handler-arg"]


def test_fd_notification_written_on_dispatch():
    from repro.net import NotifyFd
    sim, core, eng = make_qat_env()
    job = _job()
    job.mark_paused(rsa_call())
    nfd = NotifyFd(sim)
    job.wait_ctx.set_fd(nfd)

    def proc(sim):
        yield from eng.submit_async(rsa_call(), job, owner="w")
        while not nfd.readable:
            yield from eng.poll_and_dispatch(owner="w")
            yield sim.timeout(10e-6)

    sim.process(proc(sim))
    sim.run()
    assert nfd.read_events() == 1
    # FD-based notification paid a kernel crossing (the cost the
    # kernel-bypass scheme avoids).
    assert core.stats.kernel_crossings >= 1


def test_engine_command_reports_rtotal():
    sim, core, eng = make_qat_env()
    job1, job2 = _job(), _job()
    job1.mark_paused(rsa_call())
    job2.mark_paused(rsa_call())

    def proc(sim):
        yield from eng.submit_async(rsa_call(), job1, owner="w")
        prf = CryptoCall(CryptoOp(CryptoOpKind.PRF, nbytes=48),
                         compute=lambda: b"x")
        yield from eng.submit_async(prf, job2, owner="w")

    sim.process(proc(sim))
    sim.run(until=1e-5)
    assert eng.get_num_requests_in_flight() == 2
    assert eng.inflight.asym == 1
    assert eng.inflight.prf == 1


def test_inflight_underflow_guarded():
    from repro.engine import InflightCounters
    from repro.crypto.ops import OpCategory
    c = InflightCounters()
    with pytest.raises(RuntimeError):
        c.decrement(OpCategory.ASYM)


def test_algorithm_groups_cover_paper_config():
    """Appendix A.7's example: RSA,EC,DH,PKEY_CRYPTO."""
    for group in ("RSA", "EC", "DH", "PKEY_CRYPTO"):
        assert group in ALGORITHM_GROUPS
