"""Engine resilience tests: deadlines, bounded retries, circuit
breakers, software failover, stale-response filtering."""

from repro.engine import CircuitBreaker, OffloadTimeout
from repro.qat import qat_service_time
from repro.testing import make_job, make_qat_env, rsa_call


def make_env(plan_kw=None, seed=7, **engine_kw):
    env = make_qat_env(plan_kw=plan_kw, seed=seed, **engine_kw)
    return env.sim, env.core, env.engine


def _job():
    return make_job(paused_on=rsa_call())


# -- blocking path ------------------------------------------------------------

def test_blocking_submit_retries_bounded_then_falls_back():
    sim, core, eng = make_env(plan_kw=dict(outages=((0, 0.0, 1.0),)),
                              submit_max_retries=4)
    out = {}

    def proc(sim):
        out["r"] = yield from eng.execute_blocking(rsa_call(), owner="w")

    sim.process(proc(sim))
    sim.run()
    assert out["r"] == "sig"  # completed on the CPU
    assert eng.ops_fallback == 1
    assert eng.ops_software == 1
    assert eng.ops_offloaded == 0


def test_blocking_submit_raises_typed_error_without_fallback():
    sim, core, eng = make_env(plan_kw=dict(outages=((0, 0.0, 1.0),)),
                              submit_max_retries=4, software_fallback=False)
    caught = {}

    def proc(sim):
        try:
            yield from eng.execute_blocking(rsa_call(), owner="w")
        except OffloadTimeout as e:
            caught["e"] = str(e)

    sim.process(proc(sim))
    sim.run()
    assert "rejected" in caught["e"]


def test_blocking_response_loss_hits_deadline_then_falls_back():
    sim, core, eng = make_env(plan_kw=dict(response_loss=1.0),
                              request_deadline=1e-3)
    out = {}

    def proc(sim):
        out["r"] = yield from eng.execute_blocking(rsa_call(), owner="w")

    sim.process(proc(sim))
    sim.run()
    assert out["r"] == "sig"
    assert eng.op_timeouts == 1
    assert eng.ops_fallback == 1
    assert eng.drivers[0].op_timeouts == 1
    assert eng.inflight.total == 0
    assert eng.breakers[0].consecutive_failures == 1


# -- async path ----------------------------------------------------------------

def test_check_timeouts_rescues_lost_response():
    sim, core, eng = make_env(plan_kw=dict(response_loss=1.0),
                              request_deadline=1e-3)
    job = _job()
    resumed = {}

    def proc(sim):
        yield from eng.submit_async(rsa_call(), job, owner="w")
        yield sim.timeout(2e-3)  # past the deadline
        resumed["jobs"] = yield from eng.check_timeouts(owner="w")

    sim.process(proc(sim))
    sim.run()
    assert resumed["jobs"] == [job]
    assert job.response_ready
    assert job.take_resume() == ("sig", None)  # software result
    assert eng.op_timeouts == 1
    assert eng.inflight.total == 0
    assert not eng.is_pending(job)


def test_check_timeouts_delivers_error_without_fallback():
    sim, core, eng = make_env(plan_kw=dict(response_loss=1.0),
                              request_deadline=1e-3,
                              software_fallback=False)
    job = _job()

    def proc(sim):
        yield from eng.submit_async(rsa_call(), job, owner="w")
        yield sim.timeout(2e-3)
        yield from eng.check_timeouts(owner="w")

    sim.process(proc(sim))
    sim.run()
    value, exc = job.take_resume()
    assert value is None
    assert isinstance(exc, OffloadTimeout)


def test_late_response_after_timeout_is_dropped_as_stale():
    """An op that timed out and failed over must NOT be delivered a
    second time when its (slow) response eventually lands."""
    deadline = qat_service_time(rsa_call().op) / 4
    sim, core, eng = make_env(plan_kw=None, request_deadline=deadline)
    job = _job()

    def proc(sim):
        yield from eng.submit_async(rsa_call(), job, owner="w")
        yield sim.timeout(deadline * 2)  # expired, response not yet landed
        yield from eng.check_timeouts(owner="w")
        assert job.take_resume() == ("sig", None)  # failover result
        while True:
            yield from eng.poll_and_dispatch(owner="w")
            if eng.responses_stale:
                return
            yield sim.timeout(10e-6)

    sim.process(proc(sim))
    sim.run()
    assert eng.responses_stale == 1
    assert not job.response_ready  # no double delivery
    assert eng.responses_dispatched == 0


def test_corrupted_response_degrades_to_software():
    sim, core, eng = make_env(plan_kw=dict(corruption=1.0))
    job = _job()

    def proc(sim):
        yield from eng.submit_async(rsa_call(), job, owner="w")
        while not job.response_ready:
            yield from eng.poll_and_dispatch(owner="w")
            yield sim.timeout(10e-6)

    sim.process(proc(sim))
    sim.run()
    assert job.take_resume() == ("sig", None)  # good software result
    assert eng.responses_corrupted == 1
    assert eng.ops_fallback == 1
    assert eng.breakers[0].consecutive_failures == 1


def test_should_retry_submit_bounded_by_budget():
    sim, core, eng = make_env(submit_max_retries=3)
    job = _job()
    job.submit_attempts = 2
    assert eng.should_retry_submit(job)
    job.submit_attempts = 3
    assert not eng.should_retry_submit(job)


def test_should_retry_submit_false_when_all_breakers_open():
    sim, core, eng = make_env(breaker_failure_threshold=1)
    eng.breakers[0].record_failure()
    assert eng.breakers[0].is_open
    job = _job()
    assert not eng.should_retry_submit(job)


def test_fail_over_job_completes_paused_job_without_pending_entry():
    """Watchdog rescue: a paused job whose ring entry was wiped (e.g.
    endpoint reset) is completed on the CPU."""
    sim, core, eng = make_env()
    job = _job()  # paused, but never submitted: no pending entry
    out = {}

    def proc(sim):
        out["ok"] = yield from eng.fail_over_job(job, owner="w")

    sim.process(proc(sim))
    sim.run()
    assert out["ok"]
    assert job.take_resume() == ("sig", None)
    assert eng.ops_fallback == 1


# -- circuit breaker -----------------------------------------------------------

def test_breaker_opens_after_threshold_and_recovers():
    now = [0.0]
    b = CircuitBreaker(lambda: now[0], failure_threshold=3,
                       reset_timeout=1.0)
    assert b.state == "closed" and b.allow()
    for _ in range(3):
        b.record_failure()
    assert b.state == "open" and b.opens == 1
    assert not b.allow()  # cool-down not elapsed
    now[0] = 1.5
    assert b.allow()       # half-open: admits one probe
    assert b.state == "half-open"
    assert not b.allow()   # second caller held back while probing
    b.record_success()
    assert b.state == "closed"
    assert b.allow()
    assert b.consecutive_failures == 0


def test_breaker_failed_probe_reopens():
    now = [0.0]
    b = CircuitBreaker(lambda: now[0], failure_threshold=2,
                       reset_timeout=1.0)
    b.record_failure()
    b.record_failure()
    now[0] = 2.0
    assert b.allow()
    b.record_failure()  # probe failed
    assert b.state == "open" and b.opens == 2
    assert not b.allow()


def test_breaker_cancel_probe_releases_slot():
    """Ring-full during a probe is backpressure, not ill health: the
    probe slot must be released so the next caller can try."""
    now = [0.0]
    b = CircuitBreaker(lambda: now[0], failure_threshold=1,
                       reset_timeout=1.0)
    b.record_failure()
    now[0] = 2.0
    assert b.allow()
    b.cancel_probe()
    assert b.allow()  # slot free again


def test_engine_routes_around_open_breaker():
    """With two instances and one breaker open, submissions flow to the
    healthy instance only."""
    env = make_qat_env(n_instances=2, breaker_failure_threshold=1)
    sim, eng, drvs = env.sim, env.engine, env.drivers
    eng.breakers[0].record_failure()
    assert eng.breakers[0].is_open
    jobs = [_job() for _ in range(4)]

    def proc(sim):
        for job in jobs:
            ok = yield from eng.submit_async(rsa_call(), job, owner="w")
            assert ok

    sim.process(proc(sim))
    sim.run(until=1e-4)
    assert drvs[0].submitted == 0
    assert drvs[1].submitted == 4
