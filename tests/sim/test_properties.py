"""Property-based tests on the simulation kernel's core invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Resource, Simulator, Store


@given(st.lists(st.floats(min_value=0.0, max_value=100.0,
                          allow_nan=False), min_size=1, max_size=40))
def test_events_fire_in_nondecreasing_time_order(delays):
    sim = Simulator()
    fired = []
    for d in delays:
        t = sim.timeout(d)
        t.callbacks.append(lambda ev, d=d: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
    assert sim.now == max(delays)


@given(st.lists(st.floats(min_value=0.001, max_value=10.0,
                          allow_nan=False), min_size=1, max_size=20))
def test_sequential_process_time_is_sum(delays):
    sim = Simulator()

    def proc(sim):
        for d in delays:
            yield sim.timeout(d)

    sim.process(proc(sim))
    sim.run()
    assert abs(sim.now - sum(delays)) < 1e-9 * max(1, len(delays))


@given(st.lists(st.integers(0, 1000), max_size=50))
def test_store_preserves_fifo_order(items):
    sim = Simulator()
    st_ = Store(sim)
    for i in items:
        st_.try_put(i)
    out = [st_.try_get() for _ in items]
    assert out == items


@given(st.lists(st.tuples(st.booleans(), st.integers(0, 100)),
                min_size=1, max_size=60))
def test_store_interleaved_put_get_conservation(ops):
    """Whatever goes in comes out, in order, regardless of interleaving."""
    sim = Simulator()
    st_ = Store(sim)
    put_seq, got = [], []
    for is_put, val in ops:
        if is_put:
            st_.try_put(val)
            put_seq.append(val)
        else:
            v = st_.try_get()
            if v is not None:
                got.append(v)
    got.extend(st_.drain())
    assert got == put_seq


@given(st.integers(1, 8), st.integers(1, 30))
@settings(max_examples=30)
def test_resource_never_exceeds_capacity(capacity, n_users):
    sim = Simulator()
    res = Resource(sim, capacity)
    peak = [0]

    def user(sim, hold):
        req = res.request()
        yield req
        peak[0] = max(peak[0], res.in_use)
        assert res.in_use <= capacity
        yield sim.timeout(hold)
        res.release()

    for i in range(n_users):
        sim.process(user(sim, 0.5 + (i % 3) * 0.25))
    sim.run()
    assert peak[0] <= capacity
    assert res.in_use == 0


@given(st.integers(0, 2**31), st.integers(1, 20))
@settings(max_examples=20)
def test_simulation_determinism(seed, n):
    """Two identical runs produce identical event traces."""

    def run_once():
        sim = Simulator()
        trace = []

        def worker(sim, k):
            for _ in range(3):
                yield sim.timeout(((seed >> (k % 16)) % 7 + 1) * 0.1 + k)
                trace.append((k, round(sim.now, 9)))

        for k in range(n):
            sim.process(worker(sim, k))
        sim.run()
        return trace

    assert run_once() == run_once()
