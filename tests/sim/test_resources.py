"""Unit tests for Resource and Store."""

import pytest

from repro.sim import Resource, Simulator, Store


# -- Resource ---------------------------------------------------------------

def test_resource_grants_up_to_capacity():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    r1, r2, r3 = res.request(), res.request(), res.request()
    assert r1.triggered and r2.triggered and not r3.triggered
    assert res.in_use == 2
    assert res.queue_length == 1


def test_resource_release_wakes_fifo():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def user(sim, name, hold):
        req = res.request()
        yield req
        order.append((name, sim.now))
        yield sim.timeout(hold)
        res.release()

    sim.process(user(sim, "a", 2.0))
    sim.process(user(sim, "b", 1.0))
    sim.process(user(sim, "c", 1.0))
    sim.run()
    assert order == [("a", 0.0), ("b", 2.0), ("c", 3.0)]


def test_resource_release_idle_raises():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    with pytest.raises(RuntimeError):
        res.release()


def test_resource_capacity_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)


def test_resource_cancelled_waiter_skipped():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    res.request()
    w1 = res.request()
    w2 = res.request()
    w1.cancel()
    res.release()
    sim.run()
    assert not w1.triggered
    assert w2.triggered
    assert res.in_use == 1


def test_resource_available():
    sim = Simulator()
    res = Resource(sim, capacity=3)
    res.request()
    assert res.available == 2


# -- Store -------------------------------------------------------------------

def test_store_put_get_fifo():
    sim = Simulator()
    st = Store(sim)
    st.try_put("a")
    st.try_put("b")
    g1, g2 = st.get(), st.get()
    sim.run()
    assert g1.value == "a"
    assert g2.value == "b"


def test_store_get_blocks_until_put():
    sim = Simulator()
    st = Store(sim)
    got = []

    def consumer(sim):
        v = yield st.get()
        got.append((v, sim.now))

    sim.process(consumer(sim))
    sim.call_in(2.0, lambda: st.try_put("x"))
    sim.run()
    assert got == [("x", 2.0)]


def test_store_try_put_respects_capacity():
    sim = Simulator()
    st = Store(sim, capacity=2)
    assert st.try_put(1)
    assert st.try_put(2)
    assert not st.try_put(3)
    assert len(st) == 2
    assert st.is_full


def test_store_try_get_empty_returns_none():
    sim = Simulator()
    st = Store(sim)
    assert st.try_get() is None
    st.try_put("x")
    assert st.try_get() == "x"


def test_store_blocking_put_waits_for_space():
    sim = Simulator()
    st = Store(sim, capacity=1)
    st.try_put("a")
    done = []

    def producer(sim):
        yield st.put("b")
        done.append(sim.now)

    sim.process(producer(sim))
    sim.call_in(3.0, lambda: st.try_get())
    sim.run()
    assert done == [3.0]
    assert st.try_get() == "b"


def test_store_drain_returns_all():
    sim = Simulator()
    st = Store(sim)
    for i in range(5):
        st.try_put(i)
    assert st.drain() == [0, 1, 2, 3, 4]
    assert len(st) == 0


def test_store_drain_admits_blocked_putters():
    sim = Simulator()
    st = Store(sim, capacity=1)
    st.try_put("a")

    def producer(sim):
        yield st.put("b")

    sim.process(producer(sim))
    sim.run()
    assert st.drain() == ["a"]
    sim.run()
    assert st.drain() == ["b"]


def test_store_capacity_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Store(sim, capacity=0)


def test_store_interleaved_producer_consumer():
    sim = Simulator()
    st = Store(sim, capacity=3)
    consumed = []

    def producer(sim):
        for i in range(10):
            yield st.put(i)
            yield sim.timeout(0.1)

    def consumer(sim):
        for _ in range(10):
            v = yield st.get()
            consumed.append(v)
            yield sim.timeout(0.3)

    sim.process(producer(sim))
    sim.process(consumer(sim))
    sim.run()
    assert consumed == list(range(10))
