"""Unit tests for generator-based processes."""

import pytest

from repro.sim import AllOf, AnyOf, Interrupt, Simulator


def test_process_runs_and_returns_value():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1.0)
        yield sim.timeout(2.0)
        return "finished"

    p = sim.process(proc(sim))
    sim.run()
    assert sim.now == 3.0
    assert p.value == "finished"


def test_process_requires_generator():
    sim = Simulator()

    def not_a_gen(sim):
        return 42

    with pytest.raises(TypeError, match="generator"):
        sim.process(not_a_gen(sim))


def test_yield_value_of_timeout():
    sim = Simulator()
    got = []

    def proc(sim):
        v = yield sim.timeout(1.0, value="abc")
        got.append(v)

    sim.process(proc(sim))
    sim.run()
    assert got == ["abc"]


def test_process_waits_on_process():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(2.0)
        return 7

    def parent(sim):
        v = yield sim.process(child(sim))
        return v * 2

    p = sim.process(parent(sim))
    sim.run()
    assert p.value == 14


def test_yield_already_processed_event():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(1.0)
        return "early"

    c = sim.process(child(sim))

    def parent(sim):
        yield sim.timeout(5.0)
        v = yield c  # processed long ago
        return v

    p = sim.process(parent(sim))
    sim.run()
    assert p.value == "early"
    assert sim.now == 5.0


def test_exception_in_process_propagates_from_run():
    sim = Simulator()

    def bad(sim):
        yield sim.timeout(1.0)
        raise KeyError("oops")

    sim.process(bad(sim))
    with pytest.raises(KeyError):
        sim.run()


def test_exception_catchable_by_waiting_process():
    sim = Simulator()

    def bad(sim):
        yield sim.timeout(1.0)
        raise KeyError("oops")

    def guard(sim):
        try:
            yield sim.process(bad(sim))
        except KeyError:
            return "caught"
        return "missed"

    p = sim.process(guard(sim))
    sim.run()
    assert p.value == "caught"


def test_failed_event_thrown_into_process():
    sim = Simulator()
    ev = sim.event()

    def proc(sim):
        try:
            yield ev
        except ValueError as e:
            return str(e)

    p = sim.process(proc(sim))
    sim.call_in(1.0, lambda: ev.fail(ValueError("bang")))
    sim.run()
    assert p.value == "bang"


def test_yield_non_event_fails_process():
    sim = Simulator()

    def proc(sim):
        yield 42

    sim.process(proc(sim))
    with pytest.raises(RuntimeError, match="must.*yield Event"):
        sim.run()


def test_interrupt_resumes_with_exception():
    sim = Simulator()
    log = []

    def sleeper(sim):
        try:
            yield sim.timeout(100.0)
        except Interrupt as i:
            log.append(("interrupted", sim.now, i.cause))

    p = sim.process(sleeper(sim))
    sim.call_in(2.0, lambda: p.interrupt("wakeup"))
    sim.run()
    assert log == [("interrupted", 2.0, "wakeup")]


def test_interrupt_dead_process_raises():
    sim = Simulator()

    def quick(sim):
        yield sim.timeout(1.0)

    p = sim.process(quick(sim))
    sim.run()
    with pytest.raises(RuntimeError):
        p.interrupt()


def test_is_alive_lifecycle():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1.0)

    p = sim.process(proc(sim))
    assert p.is_alive
    sim.run()
    assert not p.is_alive


def test_anyof_fires_on_first():
    sim = Simulator()

    def proc(sim):
        t1 = sim.timeout(1.0, value="fast")
        t2 = sim.timeout(5.0, value="slow")
        results = yield t1 | t2
        return (sim.now, results[t1])

    p = sim.process(proc(sim))
    sim.run()
    assert p.value == (1.0, "fast")


def test_allof_waits_for_all():
    sim = Simulator()

    def proc(sim):
        t1 = sim.timeout(1.0, value="a")
        t2 = sim.timeout(5.0, value="b")
        results = yield t1 & t2
        return (sim.now, results[t1], results[t2])

    p = sim.process(proc(sim))
    sim.run()
    assert p.value == (5.0, "a", "b")


def test_allof_empty_fires_immediately():
    sim = Simulator()
    cond = AllOf(sim, [])
    assert cond.triggered


def test_anyof_propagates_failure():
    sim = Simulator()
    ev = sim.event()

    def proc(sim):
        try:
            yield AnyOf(sim, [ev, sim.timeout(10.0)])
        except RuntimeError as e:
            return f"caught {e}"

    p = sim.process(proc(sim))
    sim.call_in(1.0, lambda: ev.fail(RuntimeError("x")))
    sim.run()
    assert p.value == "caught x"


def test_two_processes_interleave():
    sim = Simulator()
    log = []

    def ticker(sim, name, period):
        for _ in range(3):
            yield sim.timeout(period)
            log.append((name, sim.now))

    sim.process(ticker(sim, "a", 1.0))
    sim.process(ticker(sim, "b", 1.5))
    sim.run()
    # At t=3.0 both fire; b's timeout was scheduled earlier (t=1.5 vs
    # t=2.0), so FIFO-by-schedule-order places b first.
    assert log == [("a", 1.0), ("b", 1.5), ("a", 2.0), ("b", 3.0),
                   ("a", 3.0), ("b", 4.5)]
