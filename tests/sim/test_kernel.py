"""Unit tests for the DES kernel: events, scheduling, run semantics."""

import pytest

from repro.sim import Event, Simulator


def test_time_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_timeout_advances_clock():
    sim = Simulator()
    sim.timeout(2.5)
    sim.run()
    assert sim.now == 2.5


def test_timeouts_processed_in_order():
    sim = Simulator()
    seen = []
    for d in (3.0, 1.0, 2.0):
        t = sim.timeout(d)
        t.callbacks.append(lambda ev, d=d: seen.append(d))
    sim.run()
    assert seen == [1.0, 2.0, 3.0]


def test_equal_time_events_fifo():
    sim = Simulator()
    seen = []
    for i in range(5):
        t = sim.timeout(1.0)
        t.callbacks.append(lambda ev, i=i: seen.append(i))
    sim.run()
    assert seen == [0, 1, 2, 3, 4]


def test_run_until_time_stops_clock():
    sim = Simulator()
    fired = []
    sim.timeout(10.0).callbacks.append(lambda ev: fired.append(1))
    sim.run(until=5.0)
    assert sim.now == 5.0
    assert not fired


def test_run_until_time_includes_events_at_horizon():
    sim = Simulator()
    fired = []
    sim.timeout(5.0).callbacks.append(lambda ev: fired.append(1))
    sim.run(until=5.0)
    # Same-time normal events run before the low-priority stop sentinel.
    assert fired == [1]


def test_run_until_event_returns_value():
    sim = Simulator()
    ev = sim.event()
    sim.call_in(3.0, lambda: ev.succeed(42))
    assert sim.run(until=ev) == 42
    assert sim.now == 3.0


def test_run_until_event_deadlock_detected():
    sim = Simulator()
    ev = sim.event()  # never triggered
    sim.timeout(1.0)
    with pytest.raises(RuntimeError, match="deadlock"):
        sim.run(until=ev)


def test_run_until_past_raises():
    sim = Simulator()
    sim.timeout(5.0)
    sim.run()
    with pytest.raises(ValueError):
        sim.run(until=1.0)


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_event_succeed_once():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(RuntimeError):
        ev.succeed(2)


def test_event_value_before_trigger_raises():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(RuntimeError):
        _ = ev.value


def test_event_fail_propagates_when_unhandled():
    sim = Simulator()
    ev = sim.event()
    ev.fail(ValueError("boom"))
    with pytest.raises(ValueError, match="boom"):
        sim.run()


def test_event_fail_defused_is_silent():
    sim = Simulator()
    ev = sim.event()
    ev.fail(ValueError("boom"))
    ev.defuse()
    sim.run()  # no raise


def test_fail_requires_exception_instance():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")


def test_cancelled_event_callbacks_never_run():
    sim = Simulator()
    t = sim.timeout(1.0)
    hit = []
    t.callbacks.append(lambda ev: hit.append(1))
    t.cancel()
    sim.run()
    assert not hit
    assert t.cancelled


def test_peek_skips_cancelled():
    sim = Simulator()
    t1 = sim.timeout(1.0)
    sim.timeout(2.0)
    t1.cancel()
    assert sim.peek() == 2.0


def test_peek_empty_is_inf():
    sim = Simulator()
    assert sim.peek() == float("inf")


def test_call_at_and_call_in():
    sim = Simulator()
    seen = []
    sim.call_at(4.0, lambda: seen.append(("at", sim.now)))
    sim.call_in(1.0, lambda: seen.append(("in", sim.now)))
    sim.run()
    assert seen == [("in", 1.0), ("at", 4.0)]


def test_call_at_past_raises():
    sim = Simulator()
    sim.timeout(2.0)
    sim.run()
    with pytest.raises(ValueError):
        sim.call_at(1.0, lambda: None)


def test_timeout_carries_value():
    sim = Simulator()
    t = sim.timeout(1.0, value="hello")
    sim.run()
    assert t.value == "hello"


def test_repr_states():
    sim = Simulator()
    ev = Event(sim, name="x")
    assert "pending" in repr(ev)
    ev.succeed()
    assert "triggered" in repr(ev)
    sim.run()
    assert "processed" in repr(ev)


def test_trace_records_events():
    from repro.sim import Tracer
    sim = Simulator(trace=Tracer(enabled=True))
    sim.timeout(1.0, name="tick")
    sim.run()
    kinds = [r[2][0] for r in sim.trace.of_kind("event")]
    assert "tick" in kinds
