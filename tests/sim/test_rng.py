"""Unit tests for deterministic RNG streams."""

from repro.sim import RngRegistry


def test_same_seed_same_stream():
    a = RngRegistry(42).stream("x").random(8)
    b = RngRegistry(42).stream("x").random(8)
    assert (a == b).all()


def test_different_names_independent():
    reg = RngRegistry(42)
    a = reg.stream("x").random(8)
    b = reg.stream("y").random(8)
    assert not (a == b).all()


def test_different_seeds_differ():
    a = RngRegistry(1).stream("x").random(8)
    b = RngRegistry(2).stream("x").random(8)
    assert not (a == b).all()


def test_stream_is_cached():
    reg = RngRegistry(0)
    assert reg.stream("s") is reg.stream("s")


def test_spawn_derives_stable_child():
    a = RngRegistry(7).spawn("pt1").stream("z").random(4)
    b = RngRegistry(7).spawn("pt1").stream("z").random(4)
    c = RngRegistry(7).spawn("pt2").stream("z").random(4)
    assert (a == b).all()
    assert not (a == c).all()


def test_adding_stream_does_not_perturb_existing():
    reg1 = RngRegistry(5)
    _ = reg1.stream("used").random(4)
    after = reg1.stream("used").random(4)

    reg2 = RngRegistry(5)
    _ = reg2.stream("used").random(4)
    _ = reg2.stream("new-consumer").random(4)
    after2 = reg2.stream("used").random(4)
    assert (after == after2).all()
