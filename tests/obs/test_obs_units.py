"""Unit tests for the repro.obs building blocks: span derivation,
trace contexts, histograms, utilization timelines, the tracer's
sampling/closing discipline, and the export validator."""

import pytest

from repro.obs import (RequestTracer, SpanStatus, StreamingHistogram,
                      UtilizationTimeline, chrome_trace_events,
                      derive_spans, validate_chrome_trace)
from repro.obs.context import OpTrace
from repro.testing import rsa_call


def _op():
    return rsa_call().op


def _begin(tracer, now=0.0, conn=5, worker=0):
    return tracer.begin(_op(), conn, worker, "handshake", now)


# -- span derivation -----------------------------------------------------------

def test_derive_spans_full_pipeline():
    marks = {"enqueued": 1.0, "accepted": 2.0, "dequeued": 3.0,
             "serviced": 3.5, "landed": 4.0, "delivered": 5.0}
    spans = derive_spans("rsa_priv", 0.0, 6.0, marks)
    assert spans[0].name == "rsa_priv"
    assert [s.name for s in spans[1:]] == [
        "queue", "batch-wait", "ring", "engine-service", "poll-delay",
        "resume"]
    # Consecutive and disjoint: each stage starts where the last ended.
    edges = [(s.start, s.end) for s in spans[1:]]
    assert edges == [(0.0, 1.0), (1.0, 2.0), (2.0, 3.0), (3.0, 4.0),
                     (4.0, 5.0), (5.0, 6.0)]
    assert all(s.parent == "rsa_priv" for s in spans[1:])


def test_derive_spans_unbatched_has_no_batch_wait():
    marks = {"accepted": 1.0, "dequeued": 2.0, "landed": 3.0,
             "delivered": 4.0}
    names = [s.name for s in derive_spans("rsa_priv", 0.0, 5.0, marks)]
    assert "batch-wait" not in names
    # queue runs straight to acceptance.
    spans = derive_spans("rsa_priv", 0.0, 5.0, marks)
    queue = next(s for s in spans if s.name == "queue")
    assert (queue.start, queue.end) == (0.0, 1.0)


def test_derive_spans_op_that_never_reached_backend():
    # A timed-out op with no marks at all: just the root span.
    spans = derive_spans("rsa_priv", 0.0, 1.0, {})
    assert len(spans) == 1
    # With only "delivered" (failover delivery), queue + resume appear.
    spans = derive_spans("rsa_priv", 0.0, 1.0, {"delivered": 0.5})
    assert [s.name for s in spans] == ["rsa_priv", "queue", "resume"]


def test_op_trace_marks_are_first_write_wins():
    t = OpTrace(1, "rsa_priv", "asym", 5, 0, "handshake", 0.0)
    t.mark("accepted", 1.0)
    t.mark("accepted", 9.0)  # retry must not move the checkpoint
    assert t.marks["accepted"] == 1.0
    t.absorb_device_marks({"dequeued": 2.0, "serviced": None})
    assert t.marks["dequeued"] == 2.0
    assert "serviced" not in t.marks  # None stamps are skipped


def test_op_trace_close_status_rules():
    t = OpTrace(1, "rsa_priv", "asym", 5, 0, "handshake", 0.0)
    t.close(1.0)
    assert t.status == SpanStatus.OK  # default for a clean close
    t2 = OpTrace(2, "rsa_priv", "asym", 5, 0, "handshake", 0.0)
    t2.status = SpanStatus.TIMEOUT  # stamped by the engine on failure
    t2.close(1.0)
    assert t2.status == SpanStatus.TIMEOUT  # close keeps the stamp


def test_op_trace_spans_require_close():
    t = OpTrace(1, "rsa_priv", "asym", 5, 0, "handshake", 0.0)
    with pytest.raises(RuntimeError, match="still open"):
        t.spans()


# -- histogram -----------------------------------------------------------------

def test_histogram_summary_and_percentiles():
    h = StreamingHistogram()
    h.extend([1e-6] * 50 + [1e-3] * 45 + [1e-1] * 5)
    assert h.count == 100
    assert h.max == pytest.approx(1e-1)
    # Bucket upper bounds are conservative: within one growth factor.
    assert 1e-6 <= h.percentile(50) <= 1e-6 * 1.25
    assert 1e-3 <= h.percentile(95) <= 1e-3 * 1.25
    assert 1e-1 <= h.percentile(99.9) <= 1e-1 * 1.25
    s = h.summary()
    assert s["count"] == 100.0
    assert s["p50"] <= s["p95"] <= s["p99"] <= 1e-1 * 1.25


def test_histogram_zero_durations_tracked_without_log():
    h = StreamingHistogram()
    h.extend([0.0, 0.0, 0.0, 1e-3])
    assert h.zeros == 3
    assert h.percentile(50) == 0.0
    assert h.percentile(99) >= 1e-3


def test_histogram_rejects_bad_input():
    with pytest.raises(ValueError):
        StreamingHistogram(growth=1.0)
    h = StreamingHistogram()
    with pytest.raises(ValueError):
        h.add(-1e-9)
    with pytest.raises(ValueError):
        h.percentile(101)


def test_histogram_empty_is_all_zero():
    s = StreamingHistogram().summary()
    assert s == {"count": 0.0, "mean": 0.0, "p50": 0.0, "p95": 0.0,
                 "p99": 0.0, "max": 0.0}


# -- utilization timeline ------------------------------------------------------

def test_timeline_dedupes_and_revises_same_instant():
    tl = UtilizationTimeline("ep0.engines", capacity=4)
    tl.sample(0.0, 0.0)
    tl.sample(1.0, 2.0)
    tl.sample(1.5, 2.0)  # no change: deduped
    assert len(tl) == 2
    tl.sample(2.0, 3.0)
    tl.sample(2.0, 1.0)  # same-instant revision keeps the final value
    assert tl.steps()[-1] == (2.0, 1.0)
    assert tl.peak == 3.0


def test_timeline_mean_is_time_weighted():
    tl = UtilizationTimeline("x", capacity=2)
    tl.sample(0.0, 0.0)
    tl.sample(1.0, 2.0)
    tl.sample(3.0, 0.0)
    # [0,1): 0, [1,3): 2, [3,4): 0 -> mean over [0,4] = 1.0
    assert tl.mean(0.0, 4.0) == pytest.approx(1.0)
    assert tl.utilization(0.0, 4.0) == pytest.approx(0.5)
    assert tl.value_at(-1.0) == 0.0
    assert tl.value_at(2.0) == 2.0


def test_timeline_rejects_time_travel():
    tl = UtilizationTimeline("x")
    tl.sample(1.0, 1.0)
    with pytest.raises(ValueError, match="non-monotone"):
        tl.sample(0.5, 2.0)


# -- tracer lifecycle ----------------------------------------------------------

def test_tracer_closes_feed_histograms_and_sinks():
    seen = []
    tr = RequestTracer(sinks=(seen.append,))
    t = _begin(tr)
    t.accept(1e-4, "qat", 0)
    t.mark("delivered", 3e-4)
    tr.finish(t, 4e-4)
    assert seen == [t]
    assert t.status == SpanStatus.OK
    assert tr.snapshot_counts() == {
        "trace_ops": 1, "trace_open": 0, "trace_spans": 3,
        "trace_sampled_out": 0}
    assert ("qat", "total") in tr.histograms
    assert tr.percentile("qat", "total", 50) >= 4e-4


def test_tracer_double_close_raises():
    tr = RequestTracer()
    t = _begin(tr)
    tr.finish(t, 1.0)
    with pytest.raises(RuntimeError, match="closed twice"):
        tr.finish(t, 2.0)


def test_tracer_abort_open_never_leaks():
    tr = RequestTracer()
    t = _begin(tr)
    tr.abort_open(t, 1.0)
    assert t.status == SpanStatus.ABORTED
    assert not tr.open
    tr.abort_open(t, 2.0)   # idempotent on closed traces
    tr.abort_open(None, 2.0)  # and on never-sampled ops
    assert tr.by_status == {SpanStatus.ABORTED: 1}


def test_tracer_sampling_is_deterministic_credit_not_rng():
    def pattern():
        tr = RequestTracer(sample_rate=0.5)
        return [tr.begin(_op(), i, 0, "handshake", 0.0) is not None
                for i in range(8)]

    first = pattern()
    assert first == pattern()       # no RNG: bit-for-bit replay
    assert sum(first) == 4          # exactly rate * n ops sampled
    tr = RequestTracer(sample_rate=0.5)
    for i in range(8):
        tr.begin(_op(), i, 0, "handshake", 0.0)
    assert tr.sampled_out == 4
    assert tr.snapshot_counts()["trace_sampled_out"] == 4


def test_tracer_keep_false_drops_closed_traces():
    tr = RequestTracer(keep=False)
    t = _begin(tr)
    tr.finish(t, 1.0)
    assert tr.traces == []
    assert tr.ops_closed == 1
    assert tr.histograms  # metrics still accumulate


def test_tracer_rejects_bad_sample_rate():
    with pytest.raises(ValueError):
        RequestTracer(sample_rate=1.5)


# -- export validator ----------------------------------------------------------

def _valid_doc():
    tr = RequestTracer()
    t = _begin(tr)
    t.accept(1e-4, "qat", 0)
    t.mark("delivered", 3e-4)
    tr.finish(t, 4e-4)
    return {"traceEvents": chrome_trace_events(tr)}


def test_validator_accepts_own_export():
    assert validate_chrome_trace(_valid_doc()) == []


def test_validator_flags_malformed_documents():
    assert validate_chrome_trace({}) == ["traceEvents missing or not a list"]
    doc = {"traceEvents": [{"ph": "X", "name": "rsa_priv", "pid": 0}]}
    assert "missing" in validate_chrome_trace(doc)[0]
    doc = {"traceEvents": [
        {"ph": "Z", "name": "x", "pid": 0, "tid": 0, "ts": 0.0}]}
    assert "unknown phase" in validate_chrome_trace(doc)[0]


def test_validator_flags_orphan_stage_and_open_root():
    orphan = {"traceEvents": [
        {"ph": "X", "name": "queue", "pid": 0, "tid": 0, "ts": 0.0,
         "dur": 1.0, "args": {"trace_id": 7}}]}
    assert any("no root" in e for e in validate_chrome_trace(orphan))
    open_root = {"traceEvents": [
        {"ph": "X", "name": "rsa_priv", "pid": 0, "tid": 0, "ts": 0.0,
         "dur": 1.0, "args": {"trace_id": 7, "status": "open"}}]}
    assert any("non-terminal" in e for e in validate_chrome_trace(open_root))


def test_validator_flags_stage_escaping_root():
    doc = {"traceEvents": [
        {"ph": "X", "name": "rsa_priv", "pid": 0, "tid": 0, "ts": 0.0,
         "dur": 1.0, "args": {"trace_id": 7, "status": "ok"}},
        {"ph": "X", "name": "queue", "pid": 0, "tid": 0, "ts": 0.5,
         "dur": 5.0, "args": {"trace_id": 7}}]}
    assert any("escapes root" in e for e in validate_chrome_trace(doc))
