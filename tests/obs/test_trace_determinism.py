"""Trace-export determinism: the exported Chrome trace is part of the
simulation's deterministic output — two runs from the same seed must
produce byte-identical files (the regression the paper's replayable
methodology depends on)."""

import json

import pytest

from repro.bench.runner import Testbed, Windows
from repro.obs import export_chrome_trace, validate_chrome_trace

SMOKE = Windows(warmup=0.02, measure=0.04)


def _export(path, *, seed=7, workers=1, **kw):
    bed = Testbed("QTLS", workers=workers, seed=seed, trace=True, **kw)
    bed.add_s_time_fleet(n_clients=40)
    bed.run_window(SMOKE)
    n = export_chrome_trace(bed.tracer, str(path))
    return bed, n


@pytest.mark.parametrize("kw", [
    {},                              # unbatched QTLS (the backends smoke)
    {"qat_batch_size": 8},           # coalesced submission
    {"offload_backend": "remote"},   # RPC backend
    {"workers": 2, "qat_instance_policy": "shared"},
    {"workers": 2, "qat_instance_policy": "dynamic",
     "qat_instances_per_worker": 2},
    {"offload_admission_limit": 16},
], ids=["qat", "qat-batched", "remote", "pool-shared", "pool-dynamic",
        "admission"])
def test_same_seed_exports_are_byte_identical(tmp_path, kw):
    bed_a, n_a = _export(tmp_path / "a.json", **kw)
    bed_b, n_b = _export(tmp_path / "b.json", **kw)
    raw_a = (tmp_path / "a.json").read_bytes()
    raw_b = (tmp_path / "b.json").read_bytes()
    assert n_a == n_b > 1000  # a real run, not an empty trace
    assert raw_a == raw_b     # byte-for-byte, not just semantically
    assert bed_a.metrics.handshakes == bed_b.metrics.handshakes
    doc = json.loads(raw_a)
    assert validate_chrome_trace(doc) == []
    assert doc["otherData"]["ops_closed"] == bed_a.tracer.ops_closed


def test_different_seeds_export_different_traces(tmp_path):
    _export(tmp_path / "a.json", seed=7)
    _export(tmp_path / "b.json", seed=8)
    assert ((tmp_path / "a.json").read_bytes()
            != (tmp_path / "b.json").read_bytes())


def test_export_excludes_open_traces(tmp_path):
    bed, _ = _export(tmp_path / "a.json")
    doc = json.loads((tmp_path / "a.json").read_text())
    exported = {e["args"]["trace_id"] for e in doc["traceEvents"]
                if e["ph"] == "X"}
    open_ids = set(bed.tracer.open)
    assert not exported & open_ids
    assert doc["otherData"]["ops_open_at_export"] == len(open_ids)
