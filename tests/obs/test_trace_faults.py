"""Fault-path tracing: ops degraded by injected faults must terminate
their span trees with the right status (timeout for lost responses,
failover for corruption / exhausted submit paths) and never leak open
spans."""

import json

from repro.bench.runner import Testbed, Windows
from repro.obs import SpanStatus, validate_chrome_trace
from repro.obs.export import chrome_trace_events
from repro.testing import make_job, make_qat_env, rsa_call

from .test_span_invariants import assert_well_formed


def _traced_submit(env, job):
    """Open a trace for ``job`` the way the SSL driver does."""
    call = rsa_call()
    job.trace = env.tracer.begin(call.op, 5, 0, job.kind, env.sim.now)
    return call


# -- engine-level status stamping ---------------------------------------------

def test_lost_response_terminates_trace_as_timeout():
    env = make_qat_env(trace=True, plan_kw=dict(response_loss=1.0),
                       request_deadline=1e-3)
    sim, eng = env.sim, env.engine
    job = make_job(paused_on=rsa_call())

    def proc(sim):
        call = _traced_submit(env, job)
        yield from eng.submit_async(call, job, owner="w")
        yield sim.timeout(2e-3)
        yield from eng.check_timeouts(owner="w")

    sim.process(proc(sim))
    sim.run()
    trace = job.trace
    assert trace.status == SpanStatus.TIMEOUT  # stamped at delivery
    assert "accepted" in trace.marks           # it did reach the ring
    assert "delivered" in trace.marks          # failure was delivered
    assert "landed" not in trace.marks         # the response never came
    env.tracer.finish(trace, sim.now)          # SSL driver's close
    assert trace.status == SpanStatus.TIMEOUT  # close keeps the stamp
    assert env.tracer.by_status == {SpanStatus.TIMEOUT: 1}
    assert not env.tracer.open


def test_corrupted_response_terminates_trace_as_failover():
    env = make_qat_env(trace=True, plan_kw=dict(corruption=1.0))
    sim, eng = env.sim, env.engine
    job = make_job(paused_on=rsa_call())

    def proc(sim):
        call = _traced_submit(env, job)
        yield from eng.submit_async(call, job, owner="w")
        while not job.response_ready:
            yield from eng.poll_and_dispatch(owner="w")
            yield sim.timeout(10e-6)

    sim.process(proc(sim))
    sim.run()
    trace = job.trace
    assert trace.status == SpanStatus.FAILOVER
    # The device stamps survive: the op really traversed the card.
    assert {"accepted", "dequeued", "landed", "delivered"} <= set(trace.marks)
    env.tracer.finish(trace, sim.now)
    assert trace.status == SpanStatus.FAILOVER


def test_blocking_outage_trace_closes_as_timeout():
    env = make_qat_env(trace=True, plan_kw=dict(outages=((0, 0.0, 1.0),)),
                       submit_max_retries=4)
    sim, eng = env.sim, env.engine
    out = {}

    def proc(sim):
        out["r"] = yield from eng.execute_blocking(rsa_call(), owner="w")

    sim.process(proc(sim))
    sim.run()
    assert out["r"] == "sig"  # software fallback still served the op
    assert env.tracer.by_status == {SpanStatus.TIMEOUT: 1}
    (trace,) = env.tracer.traces
    assert trace.kind == "blocking"
    assert "accepted" not in trace.marks  # the card never admitted it


# -- full-stack faulted run ----------------------------------------------------

def test_faulted_run_traces_every_degraded_op(tmp_path):
    bed = Testbed("QTLS", workers=1, seed=11, trace=True,
                  fault_plan=dict(response_loss=0.02, corruption=0.02),
                  qat_request_deadline=2e-3)
    bed.add_s_time_fleet(n_clients=40)
    bed.run_window(Windows(warmup=0.02, measure=0.04))
    tracer = bed.tracer
    assert_well_formed(tracer)
    # The injected faults surface as terminal statuses, not lost spans.
    assert tracer.by_status.get(SpanStatus.OK, 0) > 100
    assert tracer.by_status.get(SpanStatus.TIMEOUT, 0) > 0
    assert tracer.by_status.get(SpanStatus.FAILOVER, 0) > 0
    degraded = [t for t in tracer.traces
                if t.status in (SpanStatus.TIMEOUT, SpanStatus.FAILOVER)]
    for t in degraded:
        assert "delivered" in t.marks  # the job was resumed regardless
    # No leaks: open traces are exactly the ops still in flight.
    assert tracer.ops_started == tracer.ops_closed + len(tracer.open)
    # Draining the horizon leftovers closes everything as aborted.
    for t in list(tracer.open.values()):
        tracer.abort_open(t, bed.sim.now)
    assert not tracer.open
    assert tracer.ops_closed == tracer.ops_started
    doc = json.loads(json.dumps(
        {"traceEvents": chrome_trace_events(tracer)}))
    assert validate_chrome_trace(doc) == []


def test_faulted_run_replays_bit_for_bit():
    def statuses():
        bed = Testbed("QTLS", workers=1, seed=11, trace=True,
                      fault_plan=dict(response_loss=0.05),
                      qat_request_deadline=2e-3)
        bed.add_s_time_fleet(n_clients=40)
        bed.run_window(Windows(warmup=0.02, measure=0.04))
        return (dict(bed.tracer.by_status),
                [t.as_dict() for t in bed.tracer.traces])

    assert statuses() == statuses()
