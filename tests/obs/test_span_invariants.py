"""Span-tree well-formedness over live runs.

Every closed trace from a real testbed run must be a well-formed span
tree: exactly one root, stage children nested inside it, no negative
durations, stage durations summing to at most the root wall time, and
checkpoint marks monotone in pipeline order. The invariants are checked
against the paper-shaped experiment smokes (fig7 config sweep shapes,
the backends comparison shapes, and a faulted run).
"""

import json

import pytest

from repro.bench.runner import Testbed, Windows
from repro.obs import MARK_ORDER, SpanStatus, validate_chrome_trace
from repro.obs.export import chrome_trace_events

#: Floating-point slack for sums of exact simulated timestamps.
EPS = 1e-9

SMOKE = Windows(warmup=0.02, measure=0.04)


def run_traced(config, *, seed=7, n_clients=40, **kw):
    bed = Testbed(config, workers=1, seed=seed, trace=True, **kw)
    bed.add_s_time_fleet(n_clients=n_clients)
    bed.run_window(SMOKE)
    return bed


def assert_well_formed(tracer):
    """The tentpole invariants, over every closed trace."""
    assert tracer.ops_closed == len(tracer.traces)
    assert tracer.ops_started == tracer.ops_closed + len(tracer.open)
    for trace in tracer.traces:
        spans = trace.spans()
        root, stages = spans[0], spans[1:]
        # Exactly one root span covering the whole op lifetime.
        assert root.parent is None
        assert root.start == trace.created
        assert root.end == trace.finished
        assert all(s.parent == root.name for s in stages)
        # No negative durations, children nested within the root.
        assert root.duration >= 0.0
        for s in stages:
            assert s.duration >= 0.0, (trace, s)
            assert s.start >= root.start - EPS, (trace, s)
            assert s.end <= root.end + EPS, (trace, s)
        # Stage durations sum to <= the root wall time.
        assert sum(s.duration for s in stages) <= root.duration + EPS, trace
        # Marks are monotone in pipeline order and inside the lifetime.
        recorded = [trace.marks[m] for m in MARK_ORDER if m in trace.marks]
        assert recorded == sorted(recorded), trace
        if recorded:
            assert trace.created <= recorded[0]
            assert recorded[-1] <= trace.finished
        # Closed means terminal.
        assert trace.status in SpanStatus.TERMINAL, trace
    for trace in tracer.open.values():
        assert not trace.closed


@pytest.mark.parametrize("config,kw", [
    ("QTLS", {}),                          # fig7's async framework config
    ("QTLS", {"qat_batch_size": 8}),       # coalesced submission path
    ("QAT+S", {}),                         # blocking offload (jobless ops)
    ("QAT+A", {}),                         # timer-polled async
    ("QTLS", {"offload_backend": "remote"}),  # backends experiment shape
])
def test_span_trees_well_formed_across_configs(config, kw):
    bed = run_traced(config, **kw)
    tracer = bed.tracer
    assert tracer.ops_closed > 100  # the run actually offloaded
    assert_well_formed(tracer)
    # The export of this run is schema-valid after a JSON round-trip.
    doc = json.loads(json.dumps({"traceEvents": chrome_trace_events(tracer)}))
    assert validate_chrome_trace(doc) == []


def test_qtls_traces_cover_the_async_pipeline_stages():
    tracer = run_traced("QTLS").tracer
    stages = {s.name for t in tracer.traces for s in t.spans()[1:]}
    assert {"queue", "ring", "engine-service", "poll-delay",
            "resume"} <= stages
    ok = [t for t in tracer.traces if t.status == SpanStatus.OK]
    assert len(ok) == len(tracer.traces)  # clean run: everything OK
    assert all(t.backend == "qat" for t in ok)
    assert all(t.worker_id >= 0 and t.conn_id >= 0 for t in ok)


def test_batched_run_records_batch_wait_on_every_op():
    tracer = run_traced("QTLS", qat_batch_size=8).tracer
    waits = [t for t in tracer.traces
             if "batch-wait" in t.stage_durations()]
    assert len(waits) == len(tracer.traces)  # every op coalesced
    assert any(t.stage_durations()["batch-wait"] > 0 for t in waits)


def test_blocking_config_traces_are_jobless():
    tracer = run_traced("QAT+S", n_clients=16).tracer
    assert tracer.ops_closed > 0
    assert all(t.kind == "blocking" for t in tracer.traces)
    assert all(t.conn_id == -1 and t.worker_id == -1
               for t in tracer.traces)


def test_device_utilization_timelines_recorded():
    tracer = run_traced("QTLS").tracer
    engines = [tl for name, tl in tracer.timelines.items()
               if name.endswith(".engines")]
    inflight = [tl for name, tl in tracer.timelines.items()
                if name.endswith(".inflight")]
    assert engines and inflight
    for tl in engines + inflight:
        assert tl.capacity > 0
        assert tl.peak <= tl.capacity
        assert 0.0 <= tl.utilization(SMOKE.warmup, SMOKE.end) <= 1.0
    # The accelerator did real work during the measured window.
    assert any(tl.peak > 0 for tl in engines)


def test_stage_histograms_match_span_counts():
    tracer = run_traced("QTLS").tracer
    total = tracer.histograms[("qat", "total")]
    assert total.count == tracer.ops_closed
    stage_count = sum(h.count for (b, s), h in tracer.histograms.items()
                      if s != "total")
    assert stage_count == tracer.spans_closed - tracer.ops_closed
    summary = tracer.stage_summary()
    assert "qat/total" in summary and "qat/engine-service" in summary


def test_sampled_run_traces_a_subset_without_perturbing_the_sim():
    full = run_traced("QTLS", seed=7)
    sampled = run_traced("QTLS", seed=7, trace_sample_rate=0.25)
    # Sampling changes only what is recorded, never the simulation.
    assert sampled.metrics.handshakes == full.metrics.handshakes
    t = sampled.tracer
    assert t.sampled_out > 0
    assert t.ops_started + t.sampled_out == full.tracer.ops_started
    assert_well_formed(t)
