"""Property-based tests for :class:`repro.offload.scheduler.ClassScheduler`.

Three properties the unit tests in ``test_scheduler.py`` spot-check at
fixed points, here driven across randomly generated command sequences:

1. ``fifo`` policy over per-class lanes is *extensionally equal* to a
   single min-seq FIFO queue — including ``push_front`` restores, which
   keep their original sequence number.
2. Weighted-fair (DRR) never starves a lane that has eligible work: the
   number of consecutive pops that bypass a non-empty lane is bounded
   by the sum of the other lanes' weights.
3. Per-connection budgets *skip*, never *block*: whenever any queued
   entry's connection has budget headroom a pop must produce one, and
   the skipping never reorders a connection's own ops.

Hypothesis shrinks any counterexample to a minimal command sequence,
and ``derandomize=True`` keeps tier-1 runs reproducible.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.crypto.ops import OpCategory  # noqa: E402
from repro.offload.scheduler import ClassScheduler  # noqa: E402

CATEGORIES = (OpCategory.ASYM, OpCategory.PRF, OpCategory.CIPHER)

DETERMINISTIC = settings(max_examples=120, deadline=None,
                         derandomize=True)


class Entry:
    """Minimal stand-in for the engine's _QueuedOp: the scheduler only
    needs ``deadline``, ``conn`` and a writable ``seq``."""

    __slots__ = ("deadline", "conn", "seq", "category")

    def __init__(self, deadline: float, conn=None,
                 category: OpCategory = OpCategory.ASYM) -> None:
        self.deadline = deadline
        self.conn = conn
        self.seq = -1
        self.category = category

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Entry seq={self.seq} conn={self.conn} " \
               f"cat={self.category.name}>"


# ---------------------------------------------------------------------------
# Property 1: fifo == one min-seq queue (bit-for-bit, incl. push_front)
# ---------------------------------------------------------------------------

# Command alphabet: push on a random lane, pop, or restore the most
# recently popped entry (ring-backpressure requeue).
_FIFO_CMD = st.one_of(
    st.tuples(st.just("push"), st.sampled_from(CATEGORIES)),
    st.just(("pop",)),
    st.just(("restore",)),
)


@DETERMINISTIC
@given(st.lists(_FIFO_CMD, max_size=80))
def test_fifo_policy_equals_single_min_seq_queue(cmds):
    sched = ClassScheduler(policy="fifo")
    model = []          # queued entries, sorted by seq
    restorable = []     # popped entries eligible for push_front
    clock = 0           # engine deadlines are arrival-ordered
    for cmd in cmds:
        if cmd[0] == "push":
            clock += 1
            entry = Entry(deadline=float(clock), category=cmd[1])
            sched.push(entry, cmd[1])
            model.append(entry)          # seq stamped in push order
        elif cmd[0] == "pop":
            got = sched.pop()
            expect = model.pop(0) if model else None
            assert got is expect, \
                f"fifo pop returned {got!r}, single queue says {expect!r}"
            if got is not None:
                restorable.append(got)
        elif restorable:                 # restore
            entry = restorable.pop()
            sched.push_front(entry, entry.category)
            # Original seq retained: reinsert at the model position the
            # seq dictates (the front, for the most recent pop).
            model.append(entry)
            model.sort(key=lambda e: e.seq)
    # Drain: the tail must come out in global arrival order too.
    while model:
        assert sched.pop() is model.pop(0)
    assert sched.pop() is None
    assert sched.queued == 0


# ---------------------------------------------------------------------------
# Property 2: DRR never starves an active lane
# ---------------------------------------------------------------------------

@DETERMINISTIC
@given(
    weights=st.tuples(st.integers(1, 6), st.integers(1, 6),
                      st.integers(1, 6)),
    depths=st.tuples(st.integers(0, 25), st.integers(0, 25),
                     st.integers(0, 25)),
)
def test_drr_bypass_of_nonempty_lane_is_bounded(weights, depths):
    names = ("handshake-asym", "prf", "record-cipher")
    sched = ClassScheduler(policy="weighted-fair",
                           weights=dict(zip(names, weights)))
    clock = 0
    for cat, depth in zip(CATEGORIES, depths):
        for _ in range(depth):
            clock += 1
            sched.push(Entry(deadline=float(clock), category=cat), cat)
    total_weight = sum(weights)
    bypassed = {name: 0 for name in names}
    while sched.queued:
        nonempty = {lane.name for lane in sched.lanes if lane.depth}
        item = sched.pop()
        assert item is not None, "pop() blocked with work queued"
        served = item.category.sched_class
        for name in nonempty:
            if name == served:
                bypassed[name] = 0
            else:
                bypassed[name] += 1
                lane_weight = sched.lane(name).weight
                bound = total_weight - lane_weight
                assert bypassed[name] <= bound, \
                    f"lane {name} bypassed {bypassed[name]}x " \
                    f"(> sum of other weights {bound}) while non-empty"
    assert sched.pop() is None


# ---------------------------------------------------------------------------
# Property 3: conn budgets skip, never block, never reorder a connection
# ---------------------------------------------------------------------------

_BUDGET_CMD = st.one_of(
    st.tuples(st.just("push"), st.sampled_from(CATEGORIES),
              st.integers(0, 3)),
    st.just(("pop",)),
    st.tuples(st.just("release"), st.integers(0, 7)),
)


@DETERMINISTIC
@given(
    policy=st.sampled_from(("fifo", "strict-priority", "weighted-fair")),
    budget=st.integers(1, 3),
    cmds=st.lists(_BUDGET_CMD, max_size=80),
)
def test_conn_budget_skips_without_blocking_or_reordering(
        policy, budget, cmds):
    sched = ClassScheduler(policy=policy, conn_budget=budget)
    clock = 0
    inflight = []                 # entries holding a budget slot
    popped_by_conn = {}           # conn -> [seq, ...] in pop order
    popped_by_conn_lane = {}      # (conn, lane) -> [seq, ...]
    for cmd in cmds:
        if cmd[0] == "push":
            clock += 1
            entry = Entry(deadline=float(clock), conn=cmd[2],
                          category=cmd[1])
            sched.push(entry, cmd[1])
        elif cmd[0] == "pop":
            had_headroom = any(
                sched.conn_allows(e.conn) for e in sched.items())
            got = sched.pop()
            if had_headroom:
                assert got is not None, \
                    "pop() returned None with eligible work queued " \
                    "(budget blocked instead of skipping)"
            else:
                assert got is None
            if got is not None:
                # The engine admits the op: charge the budget.
                assert sched.conn_allows(got.conn), \
                    "pop() returned an op from an at-budget connection"
                sched.conn_acquire(got.conn)
                inflight.append(got)
                popped_by_conn.setdefault(got.conn, []).append(got.seq)
                popped_by_conn_lane.setdefault(
                    (got.conn, got.category.sched_class),
                    []).append(got.seq)
        elif inflight:            # release
            entry = inflight.pop(cmd[1] % len(inflight))
            sched.conn_release(entry.conn)
    # Budget cap held at every instant.
    assert sched.conn_peak <= budget
    # Within one lane, a connection's ops leave in arrival order no
    # matter how often the budget skipped over them.
    for (conn, lane), seqs in popped_by_conn_lane.items():
        assert seqs == sorted(seqs), \
            f"conn {conn} reordered within lane {lane}: {seqs}"
    if policy == "fifo":
        # fifo's min-seq arbitration makes the guarantee global: a
        # connection's ops leave in arrival order across *all* lanes.
        for conn, seqs in popped_by_conn.items():
            assert seqs == sorted(seqs), \
                f"conn {conn} popped out of order under fifo: {seqs}"
