"""Remote-accelerator backend tests: the same asynchronous engine
drives a network-attached crypto service over repro.net links."""

from repro.core.costmodel import CostModel
from repro.cpu import Core
from repro.crypto.ops import CryptoOp, CryptoOpKind
from repro.net.link import Link
from repro.offload.backend import OpSpec
from repro.offload.engine import AsyncOffloadEngine
from repro.offload.remote import (RemoteAcceleratorBackend,
                                  RemoteCryptoService)
from repro.sim import Simulator
from repro.ssl.async_job import FiberAsyncJob
from repro.tls.actions import CryptoCall


def rsa_call(result="sig"):
    return CryptoCall(CryptoOp(CryptoOpKind.RSA_PRIV, rsa_bits=2048),
                      compute=lambda: result)


def _job():
    return FiberAsyncJob(lambda: iter(()), kind="handshake")


def make_env(window=256, n_processors=2):
    sim = Simulator()
    core = Core(sim, 0)
    service = RemoteCryptoService(sim, n_processors=n_processors)
    backend = RemoteAcceleratorBackend(
        sim, service,
        tx_link=Link(sim, latency=20e-6, bandwidth_bps=25e9, name="tx"),
        rx_link=Link(sim, latency=20e-6, bandwidth_bps=25e9, name="rx"),
        window=window)
    eng = AsyncOffloadEngine(backend, core, CostModel())
    return sim, core, backend, eng


def test_remote_roundtrip_through_engine():
    sim, core, backend, eng = make_env()
    job = _job()
    got = {}

    def proc(sim):
        job.mark_paused(rsa_call("remote-sig"))
        ok = yield from eng.submit_async(rsa_call("remote-sig"), job,
                                         owner="w")
        assert ok
        while True:
            jobs = yield from eng.poll_and_dispatch(owner="w")
            if jobs:
                got["jobs"] = jobs
                return
            yield sim.timeout(10e-6)

    sim.process(proc(sim))
    sim.run()
    assert got["jobs"] == [job]
    assert job.take_resume() == ("remote-sig", None)
    assert eng.ops_offloaded == 1
    assert eng.inflight.total == 0
    assert backend.service.requests_served == 1
    # The round trip paid the link latency both ways plus service time.
    assert sim.now > 2 * 20e-6


def test_window_exhaustion_rejects_like_a_full_ring():
    sim, core, backend, eng = make_env(window=1)
    specs = [OpSpec(rsa_call(f"r{i}").op, lambda i=i: f"r{i}")
             for i in range(2)]
    tokens = backend.submit_batch(specs, lane=0)
    assert tokens[0] is not None and tokens[1] is None
    assert backend.stats.submit_failures == 1
    assert backend.capacity_hint() == 0

    # Driven through the engine, a rejected submit also shows up in the
    # engine-local counter (per-worker: pooled lanes are shared, so the
    # engine no longer sums lane counters).
    job = _job()
    job.mark_paused(rsa_call("r2"))

    def proc(sim):
        ok = yield from eng.submit_async(rsa_call("r2"), job, owner="w")
        assert not ok

    sim.process(proc(sim))
    sim.run()
    assert eng.submit_failures == 1
    assert job.submit_attempts == 1


def test_one_rpc_per_batch():
    sim, core, backend, eng = make_env()
    specs = [OpSpec(rsa_call().op, lambda: "x") for _ in range(5)]
    backend.submit_batch(specs, lane=0)
    assert backend.batches_sent == 1
    assert backend.outstanding == 5
    sim.run()
    assert backend.outstanding == 0
    assert len(backend.poll_completions()) == 5


def test_remote_testbed_run_replays_bit_for_bit():
    from repro.bench.runner import Testbed, Windows

    def run():
        bed = Testbed("QTLS", workers=1, seed=7,
                      offload_backend="remote", qat_batch_size=4)
        bed.add_s_time_fleet(n_clients=40)
        bed.run_window(Windows(warmup=0.02, measure=0.04))
        return bed

    a, b = run(), run()
    assert a.metrics.errors == 0
    assert a.metrics.cps(0.02, 0.06) > 0
    eng = a.server.workers[0].engine
    assert eng.backend.name == "remote"
    assert eng.ops_offloaded > 0
    assert a.metrics.handshakes == b.metrics.handshakes
