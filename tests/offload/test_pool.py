"""The shared QAT instance pool (``repro.offload.pool``): allocation
policies, lease migration with hysteresis, ownership-routed completion
delivery, and the pooled backend's admission surface."""

import pytest

from repro.offload.backend import OpSpec
from repro.offload.pool import (ARBITRATION_CPU_COST, DynamicPolicy,
                                InstancePool, PooledQatBackend,
                                SharedPolicy, StaticPolicy, make_policy)
from repro.offload.qat_backend import QatBackend
from repro.qat.device import QatDevice
from repro.qat.driver import QatUserspaceDriver
from repro.sim.kernel import Simulator
from repro.testing import rsa_call


def spec(result="sig", rsa_bits=2048):
    call = rsa_call(result, rsa_bits=rsa_bits)
    return OpSpec(op=call.op, compute=call.compute)


def make_pool(n_workers=2, n_instances=4, policy=None, n_endpoints=3):
    sim = Simulator()
    dev = QatDevice(sim, n_endpoints=n_endpoints)
    drivers = [QatUserspaceDriver(inst)
               for inst in dev.allocate_instances(n_instances)]
    pool = InstancePool(sim, drivers, n_workers,
                        policy if policy is not None else StaticPolicy())
    return sim, pool


# -- policies ---------------------------------------------------------------

def test_static_leases_are_consecutive_chunks():
    assert StaticPolicy().initial_leases(2, 4) == [[0, 1], [2, 3]]
    assert StaticPolicy().initial_leases(4, 4) == [[0], [1], [2], [3]]


def test_shared_leases_wrap_the_whole_pool():
    # Each worker's round-robin starts at its static chunk so light
    # load does not pile every worker onto lane 0.
    assert SharedPolicy().initial_leases(2, 4) == [[0, 1, 2, 3],
                                                  [2, 3, 0, 1]]


def test_dynamic_starts_from_the_static_partition():
    assert (DynamicPolicy().initial_leases(2, 4)
            == StaticPolicy().initial_leases(2, 4))


@pytest.mark.parametrize("policy", [StaticPolicy(), SharedPolicy(),
                                    DynamicPolicy()])
def test_indivisible_pool_rejected(policy):
    with pytest.raises(ValueError, match="do not partition"):
        policy.initial_leases(3, 4)


def test_make_policy_resolves_names():
    assert isinstance(make_policy("static"), StaticPolicy)
    assert isinstance(make_policy("shared"), SharedPolicy)
    dyn = make_policy("dynamic", min_dwell=5e-3, pressure_gap=2.0)
    assert isinstance(dyn, DynamicPolicy)
    assert dyn.min_dwell == 5e-3 and dyn.pressure_gap == 2.0


def test_make_policy_rejects_unknown_names():
    with pytest.raises(ValueError, match="unknown instance policy"):
        make_policy("bogus")


def test_dynamic_policy_validates_hysteresis_knobs():
    with pytest.raises(ValueError, match="min_dwell"):
        DynamicPolicy(min_dwell=0)
    with pytest.raises(ValueError, match="pressure_gap"):
        DynamicPolicy(pressure_gap=0)


# -- pool construction / admission ------------------------------------------

def test_pool_constructor_validates():
    sim, pool = make_pool()
    with pytest.raises(ValueError, match="at least one worker"):
        InstancePool(sim, pool.drivers, 0, StaticPolicy())
    with pytest.raises(ValueError, match="at least one instance"):
        InstancePool(sim, [], 1, StaticPolicy())
    with pytest.raises(ValueError, match="out of range"):
        pool.register(2)


def test_register_returns_one_backend_per_worker():
    _, pool = make_pool()
    b0 = pool.register(0)
    assert pool.register(0) is b0
    assert isinstance(b0, PooledQatBackend) and b0.name == "qat"


def test_static_partition_admits_only_own_chunk():
    _, pool = make_pool(n_workers=2, n_instances=4)
    b0, b1 = pool.register(0), pool.register(1)
    assert [b0.admits(ln) for ln in range(4)] == [True, True, False, False]
    assert [b1.admits(ln) for ln in range(4)] == [False, False, True, True]
    # Unadmitted lanes reject the whole batch and advertise zero room.
    assert b0.submit_batch([spec(), spec()], lane=2) == [None, None]
    assert b0.capacity_hint(lane=2) == 0
    assert b0.capacity_hint(lane=0) > 0


def test_arbitration_cost_only_for_shared_leases():
    _, static_pool = make_pool(policy=StaticPolicy())
    _, shared_pool = make_pool(policy=SharedPolicy())
    base = static_pool.drivers[0].submit_cpu_cost(1)
    assert static_pool.register(0).submit_cpu_cost(1) == base
    assert (shared_pool.register(0).submit_cpu_cost(1)
            == base + ARBITRATION_CPU_COST)


# -- submission / completion routing ----------------------------------------

def test_submit_poll_round_trip():
    sim, pool = make_pool(n_workers=2, n_instances=4)
    b0 = pool.register(0)
    tokens = b0.submit_batch([spec("r0")], lane=0)
    assert tokens[0] is not None
    sim.run(until=0.05)
    got = b0.poll_completions()
    assert [c.result for c in got] == ["r0"]
    assert got[0].token is tokens[0]
    assert pool.routed_completions == 0


def test_static_pool_behaves_like_plain_backend():
    def run(make_backend):
        sim = Simulator()
        dev = QatDevice(sim, n_endpoints=2)
        drivers = [QatUserspaceDriver(inst)
                   for inst in dev.allocate_instances(2)]
        backend = make_backend(sim, drivers)
        for i in range(6):
            tokens = backend.submit_batch([spec(f"r{i}")], lane=i % 2)
            assert tokens[0] is not None
        sim.run(until=0.1)
        results = []
        while True:
            got = backend.poll_completions(2)
            if not got:
                break
            results.append([c.result for c in got])
        return results, [drv.submitted for drv in drivers]

    plain = run(lambda sim, drivers: QatBackend(drivers))
    pooled = run(lambda sim, drivers:
                 InstancePool(sim, drivers, 1, StaticPolicy()).register(0))
    assert pooled == plain


def test_shared_pool_lets_any_worker_use_any_lane():
    sim, pool = make_pool(n_workers=2, n_instances=4,
                          policy=SharedPolicy())
    b1 = pool.register(1)
    assert all(b1.admits(ln) for ln in range(4))
    tokens = b1.submit_batch([spec("x")], lane=0)
    assert tokens[0] is not None
    sim.run(until=0.05)
    assert [c.result for c in b1.poll_completions()] == ["x"]


# -- dynamic rebalancing ----------------------------------------------------

def pressured(pool, *values):
    for w, v in enumerate(values):
        pool.set_pressure_source(w, lambda v=v: float(v))


def test_rebalance_migrates_one_lane_toward_pressure():
    sim, pool = make_pool(policy=DynamicPolicy(min_dwell=1e-3,
                                               pressure_gap=4.0))
    pressured(pool, 0, 10)
    moves = pool.rebalance(now=1.0)
    # Worker 0 (idle) donates its least-busy lane to worker 1.
    assert moves == [(0, 0, 1)]
    assert pool.leases == [[1], [2, 3, 0]]
    assert pool.lease_counts() == [1, 3]
    assert pool.migrations == 1
    assert pool.migration_log == [(1.0, 0, 0, 1)]
    assert pool.lease_since(0) == 1.0
    assert not pool.admits(0, 0) and pool.admits(1, 0)


def test_rebalance_prefers_the_least_busy_lane():
    sim, pool = make_pool(policy=DynamicPolicy(min_dwell=1e-3,
                                               pressure_gap=4.0))
    b0 = pool.register(0)
    assert b0.submit_batch([spec()], lane=0)[0] is not None
    pressured(pool, 0, 10)
    # Lane 0 carries an in-flight op, so the idle lane 1 moves.
    assert pool.rebalance(now=1.0) == [(1, 0, 1)]


def test_rebalance_hysteresis():
    policy = DynamicPolicy(min_dwell=1.0, pressure_gap=4.0)
    sim, pool = make_pool(policy=policy)
    pressured(pool, 0, 10)
    # Leases younger than min_dwell stay put.
    assert pool.rebalance(now=0.5) == []
    # A pressure gap below the threshold never migrates.
    pressured(pool, 8, 10)
    assert pool.rebalance(now=2.0) == []


def test_donor_keeps_its_last_lease():
    sim, pool = make_pool(n_workers=2, n_instances=2,
                          policy=DynamicPolicy(min_dwell=1e-3,
                                               pressure_gap=1.0))
    pressured(pool, 0, 100)
    assert pool.rebalance(now=1.0) == []
    assert pool.lease_counts() == [1, 1]


def test_migration_routes_inflight_completions_to_owner():
    sim, pool = make_pool(policy=DynamicPolicy(min_dwell=1e-3,
                                               pressure_gap=4.0))
    b0, b1 = pool.register(0), pool.register(1)
    # Worker 0 loads lane 1 so the rebalance donates lane 0 — which
    # still carries worker 0's in-flight ops.
    assert b0.submit_batch([spec("mine")], lane=0)[0] is not None
    assert b0.submit_batch([spec("a"), spec("b")], lane=1) != [None, None]
    pressured(pool, 0, 10)
    assert pool.rebalance(now=1e-3) == [(0, 0, 1)]
    sim.run(until=0.05)
    # Worker 1 polls the migrated ring; the response is not its to
    # keep — it lands in worker 0's inbox instead.
    assert b1.poll_completions() == []
    assert pool.routed_completions == 1
    assert pool.inbox_depth(0) == 1
    results = {c.result for c in b0.poll_completions()}
    assert results == {"mine", "a", "b"}
    assert pool.inbox_depth(0) == 0


# -- introspection ----------------------------------------------------------

def test_snapshot_and_health():
    _, pool = make_pool(n_workers=2, n_instances=4,
                        policy=DynamicPolicy())
    snap = pool.snapshot()
    assert snap == {"policy": "dynamic", "instances": 4, "workers": 2,
                    "leases": [2, 2], "migrations": 0,
                    "routed_completions": 0, "epochs": [0, 0],
                    "tombstone_drops": 0}
    health = pool.register(0).health()
    assert health["backend"] == "qat"
    assert health["worker"] == 0 and health["leased"] == 2
    assert health["capacity_hint"] > 0


def test_backend_views_leased_drivers_but_global_lanes():
    _, pool = make_pool(n_workers=2, n_instances=4)
    b1 = pool.register(1)
    assert b1.lanes == 4
    assert b1.drivers == [pool.drivers[2], pool.drivers[3]]
    assert b1.lane_stats(0) is pool.drivers[0]


# -- lease epochs / retirement (worker lifecycle) ---------------------------

def healthy(pool, *values):
    for w, v in enumerate(values):
        pool.set_health_source(w, lambda v=v: bool(v))


def test_rebalance_skips_unhealthy_receivers():
    # Regression: a worker with an open circuit breaker must never be
    # chosen as the migration target, no matter how high its pressure.
    sim, pool = make_pool(policy=DynamicPolicy(min_dwell=1e-3,
                                               pressure_gap=4.0))
    pressured(pool, 0, 10)
    healthy(pool, 1, 0)  # worker 1 is pressured but broken
    assert pool.rebalance(now=1.0) == []
    # Once the breaker closes again, the same tick migrates.
    healthy(pool, 1, 1)
    assert pool.rebalance(now=2.0) == [(0, 0, 1)]


def test_rebalance_with_every_receiver_unhealthy_is_a_noop():
    sim, pool = make_pool(policy=DynamicPolicy(min_dwell=1e-3,
                                               pressure_gap=4.0))
    pressured(pool, 10, 10)
    healthy(pool, 0, 0)
    assert pool.rebalance(now=1.0) == []


def test_advance_epoch_rebinds_the_backend():
    _, pool = make_pool()
    b_old = pool.register(0)
    assert b_old.epoch == 0
    assert pool.advance_epoch(0) == 1
    b_new = pool.register(0)
    assert b_new is not b_old and b_new.epoch == 1
    assert pool.snapshot()["epochs"] == [1, 0]


def test_retired_epoch_stops_admitting_and_polling():
    sim, pool = make_pool()
    b_old = pool.register(0)
    pool.advance_epoch(0)
    b_new = pool.register(0)
    assert b_old.admits(0) and b_new.admits(0)
    pool.retire(0, 0)
    assert b_old.retired and not b_new.retired
    assert not b_old.admits(0) and b_new.admits(0)
    # A retired backend's submissions bounce and its polls are empty.
    assert b_old.submit_batch([spec("x")], lane=0) == [None]
    assert b_old.poll_completions() == []


def test_dead_epoch_completions_tombstone_not_misdeliver():
    # Ops submitted by epoch 0 complete after the incarnation died; the
    # successor (epoch 1) polls the same lanes and must never see them.
    sim, pool = make_pool()
    b_old = pool.register(0)
    assert b_old.submit_batch([spec("stale")], lane=0)[0] is not None
    pool.advance_epoch(0)
    pool.retire(0, 0)
    assert pool.dead_epoch_inflight() == 1
    b_new = pool.register(0)
    sim.run(until=0.05)
    assert b_new.poll_completions() == []
    assert pool.tombstone_drops == 1
    assert pool.tombstone_log == [(sim.now, 0, 0)]
    assert pool.dead_epoch_inflight() == 0


def test_retire_tombstones_parked_inbox_completions():
    # A completion already routed to the dead incarnation's inbox is
    # tombstoned at retire time, not delivered to anyone later.
    sim, pool = make_pool(policy=SharedPolicy())
    b0, b1 = pool.register(0), pool.register(1)
    assert b0.submit_batch([spec("w0-op")], lane=2)[0] is not None
    sim.run(until=0.05)
    # Worker 1 polls lane 2 first and parks w0's completion in its inbox.
    assert b1.poll_completions() == []
    assert pool.inbox_depth(0) == 1
    pool.retire(0, 0)
    assert pool.inbox_depth(0) == 0
    assert pool.tombstone_drops == 1


def test_reclaim_leases_donates_to_survivors_round_robin():
    sim, pool = make_pool(n_workers=2, n_instances=4)
    moves = pool.reclaim_leases(0)
    assert moves == [(0, 1), (1, 1)]
    assert pool.lease_counts() == [0, 4]
    assert pool.reclaimed == 2
    assert not pool.admits(0, 0) and pool.admits(1, 0)
    # Sole-survivor edge: nothing to donate to.
    sim2, pool2 = make_pool(n_workers=1, n_instances=2)
    assert pool2.reclaim_leases(0) == []


def test_retire_is_idempotent():
    _, pool = make_pool()
    pool.register(0)
    pool.advance_epoch(0)
    assert pool.retire(0, 0) == 0  # nothing in flight
    assert pool.retire(0, 0) == 0
    assert pool.is_retired(0, 0) and not pool.is_retired(0, 1)
