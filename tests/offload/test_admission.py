"""Per-worker admission control at the engine seam: once the in-flight
population hits ``admission_limit``, further ops wait in a FIFO
backpressure queue instead of bouncing off full rings, and freed
capacity re-admits them in arrival order."""

import pytest

from repro.testing import make_job, make_qat_env, rsa_call


def submit_all(env, pairs):
    """Drive submit_async for each (call, job) pair inside a sim
    process; returns the acceptance flags."""
    oks = []

    def proc(sim):
        for call, job in pairs:
            ok = yield from env.engine.submit_async(call, job, owner="w")
            oks.append(ok)

    p = env.sim.process(proc(env.sim))
    env.sim.run(until=p)
    return oks


def poll_once(env):
    """One poll_and_dispatch pass (which also drains the admission
    queue into freed capacity); runs the sim to quiescence afterwards
    so accepted ops complete on the device."""
    def proc(sim):
        jobs = yield from env.engine.poll_and_dispatch(owner="w")
        return jobs

    p = env.sim.process(proc(env.sim))
    env.sim.run()
    return p.value


def test_limit_validation():
    with pytest.raises(ValueError, match="admission limit"):
        make_qat_env(admission_limit=0)


def test_ops_beyond_the_cap_queue_instead_of_submitting():
    env = make_qat_env(admission_limit=2)
    pairs = [(c, make_job(paused_on=c))
             for c in (rsa_call(f"r{i}") for i in range(4))]
    # Every submission is accepted — the overflow just queues.
    assert submit_all(env, pairs) == [True] * 4
    eng = env.engine
    assert eng.ops_offloaded == 2
    assert eng.admission_queued == 2
    assert eng.admission_enqueued == 2
    assert eng.admission_peak == 2
    # Queued ops are NOT on the accelerator and must not count as
    # in flight (they would block their own admission).
    assert eng.inflight.total == 2
    assert env.drivers[0].submitted == 2


def test_freed_capacity_admits_in_fifo_order():
    env = make_qat_env(admission_limit=1)
    calls = [rsa_call(f"r{i}") for i in range(3)]
    jobs = [make_job(paused_on=c) for c in calls]
    assert submit_all(env, list(zip(calls, jobs))) == [True] * 3
    eng = env.engine
    assert eng.admission_queued == 2
    env.sim.run()  # let the in-flight op land before the first poll

    delivered = []
    for _ in range(3):
        delivered.extend(poll_once(env))
    # Completion order matches submission order: each freed slot
    # admitted the head of the queue, never the newest arrival.
    assert delivered == jobs
    assert eng.admission_queued == 0
    assert eng.admission_admitted == 2
    assert eng.ops_offloaded == 3
    assert eng.responses_dispatched == 3


def test_queue_expiry_fails_over_to_software():
    env = make_qat_env(admission_limit=1, request_deadline=2e-3)
    calls = [rsa_call("fast"), rsa_call("slow")]
    jobs = [make_job(paused_on=c) for c in calls]
    assert submit_all(env, list(zip(calls, jobs))) == [True] * 2
    eng = env.engine
    assert eng.admission_queued == 1

    # Nobody polls: both the in-flight op and the queued op outlive
    # the deadline.
    env.sim.run(until=0.01)

    def proc(sim):
        jobs = yield from eng.check_timeouts(owner="w")
        return jobs

    p = env.sim.process(proc(env.sim))
    env.sim.run()
    assert eng.admission_queued == 0
    assert eng.op_timeouts == 2
    # Software fallback completed both on the CPU; the jobs resumed.
    assert eng.ops_fallback == 2
    assert set(p.value) == set(jobs)


def test_admission_applies_before_ring_pressure():
    # Limit far below the ring capacity: the ring never fills, so no
    # submission is ever rejected — overload degrades into queueing.
    env = make_qat_env(admission_limit=4)
    pairs = [(c, make_job(paused_on=c))
             for c in (rsa_call(f"r{i}") for i in range(32))]
    assert all(submit_all(env, pairs))
    eng = env.engine
    assert eng.submit_failures == 0
    assert eng.admission_queued == 28
    assert env.drivers[0].in_flight <= 4
