"""Per-worker admission control at the engine seam: once the in-flight
population hits ``admission_limit``, further ops wait in a FIFO
backpressure queue instead of bouncing off full rings, and freed
capacity re-admits them in arrival order."""

import pytest

from repro.testing import make_job, make_qat_env, rsa_call


def submit_all(env, pairs):
    """Drive submit_async for each (call, job) pair inside a sim
    process; returns the acceptance flags."""
    oks = []

    def proc(sim):
        for call, job in pairs:
            ok = yield from env.engine.submit_async(call, job, owner="w")
            oks.append(ok)

    p = env.sim.process(proc(env.sim))
    env.sim.run(until=p)
    return oks


def poll_once(env):
    """One poll_and_dispatch pass (which also drains the admission
    queue into freed capacity); runs the sim to quiescence afterwards
    so accepted ops complete on the device."""
    def proc(sim):
        jobs = yield from env.engine.poll_and_dispatch(owner="w")
        return jobs

    p = env.sim.process(proc(env.sim))
    env.sim.run()
    return p.value


def test_limit_validation():
    with pytest.raises(ValueError, match="admission limit"):
        make_qat_env(admission_limit=0)


def test_ops_beyond_the_cap_queue_instead_of_submitting():
    env = make_qat_env(admission_limit=2)
    pairs = [(c, make_job(paused_on=c))
             for c in (rsa_call(f"r{i}") for i in range(4))]
    # Every submission is accepted — the overflow just queues.
    assert submit_all(env, pairs) == [True] * 4
    eng = env.engine
    assert eng.ops_offloaded == 2
    assert eng.admission_queued == 2
    assert eng.admission_enqueued == 2
    assert eng.admission_peak == 2
    # Queued ops are NOT on the accelerator and must not count as
    # in flight (they would block their own admission).
    assert eng.inflight.total == 2
    assert env.drivers[0].submitted == 2


def test_freed_capacity_admits_in_fifo_order():
    env = make_qat_env(admission_limit=1)
    calls = [rsa_call(f"r{i}") for i in range(3)]
    jobs = [make_job(paused_on=c) for c in calls]
    assert submit_all(env, list(zip(calls, jobs))) == [True] * 3
    eng = env.engine
    assert eng.admission_queued == 2
    env.sim.run()  # let the in-flight op land before the first poll

    delivered = []
    for _ in range(3):
        delivered.extend(poll_once(env))
    # Completion order matches submission order: each freed slot
    # admitted the head of the queue, never the newest arrival.
    assert delivered == jobs
    assert eng.admission_queued == 0
    assert eng.admission_admitted == 2
    assert eng.ops_offloaded == 3
    assert eng.responses_dispatched == 3


def test_queue_expiry_fails_over_to_software():
    env = make_qat_env(admission_limit=1, request_deadline=2e-3)
    calls = [rsa_call("fast"), rsa_call("slow")]
    jobs = [make_job(paused_on=c) for c in calls]
    assert submit_all(env, list(zip(calls, jobs))) == [True] * 2
    eng = env.engine
    assert eng.admission_queued == 1

    # Nobody polls: both the in-flight op and the queued op outlive
    # the deadline.
    env.sim.run(until=0.01)

    def proc(sim):
        jobs = yield from eng.check_timeouts(owner="w")
        return jobs

    p = env.sim.process(proc(env.sim))
    env.sim.run()
    assert eng.admission_queued == 0
    assert eng.op_timeouts == 2
    # Software fallback completed both on the CPU; the jobs resumed.
    assert eng.ops_fallback == 2
    assert set(p.value) == set(jobs)


def test_admission_applies_before_ring_pressure():
    # Limit far below the ring capacity: the ring never fills, so no
    # submission is ever rejected — overload degrades into queueing.
    env = make_qat_env(admission_limit=4)
    pairs = [(c, make_job(paused_on=c))
             for c in (rsa_call(f"r{i}") for i in range(32))]
    assert all(submit_all(env, pairs))
    eng = env.engine
    assert eng.submit_failures == 0
    assert eng.admission_queued == 28
    assert env.drivers[0].in_flight <= 4


# -- worker drain / crash teardown (lifecycle layer) ------------------------

def drain_once(env):
    """One engine.drain_queued pass inside a sim process."""
    def proc(sim):
        jobs = yield from env.engine.drain_queued(owner="w")
        return jobs

    p = env.sim.process(proc(env.sim))
    env.sim.run()
    return p.value


def test_drain_fails_over_admission_queued_ops():
    # Regression: queued-but-unsubmitted ops must fail over (and resume
    # their jobs) when the worker drains, not hang behind an
    # accelerator path nobody will keep feeding.
    env = make_qat_env(admission_limit=1)
    calls = [rsa_call(f"r{i}") for i in range(3)]
    jobs = [make_job(paused_on=c) for c in calls]
    assert submit_all(env, list(zip(calls, jobs))) == [True] * 3
    eng = env.engine
    assert eng.admission_queued == 2

    resumed = drain_once(env)
    assert resumed == jobs[1:]
    assert eng.admission_queued == 0
    assert eng.ops_drained == 2
    # Software fallback delivered results, not errors.
    assert eng.ops_fallback == 2
    assert all(j.response_ready for j in jobs[1:])
    # The op already on the accelerator is untouched; the engine is
    # idle only after it completes and is polled out.
    assert not eng.idle
    poll_once(env)
    assert eng.idle


def test_drain_fails_over_coalescing_queue():
    env = make_qat_env(batch_size=4, batch_timeout=1e-3)
    calls = [rsa_call(f"b{i}") for i in range(2)]
    jobs = [make_job(paused_on=c) for c in calls]
    assert submit_all(env, list(zip(calls, jobs))) == [True] * 2
    eng = env.engine
    assert eng.queued_batch_ops == 2
    assert eng.inflight.total == 2  # batched ops count as in flight

    resumed = drain_once(env)
    assert resumed == jobs
    assert eng.queued_batch_ops == 0
    assert eng.inflight.total == 0
    assert eng.ops_drained == 2 and eng.ops_fallback == 2
    assert eng.idle
    assert env.drivers[0].submitted == 0  # never reached the rings


def test_abort_all_empties_every_table_and_closes_traces():
    env = make_qat_env(admission_limit=2, trace=True)
    calls = [rsa_call(f"a{i}") for i in range(4)]
    jobs = []
    for c in calls:
        job = make_job(paused_on=c)
        job.trace = env.tracer.begin(c.op, conn_id=1, worker_id=0,
                                     kind="handshake", now=env.sim.now)
        jobs.append(job)
    assert submit_all(env, list(zip(calls, jobs))) == [True] * 4
    eng = env.engine
    assert eng.inflight.total == 2 and eng.admission_queued == 2

    aborted = eng.abort_all()
    assert aborted == 4 and eng.ops_aborted == 4
    assert eng.idle
    assert eng.inflight.total == 0 and eng.admission_queued == 0
    # Every open trace closed (ABORTED), none leaked, none double-closed.
    assert env.tracer.snapshot_counts()["trace_open"] == 0
    assert all(j.trace is None for j in jobs)

    # Late completions for the aborted in-flight ops surface on the
    # rings and are dropped as stale, never delivered to a dead job.
    env.sim.run()
    delivered = poll_once(env)
    assert delivered == []
    assert eng.responses_stale == 2


def test_abort_all_on_an_idle_engine_is_a_noop():
    env = make_qat_env()
    assert env.engine.abort_all() == 0
    assert env.engine.idle
