"""Class-aware offload scheduler: lane mapping, arbitration policies
(fifo / strict-priority / weighted-fair), deadline ordering within a
lane, and per-connection in-flight budgets."""

import pytest

from repro.crypto.ops import SCHED_CLASSES, OpCategory
from repro.offload.scheduler import (DEFAULT_WEIGHTS, SCHED_POLICIES,
                                     ClassScheduler)
from repro.testing import make_job, make_qat_env, rsa_call

ASYM, CIPHER, PRF = OpCategory.ASYM, OpCategory.CIPHER, OpCategory.PRF


class Call:
    """Just enough of a CryptoCall for flush_order bucketing."""

    class _Op:
        def __init__(self, category):
            self.category = category

    def __init__(self, category):
        self.op = self._Op(category)


class Item:
    """Just enough of an engine _QueuedOp for the scheduler."""

    def __init__(self, category, deadline=1.0, conn=None):
        self.call = Call(category)
        self.category = category
        self.deadline = deadline
        self.conn = conn
        self.seq = -1

    def __repr__(self):
        return f"Item({self.category.value}, seq={self.seq})"


def drain(s):
    out = []
    while True:
        item = s.pop()
        if item is None:
            return out
        out.append(item)


# -- class mapping -----------------------------------------------------------

def test_every_category_has_a_lane():
    assert set(SCHED_CLASSES) == set(OpCategory)
    assert ASYM.sched_class == "handshake-asym"
    assert CIPHER.sched_class == "record-cipher"
    assert PRF.sched_class == "prf"
    s = ClassScheduler()
    assert set(s.lane_depths()) == set(SCHED_CLASSES.values())


def test_validation():
    with pytest.raises(ValueError, match="policy"):
        ClassScheduler(policy="round-robin")
    with pytest.raises(ValueError, match="class"):
        ClassScheduler(weights={"bulk": 3})
    with pytest.raises(ValueError, match="weight"):
        ClassScheduler(weights={"prf": 0})
    with pytest.raises(ValueError, match="budget"):
        ClassScheduler(conn_budget=0)
    assert "fifo" in SCHED_POLICIES


# -- fifo: bit-for-bit the single queue --------------------------------------

def test_fifo_pops_in_global_arrival_order():
    s = ClassScheduler(policy="fifo")
    items = [Item(c) for c in (CIPHER, ASYM, CIPHER, PRF, ASYM, CIPHER)]
    for it in items:
        s.push(it, it.category)
    assert s.queued == 6
    assert drain(s) == items  # arrival order, classes interleaved


def test_fifo_push_front_restores_head():
    s = ClassScheduler(policy="fifo")
    items = [Item(c) for c in (CIPHER, ASYM, PRF)]
    for it in items:
        s.push(it, it.category)
    head = s.pop()
    assert head is items[0]
    s.push_front(head, head.category)  # ring-full requeue
    assert drain(s) == items           # original order intact


def test_items_and_remove():
    s = ClassScheduler()
    items = [Item(c) for c in (PRF, CIPHER, ASYM)]
    for it in items:
        s.push(it, it.category)
    assert s.items() == items
    assert items[1] in s
    assert s.remove(items[1])
    assert not s.remove(items[1])  # already gone
    assert s.items() == [items[0], items[2]]


def test_deadline_order_within_lane():
    s = ClassScheduler()
    late = Item(ASYM, deadline=2.0)
    later = Item(ASYM, deadline=3.0)
    urgent = Item(ASYM, deadline=1.0)
    for it in (late, later, urgent):
        s.push(it, ASYM)
    # The lane reorders by deadline; the urgent op jumps the queue.
    assert drain(s) == [urgent, late, later]


def test_constant_deadlines_keep_arrival_order():
    # Engine deadlines are enqueue-time + constant, i.e. monotone:
    # the deadline insert must degenerate to a pure append.
    s = ClassScheduler()
    items = [Item(ASYM, deadline=float(i)) for i in range(5)]
    for it in items:
        s.push(it, ASYM)
    assert drain(s) == items


# -- strict-priority ---------------------------------------------------------

def test_strict_priority_orders_lanes():
    s = ClassScheduler(policy="strict-priority")
    cipher, prf, asym = Item(CIPHER), Item(PRF), Item(ASYM)
    for it in (cipher, prf, asym):
        s.push(it, it.category)
    assert drain(s) == [asym, prf, cipher]


def test_strict_priority_starvation_fallback():
    threshold = 4
    s = ClassScheduler(policy="strict-priority",
                       starvation_threshold=threshold)
    starving = Item(CIPHER)
    s.push(starving, CIPHER)
    popped = []
    # A steady stream of high-priority arrivals: without the deficit
    # fallback the cipher op would never be served.
    for _ in range(threshold + 1):
        s.push(Item(ASYM), ASYM)
        popped.append(s.pop())
    assert starving in popped  # served despite constant pressure
    assert s.lane("record-cipher").starved == 1
    # Priority resumes once the deficit is repaid.
    s.push(Item(CIPHER), CIPHER)
    s.push(Item(ASYM), ASYM)
    assert s.pop().category == ASYM


# -- weighted-fair (DRR) -----------------------------------------------------

def test_weighted_fair_serves_in_weight_proportion():
    s = ClassScheduler(policy="weighted-fair",
                       weights={"handshake-asym": 3, "prf": 2,
                                "record-cipher": 1})
    for _ in range(30):
        s.push(Item(ASYM), ASYM)
        s.push(Item(PRF), PRF)
        s.push(Item(CIPHER), CIPHER)
    first = [s.pop().category for _ in range(12)]
    # Two full DRR rounds: 3 asym, 2 prf, 1 cipher each.
    assert first == [ASYM] * 3 + [PRF] * 2 + [CIPHER] \
        + [ASYM] * 3 + [PRF] * 2 + [CIPHER]


def test_weighted_fair_no_lane_starves():
    s = ClassScheduler(policy="weighted-fair")  # defaults 8/2/1
    for _ in range(44):
        s.push(Item(ASYM), ASYM)
    for _ in range(11):
        s.push(Item(CIPHER), CIPHER)
    served = [s.pop().category for _ in range(55)]
    # 4 full rounds of 8+1 plus the tail: cipher is served regularly,
    # roughly once per 8 asym ops, never pushed to the end.
    assert served.count(CIPHER) == 11
    assert CIPHER in served[:9]


def test_weighted_fair_idle_lane_forfeits_credit():
    s = ClassScheduler(policy="weighted-fair",
                       weights={"handshake-asym": 8})
    s.push(Item(CIPHER), CIPHER)
    assert s.pop().category == CIPHER  # alone -> full service
    # A lane that emptied does not bank credit for later bursts.
    assert s.lane("record-cipher").deficit == 0


def test_default_weights_cover_every_lane():
    assert set(DEFAULT_WEIGHTS) == set(SCHED_CLASSES.values())
    assert all(w >= 1 for w in DEFAULT_WEIGHTS.values())


# -- per-connection budgets --------------------------------------------------

def test_conn_budget_blocks_and_releases():
    s = ClassScheduler(conn_budget=1)
    assert s.conn_allows("c1")
    s.conn_acquire("c1")
    assert not s.conn_allows("c1")
    assert s.conn_allows("c2")
    blocked = Item(CIPHER, conn="c1")
    other = Item(CIPHER, conn="c2")
    s.push(blocked, CIPHER)
    s.push(other, CIPHER)
    # The budget-blocked head is skipped, not head-of-line blocking.
    assert s.pop() is other
    assert s.pop() is None  # only the blocked op remains
    s.conn_release("c1")
    assert s.pop() is blocked
    with pytest.raises(RuntimeError, match="underflow"):
        s.conn_release("c2")
        s.conn_release("c2")


def test_conn_budget_none_is_unbounded():
    s = ClassScheduler()
    for _ in range(100):
        s.conn_acquire("c1")  # no-ops without a budget
    assert s.conn_allows("c1")
    assert s.conn_inflight("c1") == 0


# -- flush ordering ----------------------------------------------------------

def test_flush_order_fifo_is_identity():
    s = ClassScheduler(policy="fifo")
    items = [Item(c) for c in (CIPHER, ASYM, PRF, CIPHER)]
    assert s.flush_order(items) == items


def test_flush_order_strict_priority_sorts_stably():
    s = ClassScheduler(policy="strict-priority")
    c1, a1, p1, c2, a2 = (Item(CIPHER), Item(ASYM), Item(PRF),
                          Item(CIPHER), Item(ASYM))
    assert s.flush_order([c1, a1, p1, c2, a2]) == [a1, a2, p1, c1, c2]


def test_flush_order_weighted_fair_interleaves():
    s = ClassScheduler(policy="weighted-fair",
                       weights={"handshake-asym": 2, "prf": 1,
                                "record-cipher": 1})
    a = [Item(ASYM) for _ in range(4)]
    c = [Item(CIPHER) for _ in range(4)]
    ordered = s.flush_order(c + a)
    # Per round: 2 asym then 1 cipher -> no class fills the batch head.
    assert ordered == [a[0], a[1], c[0], a[2], a[3], c[1], c[2], c[3]]


# -- counters ---------------------------------------------------------------

def test_lane_counters_and_snapshot():
    s = ClassScheduler(policy="strict-priority")
    for _ in range(3):
        s.push(Item(ASYM), ASYM)
    s.push(Item(CIPHER), CIPHER)
    s.pop()
    s.note_expired(CIPHER)
    snap = s.snapshot()
    assert snap["policy"] == "strict-priority"
    lanes = snap["lanes"]
    assert lanes["handshake-asym"]["enqueued"] == 3
    assert lanes["handshake-asym"]["served"] == 1
    assert lanes["handshake-asym"]["peak"] == 3
    assert lanes["record-cipher"]["expired"] == 1
    assert lanes["record-cipher"]["depth"] == 1


# -- engine integration ------------------------------------------------------

def submit_all(env, pairs):
    oks = []

    def proc(sim):
        for call, job in pairs:
            ok = yield from env.engine.submit_async(call, job, owner="w")
            oks.append(ok)

    p = env.sim.process(proc(env.sim))
    env.sim.run(until=p)
    return oks


def poll_once(env):
    def proc(sim):
        jobs = yield from env.engine.poll_and_dispatch(owner="w")
        return jobs

    p = env.sim.process(proc(env.sim))
    env.sim.run()
    return p.value


def test_engine_conn_budget_queues_excess_ops():
    env = make_qat_env(conn_budget=1)
    calls = [rsa_call(f"r{i}") for i in range(3)]
    jobs = [make_job(paused_on=c) for c in calls]
    for job in jobs:
        job.conn_id = 7  # all three ops from one connection
    assert submit_all(env, list(zip(calls, jobs))) == [True] * 3
    eng = env.engine
    # One op per connection on the accelerator; the rest wait.
    assert eng.inflight.total == 1
    assert eng.admission_queued == 2
    assert eng.scheduler.conn_inflight(7) == 1
    env.sim.run()
    delivered = []
    for _ in range(3):
        delivered.extend(poll_once(env))
    assert delivered == jobs  # budget released per completion, in order
    assert eng.admission_queued == 0
    assert eng.scheduler.conn_inflight(7) == 0


def test_engine_conn_budget_leaves_other_connections_alone():
    env = make_qat_env(conn_budget=1)
    calls = [rsa_call(f"r{i}") for i in range(2)]
    jobs = [make_job(paused_on=c) for c in calls]
    jobs[0].conn_id = 1
    jobs[1].conn_id = 2
    assert submit_all(env, list(zip(calls, jobs))) == [True] * 2
    assert env.engine.inflight.total == 2  # different conns: no queueing
    assert env.engine.admission_queued == 0


def test_engine_default_is_inactive_scheduler():
    env = make_qat_env()
    eng = env.engine
    assert eng.sched_policy == "fifo"
    assert not eng.sched_active
    assert not eng.queueing_enabled
    assert eng.scheduler.queued == 0
