"""Offload-backend seam tests: error types, the QAT adapter, and the
engine's submission batching (coalescing, flush triggers, flow
control, failover of queued ops)."""

import pytest

from repro.crypto.ops import OpCategory
from repro.testing import make_job, make_qat_env, rsa_call


def _job():
    return make_job(kind="handshake")


def make_env(n_instances=1, ring_capacity=64, **engine_kw):
    env = make_qat_env(n_instances=n_instances,
                       ring_capacity=ring_capacity, **engine_kw)
    return env.sim, env.core, env.engine


# -- error types ---------------------------------------------------------------

def test_ring_full_is_one_type_across_layers():
    import repro.engine
    import repro.offload as offload
    from repro.offload import errors
    from repro.qat import rings
    assert (rings.RingFull is errors.RingFull is repro.engine.RingFull
            is offload.RingFull)
    assert issubclass(errors.RingFull, errors.SubmitError)


# -- QAT backend adapter ----------------------------------------------------------

def test_qat_backend_needs_a_driver():
    from repro.offload.qat_backend import QatBackend
    with pytest.raises(ValueError, match="at least one driver"):
        QatBackend([])


def test_poll_rotation_is_starvation_free():
    """A bounded poll budget must not always drain instance 0 first."""
    sim, core, eng = make_env(n_instances=2)
    seen = []

    def proc(sim):
        for lane in (0, 1):
            job = _job()
            job.mark_paused(rsa_call(f"r{lane}"))
            yield from eng.submit_async(rsa_call(f"r{lane}"), job,
                                        owner="w")
        yield sim.timeout(5e-3)  # both responses landed
        for _ in range(2):
            for c in eng.backend.poll_completions(max_responses=1):
                seen.append(c.result)

    sim.process(proc(sim))
    sim.run()
    # Round-robin submission put one op on each lane; the rotating
    # poll start retrieves one per budget-1 poll, from both lanes.
    assert sorted(seen) == ["r0", "r1"]


def test_capacity_hint_is_lane_and_category_aware():
    sim, core, eng = make_env(ring_capacity=8)
    backend = eng.backend
    cap = backend.capacity_hint(lane=0, category=OpCategory.ASYM)
    assert cap == 8

    def proc(sim):
        job = _job()
        job.mark_paused(rsa_call())
        yield from eng.submit_async(rsa_call(), job, owner="w")

    sim.process(proc(sim))
    sim.run(until=1e-4)
    assert backend.capacity_hint(lane=0, category=OpCategory.ASYM) == 7
    assert backend.capacity_hint(lane=0, category=OpCategory.CIPHER) == 8
    # The unrestricted hint sums every ring.
    assert backend.capacity_hint() > 8


def test_coalesced_submit_cost_amortizes_doorbell():
    sim, core, eng = make_env()
    one = eng.backend.submit_cpu_cost(1)
    four = eng.backend.submit_cpu_cost(4)
    assert four < 4 * one
    assert four > one


# -- submission batching -------------------------------------------------------------

def test_batch_flushes_when_full():
    sim, core, eng = make_env(batch_size=4)
    jobs = [_job() for _ in range(4)]

    def proc(sim):
        for i, job in enumerate(jobs):
            job.mark_paused(rsa_call(f"r{i}"))
            ok = yield from eng.submit_async(rsa_call(f"r{i}"), job,
                                             owner="w")
            assert ok
            if i < 3:  # still coalescing
                assert eng.driver.submitted == 0
                assert eng.queued_batch_ops == i + 1

    sim.process(proc(sim))
    sim.run(until=1e-4)
    assert eng.driver.submitted == 4
    assert eng.queued_batch_ops == 0
    assert eng.batches_submitted == 1
    assert eng.batch_ops == 4
    assert eng.mean_batch_size == 4.0
    assert eng.inflight.total == 4  # queued ops stayed accounted


def test_partial_batch_flushes_on_timeout():
    sim, core, eng = make_env(batch_size=8, batch_timeout=50e-6)
    job = _job()

    def proc(sim):
        job.mark_paused(rsa_call())
        yield from eng.submit_async(rsa_call(), job, owner="w")
        assert eng.driver.submitted == 0  # parked in the queue

    sim.process(proc(sim))
    sim.run(until=40e-6)
    assert eng.driver.submitted == 0
    sim.run(until=5e-3)  # past batch_timeout: the flush timer fired
    assert eng.driver.submitted == 1
    assert eng.batches_submitted == 1


def test_flush_respects_ring_capacity():
    """The flush never overshoots the ring: no submit failures even
    when the batch exceeds the free slots."""
    sim, core, eng = make_env(ring_capacity=2, batch_size=4,
                              batch_timeout=20e-6)
    jobs = [_job() for _ in range(4)]

    def proc(sim):
        for i, job in enumerate(jobs):
            job.mark_paused(rsa_call(f"r{i}"))
            yield from eng.submit_async(rsa_call(f"r{i}"), job, owner="w")
        # Ring slots free on retrieval, so keep polling: the due-flush
        # inside poll_and_dispatch drains the queue into freed slots.
        while eng.inflight.total:
            yield from eng.poll_and_dispatch(owner="w")
            yield sim.timeout(100e-6)

    sim.process(proc(sim))
    sim.run(until=20e-3)
    assert eng.driver.submit_failures == 0
    assert eng.ops_offloaded == 4  # drained in capacity-sized chunks
    assert eng.submit_failures == 0


def test_is_pending_covers_queued_ops():
    sim, core, eng = make_env(batch_size=8)
    job = _job()

    def proc(sim):
        job.mark_paused(rsa_call())
        yield from eng.submit_async(rsa_call(), job, owner="w")
        assert eng.is_pending(job)  # queued, not yet submitted

    sim.process(proc(sim))
    sim.run(until=1e-5)
    assert eng.is_pending(job)


def test_queued_ops_fail_over_when_no_lane_admits():
    """Breakers open + queue ops stuck -> software fallback delivery."""
    sim, core, eng = make_env(batch_size=8, breaker_failure_threshold=1,
                              breaker_reset_timeout=10.0)
    eng.breakers[0].record_failure()  # opens the only lane's breaker
    job = _job()

    def proc(sim):
        job.mark_paused(rsa_call("hw"))
        yield from eng.submit_async(rsa_call("hw"), job, owner="w")

    sim.process(proc(sim))
    sim.run(until=50e-3)
    assert eng.ops_fallback == 1
    assert eng.inflight.total == 0
    assert job.response_ready
    value, exc = job.take_resume()
    assert exc is None and value == "hw"  # software path, good result


def test_batch_size_one_matches_legacy_submit():
    sim, core, eng = make_env(batch_size=1)
    job = _job()
    out = {}

    def proc(sim):
        job.mark_paused(rsa_call())
        out["ok"] = yield from eng.submit_async(rsa_call(), job, owner="w")

    sim.process(proc(sim))
    sim.run(until=1e-4)
    assert out["ok"]
    assert eng.driver.submitted == 1  # straight to the ring, no queue
    assert eng.queued_batch_ops == 0
    assert eng.batches_submitted == 1 and eng.batch_ops == 1


# -- end-to-end ---------------------------------------------------------------

def test_batched_testbed_run_replays_bit_for_bit():
    from repro.bench.runner import Testbed, Windows

    def run():
        bed = Testbed("QTLS", workers=1, seed=7, qat_batch_size=4)
        bed.add_s_time_fleet(n_clients=40)
        bed.run_window(Windows(warmup=0.02, measure=0.04))
        return bed

    a, b = run(), run()
    assert a.metrics.errors == 0
    assert a.metrics.cps(0.02, 0.06) > 0
    eng = a.server.workers[0].engine
    assert eng.mean_batch_size > 1.0
    assert a.metrics.handshakes == b.metrics.handshakes


# -- seeded submit-retry jitter ---------------------------------------------

def test_backoff_jitter_is_pure_and_seed_dependent():
    from repro.offload.engine import backoff_jitter_fraction
    # Pure: same (seed, attempts) -> same fraction, no state consumed.
    assert (backoff_jitter_fraction(42, 3)
            == backoff_jitter_fraction(42, 3))
    # In range and varying across attempts and seeds.
    fracs = [backoff_jitter_fraction(42, a) for a in range(1, 9)]
    assert all(0.0 <= f < 1.0 for f in fracs)
    assert len(set(fracs)) > 1
    assert (backoff_jitter_fraction(1, 1)
            != backoff_jitter_fraction(2, 1))


def test_submit_backoff_jittered_within_half_open_window():
    from repro.testing import make_qat_env
    plain = make_qat_env().engine
    jittered = make_qat_env(backoff_jitter_seed=1234).engine
    for attempts in range(1, 10):
        base = plain.submit_backoff(attempts)
        j = jittered.submit_backoff(attempts)
        # Jitter spreads retries into [base/2, base), never lengthens
        # the worst case and never collapses to zero.
        assert base / 2 <= j < base
        # Deterministic: replaying the same attempt gives the same wait.
        assert j == jittered.submit_backoff(attempts)


def test_unjittered_backoff_unchanged_without_seed():
    from repro.testing import make_qat_env
    eng = make_qat_env().engine
    assert eng.backoff_jitter_seed is None
    assert eng.submit_backoff(1) == eng.busy_poll_slice
    assert eng.submit_backoff(8) == 128 * eng.busy_poll_slice
