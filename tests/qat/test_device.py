"""Tests for the simulated QAT device: rings, engines, parallelism."""

import pytest

from repro.crypto.ops import CryptoOp, CryptoOpKind
from repro.qat import (QatDevice, QatUserspaceDriver, dh8970,
                       qat_service_time)
from repro.sim import Simulator


def rsa_op():
    return CryptoOp(CryptoOpKind.RSA_PRIV, rsa_bits=2048)


def make_driver(sim, **kw):
    dev = QatDevice(sim, n_endpoints=1, **kw)
    inst = dev.allocate_instances(1)[0]
    return dev, QatUserspaceDriver(inst)


def test_submit_and_poll_roundtrip():
    sim = Simulator()
    _, drv = make_driver(sim)
    assert drv.try_submit(rsa_op(), compute=lambda: "signature")
    sim.run()
    responses = drv.poll()
    assert len(responses) == 1
    assert responses[0].ok and responses[0].result == "signature"


def test_response_not_ready_before_service_time():
    sim = Simulator()
    _, drv = make_driver(sim)
    drv.try_submit(rsa_op(), compute=lambda: 1)
    service = qat_service_time(rsa_op())
    sim.run(until=service / 2)
    assert drv.poll() == []
    sim.run()
    assert len(drv.poll()) == 1


def test_completion_time_includes_pcie_and_pipeline_latency():
    from repro.qat import qat_pipeline_latency
    sim = Simulator()
    dev = QatDevice(sim, n_endpoints=1)
    inst = dev.allocate_instances(1)[0]
    drv = QatUserspaceDriver(inst)
    drv.try_submit(rsa_op(), compute=lambda: 1)
    sim.run()
    ep = dev.endpoints[0]
    expected = (qat_service_time(rsa_op()) + 2 * ep.pcie_latency
                + qat_pipeline_latency(rsa_op()))
    assert sim.now == pytest.approx(expected)


def test_single_engine_serializes():
    sim = Simulator()
    _, drv = make_driver(sim, engines_per_endpoint=1)
    for _ in range(3):
        drv.try_submit(rsa_op(), compute=lambda: 1)
    sim.run()
    # 3 sequential services; per request pcie in/out overlap is serial
    # on one engine.
    per = qat_service_time(rsa_op())
    assert sim.now >= 3 * per


def test_parallel_engines_overlap():
    """Concurrent requests from ONE instance use many engines: the
    parallelism claim of paper section 2.3."""
    from repro.qat import qat_pipeline_latency
    sim = Simulator()
    _, drv = make_driver(sim, engines_per_endpoint=8)
    for _ in range(8):
        drv.try_submit(rsa_op(), compute=lambda: 1)
    sim.run()
    per = qat_service_time(rsa_op()) + qat_pipeline_latency(rsa_op())
    assert sim.now < per + qat_service_time(rsa_op())  # ran in parallel


def test_ring_full_submission_fails():
    sim = Simulator()
    _, drv = make_driver(sim, ring_capacity=4)
    for i in range(4):
        assert drv.try_submit(rsa_op(), compute=lambda: i)
    assert not drv.try_submit(rsa_op(), compute=lambda: 99)
    assert drv.submit_failures == 1


def test_ring_slot_freed_after_retrieval():
    sim = Simulator()
    _, drv = make_driver(sim, ring_capacity=2)
    assert drv.try_submit(rsa_op(), compute=lambda: 1)
    assert drv.try_submit(rsa_op(), compute=lambda: 2)
    assert not drv.try_submit(rsa_op(), compute=lambda: 3)
    sim.run()
    # Completed but not yet retrieved: slots still occupied.
    assert not drv.try_submit(rsa_op(), compute=lambda: 3)
    drv.poll()
    assert drv.try_submit(rsa_op(), compute=lambda: 3)


def test_in_flight_counter():
    sim = Simulator()
    _, drv = make_driver(sim)
    assert drv.in_flight == 0
    drv.try_submit(rsa_op(), compute=lambda: 1)
    drv.try_submit(rsa_op(), compute=lambda: 2)
    assert drv.in_flight == 2
    sim.run()
    assert drv.in_flight == 2  # completed, not yet retrieved
    drv.poll()
    assert drv.in_flight == 0


def test_compute_exception_becomes_errored_response():
    sim = Simulator()
    _, drv = make_driver(sim)

    def boom():
        raise ValueError("bad padding")

    drv.try_submit(rsa_op(), compute=boom)
    sim.run()
    (resp,) = drv.poll()
    assert not resp.ok
    assert isinstance(resp.error, ValueError)


def test_cookie_passthrough():
    sim = Simulator()
    _, drv = make_driver(sim)
    drv.try_submit(rsa_op(), compute=lambda: 1, cookie={"job": 42})
    sim.run()
    (resp,) = drv.poll()
    assert resp.cookie == {"job": 42}


def test_response_latency_recorded():
    sim = Simulator()
    _, drv = make_driver(sim)
    drv.try_submit(rsa_op(), compute=lambda: 1)
    sim.run()
    (resp,) = drv.poll()
    assert resp.latency == pytest.approx(sim.now)


def test_fairness_across_instances():
    """Two instances on one endpoint share engines round-robin."""
    sim = Simulator()
    dev = QatDevice(sim, n_endpoints=1, engines_per_endpoint=1)
    a, b = dev.allocate_instances(2)
    da, db = QatUserspaceDriver(a), QatUserspaceDriver(b)
    for _ in range(3):
        da.try_submit(rsa_op(), compute=lambda: "a")
        db.try_submit(rsa_op(), compute=lambda: "b")
    sim.run()
    order = []
    # completion order is recorded via completed_at on responses
    resp = da.poll() + db.poll()
    resp.sort(key=lambda r: r.completed_at)
    order = [r.result for r in resp]
    assert order == ["a", "b", "a", "b", "a", "b"]


def test_instances_distributed_across_endpoints():
    sim = Simulator()
    dev = QatDevice(sim, n_endpoints=3)
    insts = dev.allocate_instances(6)
    eps = [i.endpoint.endpoint_id for i in insts]
    assert eps == [0, 1, 2, 0, 1, 2]


def test_dh8970_shape():
    sim = Simulator()
    dev = dh8970(sim)
    assert len(dev.endpoints) == 3
    assert dev.total_engines == 30


def test_fw_counters():
    sim = Simulator()
    dev = QatDevice(sim, n_endpoints=1)
    inst = dev.allocate_instances(1)[0]
    drv = QatUserspaceDriver(inst)
    drv.try_submit(rsa_op(), compute=lambda: 1)
    drv.try_submit(CryptoOp(CryptoOpKind.PRF, nbytes=48), compute=lambda: 2)
    sim.run()
    totals = dev.fw_counter_totals()
    assert totals["total"] == 2
    assert totals["kind.rsa_priv"] == 1
    assert totals["cat.prf"] == 1


def test_card_rsa_capacity_calibration():
    """The simulated DH8970 should sustain ~100K RSA-2048 ops/s
    (the Fig. 7a plateau), +/- 15%."""
    sim = Simulator()
    dev = dh8970(sim)
    drivers = [QatUserspaceDriver(i) for i in dev.allocate_instances(6)]

    done = {"n": 0}

    def feeder(sim, drv):
        # Keep 12 requests in flight per instance for 0.2 simulated sec.
        while sim.now < 0.2:
            while drv.in_flight < 12:
                drv.try_submit(rsa_op(), compute=lambda: 1)
            yield sim.timeout(200e-6)
            done["n"] += len(drv.poll())

    for d in drivers:
        sim.process(feeder(sim, d))
    sim.run(until=0.2)
    rate = done["n"] / 0.2
    assert 85_000 < rate < 115_000, f"calibration off: {rate:.0f} ops/s"


def test_qat_service_time_validation():
    with pytest.raises(ValueError):
        qat_service_time(CryptoOp(CryptoOpKind.HKDF, nbytes=32))
    with pytest.raises(ValueError):
        qat_service_time(CryptoOp(CryptoOpKind.RSA_PRIV, rsa_bits=999))
    with pytest.raises(ValueError):
        qat_service_time(CryptoOp(CryptoOpKind.ECDH_COMPUTE, curve="P-999"))


def test_cipher_service_time_scales_with_bytes():
    small = qat_service_time(CryptoOp(CryptoOpKind.RECORD_CIPHER, nbytes=1024))
    big = qat_service_time(CryptoOp(CryptoOpKind.RECORD_CIPHER, nbytes=16384))
    assert big > small
