"""Regression: the device allocates instances round-robin over its
endpoints, so the pool's consecutive-chunk (static) partition lands
each worker's instances on *distinct* endpoints — the paper's "one
process can be assigned with multiple QAT instances from different
endpoints" deployment (section 2.3). A change to either the allocation
cursor or the chunking silently collapses a worker onto one endpoint
and halves its usable computation engines."""

from repro.bench.runner import Testbed
from repro.offload.pool import InstancePool, StaticPolicy
from repro.qat.device import dh8970
from repro.qat.driver import QatUserspaceDriver
from repro.sim.kernel import Simulator


def endpoint_ids(drivers, lanes):
    return [drivers[lane].instance.endpoint.endpoint_id for lane in lanes]


def test_round_robin_allocation_interleaves_endpoints():
    sim = Simulator()
    dev = dh8970(sim)  # three endpoints, as on the card
    instances = dev.allocate_instances(6)
    assert [inst.endpoint.endpoint_id for inst in instances] \
        == [0, 1, 2, 0, 1, 2]


def test_consecutive_chunks_span_distinct_endpoints():
    sim = Simulator()
    dev = dh8970(sim)
    workers, per_worker = 3, 2
    drivers = [QatUserspaceDriver(inst)
               for inst in dev.allocate_instances(workers * per_worker)]
    pool = InstancePool(sim, drivers, workers, StaticPolicy())
    for w in range(workers):
        eps = endpoint_ids(drivers, pool.leases[w])
        assert len(set(eps)) == per_worker, (
            f"worker {w} instances collapsed onto endpoints {eps}")


def test_server_pool_spreads_each_workers_instances():
    bed = Testbed("QTLS", workers=2, qat_instances_per_worker=2)
    pool = bed.server.instance_pool
    for w in range(2):
        eps = endpoint_ids(pool.drivers, pool.leases[w])
        assert len(set(eps)) == 2
