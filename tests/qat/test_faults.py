"""Fault-plan tests: deterministic injection at the QAT model layer."""

import pytest

from repro.crypto.ops import CryptoOp, CryptoOpKind
from repro.qat import QatDevice, QatUserspaceDriver, qat_service_time
from repro.qat.faults import FaultPlan, OutageWindow, QatHardwareError
from repro.sim import Simulator
from repro.sim.rng import RngRegistry


def rsa_op():
    return CryptoOp(CryptoOpKind.RSA_PRIV, rsa_bits=2048)


def make_env(seed=7, engines=10, **plan_kw):
    sim = Simulator()
    rng = RngRegistry(seed)
    dev = QatDevice(sim, n_endpoints=1, engines_per_endpoint=engines)
    plan = FaultPlan(rng.stream("faults"), **plan_kw)
    dev.install_fault_plan(plan)
    drv = QatUserspaceDriver(dev.allocate_instances(1)[0])
    return sim, dev, plan, drv


def test_rate_validation():
    rng = RngRegistry(1).stream("faults")
    with pytest.raises(ValueError, match="outside"):
        FaultPlan(rng, response_loss=1.5)
    with pytest.raises(ValueError, match="spike factor"):
        FaultPlan(rng, latency_spike_factor=0.5)


def test_response_loss_drops_response_but_frees_ring_slot():
    sim, dev, plan, drv = make_env(response_loss=1.0)
    assert drv.try_submit(rsa_op(), compute=lambda: "sig")
    sim.run()
    # The response never landed...
    assert drv.poll() == []
    assert plan.responses_lost == 1
    assert dev.endpoints[0].responses_lost == 1
    # ...but the hardware credited the slot back: the ring is empty,
    # not leaking capacity.
    assert dev.total_in_flight() == 0


def test_loss_window_limits_injection():
    service = qat_service_time(rsa_op())
    sim, dev, plan, drv = make_env(
        response_loss=1.0, response_loss_window=(0.0, service / 2))
    # Completion lands after the loss window closed: delivered intact.
    drv.try_submit(rsa_op(), compute=lambda: "sig")
    sim.run()
    assert len(drv.poll()) == 1
    assert plan.responses_lost == 0


def test_corruption_stamps_hardware_error():
    sim, dev, plan, drv = make_env(corruption=1.0)
    drv.try_submit(rsa_op(), compute=lambda: "sig")
    sim.run()
    (resp,) = drv.poll()
    assert isinstance(resp.error, QatHardwareError)
    assert resp.result is None
    assert plan.responses_corrupted == 1


def test_latency_spike_slows_service():
    factor = 10.0
    sim, dev, plan, drv = make_env(latency_spike_rate=1.0,
                                   latency_spike_factor=factor)
    drv.try_submit(rsa_op(), compute=lambda: 1)
    sim.run()
    assert len(drv.poll()) == 1
    assert sim.now >= factor * qat_service_time(rsa_op())
    assert plan.latency_spikes == 1


def test_outage_rejects_submissions():
    sim, dev, plan, drv = make_env(outages=((0, 0.0, 1.0),))
    assert drv.try_submit(rsa_op(), compute=lambda: 1) is None
    assert plan.submits_rejected == 1
    assert drv.submit_failures == 1


def test_outage_loses_inflight_completions():
    """An op submitted just before the outage completes *during* it:
    the response is swallowed."""
    service = qat_service_time(rsa_op())
    sim, dev, plan, drv = make_env(
        outages=(OutageWindow(0, service / 2, 1.0),))
    drv.try_submit(rsa_op(), compute=lambda: 1)
    sim.run()
    assert drv.poll() == []
    assert plan.responses_lost == 1


def test_outage_window_scoped_to_endpoint():
    sim = Simulator()
    rng = RngRegistry(7)
    dev = QatDevice(sim, n_endpoints=2)
    dev.install_fault_plan(FaultPlan(rng.stream("faults"),
                                     outages=((1, 0.0, 1.0),)))
    d0, d1 = (QatUserspaceDriver(i) for i in dev.allocate_instances(2))
    assert d0.try_submit(rsa_op(), compute=lambda: 1)  # ep0 healthy
    assert d1.try_submit(rsa_op(), compute=lambda: 1) is None  # ep1 down


def test_ring_full_storm_window():
    sim, dev, plan, drv = make_env(ring_full_windows=((0.0, 1e-3),))
    assert drv.try_submit(rsa_op(), compute=lambda: 1) is None
    sim.run(until=2e-3)
    assert drv.try_submit(rsa_op(), compute=lambda: 1)


def test_scheduled_reset_wipes_queued_requests():
    """A reset drops ring-queued requests (their owners never see a
    response); the one already inside the hardware pipeline keeps its
    slot and completes normally."""
    service = qat_service_time(rsa_op())
    sim, dev, plan, drv = make_env(engines=1, resets=((0, service / 10),))
    for _ in range(3):
        drv.try_submit(rsa_op(), compute=lambda: 1)
    sim.run()
    assert plan.resets_fired == 1
    assert any(kind == "endpoint_reset" for _, kind, _ in plan.trace())
    assert len(drv.poll()) == 1  # only the in-pipeline op survived
    assert dev.total_in_flight() == 0


def test_fw_counter_totals_include_fault_and_driver_sections():
    sim, dev, plan, drv = make_env(response_loss=1.0)
    drv.try_submit(rsa_op(), compute=lambda: 1)
    sim.run()
    totals = dev.fw_counter_totals()
    assert totals["responses_lost"] == 1
    assert totals["faults.responses_lost"] == 1
    assert totals["driver.submitted"] == 1
    for key in ("driver.submit_failures", "driver.op_timeouts",
                "driver.fallback_ops", "faults.submits_rejected"):
        assert key in totals


def _trace_for(seed):
    sim, dev, plan, drv = make_env(seed=seed, response_loss=0.4,
                                   corruption=0.2, latency_spike_rate=0.1)
    for _ in range(30):
        drv.try_submit(rsa_op(), compute=lambda: 1)
        sim.run()
        drv.poll()
    return plan.trace(), plan.counters()


def test_same_seed_replays_identical_trace():
    assert _trace_for(11) == _trace_for(11)


def test_different_seed_gives_different_trace():
    assert _trace_for(11)[0] != _trace_for(12)[0]
