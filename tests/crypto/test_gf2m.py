"""Property tests for GF(2^m) field arithmetic."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.gf2m import BinaryField

# The B-283 reduction polynomial: x^283 + x^12 + x^7 + x^5 + 1
POLY_283 = (1 << 283) | (1 << 12) | (1 << 7) | (1 << 5) | 1
# Small field for exhaustive-ish checks: x^8 + x^4 + x^3 + x + 1 (AES poly)
POLY_8 = 0x11B

f283 = BinaryField(POLY_283)
f8 = BinaryField(POLY_8)

elements_283 = st.integers(0, (1 << 283) - 1)
elements_8 = st.integers(0, 255)


def test_degree():
    assert f283.m == 283
    assert f8.m == 8


def test_add_is_xor():
    assert f8.add(0b1010, 0b0110) == 0b1100


def test_mul_identity():
    assert f8.mul(1, 0x57) == 0x57
    assert f283.mul(1, 12345) == 12345


def test_mul_zero():
    assert f8.mul(0, 0xFF) == 0
    assert f283.mul(99, 0) == 0


def test_known_aes_field_product():
    # {57} * {83} = {c1} in GF(2^8) with the AES polynomial (FIPS 197).
    assert f8.mul(0x57, 0x83) == 0xC1


@given(elements_8, elements_8)
def test_mul_commutative_small(a, b):
    assert f8.mul(a, b) == f8.mul(b, a)


@given(elements_283, elements_283)
@settings(max_examples=50)
def test_mul_commutative_large(a, b):
    assert f283.mul(a, b) == f283.mul(b, a)


@given(elements_8, elements_8, elements_8)
def test_mul_associative(a, b, c):
    assert f8.mul(f8.mul(a, b), c) == f8.mul(a, f8.mul(b, c))


@given(elements_8, elements_8, elements_8)
def test_distributive(a, b, c):
    assert f8.mul(a, f8.add(b, c)) == f8.add(f8.mul(a, b), f8.mul(a, c))


@given(elements_283)
@settings(max_examples=50)
def test_sqr_matches_self_mul(a):
    assert f283.sqr(a) == f283.mul(a, a)


@given(st.integers(1, (1 << 283) - 1))
@settings(max_examples=50)
def test_inverse_large(a):
    assert f283.mul(a, f283.inv(a)) == 1


def test_inverse_exhaustive_small():
    for a in range(1, 256):
        assert f8.mul(a, f8.inv(a)) == 1


def test_inverse_of_zero_raises():
    with pytest.raises(ZeroDivisionError):
        f8.inv(0)


@given(st.integers(1, 255), st.integers(0, 255))
def test_div_roundtrip(b, a):
    assert f8.mul(f8.div(a, b), b) == f8.reduce(a)


def test_reduce_idempotent():
    x = (1 << 300) | (1 << 290) | 5
    r = f283.reduce(x)
    assert r < (1 << 283)
    assert f283.reduce(r) == r


def test_contains():
    assert f8.contains(255)
    assert not f8.contains(256)
    assert not f8.contains(-1)


def test_frobenius_linearity():
    # (a + b)^2 == a^2 + b^2 in characteristic 2.
    for a, b in [(0x53, 0xCA), (0x01, 0xFF), (0x80, 0x80)]:
        assert f8.sqr(f8.add(a, b)) == f8.add(f8.sqr(a), f8.sqr(b))


def test_modulus_validation():
    with pytest.raises(ValueError):
        BinaryField(1)
