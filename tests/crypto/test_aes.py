"""AES-128 tests: FIPS-197 vectors, oracle cross-check, properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import AES128, _INV_SBOX, _SBOX

try:
    from cryptography.hazmat.primitives.ciphers import Cipher, algorithms, modes
    HAVE_ORACLE = True
except ImportError:  # pragma: no cover
    HAVE_ORACLE = False

oracle = pytest.mark.skipif(not HAVE_ORACLE,
                            reason="cryptography package unavailable")


def test_fips197_appendix_c_vector():
    key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
    pt = bytes.fromhex("00112233445566778899aabbccddeeff")
    ct = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
    aes = AES128(key)
    assert aes.encrypt_block(pt) == ct
    assert aes.decrypt_block(ct) == pt


def test_sbox_known_entries():
    # FIPS 197 figure 7: S(0x00)=0x63, S(0x53)=0xED, S(0xFF)=0x16.
    assert _SBOX[0x00] == 0x63
    assert _SBOX[0x53] == 0xED
    assert _SBOX[0xFF] == 0x16


def test_sbox_is_permutation():
    assert sorted(_SBOX) == list(range(256))
    for i in range(256):
        assert _INV_SBOX[_SBOX[i]] == i


def test_key_length_validation():
    with pytest.raises(ValueError):
        AES128(b"short")


def test_block_length_validation():
    aes = AES128(b"\x00" * 16)
    with pytest.raises(ValueError):
        aes.encrypt_block(b"\x00" * 15)
    with pytest.raises(ValueError):
        aes.decrypt_block(b"\x00" * 17)


@given(st.binary(min_size=16, max_size=16), st.binary(min_size=16, max_size=16))
@settings(max_examples=25)
def test_roundtrip_property(key, block):
    aes = AES128(key)
    assert aes.decrypt_block(aes.encrypt_block(block)) == block


def test_different_keys_different_ciphertexts():
    block = b"\x00" * 16
    assert AES128(b"\x01" * 16).encrypt_block(block) != \
        AES128(b"\x02" * 16).encrypt_block(block)


@oracle
def test_matches_openssl_for_random_inputs():
    rng = np.random.default_rng(99)
    for _ in range(10):
        key, block = rng.bytes(16), rng.bytes(16)
        ours = AES128(key).encrypt_block(block)
        enc = Cipher(algorithms.AES(key), modes.ECB()).encryptor()
        theirs = enc.update(block) + enc.finalize()
        assert ours == theirs
