"""Provider tests: both providers must satisfy the same contract."""

import numpy as np
import pytest

from repro.crypto.provider import (ModeledCryptoProvider, RealCryptoProvider,
                                   VerifyError)
from repro.crypto.rsa import RsaError

PROVIDERS = [RealCryptoProvider(), ModeledCryptoProvider()]
IDS = ["real", "modeled"]


def _rng(seed=0):
    return np.random.default_rng(seed)


@pytest.fixture(params=PROVIDERS, ids=IDS)
def provider(request):
    return request.param


@pytest.fixture
def rsa_cred(provider):
    # 1024-bit keeps the real keygen fast in tests.
    return provider.make_rsa_credentials(1024, _rng(1))


# -- RSA path (TLS-RSA key exchange + server auth) ---------------------------

def test_rsa_premaster_roundtrip(provider, rsa_cred):
    premaster = bytes(_rng(2).bytes(48))
    ct = provider.rsa_encrypt(rsa_cred.public_bytes, premaster, _rng(3))
    assert len(ct) == 1024 // 8
    assert provider.rsa_decrypt(rsa_cred, ct, expected_len=48) == premaster


def test_rsa_decrypt_rejects_garbage(provider, rsa_cred):
    with pytest.raises(RsaError):
        provider.rsa_decrypt(rsa_cred, b"\x01" * 128, expected_len=48)


def test_rsa_signature_roundtrip(provider, rsa_cred):
    sig = provider.sign(rsa_cred, b"server params")
    assert len(sig) == 1024 // 8
    assert provider.verify("rsa", rsa_cred.public_bytes, b"server params", sig)
    assert not provider.verify("rsa", rsa_cred.public_bytes, b"other", sig)


def test_rsa_sig_bound_to_key(provider):
    c1 = provider.make_rsa_credentials(1024, _rng(1), key_id="a")
    c2 = provider.make_rsa_credentials(1024, _rng(2), key_id="b")
    sig = provider.sign(c1, b"m")
    assert not provider.verify("rsa", c2.public_bytes, b"m", sig)


# -- ECDSA path ---------------------------------------------------------------

@pytest.mark.parametrize("curve", ["P-256", "B-283"])
def test_ecdsa_roundtrip(provider, curve):
    cred = provider.make_ecdsa_credentials(curve, _rng(4))
    sig = provider.sign(cred, b"handshake transcript")
    assert provider.verify("ecdsa", cred.public_bytes,
                           b"handshake transcript", sig, curve=curve)
    assert not provider.verify("ecdsa", cred.public_bytes,
                               b"tampered", sig, curve=curve)


# -- ECDHE path ----------------------------------------------------------------

@pytest.mark.parametrize("curve", ["P-256", "P-384", "K-283"])
def test_ecdh_agreement(provider, curve):
    a = provider.ecdh_keygen(curve, _rng(5))
    b = provider.ecdh_keygen(curve, _rng(6))
    s1 = provider.ecdh_shared(a, b.public_bytes)
    s2 = provider.ecdh_shared(b, a.public_bytes)
    assert s1 == s2
    assert len(s1) > 0


def test_ecdh_public_encoding_width(provider):
    share = provider.ecdh_keygen("P-256", _rng(7))
    assert len(share.public_bytes) == 65  # 04 || X(32) || Y(32)
    assert share.public_bytes[0] == 4


def test_ecdh_different_keys_different_secrets(provider):
    a = provider.ecdh_keygen("P-256", _rng(8))
    b = provider.ecdh_keygen("P-256", _rng(9))
    c = provider.ecdh_keygen("P-256", _rng(10))
    assert provider.ecdh_shared(a, b.public_bytes) != \
        provider.ecdh_shared(a, c.public_bytes)


# -- KDFs ------------------------------------------------------------------------

def test_prf_consistent_across_providers():
    """PRF is a shared real implementation — identical everywhere."""
    args = (b"secret", b"key expansion", b"seed", 104)
    assert PROVIDERS[0].prf(*args) == PROVIDERS[1].prf(*args)


def test_hkdf_consistent_across_providers():
    a = PROVIDERS[0].hkdf_expand_label(b"\x01" * 32, b"key", b"", 16)
    b = PROVIDERS[1].hkdf_expand_label(b"\x01" * 32, b"key", b"", 16)
    assert a == b


# -- record protection -------------------------------------------------------------

def _roundtrip_record(provider, payload):
    ek, mk, iv = b"\x01" * 16, b"\x02" * 20, b"\x03" * 16
    frag = provider.encrypt_record_cbc_hmac(ek, mk, seq=5, content_type=23,
                                            version=0x0303, payload=payload,
                                            iv=iv)
    out = provider.decrypt_record_cbc_hmac(ek, mk, seq=5, content_type=23,
                                           version=0x0303, fragment=frag)
    return frag, out


@pytest.mark.parametrize("size", [0, 1, 15, 16, 100, 1000])
def test_record_roundtrip(provider, size):
    payload = bytes(range(256)) * (size // 256 + 1)
    payload = payload[:size]
    frag, out = _roundtrip_record(provider, payload)
    assert out == payload


def test_record_ciphertext_length_identical_across_providers():
    """The modeled provider must preserve the CBC/HMAC wire arithmetic."""
    for size in (0, 1, 100, 16384):
        payload = b"\x00" * size
        frags = []
        for p in PROVIDERS:
            ek, mk, iv = b"\x01" * 16, b"\x02" * 20, b"\x03" * 16
            frags.append(p.encrypt_record_cbc_hmac(
                ek, mk, 0, 23, 0x0303, payload, iv))
        assert len(frags[0]) == len(frags[1]), f"size={size}"


def test_record_wrong_seq_rejected(provider):
    ek, mk, iv = b"\x01" * 16, b"\x02" * 20, b"\x03" * 16
    frag = provider.encrypt_record_cbc_hmac(ek, mk, 1, 23, 0x0303, b"data", iv)
    with pytest.raises(VerifyError):
        provider.decrypt_record_cbc_hmac(ek, mk, 2, 23, 0x0303, frag)


def test_record_wrong_key_rejected(provider):
    ek, mk, iv = b"\x01" * 16, b"\x02" * 20, b"\x03" * 16
    frag = provider.encrypt_record_cbc_hmac(ek, mk, 1, 23, 0x0303, b"data", iv)
    with pytest.raises(VerifyError):
        provider.decrypt_record_cbc_hmac(b"\x09" * 16, mk, 1, 23, 0x0303, frag)


def test_record_too_short_rejected(provider):
    with pytest.raises(VerifyError):
        provider.decrypt_record_cbc_hmac(b"\x01" * 16, b"\x02" * 20, 0, 23,
                                         0x0303, b"tiny")
