"""RSA tests: roundtrips, padding failures, and cross-validation
against the OpenSSL-backed ``cryptography`` package where available."""

import numpy as np
import pytest

from repro.crypto import rsa

try:
    from cryptography.hazmat.primitives import hashes
    from cryptography.hazmat.primitives.asymmetric import padding as cpad
    from cryptography.hazmat.primitives.asymmetric.rsa import (
        RSAPrivateNumbers, RSAPublicNumbers)
    HAVE_ORACLE = True
except ImportError:  # pragma: no cover
    HAVE_ORACLE = False

oracle = pytest.mark.skipif(not HAVE_ORACLE,
                            reason="cryptography package unavailable")


@pytest.fixture(scope="module")
def key():
    return rsa.generate_keypair(1024, np.random.default_rng(11))


def test_keypair_structure(key):
    assert key.n == key.p * key.q
    assert key.n.bit_length() == 1024
    assert (key.e * key.d) % ((key.p - 1) * (key.q - 1)) == 1
    assert key.dp == key.d % (key.p - 1)
    assert (key.q * key.qinv) % key.p == 1


def test_raw_roundtrip(key):
    m = 0x1234567890ABCDEF
    assert key.raw_decrypt(key.public.raw_encrypt(m)) != m or True
    # encrypt(decrypt(m)) is the signature direction:
    assert key.public.raw_encrypt(key.raw_decrypt(m)) == m


def test_crt_matches_plain_exponentiation(key):
    c = 0xCAFEBABE
    assert key.raw_decrypt(c) == pow(c, key.d, key.n)


def test_sign_verify_roundtrip(key):
    msg = b"the quick brown fox"
    sig = rsa.sign_pkcs1v15(key, msg)
    assert len(sig) == key.size
    assert rsa.verify_pkcs1v15(key.public, msg, sig)


def test_verify_rejects_tampered_message(key):
    sig = rsa.sign_pkcs1v15(key, b"original")
    assert not rsa.verify_pkcs1v15(key.public, b"tampered", sig)


def test_verify_rejects_tampered_signature(key):
    sig = bytearray(rsa.sign_pkcs1v15(key, b"msg"))
    sig[5] ^= 1
    assert not rsa.verify_pkcs1v15(key.public, b"msg", bytes(sig))


def test_verify_rejects_wrong_length(key):
    assert not rsa.verify_pkcs1v15(key.public, b"msg", b"\x00" * 8)


def test_sign_with_different_hashes(key):
    for h in ("sha1", "sha256", "sha384", "sha512"):
        sig = rsa.sign_pkcs1v15(key, b"m", hash_name=h)
        assert rsa.verify_pkcs1v15(key.public, b"m", sig, hash_name=h)
        # Wrong hash must fail.
        assert not rsa.verify_pkcs1v15(key.public, b"m", sig, hash_name="sha256") or h == "sha256"


def test_unsupported_hash_raises(key):
    with pytest.raises(rsa.RsaError):
        rsa.sign_pkcs1v15(key, b"m", hash_name="md5-fake")


def test_encrypt_decrypt_roundtrip(key):
    rng = np.random.default_rng(3)
    pm = bytes(rng.bytes(48))
    ct = rsa.encrypt_pkcs1v15(key.public, pm, rng)
    assert len(ct) == key.size
    assert rsa.decrypt_pkcs1v15(key, ct, expected_len=48) == pm


def test_decrypt_rejects_wrong_expected_len(key):
    rng = np.random.default_rng(3)
    ct = rsa.encrypt_pkcs1v15(key.public, b"x" * 48, rng)
    with pytest.raises(rsa.RsaError):
        rsa.decrypt_pkcs1v15(key, ct, expected_len=32)


def test_decrypt_rejects_garbage(key):
    with pytest.raises(rsa.RsaError):
        rsa.decrypt_pkcs1v15(key, b"\x01" * key.size, expected_len=48)


def test_encrypt_message_too_long(key):
    rng = np.random.default_rng(3)
    with pytest.raises(rsa.RsaError):
        rsa.encrypt_pkcs1v15(key.public, b"x" * (key.size - 10), rng)


def test_keygen_odd_bits_rejected():
    with pytest.raises(rsa.RsaError):
        rsa.generate_keypair(1023, np.random.default_rng(0))


# -- cross-validation with OpenSSL (via the cryptography package) ----------

def _to_oracle_private(key):
    pub = RSAPublicNumbers(key.e, key.n)
    return RSAPrivateNumbers(key.p, key.q, key.d, key.dp, key.dq,
                             key.qinv, pub).private_key()


@oracle
def test_oracle_verifies_our_signature(key):
    msg = b"interop check"
    sig = rsa.sign_pkcs1v15(key, msg)
    opriv = _to_oracle_private(key)
    opriv.public_key().verify(sig, msg, cpad.PKCS1v15(), hashes.SHA256())


@oracle
def test_we_verify_oracle_signature(key):
    msg = b"reverse interop"
    opriv = _to_oracle_private(key)
    sig = opriv.sign(msg, cpad.PKCS1v15(), hashes.SHA256())
    assert rsa.verify_pkcs1v15(key.public, msg, sig)


@oracle
def test_we_decrypt_oracle_ciphertext(key):
    opriv = _to_oracle_private(key)
    ct = opriv.public_key().encrypt(b"s" * 48, cpad.PKCS1v15())
    assert rsa.decrypt_pkcs1v15(key, ct, expected_len=48) == b"s" * 48


@oracle
def test_oracle_decrypts_our_ciphertext(key):
    rng = np.random.default_rng(9)
    ct = rsa.encrypt_pkcs1v15(key.public, b"t" * 48, rng)
    opriv = _to_oracle_private(key)
    assert opriv.decrypt(ct, cpad.PKCS1v15()) == b"t" * 48
