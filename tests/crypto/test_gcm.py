"""AES-GCM tests: NIST vectors, oracle cross-check, properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.gcm import AesGcm, GcmAuthError

try:
    from cryptography.hazmat.primitives.ciphers.aead import AESGCM
    HAVE_ORACLE = True
except ImportError:  # pragma: no cover
    HAVE_ORACLE = False

oracle = pytest.mark.skipif(not HAVE_ORACLE,
                            reason="cryptography package unavailable")


def test_nist_test_case_1():
    """SP 800-38D validation vector: zero key, zero nonce, empty input."""
    gcm = AesGcm(b"\x00" * 16)
    sealed = gcm.seal(b"\x00" * 12, b"")
    assert sealed.hex() == "58e2fccefa7e3061367f1d57a4e7455a"


def test_nist_test_case_2():
    """Zero key/nonce, one zero block of plaintext."""
    gcm = AesGcm(b"\x00" * 16)
    sealed = gcm.seal(b"\x00" * 12, b"\x00" * 16)
    assert sealed[:16].hex() == "0388dace60b6a392f328c2b971b2fe78"
    assert sealed[16:].hex() == "ab6e47d42cec13bdf53a67b21257bddf"


def test_roundtrip_with_aad():
    gcm = AesGcm(b"k" * 16)
    sealed = gcm.seal(b"n" * 12, b"payload", aad=b"header")
    assert gcm.open(b"n" * 12, sealed, aad=b"header") == b"payload"


def test_tampered_ciphertext_rejected():
    gcm = AesGcm(b"k" * 16)
    sealed = bytearray(gcm.seal(b"n" * 12, b"payload"))
    sealed[0] ^= 1
    with pytest.raises(GcmAuthError):
        gcm.open(b"n" * 12, bytes(sealed))


def test_wrong_aad_rejected():
    gcm = AesGcm(b"k" * 16)
    sealed = gcm.seal(b"n" * 12, b"payload", aad=b"a")
    with pytest.raises(GcmAuthError):
        gcm.open(b"n" * 12, sealed, aad=b"b")


def test_wrong_nonce_rejected():
    gcm = AesGcm(b"k" * 16)
    sealed = gcm.seal(b"n" * 12, b"payload")
    with pytest.raises(GcmAuthError):
        gcm.open(b"m" * 12, sealed)


def test_nonce_length_enforced():
    gcm = AesGcm(b"k" * 16)
    with pytest.raises(ValueError):
        gcm.seal(b"short", b"x")
    with pytest.raises(GcmAuthError):
        gcm.open(b"n" * 12, b"tiny")


@given(st.binary(max_size=100), st.binary(max_size=40))
@settings(max_examples=25)
def test_roundtrip_property(plaintext, aad):
    gcm = AesGcm(b"\x07" * 16)
    sealed = gcm.seal(b"\x01" * 12, plaintext, aad)
    assert gcm.open(b"\x01" * 12, sealed, aad) == plaintext
    assert len(sealed) == len(plaintext) + 16


@oracle
def test_matches_openssl():
    rng = np.random.default_rng(17)
    for _ in range(5):
        key, nonce = rng.bytes(16), rng.bytes(12)
        pt, aad = rng.bytes(50), rng.bytes(13)
        ours = AesGcm(key).seal(nonce, pt, aad)
        theirs = AESGCM(key).encrypt(nonce, pt, aad)
        assert ours == theirs
