"""Unit and property tests for bigint helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.bigint import (byte_length, crt_pair, egcd, i2osp, modinv,
                                 os2ip)


def test_egcd_basic():
    g, x, y = egcd(240, 46)
    assert g == 2
    assert 240 * x + 46 * y == g


@given(st.integers(1, 10**12), st.integers(1, 10**12))
def test_egcd_bezout(a, b):
    g, x, y = egcd(a, b)
    assert a * x + b * y == g
    assert a % g == 0 and b % g == 0


def test_modinv_known():
    assert modinv(3, 11) == 4


@given(st.integers(2, 10**9))
def test_modinv_property(a):
    p = 2**61 - 1  # Mersenne prime
    inv = modinv(a, p)
    assert (a * inv) % p == 1


def test_modinv_not_invertible():
    with pytest.raises(ValueError):
        modinv(6, 9)


def test_crt_pair_recombines():
    p, q = 61, 53
    qinv = modinv(q, p)
    m = 1234
    assert crt_pair(m % p, m % q, p, q, qinv) % (p * q) == m


def test_i2osp_roundtrip():
    assert os2ip(i2osp(0xABCD, 4)) == 0xABCD
    assert i2osp(0, 2) == b"\x00\x00"


def test_i2osp_overflow():
    with pytest.raises(ValueError):
        i2osp(256, 1)
    with pytest.raises(ValueError):
        i2osp(-1, 4)


@given(st.integers(0, 2**128 - 1))
def test_i2osp_os2ip_inverse(x):
    assert os2ip(i2osp(x, 16)) == x


def test_byte_length():
    assert byte_length(0) == 1
    assert byte_length(255) == 1
    assert byte_length(256) == 2
