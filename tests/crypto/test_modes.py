"""CBC mode and PKCS#7 padding tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.modes import (PaddingError, cbc_decrypt, cbc_encrypt,
                                pkcs7_pad, pkcs7_unpad)

try:
    from cryptography.hazmat.primitives.ciphers import Cipher, algorithms, modes
    HAVE_ORACLE = True
except ImportError:  # pragma: no cover
    HAVE_ORACLE = False

oracle = pytest.mark.skipif(not HAVE_ORACLE,
                            reason="cryptography package unavailable")

KEY = bytes(range(16))
IV = bytes(range(16, 32))


def test_pad_lengths():
    assert pkcs7_pad(b"") == b"\x10" * 16
    assert pkcs7_pad(b"a" * 15) == b"a" * 15 + b"\x01"
    assert pkcs7_pad(b"a" * 16)[-16:] == b"\x10" * 16


@given(st.binary(max_size=100))
def test_pad_unpad_roundtrip(data):
    padded = pkcs7_pad(data)
    assert len(padded) % 16 == 0
    assert pkcs7_unpad(padded) == data


def test_unpad_rejects_bad_length():
    with pytest.raises(PaddingError):
        pkcs7_unpad(b"abc")


def test_unpad_rejects_inconsistent_bytes():
    with pytest.raises(PaddingError):
        pkcs7_unpad(b"a" * 14 + b"\x03\x02")
    with pytest.raises(PaddingError):
        pkcs7_unpad(b"a" * 15 + b"\x00")
    with pytest.raises(PaddingError):
        pkcs7_unpad(b"a" * 15 + b"\x11")


@given(st.binary(max_size=64))
@settings(max_examples=20)
def test_cbc_roundtrip(data):
    padded = pkcs7_pad(data)
    ct = cbc_encrypt(KEY, IV, padded)
    assert len(ct) == len(padded)
    assert pkcs7_unpad(cbc_decrypt(KEY, IV, ct)) == data


def test_cbc_chaining_differs_per_block():
    pt = b"\x00" * 32  # two identical blocks
    ct = cbc_encrypt(KEY, IV, pt)
    assert ct[:16] != ct[16:]


def test_cbc_iv_sensitivity():
    pt = pkcs7_pad(b"data")
    assert cbc_encrypt(KEY, IV, pt) != cbc_encrypt(KEY, bytes(16), pt)


def test_cbc_validation():
    with pytest.raises(ValueError):
        cbc_encrypt(KEY, b"shortiv", b"\x00" * 16)
    with pytest.raises(ValueError):
        cbc_encrypt(KEY, IV, b"\x00" * 15)
    with pytest.raises(ValueError):
        cbc_decrypt(KEY, IV, b"")


@oracle
def test_cbc_matches_openssl():
    rng = np.random.default_rng(4)
    for _ in range(5):
        key, iv = rng.bytes(16), rng.bytes(16)
        pt = rng.bytes(64)
        ours = cbc_encrypt(key, iv, pt)
        enc = Cipher(algorithms.AES(key), modes.CBC(iv)).encryptor()
        assert ours == enc.update(pt) + enc.finalize()
