"""Tests for primality testing and prime generation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.primes import generate_prime, is_prime

KNOWN_PRIMES = [2, 3, 5, 7, 97, 7919, 104729, 2**31 - 1, 2**61 - 1,
                # A 256-bit prime (secp256k1 field prime)
                0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEFFFFFC2F]

KNOWN_COMPOSITES = [0, 1, 4, 9, 561, 41041,  # Carmichael numbers included
                    6601, 2**32 - 1, (2**61 - 1) * (2**31 - 1)]


@pytest.mark.parametrize("p", KNOWN_PRIMES)
def test_known_primes(p):
    assert is_prime(p)


@pytest.mark.parametrize("c", KNOWN_COMPOSITES)
def test_known_composites(c):
    assert not is_prime(c)


def test_carmichael_numbers_rejected():
    # Classic Fermat-test foolers.
    for n in (561, 1105, 1729, 2465, 2821, 6601, 8911):
        assert not is_prime(n)


@given(st.integers(2, 10**6))
@settings(max_examples=200)
def test_matches_trial_division(n):
    def trial(n):
        if n < 2:
            return False
        i = 2
        while i * i <= n:
            if n % i == 0:
                return False
            i += 1
        return True

    assert is_prime(n) == trial(n)


@pytest.mark.parametrize("bits", [64, 128, 256])
def test_generate_prime_size_and_primality(bits):
    rng = np.random.default_rng(7)
    p = generate_prime(bits, rng)
    assert p.bit_length() == bits
    assert is_prime(p)
    assert p % 2 == 1


def test_generate_prime_distinct_draws():
    rng = np.random.default_rng(7)
    assert generate_prime(128, rng) != generate_prime(128, rng)


def test_generate_prime_deterministic_per_seed():
    a = generate_prime(128, np.random.default_rng(5))
    b = generate_prime(128, np.random.default_rng(5))
    assert a == b


def test_generate_prime_too_small():
    with pytest.raises(ValueError):
        generate_prime(4, np.random.default_rng(0))
