"""HMAC / TLS 1.2 PRF / HKDF tests, cross-checked against independent
implementations built directly on the standard library."""

import hmac as stdlib_hmac

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.hkdf import hkdf_expand, hkdf_expand_label, hkdf_extract
from repro.crypto.hmac_impl import HmacKey, hmac_digest
from repro.crypto.prf import p_hash, prf


# -- HMAC -------------------------------------------------------------------

@given(st.binary(max_size=200), st.binary(max_size=200))
@settings(max_examples=50)
def test_hmac_matches_stdlib(key, msg):
    for h in ("sha1", "sha256", "sha384"):
        assert hmac_digest(key, msg, h) == \
            stdlib_hmac.new(key, msg, h).digest()


def test_hmac_long_key_hashed_first():
    key = b"k" * 200  # longer than the sha256 block size
    assert hmac_digest(key, b"m") == stdlib_hmac.new(key, b"m", "sha256").digest()


def test_hmac_context_reusable():
    ctx = HmacKey(b"key")
    assert ctx.digest(b"a") == hmac_digest(b"key", b"a")
    assert ctx.digest(b"b") == hmac_digest(b"key", b"b")


def test_hmac_rfc2202_vector():
    # RFC 2202 test case 1 for HMAC-SHA1.
    out = hmac_digest(b"\x0b" * 20, b"Hi There", "sha1")
    assert out.hex() == "b617318655057264e28bc0b6fb378c8ef146be00"


# -- TLS 1.2 PRF --------------------------------------------------------------

def _reference_p_hash(secret, seed, length, hash_name="sha256"):
    """Independent P_hash written directly on stdlib hmac."""
    out = b""
    a = seed
    while len(out) < length:
        a = stdlib_hmac.new(secret, a, hash_name).digest()
        out += stdlib_hmac.new(secret, a + seed, hash_name).digest()
    return out[:length]


@given(st.binary(min_size=1, max_size=48), st.binary(max_size=64),
       st.integers(1, 200))
@settings(max_examples=50)
def test_p_hash_matches_reference(secret, seed, length):
    assert p_hash(secret, seed, length) == \
        _reference_p_hash(secret, seed, length)


def test_prf_concatenates_label_and_seed():
    secret, label, seed = b"s" * 48, b"master secret", b"r" * 64
    assert prf(secret, label, seed, 48) == \
        _reference_p_hash(secret, label + seed, 48)


def test_prf_length_exact():
    for n in (1, 32, 33, 48, 100):
        assert len(prf(b"x", b"l", b"s", n)) == n


def test_prf_deterministic_and_sensitive():
    base = prf(b"secret", b"label", b"seed", 48)
    assert base == prf(b"secret", b"label", b"seed", 48)
    assert base != prf(b"secret2", b"label", b"seed", 48)
    assert base != prf(b"secret", b"label2", b"seed", 48)


# -- HKDF ----------------------------------------------------------------------

def test_hkdf_rfc5869_case1():
    """RFC 5869 appendix A.1 (SHA-256, basic)."""
    ikm = b"\x0b" * 22
    salt = bytes(range(13))
    info = bytes(range(0xF0, 0xFA))
    prk = hkdf_extract(salt, ikm)
    assert prk.hex() == ("077709362c2e32df0ddc3f0dc47bba63"
                         "90b6c73bb50f9c3122ec844ad7c2b3e5")
    okm = hkdf_expand(prk, info, 42)
    assert okm.hex() == ("3cb25f25faacd57a90434f64d0362f2a"
                         "2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
                         "34007208d5b887185865")


def test_hkdf_extract_empty_salt_defaults_to_zeros():
    ikm = b"\x0b" * 22
    assert hkdf_extract(b"", ikm) == \
        stdlib_hmac.new(b"\x00" * 32, ikm, "sha256").digest()


def test_hkdf_expand_too_long_rejected():
    with pytest.raises(ValueError):
        hkdf_expand(b"\x00" * 32, b"", 255 * 32 + 1)


@given(st.binary(min_size=1, max_size=64), st.binary(max_size=32),
       st.integers(1, 128))
@settings(max_examples=50)
def test_hkdf_expand_matches_reference(prk, info, length):
    def ref(prk, info, length):
        out, t, i = b"", b"", 1
        while len(out) < length:
            t = stdlib_hmac.new(prk, t + info + bytes([i]), "sha256").digest()
            out += t
            i += 1
        return out[:length]

    assert hkdf_expand(prk, info, length) == ref(prk, info, length)


def test_hkdf_expand_label_structure():
    """RFC 8446: HkdfLabel = length || "tls13 "+label || context."""
    secret = b"\x01" * 32
    out = hkdf_expand_label(secret, b"key", b"ctx", 16)
    label = b"tls13 key"
    info = (16).to_bytes(2, "big") + bytes([len(label)]) + label \
        + bytes([3]) + b"ctx"
    assert out == hkdf_expand(secret, info, 16)
