"""Elliptic-curve tests: parameter integrity, group laws on all six
NIST curves, ECDH/ECDSA roundtrips, OpenSSL cross-validation for P-256."""

import numpy as np
import pytest

from repro.crypto import ecdh, ecdsa
from repro.crypto.ec import (INFINITY, EcError, Point, get_curve,
                             list_curves)

ALL_CURVES = list(list_curves())
# A fast subset for the heavier group-law sweeps.
FAST_CURVES = ["P-256", "K-283"]

try:
    from cryptography.hazmat.primitives import hashes
    from cryptography.hazmat.primitives.asymmetric import ec as oec
    from cryptography.hazmat.primitives.asymmetric.utils import (
        decode_dss_signature, encode_dss_signature)
    HAVE_ORACLE = True
except ImportError:  # pragma: no cover
    HAVE_ORACLE = False

oracle = pytest.mark.skipif(not HAVE_ORACLE,
                            reason="cryptography package unavailable")


@pytest.mark.parametrize("name", ALL_CURVES)
def test_generator_on_curve(name):
    c = get_curve(name)
    assert c.is_on_curve(c.generator)


@pytest.mark.parametrize("name", ALL_CURVES)
def test_group_order(name):
    c = get_curve(name)
    assert c.base_mult(c.n).is_infinity


@pytest.mark.parametrize("name", ALL_CURVES)
def test_small_multiples_consistent(name):
    """2G computed by doubling equals G+G; 3G = 2G + G, all on curve."""
    c = get_curve(name)
    g = c.generator
    g2a = c.double(g)
    g2b = c.add(g, g)
    assert g2a == g2b
    g3 = c.add(g2a, g)
    assert c.is_on_curve(g2a) and c.is_on_curve(g3)
    assert c.base_mult(3) == g3


@pytest.mark.parametrize("name", FAST_CURVES)
def test_scalar_mult_distributes(name):
    c = get_curve(name)
    a, b = 0x1234567, 0x89ABCDE
    lhs = c.base_mult(a + b)
    rhs = c.add(c.base_mult(a), c.base_mult(b))
    assert lhs == rhs


@pytest.mark.parametrize("name", FAST_CURVES)
def test_negation(name):
    c = get_curve(name)
    p = c.base_mult(12345)
    assert c.add(p, c.negate(p)).is_infinity
    assert c.is_on_curve(c.negate(p))


@pytest.mark.parametrize("name", ALL_CURVES)
def test_infinity_is_identity(name):
    c = get_curve(name)
    p = c.base_mult(7)
    assert c.add(p, INFINITY) == p
    assert c.add(INFINITY, p) == p
    assert c.double(INFINITY).is_infinity


def test_scalar_mult_zero_is_infinity():
    c = get_curve("P-256")
    assert c.base_mult(0).is_infinity
    assert c.scalar_mult(c.n, c.generator).is_infinity


def test_scalar_mult_reduces_mod_n():
    c = get_curve("P-256")
    assert c.base_mult(5) == c.base_mult(5 + c.n)


def test_validate_point_rejects_off_curve():
    c = get_curve("P-256")
    with pytest.raises(EcError):
        c.validate_point(Point(1, 1))
    with pytest.raises(EcError):
        c.validate_point(INFINITY)


def test_unknown_curve():
    with pytest.raises(EcError):
        get_curve("P-224")


def test_p256_montgomery_flag():
    assert get_curve("P-256").montgomery_friendly
    assert not get_curve("P-384").montgomery_friendly


# -- ECDH ------------------------------------------------------------------

@pytest.mark.parametrize("name", ALL_CURVES)
def test_ecdh_shared_secret_agrees(name):
    c = get_curve(name)
    rng = np.random.default_rng(5)
    alice = ecdh.generate_keypair(c, rng)
    bob = ecdh.generate_keypair(c, rng)
    s1 = ecdh.shared_secret(c, alice.d, bob.public)
    s2 = ecdh.shared_secret(c, bob.d, alice.public)
    assert s1 == s2
    assert len(s1) == (c.field_bits + 7) // 8


def test_ecdh_point_encoding_roundtrip():
    c = get_curve("P-384")
    rng = np.random.default_rng(8)
    kp = ecdh.generate_keypair(c, rng)
    blob = ecdh.encode_point(c, kp.public)
    assert len(blob) == 1 + 2 * ((c.field_bits + 7) // 8)
    assert ecdh.decode_point(c, blob) == kp.public


def test_ecdh_decode_rejects_malformed():
    c = get_curve("P-256")
    with pytest.raises(EcError):
        ecdh.decode_point(c, b"\x04" + b"\x01" * 64)  # off-curve
    with pytest.raises(EcError):
        ecdh.decode_point(c, b"\x02" + b"\x00" * 64)  # wrong form byte


# -- ECDSA -----------------------------------------------------------------

@pytest.mark.parametrize("name", ALL_CURVES)
def test_ecdsa_sign_verify(name):
    c = get_curve(name)
    rng = np.random.default_rng(13)
    key = ecdsa.generate_keypair(c, rng)
    sig = ecdsa.sign(key, b"hello curve " + name.encode())
    assert ecdsa.verify(c, key.public, b"hello curve " + name.encode(), sig)


def test_ecdsa_rejects_wrong_message():
    c = get_curve("P-256")
    key = ecdsa.generate_keypair(c, np.random.default_rng(13))
    sig = ecdsa.sign(key, b"real")
    assert not ecdsa.verify(c, key.public, b"fake", sig)


def test_ecdsa_rejects_tampered_signature():
    c = get_curve("P-256")
    key = ecdsa.generate_keypair(c, np.random.default_rng(13))
    r, s = ecdsa.sign(key, b"msg")
    assert not ecdsa.verify(c, key.public, b"msg", (r, s ^ 1))
    assert not ecdsa.verify(c, key.public, b"msg", (0, s))
    assert not ecdsa.verify(c, key.public, b"msg", (r, c.n))


def test_ecdsa_deterministic_nonce():
    """RFC 6979: same key + message => identical signature."""
    c = get_curve("P-256")
    key = ecdsa.generate_keypair(c, np.random.default_rng(13))
    assert ecdsa.sign(key, b"m") == ecdsa.sign(key, b"m")
    assert ecdsa.sign(key, b"m") != ecdsa.sign(key, b"m2")


# -- OpenSSL cross-validation ------------------------------------------------

_ORACLE_CURVES = {"P-256": "SECP256R1", "P-384": "SECP384R1",
                  "K-283": "SECT283K1", "B-283": "SECT283R1",
                  "K-409": "SECT409K1", "B-409": "SECT409R1"}


def _oracle_curve(name):
    return getattr(oec, _ORACLE_CURVES[name])()


@oracle
@pytest.mark.parametrize("name", ["P-256", "P-384"])
def test_oracle_verifies_our_ecdsa(name):
    c = get_curve(name)
    key = ecdsa.generate_keypair(c, np.random.default_rng(21))
    msg = b"interop " + name.encode()
    r, s = ecdsa.sign(key, msg)
    priv = oec.derive_private_key(key.d, _oracle_curve(name))
    priv.public_key().verify(encode_dss_signature(r, s), msg,
                             oec.ECDSA(hashes.SHA256()))


@oracle
@pytest.mark.parametrize("name", ["P-256", "P-384"])
def test_we_verify_oracle_ecdsa(name):
    c = get_curve(name)
    priv = oec.generate_private_key(_oracle_curve(name))
    msg = b"reverse interop"
    der = priv.sign(msg, oec.ECDSA(hashes.SHA256()))
    r, s = decode_dss_signature(der)
    nums = priv.public_key().public_numbers()
    assert ecdsa.verify(c, Point(nums.x, nums.y), msg, (r, s))


@oracle
def test_public_point_matches_oracle_p256():
    """Scalar multiplication agrees with OpenSSL on the prime curve."""
    c = get_curve("P-256")
    d = 0x1F2E3D4C5B6A79880102030405060708090A0B0C0D0E0F10
    ours = c.base_mult(d)
    priv = oec.derive_private_key(d, _oracle_curve("P-256"))
    nums = priv.public_key().public_numbers()
    assert (ours.x, ours.y) == (nums.x, nums.y)


def test_public_point_matches_openssl_kat_k283():
    """Known-answer test generated with `openssl ecparam -name sect283k1
    -genkey`: binary-curve scalar multiplication matches OpenSSL."""
    d = int("013b8aba8e6f21ced10101ba8962dd10475f01ea730d575a8ef5a70b3c96"
            "5b058ef20d17", 16)
    pub_hex = ("02fea1f200aa4560cfb06568f131a6cb07c78b98d059da7812a0a9b98b"
               "6fbbf57fefcc11055ddbfa20ab6285d9854988edcba86760642866"
               "28f66e46146b5a72cbec9e5b9aada583")
    flen = 36  # ceil(283/8)
    blob = bytes.fromhex(pub_hex)
    expect = Point(int.from_bytes(blob[:flen], "big"),
                   int.from_bytes(blob[flen:], "big"))
    assert get_curve("K-283").base_mult(d) == expect
