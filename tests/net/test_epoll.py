"""Tests for the epoll model and notification FDs."""

import pytest

from repro.cpu import Core
from repro.net import Epoll, Link, NotifyFd, socket_pair
from repro.sim import Simulator


def make_env():
    sim = Simulator()
    core = Core(sim, 0)
    ep = Epoll(sim)
    return sim, core, ep


def test_wait_returns_ready_immediately():
    sim, core, ep = make_env()
    a, b = socket_pair(sim, Link(sim, 0.0), Link(sim, 0.0))
    ep.register(b)
    a.send(b"x")
    sim.run()  # deliver

    result = {}

    def loop(sim):
        ready = yield from ep.wait(core)
        result["ready"] = ready

    sim.process(loop(sim))
    sim.run()
    assert result["ready"] == [b]


def test_wait_blocks_until_data():
    sim, core, ep = make_env()
    a, b = socket_pair(sim, Link(sim, latency=1e-3), Link(sim, 1e-3))
    ep.register(b)
    result = {}

    def loop(sim):
        ready = yield from ep.wait(core)
        result["at"] = sim.now
        result["ready"] = ready

    sim.process(loop(sim))
    sim.call_in(5e-3, lambda: a.send(b"later"))
    sim.run()
    assert result["ready"] == [b]
    assert result["at"] >= 6e-3  # 5ms + 1ms link latency


def test_wait_timeout_returns_empty():
    sim, core, ep = make_env()
    a, b = socket_pair(sim, Link(sim), Link(sim))
    ep.register(b)
    result = {}

    def loop(sim):
        ready = yield from ep.wait(core, timeout=2e-3)
        result["ready"] = ready
        result["at"] = sim.now

    sim.process(loop(sim))
    sim.run()
    assert result["ready"] == []
    assert result["at"] == pytest.approx(2e-3, rel=0.01)


def test_wait_charges_kernel_crossing():
    sim, core, ep = make_env()
    a, b = socket_pair(sim, Link(sim, 0.0), Link(sim, 0.0))
    ep.register(b)
    a.send(b"x")
    sim.run()

    def loop(sim):
        yield from ep.wait(core)

    sim.process(loop(sim))
    sim.run()
    assert core.stats.kernel_crossings == 1
    assert core.stats.busy_time > 0


def test_unregister_stops_watching():
    sim, core, ep = make_env()
    a, b = socket_pair(sim, Link(sim, 0.0), Link(sim, 0.0))
    ep.register(b)
    ep.unregister(b)
    a.send(b"x")
    sim.run()
    result = {}

    def loop(sim):
        ready = yield from ep.wait(core, timeout=1e-3)
        result["ready"] = ready

    sim.process(loop(sim))
    sim.run()
    assert result["ready"] == []


def test_multiple_ready_fds_reported_together():
    sim, core, ep = make_env()
    pairs = [socket_pair(sim, Link(sim, 0.0), Link(sim, 0.0))
             for _ in range(3)]
    for a, b in pairs:
        ep.register(b)
        a.send(b"x")
    sim.run()
    result = {}

    def loop(sim):
        ready = yield from ep.wait(core)
        result["ready"] = set(r.fd for r in ready)

    sim.process(loop(sim))
    sim.run()
    assert result["ready"] == {b.fd for _, b in pairs}


def test_notify_fd_wakes_epoll():
    sim, core, ep = make_env()
    nfd = NotifyFd(sim)
    ep.register(nfd)
    result = {}

    def loop(sim):
        ready = yield from ep.wait(core)
        result["ready"] = ready
        result["count"] = nfd.read_events()

    sim.process(loop(sim))
    sim.call_in(1e-3, nfd.write_event)
    sim.call_in(1e-3, nfd.write_event)
    sim.run()
    assert result["ready"] == [nfd]
    assert result["count"] == 2
    assert not nfd.readable
