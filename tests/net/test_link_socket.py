"""Tests for links and simulated sockets."""

import pytest

from repro.net import Link, SimSocket, SocketClosed, socket_pair
from repro.sim import Simulator


def make_pair(sim, latency=10e-6, bw=40e9):
    ab = Link(sim, latency, bw, name="ab")
    ba = Link(sim, latency, bw, name="ba")
    return socket_pair(sim, ab, ba)


def test_link_latency_and_serialization():
    sim = Simulator()
    link = Link(sim, latency=1e-3, bandwidth_bps=8e6)  # 1 MB/s
    ev = link.transfer(1000)  # 1ms tx + 1ms latency
    sim.run(until=ev)
    assert sim.now == pytest.approx(2e-3)


def test_link_fifo_queueing():
    sim = Simulator()
    link = Link(sim, latency=0.0, bandwidth_bps=8e6)
    e1 = link.transfer(1000)  # occupies wire 1ms
    e2 = link.transfer(1000)  # queued behind
    done = []
    e1.callbacks.append(lambda ev: done.append(("a", sim.now)))
    e2.callbacks.append(lambda ev: done.append(("b", sim.now)))
    sim.run()
    assert done[0] == ("a", pytest.approx(1e-3))
    assert done[1] == ("b", pytest.approx(2e-3))


def test_link_queue_delay_visible():
    sim = Simulator()
    link = Link(sim, latency=0.0, bandwidth_bps=8e6)
    link.transfer(2000)
    assert link.queue_delay == pytest.approx(2e-3)


def test_link_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Link(sim, latency=-1)
    with pytest.raises(ValueError):
        Link(sim, bandwidth_bps=0)
    link = Link(sim)
    with pytest.raises(ValueError):
        link.transfer(-5)


def test_socket_send_recv_after_latency():
    sim = Simulator()
    a, b = make_pair(sim, latency=1e-3)
    a.send(b"hello")
    assert b.recv() is None  # nothing yet
    sim.run()
    assert b.recv() == b"hello"
    assert b.recv() is None


def test_socket_message_order_preserved():
    sim = Simulator()
    a, b = make_pair(sim)
    for i in range(5):
        a.send(f"m{i}".encode())
    sim.run()
    got = [b.recv() for _ in range(5)]
    assert got == [f"m{i}".encode() for i in range(5)]


def test_socket_readable_flag_tracks_inbox():
    sim = Simulator()
    a, b = make_pair(sim)
    assert not b.readable
    a.send(b"x")
    sim.run()
    assert b.readable
    b.recv()
    assert not b.readable


def test_socket_explicit_wire_size():
    sim = Simulator()
    a, b = make_pair(sim)
    a.send({"type": "handshake"}, nbytes=512)
    sim.run()
    assert b.recv() == {"type": "handshake"}
    assert a.bytes_sent == 512
    assert b.bytes_received == 512


def test_send_on_closed_raises():
    sim = Simulator()
    a, b = make_pair(sim)
    a.close()
    with pytest.raises(SocketClosed):
        a.send(b"x")


def test_peer_close_gives_eof_after_drain():
    sim = Simulator()
    a, b = make_pair(sim)
    a.send(b"last")
    a.close()
    sim.run()
    assert b.recv() == b"last"
    assert b.recv() == b""  # EOF
    assert b.readable  # EOF keeps it readable


def test_delivery_after_close_dropped():
    sim = Simulator()
    a, b = make_pair(sim, latency=1e-3)
    a.send(b"in flight")
    b.close()
    sim.run()
    assert b.pending == 0


def test_unconnected_socket_send_raises():
    sim = Simulator()
    s = SimSocket(sim, Link(sim))
    with pytest.raises(SocketClosed):
        s.send(b"x")


def test_distinct_fds():
    sim = Simulator()
    a, b = make_pair(sim)
    c, d = make_pair(sim)
    assert len({a.fd, b.fd, c.fd, d.fd}) == 4
