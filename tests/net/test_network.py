"""Tests for TCP connection setup and the machine topology."""

import pytest

from repro.net import Network, TCP_HANDSHAKE_BYTES
from repro.sim import Simulator


def test_connect_takes_one_rtt():
    sim = Simulator()
    net = Network(sim, latency=1e-3)
    net.bind("https")
    result = {}

    def client(sim):
        sock = yield from net.connect("client0", "https")
        result["at"] = sim.now
        result["sock"] = sock

    sim.process(client(sim))
    sim.run()
    assert result["at"] == pytest.approx(2e-3, rel=0.05)


def test_listener_receives_connection_at_syn_arrival():
    sim = Simulator()
    net = Network(sim, latency=1e-3)
    listener = net.bind("https")

    def client(sim):
        yield from net.connect("client0", "https")

    sim.process(client(sim))
    sim.run(until=1.5e-3)
    assert listener.readable
    ssock = listener.accept()
    assert ssock is not None
    assert listener.accept() is None
    assert not listener.readable


def test_connected_pair_exchanges_data():
    sim = Simulator()
    net = Network(sim, latency=0.1e-3)
    listener = net.bind("https")
    result = {}

    def client(sim):
        sock = yield from net.connect("client0", "https")
        sock.send(b"ping")
        while True:
            msg = sock.recv()
            if msg is not None:
                result["reply"] = msg
                return
            yield sim.timeout(0.05e-3)

    def server(sim):
        while not listener.readable:
            yield sim.timeout(0.05e-3)
        sock = listener.accept()
        while True:
            msg = sock.recv()
            if msg is not None:
                sock.send(b"pong:" + msg)
                return
            yield sim.timeout(0.05e-3)

    sim.process(client(sim))
    sim.process(server(sim))
    sim.run()
    assert result["reply"] == b"pong:ping"


def test_connect_unbound_addr_refused():
    sim = Simulator()
    net = Network(sim)
    with pytest.raises(ConnectionRefusedError):
        net.lookup("nowhere")


def test_double_bind_rejected():
    sim = Simulator()
    net = Network(sim)
    net.bind("x")
    with pytest.raises(ValueError):
        net.bind("x")


def test_links_are_per_machine_pair():
    sim = Simulator()
    net = Network(sim)
    l1 = net.link("client0", "server")
    l2 = net.link("client1", "server")
    l3 = net.link("client0", "server")
    assert l1 is l3
    assert l1 is not l2


def test_connection_count_and_handshake_bytes():
    sim = Simulator()
    net = Network(sim, latency=1e-6)
    net.bind("https")

    def client(sim):
        yield from net.connect("client0", "https")

    sim.process(client(sim))
    sim.run()
    assert net.connections_established == 1
    assert net.link("client0", "server").bytes_carried == TCP_HANDSHAKE_BYTES
