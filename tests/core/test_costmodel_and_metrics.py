"""Tests for the cost model, metrics and configuration presets."""

import pytest

from repro.core import (CONFIG_NAMES, ClientMetrics, CostModel,
                        default_cost_model, make_server_config)
from repro.crypto.ops import CryptoOp, CryptoOpKind


# -- cost model ---------------------------------------------------------------

def test_rsa_costs_scale_with_bits():
    cm = default_cost_model()
    c1 = cm.software_cost(CryptoOp(CryptoOpKind.RSA_PRIV, rsa_bits=1024))
    c2 = cm.software_cost(CryptoOp(CryptoOpKind.RSA_PRIV, rsa_bits=2048))
    assert c2 > 3 * c1  # RSA private op ~ cubic in modulus size


def test_rsa_pub_much_cheaper_than_priv():
    cm = default_cost_model()
    pub = cm.software_cost(CryptoOp(CryptoOpKind.RSA_PUB, rsa_bits=2048))
    priv = cm.software_cost(CryptoOp(CryptoOpKind.RSA_PRIV, rsa_bits=2048))
    assert priv > 20 * pub


def test_p256_montgomery_flag_changes_costs():
    fast = CostModel(p256_montgomery=True)
    slow = CostModel(p256_montgomery=False)
    op = CryptoOp(CryptoOpKind.ECDSA_SIGN, curve="P-256")
    ratio = slow.software_cost(op) / fast.software_cost(op)
    assert ratio == pytest.approx(2.33, rel=0.02)  # the paper's figure
    # Other curves are unaffected.
    other = CryptoOp(CryptoOpKind.ECDSA_SIGN, curve="P-384")
    assert slow.software_cost(other) == fast.software_cost(other)


def test_binary_curves_slower_than_p256():
    cm = default_cost_model()
    p256 = cm.software_cost(CryptoOp(CryptoOpKind.ECDH_COMPUTE,
                                     curve="P-256"))
    b283 = cm.software_cost(CryptoOp(CryptoOpKind.ECDH_COMPUTE,
                                     curve="B-283"))
    assert b283 > 5 * p256


def test_cipher_cost_linear_in_bytes():
    cm = default_cost_model()
    small = cm.software_cost(CryptoOp(CryptoOpKind.RECORD_CIPHER,
                                      nbytes=1024))
    big = cm.software_cost(CryptoOp(CryptoOpKind.RECORD_CIPHER,
                                    nbytes=16384))
    assert big > 2 * small
    assert big - small == pytest.approx(cm.cipher_per_byte * (16384 - 1024))


def test_unknown_lookups_raise():
    cm = default_cost_model()
    with pytest.raises(ValueError):
        cm.software_cost(CryptoOp(CryptoOpKind.RSA_PRIV, rsa_bits=999))
    with pytest.raises(ValueError):
        cm.software_cost(CryptoOp(CryptoOpKind.ECDSA_SIGN, curve="P-999"))


def test_net_tx_cost():
    cm = default_cost_model()
    assert cm.net_tx_cost(0) == pytest.approx(cm.net_tx_fixed)
    assert cm.net_tx_cost(16384) > cm.net_tx_cost(1024)


# -- configuration presets ------------------------------------------------------

def test_all_config_presets_valid():
    for name in CONFIG_NAMES:
        cfg = make_server_config(name, workers=2)
        cfg.validate()


def test_preset_shapes():
    assert not make_server_config("SW", 2).uses_qat
    qs = make_server_config("QAT+S", 2)
    assert qs.uses_qat and not qs.async_offload
    qa = make_server_config("QAT+A", 2)
    assert qa.async_offload
    assert qa.ssl_engine.qat_poll_mode == "timer"
    assert qa.async_notify_mode == "fd"
    ah = make_server_config("QAT+AH", 2)
    assert ah.ssl_engine.qat_poll_mode == "heuristic"
    assert ah.async_notify_mode == "fd"
    qt = make_server_config("QTLS", 2)
    assert qt.ssl_engine.qat_poll_mode == "heuristic"
    assert qt.async_notify_mode == "queue"


def test_unknown_config_rejected():
    with pytest.raises(ValueError, match="unknown configuration"):
        make_server_config("GPU", 2)


def test_config_overrides():
    cfg = make_server_config("QTLS", 2,
                             qat_heuristic_poll_asym_threshold=96,
                             session_cache_enabled=False)
    assert cfg.ssl_engine.qat_heuristic_poll_asym_threshold == 96
    assert not cfg.session_cache_enabled


def test_unknown_override_rejected():
    with pytest.raises(ValueError, match="unknown overrides"):
        make_server_config("QTLS", 2, bogus_flag=True)


# -- metrics ------------------------------------------------------------------------

def test_cps_windowing():
    m = ClientMetrics()
    for t in (0.05, 0.15, 0.25, 0.35):
        m.record_handshake(t, 0.001, resumed=False)
    assert m.cps(0.1, 0.3) == pytest.approx(2 / 0.2)
    assert m.count_handshakes(0.0, 1.0) == 4


def test_cps_filters_resumed():
    m = ClientMetrics()
    m.record_handshake(0.1, 0.001, resumed=False)
    m.record_handshake(0.2, 0.001, resumed=True)
    assert m.cps(0.0, 1.0, resumed=True) == pytest.approx(1.0)
    assert m.cps(0.0, 1.0, resumed=False) == pytest.approx(1.0)


def test_throughput_and_latency():
    m = ClientMetrics()
    m.record_request(0.1, latency=0.002, payload_bytes=1000)
    m.record_request(0.2, latency=0.004, payload_bytes=3000)
    assert m.throughput_bps(0.0, 1.0) == pytest.approx(4000 * 8)
    assert m.mean_latency(0.0, 1.0) == pytest.approx(0.003)


def test_empty_window_rejected():
    m = ClientMetrics()
    with pytest.raises(ValueError):
        m.cps(0.5, 0.5)
    with pytest.raises(ValueError):
        m.mean_latency(0.0, 1.0)  # no events -> mean of empty


def test_latency_percentiles():
    m = ClientMetrics()
    for i in range(100):
        m.record_request(0.1 + i * 1e-4, latency=(i + 1) / 1000.0,
                         payload_bytes=1)
    assert m.latency_percentile(0.0, 1.0, 50) == pytest.approx(0.050, rel=0.05)
    assert m.latency_percentile(0.0, 1.0, 99) == pytest.approx(0.099, rel=0.05)
    assert m.latency_percentile(0.0, 1.0, 0) == pytest.approx(0.001)
    with pytest.raises(ValueError):
        m.latency_percentile(0.0, 1.0, 150)
    with pytest.raises(ValueError):
        ClientMetrics().latency_percentile(0.0, 1.0, 50)
