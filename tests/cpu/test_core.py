"""Tests for the simulated CPU core model."""

import pytest

from repro.cpu import Core, CpuTopology
from repro.sim import Simulator


def run_consumer(sim, core, cost, owner=None, log=None, name=""):
    def proc(sim):
        yield from core.consume(cost, owner=owner)
        if log is not None:
            log.append((name, sim.now))

    return sim.process(proc(sim))


def test_consume_advances_time_by_cost():
    sim = Simulator()
    core = Core(sim, 0)
    run_consumer(sim, core, 5e-3)
    sim.run()
    assert sim.now == pytest.approx(5e-3)
    assert core.stats.busy_time == pytest.approx(5e-3)


def test_speed_scales_duration():
    sim = Simulator()
    core = Core(sim, 0, speed=0.5)
    run_consumer(sim, core, 1e-3)
    sim.run()
    assert sim.now == pytest.approx(2e-3)


def test_core_serializes_two_processes():
    sim = Simulator()
    core = Core(sim, 0, context_switch_cost=0.0)
    log = []
    run_consumer(sim, core, 1e-3, log=log, name="a")
    run_consumer(sim, core, 1e-3, log=log, name="b")
    sim.run()
    assert log == [("a", pytest.approx(1e-3)), ("b", pytest.approx(2e-3))]


def test_context_switch_charged_on_owner_change():
    sim = Simulator()
    core = Core(sim, 0, context_switch_cost=10e-6)

    def proc(sim):
        yield from core.consume(1e-3, owner="worker")
        yield from core.consume(1e-3, owner="poller")   # switch
        yield from core.consume(1e-3, owner="poller")   # no switch
        yield from core.consume(1e-3, owner="worker")   # switch

    sim.process(proc(sim))
    sim.run()
    assert core.stats.context_switches == 2
    assert sim.now == pytest.approx(4e-3 + 2 * 10e-6)


def test_no_switch_charged_without_owner():
    sim = Simulator()
    core = Core(sim, 0, context_switch_cost=10e-6)

    def proc(sim):
        yield from core.consume(1e-3)
        yield from core.consume(1e-3)

    sim.process(proc(sim))
    sim.run()
    assert core.stats.context_switches == 0


def test_kernel_crossing_cost_and_stats():
    sim = Simulator()
    core = Core(sim, 0, kernel_switch_cost=5e-6)

    def proc(sim):
        yield from core.kernel_crossing()
        yield from core.kernel_crossing(extra=3e-6)

    sim.process(proc(sim))
    sim.run()
    assert core.stats.kernel_crossings == 2
    assert sim.now == pytest.approx(2 * 5e-6 + 3e-6)


def test_negative_cost_rejected():
    sim = Simulator()
    core = Core(sim, 0)

    def proc(sim):
        yield from core.consume(-1.0)

    sim.process(proc(sim))
    with pytest.raises(ValueError):
        sim.run()


def test_invalid_speed():
    sim = Simulator()
    with pytest.raises(ValueError):
        Core(sim, 0, speed=0)


def test_topology_builds_cores():
    sim = Simulator()
    topo = CpuTopology(sim, 8, ht_efficiency=0.6)
    assert len(topo) == 8
    assert all(c.speed == 0.6 for c in topo.cores)
    assert topo[3].core_id == 3


def test_topology_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        CpuTopology(sim, 0)
    with pytest.raises(ValueError):
        CpuTopology(sim, 2, ht_efficiency=1.5)


def test_topology_total_busy_time():
    sim = Simulator()
    topo = CpuTopology(sim, 2)
    run_consumer(sim, topo[0], 1e-3)
    run_consumer(sim, topo[1], 2e-3)
    sim.run()
    assert topo.total_busy_time() == pytest.approx(3e-3)


def test_cores_run_in_parallel():
    sim = Simulator()
    topo = CpuTopology(sim, 2)
    log = []
    run_consumer(sim, topo[0], 1e-3, log=log, name="a")
    run_consumer(sim, topo[1], 1e-3, log=log, name="b")
    sim.run()
    # Both finish at t=1ms: different cores do not serialize.
    assert [t for _, t in log] == [pytest.approx(1e-3)] * 2
