"""TLS 1.3 AEAD record layer tests."""

import numpy as np
import pytest

from repro.crypto.provider import ModeledCryptoProvider, RealCryptoProvider
from repro.tls import TlsAlert
from repro.tls.actions import DirectionKeys
from repro.tls.constants import ProtocolVersion
from repro.tls.loopback import run_record_exchange
from repro.tls.record import RecordLayer

PROVIDERS = [RealCryptoProvider(), ModeledCryptoProvider()]
IDS = ["real", "modeled"]


def make_layers(provider):
    ck = DirectionKeys(mac_key=b"", enc_key=b"\x02" * 16, iv=b"\x03" * 12)
    sk = DirectionKeys(mac_key=b"", enc_key=b"\x05" * 16, iv=b"\x06" * 12)
    sender = RecordLayer(provider, write_keys=ck, read_keys=sk,
                         rng=np.random.default_rng(0),
                         version=ProtocolVersion.TLS13)
    receiver = RecordLayer(provider, write_keys=sk, read_keys=ck,
                           rng=np.random.default_rng(1),
                           version=ProtocolVersion.TLS13)
    return sender, receiver


@pytest.fixture(params=PROVIDERS, ids=IDS)
def provider(request):
    return request.param


def test_aead_flag_follows_version(provider):
    sender, _ = make_layers(provider)
    assert sender.aead
    ck = DirectionKeys(mac_key=b"\x01" * 20, enc_key=b"\x02" * 16,
                       iv=b"\x03" * 16)
    legacy = RecordLayer(provider, write_keys=ck, read_keys=ck,
                         rng=np.random.default_rng(0))
    assert not legacy.aead


def test_aead_roundtrip(provider):
    sender, receiver = make_layers(provider)
    data = bytes(range(200))
    records = run_record_exchange(sender.protect(data))
    out = run_record_exchange(receiver.unprotect(records[0]))
    assert out == data


def test_aead_fragmentation(provider):
    sender, receiver = make_layers(provider)
    data = b"q" * 40_000
    records = run_record_exchange(sender.protect(data))
    assert len(records) == 3
    out = b"".join(run_record_exchange(receiver.unprotect(r))
                   for r in records)
    assert out == data


def test_aead_overhead_is_17_bytes(provider):
    """RFC 8446: ciphertext = inner (payload + content type) + tag."""
    sender, _ = make_layers(provider)
    (rec,) = run_record_exchange(sender.protect(b"x" * 1000))
    assert len(rec.fragment) == 1000 + 1 + 16


def test_aead_cross_provider_sizes_match():
    sizes = []
    for provider in PROVIDERS:
        sender, _ = make_layers(provider)
        recs = run_record_exchange(sender.protect(b"\x00" * 5000))
        sizes.append([r.wire_size() for r in recs])
    assert sizes[0] == sizes[1]


def test_aead_out_of_order_rejected(provider):
    sender, receiver = make_layers(provider)
    records = run_record_exchange(sender.protect(b"A" * 20_000))
    with pytest.raises(TlsAlert, match="bad_record_mac"):
        run_record_exchange(receiver.unprotect(records[1]))


def test_aead_tamper_rejected(provider):
    from repro.tls.record import TlsRecord
    sender, receiver = make_layers(provider)
    (rec,) = run_record_exchange(sender.protect(b"secret"))
    bad = TlsRecord(rec.content_type, rec.version,
                    rec.fragment[:-1] + bytes([rec.fragment[-1] ^ 1]),
                    rec.plaintext_len)
    with pytest.raises(TlsAlert, match="bad_record_mac"):
        run_record_exchange(receiver.unprotect(bad))


def test_tls13_end_to_end_uses_aead():
    """Full simulated TLS 1.3 connection exercises GCM records."""
    from repro.bench.runner import Testbed
    bed = Testbed("SW", workers=1, suites=("TLS1.3-ECDHE-RSA",),
                  tls_version="1.3", seed=3)
    bed.add_ab_fleet(n_clients=2, file_size=4096)
    bed.sim.run(until=0.1)
    assert bed.metrics.errors == 0
    assert len(bed.metrics.requests) > 3
    worker = bed.server.workers[0]
    layers = [c.ssl.record_layer for c in worker.conns.values()
              if c.ssl.record_layer is not None]
    assert layers and all(l.aead for l in layers)
