"""Record layer tests: fragmentation, protection, sequence handling."""

import numpy as np
import pytest

from repro.crypto.ops import CryptoOpKind as K
from repro.crypto.provider import ModeledCryptoProvider, RealCryptoProvider
from repro.tls import MAX_FRAGMENT, TlsAlert
from repro.tls.actions import DirectionKeys
from repro.tls.loopback import OpLog, run_record_exchange
from repro.tls.record import RECORD_HEADER_LEN, RecordLayer


def make_layers(provider, seed=0):
    ck = DirectionKeys(mac_key=b"\x01" * 20, enc_key=b"\x02" * 16,
                       iv=b"\x03" * 16)
    sk = DirectionKeys(mac_key=b"\x04" * 20, enc_key=b"\x05" * 16,
                       iv=b"\x06" * 16)
    sender = RecordLayer(provider, write_keys=ck, read_keys=sk,
                         rng=np.random.default_rng(seed))
    receiver = RecordLayer(provider, write_keys=sk, read_keys=ck,
                           rng=np.random.default_rng(seed + 1))
    return sender, receiver


PROVIDERS = [RealCryptoProvider(), ModeledCryptoProvider()]
IDS = ["real", "modeled"]


@pytest.fixture(params=PROVIDERS, ids=IDS)
def provider(request):
    return request.param


def test_fragmentation_boundaries():
    assert RecordLayer.fragments(b"") == [b""]
    assert len(RecordLayer.fragments(b"x" * MAX_FRAGMENT)) == 1
    assert len(RecordLayer.fragments(b"x" * (MAX_FRAGMENT + 1))) == 2
    frags = RecordLayer.fragments(b"x" * (128 * 1024))
    assert len(frags) == 8  # the paper's 128KB -> 8 cipher ops example
    assert all(len(f) <= MAX_FRAGMENT for f in frags)
    assert b"".join(frags) == b"x" * (128 * 1024)


def test_protect_unprotect_roundtrip(provider):
    sender, receiver = make_layers(provider)
    data = bytes(range(256)) * 4
    records = run_record_exchange(sender.protect(data))
    assert len(records) == 1
    out = run_record_exchange(receiver.unprotect(records[0]))
    assert out == data


def test_one_cipher_op_per_fragment(provider):
    sender, _ = make_layers(provider)
    oplog = OpLog()
    data = b"z" * (64 * 1024)  # 4 fragments
    records = run_record_exchange(sender.protect(data), oplog)
    assert len(records) == 4
    assert oplog.count(K.RECORD_CIPHER) == 4


def test_multi_record_stream_reassembles(provider):
    sender, receiver = make_layers(provider)
    data = bytes(np.random.default_rng(7).bytes(40_000))
    records = run_record_exchange(sender.protect(data))
    out = b"".join(run_record_exchange(receiver.unprotect(r))
                   for r in records)
    assert out == data


def test_out_of_order_record_rejected(provider):
    """Sequence numbers are implicit: swapping records breaks the MAC."""
    sender, receiver = make_layers(provider)
    records = run_record_exchange(sender.protect(b"A" * 20000))
    assert len(records) == 2
    with pytest.raises(TlsAlert, match="bad_record_mac"):
        run_record_exchange(receiver.unprotect(records[1]))


def test_wire_size_accounts_overhead(provider):
    sender, _ = make_layers(provider)
    (record,) = run_record_exchange(sender.protect(b"q" * 1000))
    # IV (16) + payload + MAC (20) + padding, plus the record header.
    assert record.wire_size() > 1000 + RECORD_HEADER_LEN + 16 + 20
    assert record.wire_size() <= 1000 + RECORD_HEADER_LEN + 16 + 20 + 16


def test_cross_provider_sizes_match():
    """Wire sizes must be provider-independent (perf model invariant)."""
    for size in (0, 1, 100, 16384, 30000):
        sizes = []
        for provider in PROVIDERS:
            sender, _ = make_layers(provider)
            records = run_record_exchange(sender.protect(b"\x00" * size))
            sizes.append([r.wire_size() for r in records])
        assert sizes[0] == sizes[1], f"size={size}"


def test_tampered_record_rejected(provider):
    sender, receiver = make_layers(provider)
    (record,) = run_record_exchange(sender.protect(b"secret data"))
    from repro.tls.record import TlsRecord
    bad = TlsRecord(record.content_type, record.version,
                    record.fragment[:-1] + bytes([record.fragment[-1] ^ 1]),
                    record.plaintext_len)
    with pytest.raises(TlsAlert, match="bad_record_mac"):
        run_record_exchange(receiver.unprotect(bad))


def test_counters(provider):
    sender, receiver = make_layers(provider)
    records = run_record_exchange(sender.protect(b"x" * 40000))
    for r in records:
        run_record_exchange(receiver.unprotect(r))
    assert sender.records_protected == 3
    assert receiver.records_opened == 3
