"""Stateless session ticket (RFC 5077) tests."""

import numpy as np
import pytest

from repro.tls.session import SessionState
from repro.tls.suites import ECDHE_RSA, TLS_RSA
from repro.tls.ticket import TicketKeeper


def make_state(suite=ECDHE_RSA):
    return SessionState(session_id=b"\x11" * 16, suite=suite,
                        master_secret=b"\x22" * 48, created_at=0.0)


def test_seal_open_roundtrip():
    keeper = TicketKeeper(b"\x01" * 16)
    ticket = keeper.seal(make_state(), now=100.0)
    state = keeper.open(ticket, now=200.0)
    assert state is not None
    assert state.master_secret == b"\x22" * 48
    assert state.suite is ECDHE_RSA
    assert state.session_id == b"\x11" * 16
    assert keeper.issued == 1 and keeper.accepted == 1


def test_expired_ticket_rejected():
    keeper = TicketKeeper(b"\x01" * 16, lifetime=50.0)
    ticket = keeper.seal(make_state(), now=100.0)
    assert keeper.open(ticket, now=151.0) is None
    assert keeper.rejected == 1


def test_tampered_ticket_rejected():
    keeper = TicketKeeper(b"\x01" * 16)
    ticket = bytearray(keeper.seal(make_state(), now=0.0))
    ticket[-1] ^= 1
    assert keeper.open(bytes(ticket), now=0.0) is None


def test_wrong_key_rejected():
    k1 = TicketKeeper(b"\x01" * 16)
    k2 = TicketKeeper(b"\x02" * 16)
    ticket = k1.seal(make_state(), now=0.0)
    assert k2.open(ticket, now=0.0) is None


def test_garbage_rejected():
    keeper = TicketKeeper(b"\x01" * 16)
    assert keeper.open(b"", now=0.0) is None
    assert keeper.open(b"\x00" * 64, now=0.0) is None


def test_tickets_are_unique():
    keeper = TicketKeeper(b"\x01" * 16)
    t1 = keeper.seal(make_state(), now=0.0)
    t2 = keeper.seal(make_state(), now=0.0)
    assert t1 != t2  # fresh nonce per ticket


def test_validation():
    with pytest.raises(ValueError):
        TicketKeeper(b"short")
    with pytest.raises(ValueError):
        TicketKeeper(b"\x01" * 16, lifetime=0)


# -- handshake integration ------------------------------------------------------

def test_ticket_resumption_without_cache():
    """A server with NO session cache resumes purely from the ticket."""
    from repro.crypto.provider import ModeledCryptoProvider
    from repro.tls import (TlsClientConfig, TlsServerConfig,
                           client_handshake12, run_loopback_handshake,
                           server_handshake12)

    provider = ModeledCryptoProvider()
    rng = np.random.default_rng
    keeper = TicketKeeper(b"\x07" * 16)
    scfg = TlsServerConfig(
        provider=provider, suites=(TLS_RSA,), rng=rng(2),
        credentials_rsa=provider.make_rsa_credentials(1024, rng(1)),
        session_cache=None, issue_tickets=True, ticket_keeper=keeper,
        clock=lambda: 42.0)
    ccfg = TlsClientConfig(provider=provider, suites=(TLS_RSA,), rng=rng(3))
    c1, s1 = run_loopback_handshake(client_handshake12(ccfg),
                                    server_handshake12(scfg))
    assert c1.session_ticket is not None
    assert not s1.resumed

    ccfg2 = TlsClientConfig(provider=provider, suites=(TLS_RSA,),
                            rng=rng(4), session_ticket=c1.session_ticket,
                            session_master_secret=c1.master_secret,
                            session_suite=c1.suite)
    c2, s2 = run_loopback_handshake(client_handshake12(ccfg2),
                                    server_handshake12(scfg))
    assert s2.resumed and c2.resumed
    assert s2.master_secret == s1.master_secret
    assert keeper.accepted == 1


def test_ticket_resumption_end_to_end():
    """Full simulated server with tickets enabled and cache disabled."""
    from repro.bench.runner import Testbed
    bed = Testbed("QTLS", workers=2, suites=("ECDHE-RSA",), seed=5,
                  session_cache_enabled=False, session_tickets=True)
    bed.add_s_time_fleet(n_clients=10, reuse=True)
    bed.sim.run(until=0.1)
    snap = bed.server.metrics_snapshot()
    assert snap["handshakes_resumed"] > snap["handshakes_full"]
    assert bed.server.ticket_keeper.accepted > 0
    assert bed.metrics.errors == 0
