"""TLS 1.3 handshake tests: agreement, op counts, HKDF non-offloadability."""

import numpy as np
import pytest

from repro.crypto.ops import CryptoOpKind as K
from repro.crypto.provider import ModeledCryptoProvider, RealCryptoProvider
from repro.tls import (TLS13_ECDHE_RSA, OpLog, TlsAlert, TlsClientConfig,
                       TlsServerConfig, client_handshake13,
                       run_loopback_handshake, server_handshake13)

PROVIDERS = [RealCryptoProvider(), ModeledCryptoProvider()]
IDS = ["real", "modeled"]


def make_configs(provider, curve="P-256", seed=0):
    rng = np.random.default_rng
    scfg = TlsServerConfig(
        provider=provider, suites=(TLS13_ECDHE_RSA,),
        rng=rng(seed + 2), curves=(curve,),
        credentials_rsa=provider.make_rsa_credentials(1024, rng(seed + 1)))
    ccfg = TlsClientConfig(provider=provider, suites=(TLS13_ECDHE_RSA,),
                           rng=rng(seed + 3), curves=(curve,))
    return scfg, ccfg


@pytest.fixture(params=PROVIDERS, ids=IDS)
def provider(request):
    return request.param


def test_tls13_handshake_agrees(provider):
    scfg, ccfg = make_configs(provider)
    cres, sres = run_loopback_handshake(client_handshake13(ccfg),
                                        server_handshake13(scfg))
    assert cres.master_secret == sres.master_secret
    assert cres.client_write_keys == sres.client_write_keys
    assert cres.server_write_keys == sres.server_write_keys
    assert sres.negotiated_curve == "P-256"


def test_tls13_one_rtt_shape():
    """Client sends exactly one flight before the server's reply:
    ClientHello only (1-RTT)."""
    from collections import deque

    from repro.tls.loopback import SyncDriver

    provider = ModeledCryptoProvider()
    scfg, ccfg = make_configs(provider)
    c = SyncDriver(client_handshake13(ccfg))
    first_flight = []
    c.pump(deque(), first_flight)
    assert len(first_flight) == 1
    assert type(first_flight[0]).__name__ == "ClientHello"


def test_table1_tls13_op_counts():
    """Table 1 row '1.3 ECDHE-RSA': RSA=1, ECC=2, HKDF > 4."""
    provider = RealCryptoProvider()
    scfg, ccfg = make_configs(provider)
    slog = OpLog()
    run_loopback_handshake(client_handshake13(ccfg),
                           server_handshake13(scfg), server_oplog=slog)
    assert slog.count(K.RSA_PRIV) == 1
    assert slog.count(K.ECDH_KEYGEN, K.ECDH_COMPUTE) == 2
    assert slog.count(K.HKDF) > 4
    assert slog.count(K.PRF) == 0  # TLS 1.3 replaced the PRF with HKDF


def test_hkdf_ops_not_offloadable():
    """Every HKDF op must be flagged non-offloadable — the cause of
    Figure 8's lower speedup."""
    provider = RealCryptoProvider()
    scfg, ccfg = make_configs(provider)
    slog = OpLog()
    run_loopback_handshake(client_handshake13(ccfg),
                           server_handshake13(scfg), server_oplog=slog)
    hkdf_ops = [op for op in slog.ops if op.kind is K.HKDF]
    assert hkdf_ops and all(not op.qat_offloadable for op in hkdf_ops)
    asym = [op for op in slog.ops if op.kind in (K.RSA_PRIV, K.ECDH_KEYGEN,
                                                 K.ECDH_COMPUTE)]
    assert asym and all(op.qat_offloadable for op in asym)


def test_client_without_keyshare_rejected():
    provider = ModeledCryptoProvider()
    scfg, _ = make_configs(provider)
    from repro.tls.messages import ClientHello

    def fake_client():
        from repro.tls.actions import NeedMessage, SendMessage
        yield SendMessage(ClientHello(
            client_random=b"\x00" * 32,
            cipher_suites=("TLS1.3-ECDHE-RSA",),
            supported_curves=("P-256",)), flush=True)
        yield NeedMessage(())

    with pytest.raises(TlsAlert, match="no key_share"):
        run_loopback_handshake(fake_client(), server_handshake13(scfg))


def test_unsupported_group_rejected():
    provider = ModeledCryptoProvider()
    scfg, ccfg = make_configs(provider)
    ccfg.curves = ("P-384",)
    with pytest.raises(TlsAlert, match="unsupported key-share group"):
        run_loopback_handshake(client_handshake13(ccfg),
                               server_handshake13(scfg))


def test_tampered_certificate_verify_rejected():
    provider = RealCryptoProvider()
    scfg, ccfg = make_configs(provider)
    evil = provider.make_rsa_credentials(1024, np.random.default_rng(55))

    patched = RealCryptoProvider()
    real_sign = provider.sign
    patched.sign = lambda cred, msg: real_sign(evil, msg)
    scfg.provider = patched
    with pytest.raises(TlsAlert, match="bad CertificateVerify"):
        run_loopback_handshake(client_handshake13(ccfg),
                               server_handshake13(scfg))
