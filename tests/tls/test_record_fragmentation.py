"""Record-layer fragmentation edges: payloads of exactly
``MAX_FRAGMENT``, ``MAX_FRAGMENT + 1`` and zero-length application
data must round-trip with the expected cipher-op counts in both
TLS 1.2 (CBC + HMAC) and TLS 1.3 (AEAD)."""

import numpy as np
import pytest

from repro.crypto.ops import CryptoOpKind as K
from repro.crypto.provider import ModeledCryptoProvider, RealCryptoProvider
from repro.tls import MAX_FRAGMENT
from repro.tls.actions import DirectionKeys
from repro.tls.constants import ProtocolVersion
from repro.tls.loopback import OpLog, run_record_exchange
from repro.tls.record import RecordLayer

PROVIDERS = [RealCryptoProvider(), ModeledCryptoProvider()]
PROVIDER_IDS = ["real", "modeled"]
VERSIONS = [ProtocolVersion.TLS12, ProtocolVersion.TLS13]
VERSION_IDS = ["tls12-cbc-hmac", "tls13-aead"]

# payload length -> expected fragment/cipher-op count
EDGE_CASES = [
    (0, 1),                  # empty app data still costs one record
    (MAX_FRAGMENT, 1),       # exactly one full fragment
    (MAX_FRAGMENT + 1, 2),   # one byte over spills a second record
]


def make_layers(provider, version, seed=0):
    ck = DirectionKeys(mac_key=b"\x01" * 20, enc_key=b"\x02" * 16,
                       iv=b"\x03" * 16)
    sk = DirectionKeys(mac_key=b"\x04" * 20, enc_key=b"\x05" * 16,
                       iv=b"\x06" * 16)
    sender = RecordLayer(provider, write_keys=ck, read_keys=sk,
                         rng=np.random.default_rng(seed), version=version)
    receiver = RecordLayer(provider, write_keys=sk, read_keys=ck,
                           rng=np.random.default_rng(seed + 1),
                           version=version)
    return sender, receiver


@pytest.fixture(params=PROVIDERS, ids=PROVIDER_IDS)
def provider(request):
    return request.param


@pytest.fixture(params=VERSIONS, ids=VERSION_IDS)
def version(request):
    return request.param


@pytest.mark.parametrize("size,expected_records", EDGE_CASES,
                         ids=["empty", "max-fragment", "max-fragment+1"])
def test_edge_payload_roundtrip_and_op_count(provider, version, size,
                                             expected_records):
    sender, receiver = make_layers(provider, version)
    data = bytes(range(256))[:1] * size  # deterministic b"\x00" * size
    oplog = OpLog()
    records = run_record_exchange(sender.protect(data), oplog)
    assert len(records) == expected_records
    assert oplog.count(K.RECORD_CIPHER) == expected_records
    assert sender.records_protected == expected_records
    # The second record of MAX_FRAGMENT+1 carries exactly one byte.
    assert [r.plaintext_len for r in records] == (
        [MAX_FRAGMENT, 1] if expected_records == 2 else [size])
    open_log = OpLog()
    out = b"".join(run_record_exchange(receiver.unprotect(r), open_log)
                   for r in records)
    assert out == data
    assert open_log.count(K.RECORD_CIPHER) == expected_records
    assert receiver.records_opened == expected_records


def test_aead_flag_tracks_version(provider):
    tls12, _ = make_layers(provider, ProtocolVersion.TLS12)
    tls13, _ = make_layers(provider, ProtocolVersion.TLS13)
    assert not tls12.aead
    assert tls13.aead


def test_empty_record_wire_size_positive(provider, version):
    """A zero-length fragment still pays IV/MAC (1.2) or tag (1.3)
    overhead on the wire — it must never serialize to nothing."""
    sender, receiver = make_layers(provider, version)
    (record,) = run_record_exchange(sender.protect(b""))
    assert record.plaintext_len == 0
    assert record.wire_size() > 0
    assert run_record_exchange(receiver.unprotect(record)) == b""
