"""TLS 1.3 PSK resumption tests (extension beyond the paper's
evaluation; see DESIGN.md)."""

import numpy as np
import pytest

from repro.crypto.ops import CryptoOpKind as K
from repro.crypto.provider import ModeledCryptoProvider, RealCryptoProvider
from repro.tls import (TLS13_ECDHE_RSA, OpLog, TlsAlert, TlsClientConfig,
                       TlsServerConfig, client_handshake13,
                       run_loopback_handshake, server_handshake13)
from repro.tls.ticket import TicketKeeper


def make_server_config(provider, keeper, seed=0):
    rng = np.random.default_rng
    return TlsServerConfig(
        provider=provider, suites=(TLS13_ECDHE_RSA,), rng=rng(seed + 2),
        credentials_rsa=provider.make_rsa_credentials(1024, rng(seed + 1)),
        issue_tickets=True, ticket_keeper=keeper, clock=lambda: 50.0)


def first_and_resumed(provider, tamper_psk=False, server_oplog=None):
    keeper = TicketKeeper(b"\x09" * 16)
    scfg = make_server_config(provider, keeper)
    ccfg = TlsClientConfig(provider=provider, suites=(TLS13_ECDHE_RSA,),
                           rng=np.random.default_rng(3))
    c1, s1 = run_loopback_handshake(client_handshake13(ccfg),
                                    server_handshake13(scfg))
    assert c1.session_ticket is not None
    assert c1.resumption_psk is not None
    psk = c1.resumption_psk
    if tamper_psk:
        psk = bytes(b ^ 1 for b in psk)
    ccfg2 = TlsClientConfig(provider=provider, suites=(TLS13_ECDHE_RSA,),
                            rng=np.random.default_rng(4),
                            session_ticket=c1.session_ticket,
                            session_master_secret=psk,
                            session_suite=c1.suite)
    c2, s2 = run_loopback_handshake(client_handshake13(ccfg2),
                                    server_handshake13(scfg),
                                    server_oplog=server_oplog)
    return c1, s1, c2, s2


@pytest.mark.parametrize("provider", [RealCryptoProvider(),
                                      ModeledCryptoProvider()],
                         ids=["real", "modeled"])
def test_psk_resumption_agrees(provider):
    c1, s1, c2, s2 = first_and_resumed(provider)
    assert not s1.resumed
    assert s2.resumed and c2.resumed
    assert c2.master_secret == s2.master_secret
    assert c2.client_write_keys == s2.client_write_keys
    # Fresh ECDHE: keys differ from the first connection.
    assert c2.master_secret != c1.master_secret


def test_resumed_handshake_skips_rsa_keeps_ecc():
    """psk_dhe_ke: no certificate signature, but still 2 ECC ops —
    the offload-relevant op mix of 1.3 resumption."""
    slog = OpLog()
    first_and_resumed(ModeledCryptoProvider(), server_oplog=slog)
    assert slog.count(K.RSA_PRIV) == 0
    assert slog.count(K.ECDH_KEYGEN, K.ECDH_COMPUTE) == 2
    assert slog.count(K.HKDF) > 4


def test_wrong_psk_binder_rejected():
    with pytest.raises(TlsAlert, match="binder verify failed"):
        first_and_resumed(ModeledCryptoProvider(), tamper_psk=True)


def test_resumed_connection_gets_new_ticket():
    c1, s1, c2, s2 = first_and_resumed(ModeledCryptoProvider())
    assert c2.session_ticket is not None
    assert c2.session_ticket != c1.session_ticket
    assert c2.resumption_psk != c1.resumption_psk


def test_unknown_ticket_falls_back_to_full():
    provider = ModeledCryptoProvider()
    keeper = TicketKeeper(b"\x09" * 16)
    scfg = make_server_config(provider, keeper)
    ccfg = TlsClientConfig(provider=provider, suites=(TLS13_ECDHE_RSA,),
                           rng=np.random.default_rng(5),
                           session_ticket=b"\x00" * 64,  # bogus
                           session_master_secret=b"\x01" * 32,
                           session_suite=TLS13_ECDHE_RSA)
    c, s = run_loopback_handshake(client_handshake13(ccfg),
                                  server_handshake13(scfg))
    assert not s.resumed
    assert c.master_secret == s.master_secret


def test_expired_ticket_falls_back_to_full():
    provider = ModeledCryptoProvider()
    keeper = TicketKeeper(b"\x09" * 16, lifetime=10.0)
    scfg = make_server_config(provider, keeper)
    ccfg = TlsClientConfig(provider=provider, suites=(TLS13_ECDHE_RSA,),
                           rng=np.random.default_rng(3))
    c1, _ = run_loopback_handshake(client_handshake13(ccfg),
                                   server_handshake13(scfg))
    scfg.clock = lambda: 50.0 + 100.0  # past the lifetime
    ccfg2 = TlsClientConfig(provider=provider, suites=(TLS13_ECDHE_RSA,),
                            rng=np.random.default_rng(4),
                            session_ticket=c1.session_ticket,
                            session_master_secret=c1.resumption_psk,
                            session_suite=c1.suite)
    c2, s2 = run_loopback_handshake(client_handshake13(ccfg2),
                                    server_handshake13(scfg))
    assert not s2.resumed
    assert c2.master_secret == s2.master_secret


def test_tls13_resumption_end_to_end():
    """Full simulated server: s_time reuse over TLS 1.3."""
    from repro.bench.runner import Testbed
    bed = Testbed("QTLS", workers=2, suites=("TLS1.3-ECDHE-RSA",),
                  tls_version="1.3", seed=5, session_tickets=True)
    bed.add_s_time_fleet(n_clients=10, reuse=True)
    bed.sim.run(until=0.1)
    snap = bed.server.metrics_snapshot()
    assert snap["handshakes_resumed"] > snap["handshakes_full"]
    assert bed.metrics.errors == 0
