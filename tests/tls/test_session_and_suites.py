"""Session cache, suite registry and message encoding tests."""

import pytest

from repro.sim import Simulator
from repro.tls import (ECDHE_ECDSA, ECDHE_RSA, TLS_RSA, SessionCache,
                       SessionState, get_suite, list_suites)
from repro.tls.messages import (Certificate, ClientHello, Finished,
                                ServerKeyExchange, transcript_hash)


# -- suites ------------------------------------------------------------------

def test_suite_registry():
    assert get_suite("TLS-RSA") is TLS_RSA
    assert set(list_suites()) >= {"TLS-RSA", "ECDHE-RSA", "ECDHE-ECDSA"}
    with pytest.raises(ValueError):
        get_suite("NULL-NULL")


def test_forward_secrecy_flag():
    assert not TLS_RSA.forward_secret
    assert ECDHE_RSA.forward_secret
    assert ECDHE_ECDSA.forward_secret


def test_key_block_len():
    # 2 x (20 MAC + 16 key + 16 IV) = 104 for AES128-SHA.
    assert TLS_RSA.key_block_len == 104


# -- session cache --------------------------------------------------------------

def _state(sid=b"\x01" * 16, t=0.0):
    return SessionState(session_id=sid, suite=ECDHE_RSA,
                        master_secret=b"\x02" * 48, created_at=t)


def test_cache_put_get():
    cache = SessionCache(Simulator())
    cache.put(_state())
    assert cache.get(b"\x01" * 16) is not None
    assert cache.hits == 1


def test_cache_miss():
    cache = SessionCache(Simulator())
    assert cache.get(b"\xFF" * 16) is None
    assert cache.misses == 1


def test_cache_expiry():
    sim = Simulator()
    cache = SessionCache(sim, lifetime=10.0)
    cache.put(_state(t=0.0))
    sim.timeout(100.0)
    sim.run()
    assert cache.get(b"\x01" * 16) is None
    assert len(cache) == 0  # expired entries are dropped


def test_cache_lru_eviction():
    cache = SessionCache(Simulator(), capacity=2)
    cache.put(_state(b"a" * 16))
    cache.put(_state(b"b" * 16))
    cache.get(b"a" * 16)           # refresh "a"
    cache.put(_state(b"c" * 16))   # evicts "b"
    assert cache.get(b"b" * 16) is None
    assert cache.get(b"a" * 16) is not None


def test_cache_invalidate():
    cache = SessionCache(Simulator())
    cache.put(_state())
    cache.invalidate(b"\x01" * 16)
    assert cache.get(b"\x01" * 16) is None


def test_cache_expiry_miss_counted_separately():
    sim = Simulator()
    cache = SessionCache(sim, lifetime=10.0)
    cache.put(_state(t=0.0))
    sim.timeout(100.0)
    sim.run()
    assert cache.get(b"\x01" * 16) is None   # expired
    assert cache.get(b"\xFF" * 16) is None   # never stored
    assert cache.expiry_misses == 1
    assert cache.cold_misses == 1
    assert cache.misses == 2                 # still the sum
    assert cache.expired_evictions == 1


def test_cache_put_sweeps_expired_before_lru():
    # Regression: a cache full of dead sessions must not LRU-evict a
    # live one. Two expired entries + one live at capacity 3; a put
    # sweeps the dead pair and keeps the live session resumable.
    sim = Simulator()
    cache = SessionCache(sim, lifetime=10.0, capacity=3)
    cache.put(_state(b"d" * 16, t=0.0))      # will expire
    cache.put(_state(b"e" * 16, t=0.0))      # will expire
    sim.timeout(100.0)
    sim.run()
    cache.put(_state(b"l" * 16, t=sim.now))  # live, oldest LRU position
    cache.put(_state(b"n" * 16, t=sim.now))  # over capacity -> sweep
    assert cache.get(b"l" * 16) is not None
    assert cache.get(b"n" * 16) is not None
    assert cache.expired_evictions == 2
    assert len(cache) == 2


def test_cache_put_still_lru_evicts_live_overflow():
    # All-live overflow keeps the historical LRU behaviour.
    cache = SessionCache(Simulator(), capacity=2)
    cache.put(_state(b"a" * 16))
    cache.put(_state(b"b" * 16))
    cache.put(_state(b"c" * 16))   # evicts "a" (oldest), no expiries
    assert cache.get(b"a" * 16) is None
    assert cache.get(b"b" * 16) is not None
    assert cache.get(b"c" * 16) is not None
    assert cache.expired_evictions == 0


def test_cache_validation():
    with pytest.raises(ValueError):
        SessionCache(Simulator(), lifetime=0)
    with pytest.raises(ValueError):
        SessionCache(Simulator(), capacity=0)


# -- messages ------------------------------------------------------------------

def test_message_encoding_deterministic():
    ch1 = ClientHello(client_random=b"\x01" * 32, cipher_suites=("TLS-RSA",))
    ch2 = ClientHello(client_random=b"\x01" * 32, cipher_suites=("TLS-RSA",))
    assert ch1.to_bytes() == ch2.to_bytes()


def test_message_encoding_sensitive_to_fields():
    base = ClientHello(client_random=b"\x01" * 32)
    other = ClientHello(client_random=b"\x02" * 32)
    assert base.to_bytes() != other.to_bytes()


def test_transcript_hash_order_sensitive():
    a = ClientHello(client_random=b"\x01" * 32)
    b = Finished(verify_data=b"\x02" * 12)
    assert transcript_hash([a, b]) != transcript_hash([b, a])


def test_transcript_excludes_ccs():
    from repro.tls.messages import ChangeCipherSpec
    a = ClientHello(client_random=b"\x01" * 32)
    assert transcript_hash([a]) == transcript_hash([a, ChangeCipherSpec()])


def test_certificate_wire_size_realistic():
    cert = Certificate(kind="rsa", public_bytes=b"\x00" * 260)
    # ~1KB: X.509 overhead + 2048-bit key material.
    assert 900 < cert.wire_size() < 1100


def test_ske_signed_portion_binds_randoms():
    ske = ServerKeyExchange(curve="P-256", public=b"\x04" + b"\x01" * 64)
    s1 = ske.signed_portion(b"\x0A" * 32, b"\x0B" * 32)
    s2 = ske.signed_portion(b"\x0C" * 32, b"\x0B" * 32)
    assert s1 != s2
