"""TLS 1.2 handshake tests: all suites, both providers, Table 1 counts."""

import numpy as np
import pytest

from repro.crypto.ops import CryptoOpKind as K
from repro.crypto.provider import ModeledCryptoProvider, RealCryptoProvider
from repro.sim import Simulator
from repro.tls import (ECDHE_ECDSA, ECDHE_RSA, TLS_RSA, OpLog, SessionCache,
                       TlsAlert, TlsClientConfig, TlsServerConfig,
                       client_handshake12, run_loopback_handshake,
                       server_handshake12)

ECC_KINDS = (K.ECDH_KEYGEN, K.ECDH_COMPUTE, K.ECDSA_SIGN)


def make_configs(suite, provider, curve="P-256", session_cache=None,
                 seed=0, tickets=False):
    rng = np.random.default_rng
    kw = {}
    if suite.auth == "rsa":
        kw["credentials_rsa"] = provider.make_rsa_credentials(
            1024, rng(seed + 1))
    else:
        kw["credentials_ecdsa"] = provider.make_ecdsa_credentials(
            curve, rng(seed + 1))
    scfg = TlsServerConfig(provider=provider, suites=(suite,),
                           rng=rng(seed + 2), curves=(curve,),
                           session_cache=session_cache,
                           issue_tickets=tickets, **kw)
    ccfg = TlsClientConfig(provider=provider, suites=(suite,),
                           rng=rng(seed + 3), curves=(curve,))
    return scfg, ccfg


PROVIDERS = [RealCryptoProvider(), ModeledCryptoProvider()]
IDS = ["real", "modeled"]


@pytest.fixture(params=PROVIDERS, ids=IDS)
def provider(request):
    return request.param


@pytest.mark.parametrize("suite", [TLS_RSA, ECDHE_RSA, ECDHE_ECDSA],
                         ids=lambda s: s.name)
def test_full_handshake_agrees(provider, suite):
    scfg, ccfg = make_configs(suite, provider)
    cres, sres = run_loopback_handshake(client_handshake12(ccfg),
                                        server_handshake12(scfg))
    assert cres.master_secret == sres.master_secret
    assert cres.client_write_keys == sres.client_write_keys
    assert cres.server_write_keys == sres.server_write_keys
    assert not cres.resumed and not sres.resumed
    assert sres.suite == suite


# -- Table 1: server-side crypto op counts for full handshakes ----------------

TABLE1 = [
    (TLS_RSA, 1, 0, 4),
    (ECDHE_RSA, 1, 2, 4),
    (ECDHE_ECDSA, 0, 3, 4),
]


@pytest.mark.parametrize("suite,n_rsa,n_ecc,n_prf", TABLE1,
                         ids=lambda v: getattr(v, "name", v))
def test_table1_op_counts(suite, n_rsa, n_ecc, n_prf):
    provider = RealCryptoProvider()
    scfg, ccfg = make_configs(suite, provider)
    slog = OpLog()
    run_loopback_handshake(client_handshake12(ccfg),
                           server_handshake12(scfg), server_oplog=slog)
    assert slog.count(K.RSA_PRIV) == n_rsa
    assert slog.count(*ECC_KINDS) == n_ecc
    assert slog.count(K.PRF) == n_prf
    assert slog.count(K.HKDF) == 0


@pytest.mark.parametrize("curve", ["P-256", "P-384", "B-283", "B-409",
                                   "K-283", "K-409"])
def test_ecdhe_ecdsa_all_six_curves(curve):
    """Figure 7c's curves all complete functional handshakes."""
    provider = RealCryptoProvider()
    scfg, ccfg = make_configs(ECDHE_ECDSA, provider, curve=curve)
    cres, sres = run_loopback_handshake(client_handshake12(ccfg),
                                        server_handshake12(scfg))
    assert cres.master_secret == sres.master_secret
    assert sres.negotiated_curve == curve


def test_no_common_suite_fails(provider):
    scfg, _ = make_configs(TLS_RSA, provider)
    ccfg = TlsClientConfig(provider=provider, suites=(ECDHE_RSA,),
                           rng=np.random.default_rng(9))
    with pytest.raises(TlsAlert, match="no common cipher suite"):
        run_loopback_handshake(client_handshake12(ccfg),
                               server_handshake12(scfg))


def test_no_common_curve_fails(provider):
    scfg, ccfg = make_configs(ECDHE_RSA, provider)
    ccfg.curves = ("P-384",)
    with pytest.raises(TlsAlert, match="no common curve"):
        run_loopback_handshake(client_handshake12(ccfg),
                               server_handshake12(scfg))


def test_tampered_ske_signature_rejected():
    """Client must reject a ServerKeyExchange signed by someone else."""
    provider = RealCryptoProvider()
    scfg, ccfg = make_configs(ECDHE_RSA, provider)
    evil = provider.make_rsa_credentials(1024, np.random.default_rng(66))

    real_sign = provider.sign

    def evil_sign(cred, message):
        return real_sign(evil, message)

    provider_patched = RealCryptoProvider()
    provider_patched.sign = evil_sign
    scfg.provider = provider_patched
    with pytest.raises(TlsAlert, match="bad ServerKeyExchange signature"):
        run_loopback_handshake(client_handshake12(ccfg),
                               server_handshake12(scfg))


# -- session resumption ---------------------------------------------------------

def resume_pair(provider, suite=ECDHE_RSA, lifetime=3600.0,
                advance=0.0):
    sim = Simulator()
    cache = SessionCache(sim, lifetime=lifetime)
    scfg, ccfg = make_configs(suite, provider, session_cache=cache)
    c1, s1 = run_loopback_handshake(client_handshake12(ccfg),
                                    server_handshake12(scfg))
    assert not s1.resumed and s1.session_id

    if advance:
        sim.timeout(advance)
        sim.run()

    ccfg2 = TlsClientConfig(provider=provider, suites=(suite,),
                            rng=np.random.default_rng(77),
                            session_id=c1.session_id,
                            session_master_secret=c1.master_secret,
                            session_suite=c1.suite)
    slog = OpLog()
    c2, s2 = run_loopback_handshake(
        client_handshake12(ccfg2), server_handshake12(scfg),
        server_oplog=slog)
    return c1, s1, c2, s2, slog


def test_abbreviated_handshake_resumes(provider):
    c1, s1, c2, s2, slog = resume_pair(provider)
    assert s2.resumed and c2.resumed
    assert s2.master_secret == s1.master_secret
    assert c2.client_write_keys == s2.client_write_keys
    # Fresh randoms: record keys differ from the first connection.
    assert c2.client_write_keys != c1.client_write_keys


def test_abbreviated_is_prf_only(provider):
    """Paper section 5.3: abbreviated handshakes involve PRF only."""
    *_, slog = resume_pair(provider)
    assert slog.count(K.PRF) == 3
    assert slog.count(K.RSA_PRIV, *ECC_KINDS) == 0


def test_expired_session_falls_back_to_full(provider):
    c1, s1, c2, s2, slog = resume_pair(provider, lifetime=10.0, advance=100.0)
    assert not s2.resumed
    assert slog.count(K.RSA_PRIV) == 1  # full handshake happened


def test_unknown_session_id_falls_back_to_full(provider):
    sim = Simulator()
    cache = SessionCache(sim)
    scfg, _ = make_configs(ECDHE_RSA, provider, session_cache=cache)
    ccfg = TlsClientConfig(provider=provider, suites=(ECDHE_RSA,),
                           rng=np.random.default_rng(5),
                           session_id=b"\xAA" * 16,
                           session_master_secret=b"\x01" * 48,
                           session_suite=ECDHE_RSA)
    cres, sres = run_loopback_handshake(client_handshake12(ccfg),
                                        server_handshake12(scfg))
    assert not sres.resumed
    assert cres.master_secret == sres.master_secret


def test_session_ticket_issued(provider):
    scfg, ccfg = make_configs(TLS_RSA, provider, tickets=True)
    cres, sres = run_loopback_handshake(client_handshake12(ccfg),
                                        server_handshake12(scfg))
    assert cres.session_ticket is not None
    assert cres.session_ticket == sres.session_ticket
