"""Client fleet tests: s_time loops, ab modes, session resumption."""

import pytest

from repro.bench.runner import Testbed


def make_bed(config="SW", **kw):
    return Testbed(config, workers=1, suites=("ECDHE-RSA",), seed=5, **kw)


def test_s_time_closed_loop_counts():
    bed = make_bed()
    bed.add_s_time_fleet(n_clients=5)
    bed.sim.run(until=0.1)
    assert len(bed.metrics.handshakes) > 10
    assert bed.metrics.errors == 0


def test_s_time_reuse_produces_abbreviated():
    bed = make_bed()
    bed.add_s_time_fleet(n_clients=5, reuse=True)
    bed.sim.run(until=0.1)
    resumed = [h for h in bed.metrics.handshakes if h[2]]
    full = [h for h in bed.metrics.handshakes if not h[2]]
    assert len(full) == 5  # one full handshake per client, then resume
    assert len(resumed) > len(full)


def test_s_time_mix_ratio():
    bed = make_bed()
    bed.add_s_time_fleet(n_clients=10, full_ratio=0.5)
    bed.sim.run(until=0.3)
    resumed = sum(1 for h in bed.metrics.handshakes if h[2])
    total = len(bed.metrics.handshakes)
    assert 0.3 < resumed / total < 0.7


def test_s_time_validation():
    bed = make_bed()
    with pytest.raises(ValueError):
        bed.add_s_time_fleet(n_clients=0)
    with pytest.raises(ValueError):
        bed.add_s_time_fleet(n_clients=1, full_ratio=1.5)


def test_s_time_stagger_spreads_starts():
    bed = make_bed()
    bed.add_s_time_fleet(n_clients=20)
    bed.sim.run(until=0.12)
    first_completions = sorted(h[0] for h in bed.metrics.handshakes)[:20]
    # Starts staggered over 40ms: first completions are spread out.
    assert first_completions[-1] - first_completions[0] > 0.01


def test_ab_keepalive_amortizes_handshakes():
    bed = make_bed()
    bed.add_ab_fleet(n_clients=4, file_size=8192)
    bed.sim.run(until=0.2)
    assert len(bed.metrics.requests) > 4 * 5
    # keepalive: only one handshake per client connection
    assert len(bed.metrics.handshakes) == 0  # keepalive mode records none
    assert bed.server.metrics_snapshot()["handshakes_full"] == 4


def test_ab_transfer_payload_accounting():
    bed = make_bed()
    bed.add_ab_fleet(n_clients=2, file_size=100_000)
    bed.sim.run(until=0.2)
    sizes = {t[1] for t in bed.metrics.transfers}
    assert sizes == {100_000}


def test_ab_full_handshake_mode_latency():
    bed = make_bed()
    bed.add_ab_fleet(n_clients=2, file_size=64, keepalive=False)
    bed.sim.run(until=0.2)
    assert len(bed.metrics.handshakes) == len(bed.metrics.requests) > 5
    lat = bed.metrics.mean_latency(0.05, 0.2)
    assert lat > 0.001  # includes a software ECDHE-RSA handshake


def test_ab_validation():
    bed = make_bed()
    with pytest.raises(ValueError):
        bed.add_ab_fleet(n_clients=0, file_size=10)
    with pytest.raises(ValueError):
        bed.add_ab_fleet(n_clients=1, file_size=-1)


def test_client_session_default_machines():
    bed = make_bed()
    fleet = bed.add_s_time_fleet(n_clients=4)
    assert fleet.machines == ("client0", "client1")
