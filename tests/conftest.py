"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.sim import RngRegistry


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic RNG for tests."""
    return np.random.default_rng(0xDEADBEEF)


@pytest.fixture
def registry() -> RngRegistry:
    return RngRegistry(42)
