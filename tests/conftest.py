"""Shared fixtures for the test suite.

The canonical environment builders live in :mod:`repro.testing` (one
source of truth for tests, benchmarks and ad-hoc scripts); this file
only binds them to pytest fixture names.
"""

import numpy as np
import pytest

from repro.sim import RngRegistry
from repro.testing import TEST_REGISTRY_SEED, TEST_RNG_SEED, make_qat_env


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic RNG for tests."""
    return np.random.default_rng(TEST_RNG_SEED)


@pytest.fixture
def registry() -> RngRegistry:
    return RngRegistry(TEST_REGISTRY_SEED)


@pytest.fixture
def qat_env():
    """Factory fixture: build a seeded QAT world on demand (see
    :func:`repro.testing.make_qat_env`)."""
    return make_qat_env
