"""Direct unit tests for the fiber and stack async job mechanisms."""

import numpy as np
import pytest

from repro.ssl.async_job import FiberAsyncJob, JobState, StackAsyncJob
from repro.tls.actions import CryptoCall, NeedMessage, SendMessage
from repro.crypto.ops import CryptoOp, CryptoOpKind


def crypto_action(tag):
    return CryptoCall(CryptoOp(CryptoOpKind.PRF, nbytes=4),
                      compute=lambda: tag, label=tag)


def simple_flow():
    """crypto -> send -> need -> crypto -> done."""
    a = yield crypto_action("op1")
    yield SendMessage(message=f"msg({a})")
    m = yield NeedMessage()
    b = yield crypto_action("op2")
    return (a, m, b)


# -- fiber -----------------------------------------------------------------

def test_fiber_advance_through_flow():
    job = FiberAsyncJob(simple_flow, kind="handshake")
    tag, action = job.advance()
    assert isinstance(action, CryptoCall)
    tag, action = job.advance("r1")
    assert isinstance(action, SendMessage)
    tag, action = job.advance(None)
    assert isinstance(action, NeedMessage)
    tag, action = job.advance("hello")
    assert isinstance(action, CryptoCall)
    tag, result = job.advance("r2")
    assert tag == "done"
    assert result == ("r1", "hello", "r2")
    assert job.state is JobState.FINISHED


def test_fiber_exception_injection():
    def flow():
        try:
            yield crypto_action("x")
        except ValueError as e:
            return f"handled {e}"

    job = FiberAsyncJob(flow)
    job.advance()
    tag, result = job.advance(exc=ValueError("bad"))
    assert (tag, result) == ("done", "handled bad")


def test_pause_resume_protocol():
    job = FiberAsyncJob(simple_flow)
    _, action = job.advance()
    job.mark_paused(action)
    assert job.state is JobState.PAUSED
    assert not job.response_ready
    job.deliver("value", None)
    assert job.response_ready
    value, exc = job.take_resume()
    assert (value, exc) == ("value", None)
    assert job.state is JobState.RUNNING


def test_deliver_requires_paused():
    job = FiberAsyncJob(simple_flow)
    with pytest.raises(RuntimeError):
        job.deliver("v", None)


def test_take_resume_requires_delivery():
    job = FiberAsyncJob(simple_flow)
    job.advance()
    job.mark_paused(None)
    with pytest.raises(RuntimeError):
        job.take_resume()


# -- stack -----------------------------------------------------------------

def test_stack_replay_reaches_pause_point():
    job = StackAsyncJob(simple_flow)
    _, action = job.advance()            # at op1
    job.record_crypto("r1")
    _, action = job.advance("r1")        # at send
    job.record_send()
    _, action = job.advance(None)        # at need
    job.record_message("hello")
    _, action = job.advance("hello")     # at op2 -> pause here
    assert isinstance(action, CryptoCall) and action.label == "op2"
    job.mark_paused(action)
    job.deliver("r2", None)
    job.take_resume()

    replayed = job.prepare_resume()      # restart + careful skip
    assert replayed == 3
    assert isinstance(job.parked_action, CryptoCall)
    assert job.parked_action.label == "op2"
    job.parked_action = None
    job.record_crypto("r2")
    tag, result = job.advance("r2")
    assert (tag, result) == ("done", ("r1", "hello", "r2"))


def test_stack_replay_restores_rng_determinism():
    """Replayed sections must re-draw identical randoms, and live
    continuation must not be perturbed."""
    rng = np.random.default_rng(42)

    draws = []

    def flow():
        a = float(rng.random())
        draws.append(a)
        yield crypto_action("op1")
        b = float(rng.random())
        draws.append(b)
        yield crypto_action("op2")
        return (a, b)

    job = StackAsyncJob(flow, rng=rng)
    job.advance()
    job.record_crypto("r1")
    _, action = job.advance("r1")   # paused at op2; two draws done
    job.mark_paused(action)
    # Another connection draws from the same stream meanwhile.
    float(rng.random())
    job.deliver("r2", None)
    job.take_resume()
    job.prepare_resume()
    job.parked_action = None
    job.record_crypto("r2")
    tag, result = job.advance("r2")
    assert tag == "done"
    # The replayed first draw equals the original first draw.
    assert draws[2] == draws[0]
    assert result[0] == draws[0]


def test_stack_replay_divergence_detected():
    calls = [0]

    def unstable_flow():
        calls[0] += 1
        if calls[0] == 1:
            yield crypto_action("op1")
        else:
            yield SendMessage(message="different!")  # diverges
        yield crypto_action("op2")

    job = StackAsyncJob(unstable_flow)
    job.advance()
    job.record_crypto("r1")
    _, action = job.advance("r1")
    job.mark_paused(action)
    with pytest.raises(RuntimeError, match="replay diverged"):
        job.prepare_resume()


def test_swap_counting():
    fiber = FiberAsyncJob(simple_flow)
    assert fiber.swaps == 0
    fiber.prepare_resume()
    assert fiber.swaps == 1
    stack = StackAsyncJob(simple_flow)
    stack.advance()
    stack.record_crypto("x")
    _, a = stack.advance("x")
    stack.mark_paused(a)
    stack.prepare_resume()
    assert stack.swaps == 1
    assert stack.replayed_steps == 1
