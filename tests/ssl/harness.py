"""Mini-harness: runs server-side SSL against an in-memory client
without the full server event loop (tests the SSL/engine layers in
isolation)."""

from collections import deque

import numpy as np

from repro.core.costmodel import CostModel
from repro.cpu import Core
from repro.engine.software import SoftwareEngine
from repro.offload.engine import AsyncOffloadEngine
from repro.offload.qat_backend import QatBackend
from repro.qat import QatDevice, QatUserspaceDriver
from repro.sim import Simulator
from repro.ssl import SslConnection, SslContext, SslStatus
from repro.tls import (TLS_RSA, TlsClientConfig, TlsServerConfig,
                       client_handshake12, client_handshake13)
from repro.tls.constants import ProtocolVersion
from repro.tls.loopback import SyncDriver
from repro.tls.suites import TLS13_ECDHE_RSA


class Env:
    """Bundle of simulator, core, engines and configs."""

    def __init__(self, suite=TLS_RSA, provider=None, async_mode="sync",
                 engine_kind="software", curve="P-256", rsa_bits=1024,
                 ring_capacity=64, session_cache=None, cost_model=None):
        from repro.crypto.provider import ModeledCryptoProvider
        self.sim = Simulator()
        self.core = Core(self.sim, 0)
        self.cost_model = cost_model or CostModel()
        self.provider = provider or ModeledCryptoProvider()
        rng = np.random.default_rng

        kw = {}
        if suite.auth == "rsa":
            kw["credentials_rsa"] = self.provider.make_rsa_credentials(
                rsa_bits, rng(1))
        else:
            kw["credentials_ecdsa"] = self.provider.make_ecdsa_credentials(
                curve, rng(1))
        self.tls_config = TlsServerConfig(
            provider=self.provider, suites=(suite,), rng=rng(2),
            curves=(curve,), session_cache=session_cache, **kw)
        self.client_config = TlsClientConfig(
            provider=self.provider, suites=(suite,), rng=rng(3),
            curves=(curve,))

        if engine_kind == "software":
            self.engine = SoftwareEngine(self.core, self.cost_model)
            self.device = None
        else:
            self.device = QatDevice(self.sim, n_endpoints=1,
                                    ring_capacity=ring_capacity)
            inst = self.device.allocate_instances(1)[0]
            self.driver = QatUserspaceDriver(inst)
            self.engine = AsyncOffloadEngine(QatBackend([self.driver]),
                                             self.core, self.cost_model)

        version = (ProtocolVersion.TLS13 if suite is TLS13_ECDHE_RSA
                   else ProtocolVersion.TLS12)
        self.ctx = SslContext(self.tls_config, self.engine, self.core,
                              self.cost_model, async_mode=async_mode,
                              version=version)
        self.suite = suite
        self.version = version

    def connection(self, conn_id=0) -> SslConnection:
        return SslConnection(self.ctx, conn_id)

    def client_driver(self):
        gen = (client_handshake13(self.client_config)
               if self.version == ProtocolVersion.TLS13
               else client_handshake12(self.client_config))
        return SyncDriver(gen)


def handshake_process(env: Env, conn: SslConnection, log=None,
                      owner="worker", poll_interval=5e-6):
    """A sim process completing one handshake against a sync client.

    Handles WANT_READ by pumping the client, WANT_ASYNC/WANT_RETRY by
    polling the engine until the response arrives. Returns the final
    status history.
    """
    client = env.client_driver()
    c2s = deque()
    s2c_list = []

    def proc(sim):
        statuses = []
        client.pump(deque(), s2c_list)  # initial client flight
        for m in s2c_list:
            conn.feed_message(m)
        s2c_list.clear()
        while True:
            status = yield from conn.do_handshake(owner)
            statuses.append(status)
            if log is not None:
                log.append((env.sim.now, status))
            # flush server outbox to the client
            out = [sm.message for sm in conn.outbox]
            conn.outbox.clear()
            if out:
                inbox = deque(out)
                sends = []
                client.pump(inbox, sends)
                for m in sends:
                    conn.feed_message(m)
            if status is SslStatus.OK:
                return statuses
            if status is SslStatus.WANT_READ:
                if not conn.hs_inbox:
                    raise RuntimeError("deadlock: server wants read, "
                                       "client has nothing to send")
                continue
            if status in (SslStatus.WANT_ASYNC, SslStatus.WANT_RETRY):
                while True:
                    jobs = yield from env.engine.poll_and_dispatch(owner)
                    if jobs or status is SslStatus.WANT_RETRY:
                        break
                    yield env.sim.timeout(poll_interval)

    return env.sim.process(proc(env.sim))
