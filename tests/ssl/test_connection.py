"""SSL connection tests: sync / fiber / stack modes, pause-resume,
retry, write/read paths."""

import pytest

from repro.crypto.provider import RealCryptoProvider
from repro.ssl import SslStatus
from repro.tls import ECDHE_RSA, TLS_RSA
from repro.tls.suites import TLS13_ECDHE_RSA

from .harness import Env, handshake_process


def run_handshake(env):
    conn = env.connection()
    proc = handshake_process(env, conn)
    env.sim.run(until=proc)
    return conn, proc.value


# -- sync (software) ------------------------------------------------------------

def test_sync_software_handshake_completes():
    env = Env(suite=TLS_RSA, engine_kind="software", async_mode="sync")
    conn, statuses = run_handshake(env)
    assert conn.handshake_done
    assert statuses[-1] is SslStatus.OK
    assert SslStatus.WANT_ASYNC not in statuses


def test_sync_handshake_charges_rsa_cpu():
    env = Env(suite=TLS_RSA, engine_kind="software", async_mode="sync")
    run_handshake(env)
    rsa_cost = env.cost_model.software_cost(
        __import__("repro.crypto.ops", fromlist=["CryptoOp"]).CryptoOp(
            __import__("repro.crypto.ops",
                       fromlist=["CryptoOpKind"]).CryptoOpKind.RSA_PRIV,
            rsa_bits=1024))
    assert env.core.stats.busy_time > rsa_cost


def test_sync_straight_offload_handshake():
    env = Env(suite=TLS_RSA, engine_kind="qat", async_mode="sync")
    conn, statuses = run_handshake(env)
    assert conn.handshake_done
    assert env.engine.ops_offloaded >= 5  # RSA + 4 PRF
    # Worker burned its core while blocked on the offload I/O.
    assert env.core.stats.busy_time >= 0.85 * env.sim.now


# -- fiber async -------------------------------------------------------------------

@pytest.mark.parametrize("suite", [TLS_RSA, ECDHE_RSA],
                         ids=lambda s: s.name)
def test_fiber_async_handshake_pauses_and_completes(suite):
    env = Env(suite=suite, engine_kind="qat", async_mode="fiber")
    conn, statuses = run_handshake(env)
    assert conn.handshake_done
    assert statuses.count(SslStatus.WANT_ASYNC) >= 5
    assert statuses[-1] is SslStatus.OK
    assert env.engine.inflight.total == 0


def test_fiber_async_with_real_crypto():
    env = Env(suite=ECDHE_RSA, engine_kind="qat", async_mode="fiber",
              provider=RealCryptoProvider())
    conn, _ = run_handshake(env)
    assert conn.handshake_done
    assert conn.handshake_result.master_secret


def test_fiber_async_tls13_offloads_asym_but_not_hkdf():
    env = Env(suite=TLS13_ECDHE_RSA, engine_kind="qat", async_mode="fiber")
    conn, statuses = run_handshake(env)
    assert conn.handshake_done
    # 1 RSA + 2 ECC offloaded asynchronously:
    assert statuses.count(SslStatus.WANT_ASYNC) == 3
    # HKDF ran on the CPU via the software fallback:
    assert env.engine.ops_software > 4


def test_spurious_wakeup_returns_want_async():
    env = Env(suite=TLS_RSA, engine_kind="qat", async_mode="fiber")
    conn = env.connection()
    client = env.client_driver()
    from collections import deque
    out = []
    client.pump(deque(), out)
    for m in out:
        conn.feed_message(m)
    results = []

    def proc(sim):
        # TLS-RSA: the server's first flight needs no crypto, so the
        # first call wants the client's ClientKeyExchange flight.
        s0 = yield from conn.do_handshake("w")
        assert s0 is SslStatus.WANT_READ
        reply = []
        client.pump(deque(sm.message for sm in conn.outbox), reply)
        conn.outbox.clear()
        for m in reply:
            conn.feed_message(m)
        s1 = yield from conn.do_handshake("w")
        # Immediately re-invoke without any response delivered.
        s2 = yield from conn.do_handshake("w")
        results.extend([s1, s2])

    env.sim.process(proc(env.sim))
    env.sim.run(until=2e-3)
    assert results == [SslStatus.WANT_ASYNC, SslStatus.WANT_ASYNC]


def test_ring_full_gives_want_retry_then_succeeds():
    from repro.crypto.ops import CryptoOp, CryptoOpKind
    from repro.ssl.async_job import FiberAsyncJob
    from repro.tls.actions import CryptoCall

    env = Env(suite=TLS_RSA, engine_kind="qat", async_mode="fiber",
              ring_capacity=1)
    conn = env.connection()
    # Fill the single asym ring slot with an unrelated request first.
    blocker = FiberAsyncJob(lambda: iter(()), kind="blocker")
    blocker.mark_paused(None)
    call = CryptoCall(CryptoOp(CryptoOpKind.RSA_PRIV, rsa_bits=2048),
                      compute=lambda: "blocker-result")

    def pre(sim):
        ok = yield from env.engine.submit_async(call, blocker, "w")
        assert ok

    env.sim.process(pre(env.sim))
    proc = handshake_process(env, conn)
    env.sim.run(until=proc)
    statuses = proc.value
    assert SslStatus.WANT_RETRY in statuses
    assert conn.handshake_done


# -- stack async -----------------------------------------------------------------

def test_stack_async_handshake_completes():
    env = Env(suite=TLS_RSA, engine_kind="qat", async_mode="stack")
    conn, statuses = run_handshake(env)
    assert conn.handshake_done
    assert statuses.count(SslStatus.WANT_ASYNC) >= 5


def test_stack_async_with_real_crypto_replay_deterministic():
    """Replay must reproduce the original randoms (transcript intact)."""
    env = Env(suite=ECDHE_RSA, engine_kind="qat", async_mode="stack",
              provider=RealCryptoProvider())
    conn, _ = run_handshake(env)
    assert conn.handshake_done


def test_stack_async_replays_steps():
    env = Env(suite=TLS_RSA, engine_kind="qat", async_mode="stack")
    conn = env.connection()
    proc = handshake_process(env, conn)
    env.sim.run(until=proc)
    # The job was dropped on completion, so check engine stats instead:
    # every pause triggered a replay; with 5 pauses the total replayed
    # steps grow quadratically-ish, definitely > 5.
    assert conn.handshake_done


def test_stack_vs_fiber_equivalent_results():
    rf, rs = [], []
    for mode, sink in (("fiber", rf), ("stack", rs)):
        env = Env(suite=TLS_RSA, engine_kind="qat", async_mode=mode,
                  provider=RealCryptoProvider())
        conn, _ = run_handshake(env)
        sink.append(conn.handshake_result.suite.name)
    assert rf == rs


# -- write / read paths ----------------------------------------------------------------

def make_established(env):
    conn, _ = run_handshake(env)
    return conn


def test_write_path_sync():
    env = Env(suite=TLS_RSA, engine_kind="software", async_mode="sync")
    conn = make_established(env)
    out = {}

    def proc(sim):
        status, records = yield from conn.write(b"x" * 40000, "w")
        out["status"], out["records"] = status, records

    env.sim.process(proc(env.sim))
    env.sim.run()
    assert out["status"] is SslStatus.OK
    assert len(out["records"]) == 3  # 40000 bytes -> 3 fragments


def test_write_path_async_pauses_per_fragment():
    env = Env(suite=TLS_RSA, engine_kind="qat", async_mode="fiber")
    conn = make_established(env)
    out = {"pauses": 0}

    def proc(sim):
        status, records = yield from conn.write(b"x" * 40000, "w")
        while status is not SslStatus.OK:
            assert status is SslStatus.WANT_ASYNC
            out["pauses"] += 1
            while True:
                jobs = yield from env.engine.poll_and_dispatch("w")
                if jobs:
                    break
                yield sim.timeout(5e-6)
            status, records = yield from conn.write(None, "w")
        out["records"] = records

    env.sim.process(proc(env.sim))
    env.sim.run()
    assert out["pauses"] == 3
    assert len(out["records"]) == 3


def test_read_path_roundtrip():
    env = Env(suite=TLS_RSA, engine_kind="software", async_mode="sync")
    conn = make_established(env)
    # Client-side record layer to produce an inbound record.
    from repro.tls.loopback import run_record_exchange
    from repro.tls.record import RecordLayer
    import numpy as np
    res = conn.handshake_result
    client_layer = RecordLayer(env.provider,
                               write_keys=res.client_write_keys,
                               read_keys=res.server_write_keys,
                               rng=np.random.default_rng(9))
    (record,) = run_record_exchange(client_layer.protect(b"GET /index"))
    out = {}

    def proc(sim):
        status, payload = yield from conn.read_record(record, "w")
        out["status"], out["payload"] = status, payload

    env.sim.process(proc(env.sim))
    env.sim.run()
    assert out["status"] is SslStatus.OK
    assert out["payload"] == b"GET /index"


def test_write_before_handshake_raises():
    env = Env(suite=TLS_RSA, engine_kind="software", async_mode="sync")
    conn = env.connection()

    def proc(sim):
        yield from conn.write(b"data", "w")

    env.sim.process(proc(env.sim))
    with pytest.raises(RuntimeError, match="before handshake"):
        env.sim.run()


def test_invalid_async_mode_rejected():
    env = Env()
    from repro.ssl import SslContext
    with pytest.raises(ValueError, match="unknown async mode"):
        SslContext(env.tls_config, env.engine, env.core, env.cost_model,
                   async_mode="coroutine")


def test_sync_engine_cannot_run_async_mode():
    env = Env(engine_kind="software")
    from repro.ssl import SslContext
    with pytest.raises(ValueError, match="cannot run async"):
        SslContext(env.tls_config, env.engine, env.core, env.cost_model,
                   async_mode="fiber")
