"""Tier-1 replay of the fuzz seed corpus.

Every seed in ``corpus.txt`` names one scenario, fixed by
``(HARNESS_VERSION, seed)``. Each replays here as a regular test:
the world must satisfy every registered invariant and — run twice —
produce byte-identical fingerprints. A corpus failure means either a
real regression or an intentional harness change (bump
``HARNESS_VERSION`` and regenerate the corpus comments).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.testing.invariants import check_all
from repro.testing.scenario import (
    HARNESS_VERSION, ScenarioGen, ScenarioSpec, run_scenario,
)

CORPUS = Path(__file__).with_name("corpus.txt")


def corpus_seeds():
    seeds = []
    for line in CORPUS.read_text().splitlines():
        line = line.split("#", 1)[0].strip()
        if line:
            seeds.append(int(line))
    return seeds


SEEDS = corpus_seeds()


def test_corpus_is_nonempty_and_unique():
    assert len(SEEDS) >= 10
    assert len(set(SEEDS)) == len(SEEDS)


@pytest.mark.parametrize("seed", SEEDS)
def test_corpus_scenario_holds_invariants_and_replays_identically(seed):
    spec = ScenarioGen(seed).generate()
    first = run_scenario(spec)
    violations = check_all(first.bed)
    assert violations == [], \
        f"seed {seed} ({spec.describe()}): {violations[:3]}"
    # Same spec, fresh world: the fingerprint must match byte for byte.
    # The spec round-trips through its JSON form on the way, so corpus
    # replay also covers serialized-spec replay (shrink reports).
    again = ScenarioSpec.from_dict(spec.to_dict())
    assert again == spec
    second = run_scenario(again)
    assert second.fingerprint == first.fingerprint, \
        f"seed {seed}: same-seed replay diverged"


def test_harness_version_gate_rejects_foreign_specs():
    spec = ScenarioGen(0).generate()
    d = spec.to_dict()
    d["harness_version"] = HARNESS_VERSION + 1
    with pytest.raises(ValueError, match="harness"):
        ScenarioSpec.from_dict(d)


def test_injected_lease_epoch_bug_is_caught(monkeypatch):
    """The harness has teeth: disabling the pool's retired-epoch check
    (the deliberate ``--inject-bug lease-epoch`` defect) must trip the
    tombstone-isolation invariant on this shrunk minimal scenario."""
    from repro.offload.pool import InstancePool
    monkeypatch.setattr(InstancePool, "completion_retired",
                        lambda self, owner: False)
    spec = ScenarioSpec.from_dict({
        "seed": 32, "config_name": "QTLS", "workers": 1,
        "suites": ["ECDHE-RSA"], "tls_version": "1.2",
        "duration": 0.0788892813339416, "trace": False,
        "overrides": {}, "faults": None,
        "clients": [{"kind": "ab", "n_clients": 1, "full_ratio": 1.0,
                     "stagger": 0.017188457882611665, "keepalive": True,
                     "file_size": 1024}],
        "actions": [{"kind": "reload", "at": 0.022088963656203518,
                     "slot": 0,
                     "mutation": {"offload_admission_limit": 0,
                                  "offload_sched_policy": "fifo",
                                  "qat_batch_size": 8}}],
        "harness_version": HARNESS_VERSION,
    })
    result = run_scenario(spec)
    violations = check_all(result.bed)
    assert any(v.invariant == "tombstone-isolation" for v in violations), \
        f"injected bug escaped the invariants: {violations}"
