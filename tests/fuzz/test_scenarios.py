"""Tier-1 replay of the fuzz seed corpus.

Every seed in ``corpus.txt`` names one scenario. Seeds archived in
``corpus_v1_specs.json`` were chosen under harness v1 and replay from
their archived specs — replay-by-spec is version-independent, so the
scenarios (and their fingerprints) survive generator changes. Seeds
without an archived spec are fixed by ``(HARNESS_VERSION, seed)`` and
regenerate. Each replays here as a regular test: the world must
satisfy every registered invariant and — run twice — produce
byte-identical fingerprints. A corpus failure means either a real
regression or an intentional harness change (bump ``HARNESS_VERSION``,
archive the old specs, and regenerate the corpus comments).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.testing.invariants import check_all
from repro.testing.scenario import (
    HARNESS_VERSION, ScenarioGen, ScenarioSpec, run_scenario,
)

CORPUS = Path(__file__).with_name("corpus.txt")
V1_SPECS = json.loads(
    Path(__file__).with_name("corpus_v1_specs.json").read_text())


def corpus_seeds():
    seeds = []
    for line in CORPUS.read_text().splitlines():
        line = line.split("#", 1)[0].strip()
        if line:
            seeds.append(int(line))
    return seeds


def spec_for(seed: int) -> ScenarioSpec:
    """Archived legacy spec if one exists, else current-version
    generation."""
    if str(seed) in V1_SPECS:
        return ScenarioSpec.from_dict(V1_SPECS[str(seed)],
                                      allow_legacy=True)
    return ScenarioGen(seed).generate()


SEEDS = corpus_seeds()


def test_corpus_is_nonempty_and_unique():
    assert len(SEEDS) >= 10
    assert len(set(SEEDS)) == len(SEEDS)


def test_archived_specs_all_have_corpus_lines():
    assert set(map(int, V1_SPECS)) <= set(SEEDS)


@pytest.mark.parametrize("seed", SEEDS)
def test_corpus_scenario_holds_invariants_and_replays_identically(seed):
    spec = spec_for(seed)
    first = run_scenario(spec)
    violations = check_all(first.bed)
    assert violations == [], \
        f"seed {seed} ({spec.describe()}): {violations[:3]}"
    # Same spec, fresh world: the fingerprint must match byte for byte.
    # The spec round-trips through its JSON form on the way, so corpus
    # replay also covers serialized-spec replay (shrink reports).
    again = ScenarioSpec.from_dict(spec.to_dict(), allow_legacy=True)
    assert again == spec
    second = run_scenario(again)
    assert second.fingerprint == first.fingerprint, \
        f"seed {seed}: same-seed replay diverged"


def test_harness_version_gate_rejects_foreign_specs():
    spec = ScenarioGen(0).generate()
    d = spec.to_dict()
    d["harness_version"] = HARNESS_VERSION + 1
    with pytest.raises(ValueError, match="harness"):
        ScenarioSpec.from_dict(d)
    # Future versions stay rejected even for legacy replay: only specs
    # OLDER than this generator are plain-data replayable.
    with pytest.raises(ValueError, match="harness"):
        ScenarioSpec.from_dict(d, allow_legacy=True)


def test_legacy_specs_need_explicit_opt_in():
    d = next(iter(V1_SPECS.values()))
    with pytest.raises(ValueError, match="harness"):
        ScenarioSpec.from_dict(d)
    spec = ScenarioSpec.from_dict(d, allow_legacy=True)
    assert spec.harness_version == 1


def test_injected_lease_epoch_bug_is_caught(monkeypatch):
    """The harness has teeth: disabling the pool's retired-epoch check
    (the deliberate ``--inject-bug lease-epoch`` defect) must trip the
    tombstone-isolation invariant on this shrunk minimal scenario."""
    from repro.offload.pool import InstancePool
    monkeypatch.setattr(InstancePool, "completion_retired",
                        lambda self, owner: False)
    spec = ScenarioSpec.from_dict({
        "seed": 32, "config_name": "QTLS", "workers": 1,
        "suites": ["ECDHE-RSA"], "tls_version": "1.2",
        "duration": 0.0788892813339416, "trace": False,
        "overrides": {}, "faults": None,
        "clients": [{"kind": "ab", "n_clients": 1, "full_ratio": 1.0,
                     "stagger": 0.017188457882611665, "keepalive": True,
                     "file_size": 1024}],
        "actions": [{"kind": "reload", "at": 0.022088963656203518,
                     "slot": 0,
                     "mutation": {"offload_admission_limit": 0,
                                  "offload_sched_policy": "fifo",
                                  "qat_batch_size": 8}}],
        "harness_version": HARNESS_VERSION,
    })
    result = run_scenario(spec)
    violations = check_all(result.bed)
    assert any(v.invariant == "tombstone-isolation" for v in violations), \
        f"injected bug escaped the invariants: {violations}"
