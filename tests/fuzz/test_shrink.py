"""Unit tests for the greedy scenario shrinker (no simulation runs —
the failure oracle here is a pure predicate over the spec, so these
exercise the candidate generation and fixpoint logic in microseconds).
"""

from __future__ import annotations

import pytest

from repro.testing.scenario import ActionSpec, ClientSpec, ScenarioSpec
from repro.testing.shrink import shrink, shrink_report


def big_spec():
    return ScenarioSpec(
        seed=99, config_name="QTLS", workers=3,
        suites=("TLS-RSA",), duration=0.08, trace=True,
        overrides={"offload_admission_limit": 8,
                   "qat_instance_policy": "dynamic",
                   "qat_rebalance_interval": 2e-3,
                   "offload_sched_policy": "weighted-fair",
                   "offload_sched_weights": {"prf": 3}},
        clients=[ClientSpec(kind="s_time", n_clients=16),
                 ClientSpec(kind="ab", n_clients=8),
                 ClientSpec(kind="s_time", n_clients=4)],
        faults={"response_loss": 0.2,
                "response_loss_window": [0.01, 0.03],
                "outages": [[None, 0.02, 0.04]],
                "worker_crashes": [[2, 0.03]]},
        actions=[ActionSpec(kind="reload", at=0.03,
                            mutation={"qat_batch_size": 8}),
                 ActionSpec(kind="crash", at=0.05, slot=2)],
    )


def test_shrink_reaches_the_predicate_minimum():
    # The "bug" needs an outage and at least 3 clients in total —
    # everything else is noise the shrinker must strip.
    def fails(spec):
        total = sum(c.n_clients for c in spec.clients)
        if spec.faults and "outages" in spec.faults and total >= 3:
            return "boom"
        return None

    minimal, failure = shrink(big_spec(), fails)
    assert failure == "boom"
    assert minimal.faults == {"outages": [[None, 0.02, 0.04]]}
    assert sum(c.n_clients for c in minimal.clients) == 3
    assert len(minimal.clients) == 1
    assert minimal.actions == []
    assert minimal.overrides == {}
    assert minimal.workers == 1
    assert minimal.trace is False
    assert minimal.duration < big_spec().duration


def test_shrink_drops_fault_companion_knobs_together():
    def fails(spec):
        # Fails regardless of faults: everything fault-ish must go,
        # including response_loss_window riding along response_loss.
        return "always"

    minimal, _ = shrink(big_spec(), fails)
    assert minimal.faults is None
    assert minimal.clients == [ClientSpec(kind="s_time", n_clients=1)]


def test_shrink_clamps_crash_slots_when_removing_workers():
    def fails(spec):
        return "boom" if spec.workers >= 1 else None

    minimal, _ = shrink(big_spec(), fails)
    assert minimal.workers == 1
    for action in minimal.actions:
        assert not (action.kind == "crash" and action.slot >= 1)
    if minimal.faults and "worker_crashes" in minimal.faults:
        assert all(slot < 1 for slot, _ in minimal.faults["worker_crashes"])


def test_shrink_rejects_non_reproducing_spec():
    with pytest.raises(ValueError, match="not reproducible"):
        shrink(big_spec(), lambda spec: None)


def test_shrink_report_contains_replay_and_pytest_snippet():
    spec = big_spec()
    report = shrink_report(spec, "op-conservation: ledger diff 1")
    assert "tools/fuzz_scenarios.py --spec" in report
    assert "op-conservation: ledger diff 1" in report
    assert "def test_shrunk_scenario_regression" in report
    assert "run_scenario(spec)" in report
    # The embedded JSON replays to an equal spec.
    import json
    blob = report.split("--spec '", 1)[1].split("'", 1)[0]
    assert ScenarioSpec.from_dict(json.loads(blob)) == spec
