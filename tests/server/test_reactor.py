"""Unit and integration tests for the worker reactor: source
registration/ordering determinism, the deadline arbiter, teardown
(timer stop must strand no stale tick; interrupt disarm must close the
coalescing window), the failover-sweep mode guard, and the stub_status
``reactor:`` section."""

import pytest

from repro.bench.runner import Testbed
from repro.core.costmodel import CostModel
from repro.cpu import Core
from repro.crypto.ops import CryptoOp, CryptoOpKind
from repro.offload.engine import AsyncOffloadEngine
from repro.offload.qat_backend import QatBackend
from repro.qat import QatDevice, QatUserspaceDriver
from repro.server.polling.interrupt_mode import InterruptRetriever
from repro.server.polling.timer_thread import TimerPollingThread
from repro.sim import Simulator
from repro.ssl.async_job import FiberAsyncJob
from repro.tls.actions import CryptoCall


def make_bed(config="QTLS", seed=9, n_clients=8, **kw):
    bed = Testbed(config, workers=2, suites=("TLS-RSA",), seed=seed, **kw)
    bed.add_s_time_fleet(n_clients=n_clients)
    return bed


def source_names(worker):
    return [s.name for s in worker.reactor.sources]


def make_engine(sim):
    dev = QatDevice(sim, n_endpoints=1)
    drv = QatUserspaceDriver(dev.allocate_instances(1)[0])
    return AsyncOffloadEngine(QatBackend([drv]), Core(sim, 0), CostModel())


def submit_one(sim, eng, result="r"):
    job = FiberAsyncJob(lambda: iter(()), kind="h")
    job.mark_paused(None)

    def proc(sim):
        ok = yield from eng.submit_async(
            CryptoCall(CryptoOp(CryptoOpKind.RSA_PRIV, rsa_bits=2048),
                       compute=lambda: result), job, "w")
        assert ok

    sim.process(proc(sim))
    return job


# -- source registration & ordering determinism -------------------------------

RETRIEVAL_CONFIGS = [
    ("QTLS", {}, "heuristic"),
    ("QAT+AH", {}, "heuristic"),
    ("QAT+A", {}, "timer-poll"),
    ("QTLS", {"qat_notify_mode": "interrupt"}, "interrupt"),
]


@pytest.mark.parametrize("config,overrides,retrieval", RETRIEVAL_CONFIGS)
def test_retrieval_mode_runs_through_reactor_source(config, overrides,
                                                    retrieval):
    bed = make_bed(config, **overrides)
    bed.sim.run(until=0.04)
    for w in bed.server.workers:
        names = source_names(w)
        assert retrieval in names, names
        # Exactly one retrieval source per worker.
        assert sum(n in ("heuristic", "timer-poll", "interrupt")
                   for n in names) == 1
        # The retrieval scheme actually retrieved something.
        stats = w.reactor.source(retrieval).stats()
        key = {"heuristic": "polls", "timer-poll": "polls",
               "interrupt": "interrupts"}[retrieval]
        assert stats[key] > 0, stats


@pytest.mark.parametrize("config,overrides,retrieval", RETRIEVAL_CONFIGS)
def test_source_order_is_deterministic(config, overrides, retrieval):
    """Identically-configured workers register identical source lists,
    and a rebuilt world reproduces them exactly — registration order is
    dispatch/stage/teardown order, so this is a replay invariant."""
    beds = [make_bed(config, **overrides) for _ in range(2)]
    orders = [[source_names(w) for w in bed.server.workers]
              for bed in beds]
    assert orders[0] == orders[1]
    per_bed = orders[0]
    assert per_bed[0] == per_bed[1]  # both workers identical
    # Pollable routing always precedes the stage pipeline.
    names = per_bed[0]
    assert names[:3] == ["listener", "notify-fd", "socket"]
    assert names.index("async-queue") < names.index("retries") \
        < names.index("drain")


def test_stage_order_matches_historical_pipeline():
    bed = make_bed("QTLS", qat_batch_size=4, offload_admission_limit=8,
                   qat_watchdog_interval=1e-3, qat_failover_timer=1e-3)
    w = bed.server.workers[0]
    staged = [s.name for s in w.reactor.sources if s.has_stage]
    assert staged == ["async-queue", "retries", "heuristic",
                      "batch-flush", "admission", "drain"]
    # Background sweeps ride at the tail of the registry.
    assert source_names(w)[-2:] == ["failover", "watchdog"]


# -- deadline arbiter ----------------------------------------------------------

def test_arbiter_unconstrained_when_idle():
    bed = make_bed("QTLS")
    w = bed.server.workers[0]
    assert w.reactor.next_timeout(bed.sim.now) is None


def test_arbiter_spins_while_inflight_and_credits_heuristic():
    from repro.server.reactor import SPIN_TIMEOUT
    bed = make_bed("QTLS")
    w = bed.server.workers[0]
    eng = w.engine
    submit_one(bed.sim, eng)
    bed.sim.run(until=1e-5)
    before = w.reactor.source("heuristic").wakes
    assert w.reactor.next_timeout(bed.sim.now) == SPIN_TIMEOUT
    assert w.reactor.source("heuristic").wakes == before + 1
    assert w.reactor.last_wake == "heuristic"


def test_arbiter_prefers_earliest_deadline():
    """A due retry (delta 0 at its deadline) must beat the spin
    timeout, and the async queue's zero beats everything."""
    bed = make_bed("QTLS")
    w = bed.server.workers[0]
    w.async_queue.push(object())
    assert w.reactor.next_timeout(bed.sim.now) == 0.0
    assert w.reactor.last_wake == "async-queue"
    w.async_queue.pop()


# -- failover sweep: mode guard (satellite regression) -------------------------

@pytest.mark.parametrize("config,overrides", [
    ("QAT+A", {}),                                   # timer retrieval
    ("QTLS", {"qat_notify_mode": "interrupt"}),      # interrupt retrieval
])
def test_failover_timer_safe_under_non_heuristic_modes(config, overrides):
    """Regression: a failover timer configured alongside timer or
    interrupt retrieval must neither crash the worker nor register the
    sweep — those schemes run out of loop and cannot stall below a
    poll threshold, so the sweep only backs up heuristic polling."""
    bed = make_bed(config, qat_failover_timer=1e-3, **overrides)
    bed.sim.run(until=0.04)
    for w in bed.server.workers:
        assert w.reactor.source("failover") is None
    assert len(bed.metrics.handshakes) > 0


def test_failover_sweep_registers_and_runs_under_heuristic():
    bed = make_bed("QTLS", qat_failover_timer=1e-3)
    bed.sim.run(until=0.04)
    for w in bed.server.workers:
        fo = w.reactor.source("failover")
        assert fo is not None
        assert fo.sweeps > 0


def test_failover_source_skips_sweep_without_polls_fn():
    """The source itself is mode-generic: with no poll counter to
    watch it sweeps but never rescue-polls (inert, not crashing)."""
    from repro.server.reactor import FailoverSource
    bed = make_bed("QTLS")
    w = bed.server.workers[0]
    fo = w.reactor.register(FailoverSource(w, interval=1e-3))
    fo.start()
    bed.sim.run(until=0.03)
    assert fo.sweeps > 0
    assert fo.rescue_polls == 0


# -- timer thread stop: no stale tick (satellite regression) -------------------

def test_timer_stop_cancels_pending_tick():
    """stop() between ticks must interrupt the sleeping process: no
    poll may run after stop, and the process must be dead — a killed
    worker strands no stale tick against a dead engine."""
    sim = Simulator()
    engine = make_engine(sim)
    thread = TimerPollingThread(sim, engine, interval=10e-6)
    thread.start()
    stopped = {}

    def stop_midway():
        thread.stop()
        stopped["polls"] = thread.polls

    sim.call_at(55e-6, stop_midway)  # between the 50us and 60us ticks
    sim.run(until=2e-3)
    assert stopped["polls"] == 5
    assert thread.polls == 5, "a stale tick polled after stop()"


def test_timer_stop_is_idempotent_and_prestart_safe():
    sim = Simulator()
    thread = TimerPollingThread(sim, make_engine(sim), interval=10e-6)
    thread.stop()        # never started: no-op
    thread.start()
    sim.run(until=35e-6)
    thread.stop()
    thread.stop()        # double stop: no-op
    sim.run(until=1e-3)
    assert thread.polls == 3


def test_worker_kill_stops_timer_thread_via_reactor():
    bed = make_bed("QAT+A", n_clients=6)
    bed.sim.run(until=0.02)
    w = bed.server.workers[0]
    thread = w.reactor.source("timer-poll").thread
    assert thread.polls > 0
    w.kill()
    polls_at_kill = thread.polls
    bed.sim.run(until=0.03)
    assert thread.polls == polls_at_kill


# -- interrupt retriever: disarm-while-coalescing (satellite regression) -------

def test_disarm_during_coalescing_window_fizzles():
    """A response lands, the interrupt starts coalescing, and the
    worker dies before the moderation window elapses: the scheduled
    service must fizzle — no interrupt charged, no dispatch into the
    dead engine — and the response stays in the ring for whoever owns
    the instance next."""
    sim = Simulator()
    eng = make_engine(sim)
    irq = InterruptRetriever(sim, eng)
    irq.arm()
    drv = eng.backend.drivers[0]

    def hook(ring):
        irq._on_response(ring)   # schedules service at +COALESCE_WINDOW
        irq.disarm()             # teardown lands inside the window

    drv.instance.set_response_callback(hook)
    job = submit_one(sim, eng)
    sim.run()
    assert irq.interrupts == 0
    assert not job.response_ready
    assert eng.inflight.total == 1  # never dispatched

    # The response was not lost: a manual poll still retrieves it.
    def poll(sim):
        yield from eng.poll_and_dispatch(owner="w")

    p = sim.process(poll(sim))
    sim.run(until=p)
    assert job.response_ready
    assert eng.inflight.total == 0


def test_worker_kill_disarms_interrupt_source():
    bed = make_bed("QTLS", n_clients=6, qat_notify_mode="interrupt")
    bed.sim.run(until=0.02)
    w = bed.server.workers[0]
    irq = w.reactor.source("interrupt").retriever
    assert irq.interrupts > 0
    w.kill()
    count_at_kill = irq.interrupts
    bed.sim.run(until=0.03)
    assert irq.interrupts == count_at_kill
    assert not irq._armed


# -- stats plumbing ------------------------------------------------------------

def test_stub_status_renders_reactor_section():
    bed = make_bed("QTLS")
    bed.sim.run(until=0.03)
    w = bed.server.workers[0]
    w.status_snapshot()  # consistent read republishes the page
    page = w.stub_status.render()
    assert "reactor: " in page
    for name in source_names(w):
        assert f"{name}[wakes " in page


def test_reactor_stats_not_in_fingerprinted_counters():
    """The reactor section is render-only: ``counters()`` feeds replay
    fingerprints, which must stay stable across loop refactors."""
    bed = make_bed("QTLS")
    bed.sim.run(until=0.02)
    w = bed.server.workers[0]
    counters = w.status_snapshot()
    assert not any("reactor" in k or "wakes" in k for k in counters)


def test_reactor_snapshot_orders_and_counts():
    bed = make_bed("QTLS", qat_watchdog_interval=1e-3)
    bed.sim.run(until=0.04)
    w = bed.server.workers[0]
    snap = w.stub_status.reactor_sources
    assert list(snap) == source_names(w)
    assert snap["socket"]["events"] > 0
    assert snap["heuristic"]["polls"] > 0
    assert snap["watchdog"]["sweeps"] > 0
    total_busy = sum(s["busy"] for s in snap.values())
    assert total_busy > 0
