"""Heuristic poller: threshold adaptation and the interplay with
submission batching (the timeliness branch flushes the coalescing
queue before polling, so a stalled worker never waits on its own
unsent submissions)."""

from repro.core.costmodel import CostModel
from repro.cpu import Core
from repro.crypto.ops import CryptoOp, CryptoOpKind, OpCategory
from repro.offload.engine import AsyncOffloadEngine
from repro.offload.qat_backend import QatBackend
from repro.qat import QatDevice, QatUserspaceDriver
from repro.server import StubStatus
from repro.server.polling.heuristic import HeuristicPoller
from repro.sim import Simulator
from repro.ssl.async_job import FiberAsyncJob
from repro.tls.actions import CryptoCall


def make_engine(sim, **kw):
    dev = QatDevice(sim, n_endpoints=1)
    drv = QatUserspaceDriver(dev.allocate_instances(1)[0])
    return AsyncOffloadEngine(QatBackend([drv]), Core(sim, 0),
                              CostModel(), **kw)


def submit_n(sim, engine, n, kind=CryptoOpKind.RSA_PRIV):
    jobs = []

    def proc(sim):
        for _ in range(n):
            job = FiberAsyncJob(lambda: iter(()), kind="h")
            job.mark_paused(None)
            jobs.append(job)
            call = CryptoCall(CryptoOp(kind, rsa_bits=2048, nbytes=48),
                              compute=lambda: "r")
            ok = yield from engine.submit_async(call, job, "w")
            assert ok

    p = sim.process(proc(sim))
    sim.run(until=p)
    return jobs


def test_asym_presence_raises_the_threshold():
    """24 symmetric ops meet the sym threshold, but one asymmetric op
    in flight switches the bar to 48 — Rtotal=25 no longer polls."""
    sim = Simulator()
    engine = make_engine(sim)
    stub = StubStatus()
    for _ in range(60):
        stub.on_accept()
    poller = HeuristicPoller(engine, stub, asym_threshold=48,
                             sym_threshold=24)
    submit_n(sim, engine, 24, kind=CryptoOpKind.PRF)
    assert poller.should_poll()
    submit_n(sim, engine, 1, kind=CryptoOpKind.RSA_PRIV)
    assert engine.inflight.total == 25
    assert not poller.should_poll()


def test_efficiency_poll_classified():
    sim = Simulator()
    engine = make_engine(sim)
    stub = StubStatus()
    for _ in range(60):
        stub.on_accept()
    poller = HeuristicPoller(engine, stub, sym_threshold=4)
    submit_n(sim, engine, 4, kind=CryptoOpKind.PRF)

    def proc(sim):
        yield sim.timeout(2e-3)
        jobs = yield from poller.check("w")
        return jobs

    p = sim.process(proc(sim))
    sim.run(until=p)
    assert len(p.value) == 4
    assert poller.efficiency_polls == 1
    assert poller.timeliness_polls == 0
    assert poller.polls == 1


def test_timeliness_branch_flushes_queued_batch():
    """With batching on, a stall-imminent poll first pushes the
    coalescing queue to the device; otherwise the worker would spin
    waiting for responses to ops it never submitted."""
    sim = Simulator()
    engine = make_engine(sim, batch_size=8, batch_timeout=5e-3)
    stub = StubStatus()
    stub.on_accept()
    stub.on_accept()
    poller = HeuristicPoller(engine, stub)
    submit_n(sim, engine, 2)
    # Both ops coalesced, none on the ring yet — but the in-flight
    # accounting sees them, so the timeliness constraint fires.
    assert engine.backend.drivers[0].submitted == 0
    assert engine.queued_batch_ops == 2
    assert poller.should_poll()

    def proc(sim):
        yield from poller.check("w")  # flushes, then polls (empty)
        assert engine.backend.drivers[0].submitted == 2
        assert engine.queued_batch_ops == 0
        yield sim.timeout(2e-3)  # responses land
        jobs = yield from poller.check("w")
        return jobs

    p = sim.process(proc(sim))
    sim.run(until=p)
    assert poller.timeliness_polls == 2
    assert len(p.value) == 2
    assert engine.inflight.total == 0


def test_batching_keeps_inflight_accounting_for_heuristic():
    """Queued-but-unflushed ops count toward Rtotal: the heuristic
    must see them or the timeliness constraint can deadlock."""
    sim = Simulator()
    engine = make_engine(sim, batch_size=4)
    submit_n(sim, engine, 2)
    assert engine.inflight.total == 2
    assert engine.inflight.asym == 2
    assert engine.inflight._counts[OpCategory.ASYM] == 2


def test_admission_limit_caps_both_thresholds():
    """With admission control on, Rtotal can never exceed the limit —
    a limit below the efficiency threshold (and below TCactive) must
    still poll once the in-flight population saturates the cap, or the
    worker deadlocks with hundreds of connections queued."""
    sim = Simulator()
    engine = make_engine(sim, admission_limit=4)
    stub = StubStatus()
    for _ in range(300):
        stub.on_accept()
    poller = HeuristicPoller(engine, stub, asym_threshold=48,
                             sym_threshold=24)
    submit_n(sim, engine, 3, kind=CryptoOpKind.RSA_PRIV)
    assert not poller.should_poll()  # below the cap: thresholds as-is
    submit_n(sim, engine, 8, kind=CryptoOpKind.RSA_PRIV)
    assert engine.inflight.total == 4
    assert engine.admission_queued == 7
    assert poller.should_poll()
