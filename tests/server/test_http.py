"""HTTP layer tests."""

import pytest

from repro.server.http import (RESPONSE_HEADER_SIZE, encode_request,
                               parse_request, response_body)


def test_roundtrip():
    raw = encode_request(65536, keepalive=True)
    req = parse_request(raw)
    assert req.size == 65536
    assert req.keepalive


def test_connection_close():
    req = parse_request(encode_request(100, keepalive=False))
    assert not req.keepalive


def test_zero_size():
    assert parse_request(encode_request(0)).size == 0


def test_malformed_rejected():
    for raw in (b"", b"\xff\xfe", b"POST /x HTTP/1.1\r\n\r\n",
                b"GET /file?size=-5 HTTP/1.1\r\n\r\n",
                b"GETnospace"):
        with pytest.raises(ValueError):
            parse_request(raw)


def test_response_body_size_and_cache():
    b1 = response_body(1000)
    assert len(b1) == RESPONSE_HEADER_SIZE + 1000
    assert response_body(1000) is b1  # cached


def test_response_body_header_prefix():
    assert response_body(10)[:RESPONSE_HEADER_SIZE] == b"H" * RESPONSE_HEADER_SIZE
