"""Worker edge cases: event disorder during TLS-ASYNC, teardown with
responses in flight, malformed requests, per-job FD mode."""

from repro.bench.runner import Testbed
from repro.server.connection import ConnState


def run_bed(config="QTLS", until=0.08, n_clients=10, **kw):
    bed = Testbed(config, workers=1, suites=("TLS-RSA",), seed=9, **kw)
    bed.add_s_time_fleet(n_clients=n_clients)
    bed.sim.run(until=until)
    return bed


def test_connections_fully_drain_on_close():
    bed = run_bed()
    worker = bed.server.workers[0]
    st = worker.stub_status
    assert st.total_closed > 0
    assert st.tls_alive == len(worker.conns)
    # Epoll only watches live sockets + the listener + live notify fds
    # (+ the worker's own wake fd when one is armed).
    watched = len(worker.epoll._watched)
    wake = 1 if worker.wake_fd is not None else 0
    assert watched <= 1 + wake + len(worker.conns) + len(worker.fd_conns)


def test_saved_read_handler_used_under_load():
    """Client flights regularly arrive while a connection is paused in
    TLS-ASYNC; the worker must save and restore those read events
    (section 4.2) rather than processing them mid-job."""
    bed = run_bed(n_clients=40, until=0.12)
    assert bed.metrics.errors == 0
    assert bed.server.metrics_snapshot()["alerts"] == 0
    assert len(bed.metrics.handshakes) > 100


def test_no_connection_left_in_async_at_quiesce():
    bed = Testbed("QTLS", workers=1, suites=("TLS-RSA",), seed=9)
    bed.add_s_time_fleet(n_clients=5)
    bed.sim.run(until=0.05)
    # Let in-flight work drain: no new arrivals after we stop observing
    # (clients keep running, so just assert no connection is stuck by
    # checking that async jobs have bounded age).
    worker = bed.server.workers[0]
    stuck = [c for c in worker.conns.values()
             if c.state is ConnState.TLS_ASYNC]
    # Some may legitimately be in-flight, but with 5 clients at most 5.
    assert len(stuck) <= 5


def test_teardown_with_response_in_flight_is_safe():
    """Kill connections aggressively: responses for aborted jobs must
    be dispatched without crashing or corrupting counters."""
    bed = Testbed("QTLS", workers=1, suites=("TLS-RSA",), seed=9)
    bed.add_s_time_fleet(n_clients=8)

    killed = {"n": 0}

    def killer(sim):
        worker = bed.server.workers[0]
        for _ in range(40):
            yield sim.timeout(1e-3)
            for conn in list(worker.conns.values())[:2]:
                if conn.in_async:
                    # Peer vanishes mid-offload.
                    conn.sock.peer.close()
                    killed["n"] += 1

    bed.sim.process(killer(bed.sim))
    bed.sim.run(until=0.08)
    assert killed["n"] > 0
    worker = bed.server.workers[0]
    assert worker.engine.inflight.total >= 0  # no underflow crash
    # The system keeps making progress afterwards.
    assert len(bed.metrics.handshakes) > 10


def test_per_job_fd_mode_works():
    bed = Testbed("QAT+AH", workers=1, suites=("TLS-RSA",), seed=9,
                  share_notify_fd=False)
    bed.add_s_time_fleet(n_clients=10)
    bed.sim.run(until=0.06)
    assert bed.metrics.errors == 0
    assert len(bed.metrics.handshakes) > 20


def test_malformed_http_request_closes_connection():
    bed = Testbed("SW", workers=1, suites=("TLS-RSA",), seed=9)

    done = {}

    def evil_client(sim):
        from repro.clients.tls_session import ClientTlsSession
        sock = yield from bed.net.connect("client0",
                                          bed.server.addresses()[0])
        session = ClientTlsSession(sim, sock,
                                   bed._client_config_factory()(0),
                                   bed.cost_model)
        yield from session.handshake()
        # Send garbage instead of an HTTP request.
        yield from session.send_request(b"\xff\xfe NOT HTTP \x00")
        # Server should close on us.
        while True:
            msg = sock.recv()
            if msg == b"":
                done["closed_by_server"] = True
                return
            yield sim.timeout(1e-3)

    bed.sim.process(evil_client(bed.sim))
    bed.sim.run(until=0.1)
    assert done.get("closed_by_server")
    assert bed.server.metrics_snapshot()["alerts"] == 1


def test_pipelined_requests_served_in_order():
    """Two requests in flight on one keepalive connection."""
    bed = Testbed("SW", workers=1, suites=("TLS-RSA",), seed=9)
    got = []

    def client(sim):
        from repro.clients.tls_session import ClientTlsSession
        from repro.server.http import RESPONSE_HEADER_SIZE, encode_request
        sock = yield from bed.net.connect("client0",
                                          bed.server.addresses()[0])
        session = ClientTlsSession(sim, sock,
                                   bed._client_config_factory()(0),
                                   bed.cost_model)
        yield from session.handshake()
        yield from session.send_request(encode_request(100))
        yield from session.send_request(encode_request(200))
        got.append((yield from session.receive_payload(
            RESPONSE_HEADER_SIZE + 100)))
        got.append((yield from session.receive_payload(
            RESPONSE_HEADER_SIZE + 200)))

    bed.sim.process(client(bed.sim))
    bed.sim.run(until=0.1)
    assert len(got) == 2
    assert bed.server.metrics_snapshot()["requests_served"] == 2


def test_failover_timer_rescues_unpolled_responses():
    """Force a state where the heuristic never fires (huge thresholds,
    timeliness defeated by an extra idle-active connection) and check
    the failover poll still retrieves responses."""
    bed = Testbed("QTLS", workers=1, suites=("TLS-RSA",), seed=9,
                  qat_heuristic_poll_asym_threshold=10_000,
                  qat_heuristic_poll_sym_threshold=10_000,
                  qat_failover_timer=2e-3)
    bed.add_s_time_fleet(n_clients=1)
    bed.sim.run(until=0.2)
    # Progress happens even though the efficiency constraint is
    # unreachable (timeliness + failover drive retrieval).
    assert len(bed.metrics.handshakes) > 5


def test_fatal_alert_sent_before_close():
    """A client offering no common suite receives a fatal alert on the
    wire, not just a silent FIN (RFC 5246 section 7.2)."""
    from repro.tls.config import TlsClientConfig
    from repro.tls.suites import get_suite

    bed = Testbed("SW", workers=1, suites=("TLS-RSA",), seed=9)
    seen = {}

    def bad_client(sim):
        from repro.clients.tls_session import ClientTlsSession
        from repro.tls.actions import TlsAlert
        cfg = TlsClientConfig(
            provider=bed.provider, suites=(get_suite("ECDHE-ECDSA"),),
            rng=__import__("numpy").random.default_rng(0))
        sock = yield from bed.net.connect("client0",
                                          bed.server.addresses()[0])
        session = ClientTlsSession(sim, sock, cfg, bed.cost_model)
        try:
            yield from session.handshake()
        except TlsAlert as e:
            seen["alert"] = str(e)

    bed.sim.process(bad_client(bed.sim))
    bed.sim.run(until=0.05)
    assert "received fatal alert: handshake_failure" in seen.get("alert", "")


def test_interrupt_plus_queue_single_quiet_client_no_stall():
    """Liveness: with interrupt retrieval + kernel-bypass queue, a
    dispatched handler must wake a worker blocked in epoll even when
    no socket events arrive (single quiet client)."""
    bed = Testbed("QTLS", workers=1, suites=("TLS-RSA",), seed=9,
                  qat_notify_mode="interrupt")
    bed.add_s_time_fleet(n_clients=1)
    bed.sim.run(until=0.1)
    # One client in a closed loop: steady progress requires every
    # async resume to be delivered promptly.
    assert len(bed.metrics.handshakes) > 30
    assert bed.server.workers[0].wake_fd is not None


def test_timer_plus_queue_single_quiet_client_no_stall():
    bed = Testbed("QAT+A", workers=1, suites=("TLS-RSA",), seed=9,
                  async_notify_mode="queue")
    bed.add_s_time_fleet(n_clients=1)
    bed.sim.run(until=0.1)
    assert len(bed.metrics.handshakes) > 30
