"""Unit tests for stub_status, heuristic poller, timer thread, queue."""

import pytest

from repro.core.costmodel import CostModel
from repro.cpu import Core
from repro.crypto.ops import CryptoOp, CryptoOpKind
from repro.offload.engine import AsyncOffloadEngine
from repro.offload.qat_backend import QatBackend
from repro.qat import QatDevice, QatUserspaceDriver
from repro.server import AsyncEventQueue, StubStatus
from repro.server.polling.heuristic import HeuristicPoller
from repro.server.polling.timer_thread import TimerPollingThread
from repro.sim import Simulator
from repro.ssl.async_job import FiberAsyncJob
from repro.tls.actions import CryptoCall


# -- stub_status -------------------------------------------------------------

def test_stub_status_lifecycle():
    s = StubStatus()
    s.on_accept()
    s.on_accept()
    assert s.tls_alive == 2 and s.tls_active == 2
    s.on_idle()
    assert s.tls_active == 1
    s.on_active()
    assert s.tls_active == 2
    s.on_idle()
    s.on_close(was_idle=True)
    assert s.tls_alive == 1 and s.tls_idle == 0
    s.on_close(was_idle=False)
    assert s.tls_alive == 0


def test_stub_status_detects_inconsistency():
    s = StubStatus()
    with pytest.raises(RuntimeError):
        s.on_idle()  # idle > alive


# -- async queue ----------------------------------------------------------------

def test_async_queue_fifo():
    q = AsyncEventQueue()
    q.push("a")
    q.push("b")
    assert bool(q) and len(q) == 2
    assert q.pop() == "a"
    assert q.pop() == "b"
    assert q.pop() is None
    assert q.enqueued == 2 and q.processed == 2


# -- heuristic poller ----------------------------------------------------------------

def make_engine(sim):
    dev = QatDevice(sim, n_endpoints=1)
    drv = QatUserspaceDriver(dev.allocate_instances(1)[0])
    return AsyncOffloadEngine(QatBackend([drv]), Core(sim, 0), CostModel())


def submit_n(sim, engine, n, kind=CryptoOpKind.RSA_PRIV):
    jobs = []

    def proc(sim):
        for _ in range(n):
            job = FiberAsyncJob(lambda: iter(()), kind="h")
            job.mark_paused(None)
            jobs.append(job)
            call = CryptoCall(CryptoOp(kind, rsa_bits=2048, nbytes=48),
                              compute=lambda: "r")
            ok = yield from engine.submit_async(call, job, "w")
            assert ok

    p = sim.process(proc(sim))
    sim.run(until=p)
    return jobs


def test_heuristic_no_poll_when_idle():
    sim = Simulator()
    engine = make_engine(sim)
    stub = StubStatus()
    poller = HeuristicPoller(engine, stub)
    assert not poller.should_poll()


def test_heuristic_efficiency_threshold_asym():
    sim = Simulator()
    engine = make_engine(sim)
    stub = StubStatus()
    for _ in range(60):
        stub.on_accept()  # plenty of active connections
    poller = HeuristicPoller(engine, stub, asym_threshold=48)
    submit_n(sim, engine, 47)
    assert not poller.should_poll()
    submit_n(sim, engine, 1)
    assert poller.should_poll()


def test_heuristic_sym_threshold_lower():
    sim = Simulator()
    engine = make_engine(sim)
    stub = StubStatus()
    for _ in range(60):
        stub.on_accept()
    poller = HeuristicPoller(engine, stub, asym_threshold=48,
                             sym_threshold=24)
    submit_n(sim, engine, 24, kind=CryptoOpKind.PRF)
    assert poller.should_poll()  # 24 >= sym threshold (no asym inflight)


def test_heuristic_timeliness_constraint():
    """Rtotal == TCactive => poll immediately (all active connections
    are waiting on the accelerator)."""
    sim = Simulator()
    engine = make_engine(sim)
    stub = StubStatus()
    stub.on_accept()
    stub.on_accept()
    poller = HeuristicPoller(engine, stub)
    submit_n(sim, engine, 1)
    assert not poller.should_poll()  # 1 < 2 active
    submit_n(sim, engine, 1)
    assert poller.should_poll()      # 2 == 2


def test_heuristic_check_polls_and_classifies():
    sim = Simulator()
    engine = make_engine(sim)
    stub = StubStatus()
    stub.on_accept()
    poller = HeuristicPoller(engine, stub)
    submit_n(sim, engine, 1)

    def proc(sim):
        yield sim.timeout(2e-3)  # let the response land
        jobs = yield from poller.check("w")
        return jobs

    p = sim.process(proc(sim))
    sim.run(until=p)
    assert len(p.value) == 1
    assert poller.timeliness_polls == 1
    assert poller.polls == 1


def test_heuristic_threshold_validation():
    sim = Simulator()
    engine = make_engine(sim)
    with pytest.raises(ValueError):
        HeuristicPoller(engine, StubStatus(), asym_threshold=0)


# -- timer polling thread ----------------------------------------------------------

def test_timer_thread_polls_on_interval():
    sim = Simulator()
    engine = make_engine(sim)
    thread = TimerPollingThread(sim, engine, interval=10e-6)
    thread.start()
    jobs = submit_n(sim, engine, 1)
    sim.run(until=3e-3)
    thread.stop()
    assert thread.polls > 100  # ~10us cadence over 3ms
    assert thread.effective_polls >= 1
    assert jobs[0].response_ready


def test_timer_thread_context_switches_charged():
    """The polling thread shares the worker's core: its activity must
    produce context switches (the Figure 12 overhead)."""
    sim = Simulator()
    core = Core(sim, 0)
    dev = QatDevice(sim, n_endpoints=1)
    engine = AsyncOffloadEngine(
        QatBackend([QatUserspaceDriver(dev.allocate_instances(1)[0])]),
        core, CostModel())
    thread = TimerPollingThread(sim, engine, interval=10e-6)
    thread.start()

    def worker_proc(sim):
        for _ in range(50):
            yield from core.consume(20e-6, owner="worker")

    sim.process(worker_proc(sim))
    sim.run(until=1.5e-3)
    thread.stop()
    assert core.stats.context_switches > 20


def test_timer_thread_validation():
    sim = Simulator()
    engine = make_engine(sim)
    with pytest.raises(ValueError):
        TimerPollingThread(sim, engine, interval=0)
    t = TimerPollingThread(sim, engine)
    t.start()
    with pytest.raises(RuntimeError):
        t.start()


# -- consistent stub_status / firmware-counter reads -------------------------

def test_consistent_status_snapshot_mid_pass():
    """Regression: stub_status pages are republished at watchdog ticks,
    so a raw ``counters()`` read between ticks can disagree with the
    engine ledgers and ``fw_counter_totals()``. The consistent-read
    helpers (``Worker.status_snapshot`` /
    ``TlsServer.consistent_status_snapshot``) must agree with the
    engine at *every* instant, including mid-pass samples taken
    between watchdog ticks while ops are in flight."""
    from repro.bench.runner import Testbed

    bed = Testbed("QTLS", workers=2, suites=("TLS-RSA",), seed=11,
                  qat_watchdog_interval=1e-3)
    bed.add_s_time_fleet(n_clients=30, stagger=1e-3)

    raw_lags = []      # instants where the unrefreshed page is stale
    helper_bad = []    # instants where the consistent read disagrees

    engine_keys = ("batches_submitted", "batch_ops", "fallback_ops",
                   "op_timeouts", "admission_queued", "admission_peak",
                   "admission_admitted")

    def engine_view(worker):
        eng = worker.engine
        return {"batches_submitted": eng.batches_submitted,
                "batch_ops": eng.batch_ops,
                "fallback_ops": eng.ops_fallback,
                "op_timeouts": eng.op_timeouts,
                "admission_queued": eng.admission_queued,
                "admission_peak": eng.admission_peak,
                "admission_admitted": eng.admission_admitted}

    def sample():
        now = bed.sim.now
        for worker in bed.server.workers:
            truth = engine_view(worker)
            raw = worker.stub_status.counters()
            if any(raw[k] != truth[k] for k in engine_keys):
                raw_lags.append(now)
        snap = bed.server.consistent_status_snapshot()
        for key, page in snap["workers"].items():
            worker = next(w for w in list(bed.server.workers)
                          + list(bed.server.retired_workers)
                          if f"w{w.worker_id}g{w.generation}" == key)
            truth = engine_view(worker)
            if any(page[k] != truth[k] for k in engine_keys):
                helper_bad.append((now, key))
            if page["tls_alive"] != page["accepted"] - page["closed"] \
                    or not 0 <= page["tls_idle"] <= page["tls_alive"]:
                helper_bad.append((now, key, "lifecycle"))

    # Offset from the 1 ms watchdog grid so samples land mid-pass.
    for i in range(40):
        bed.sim.call_at(2e-3 + i * 1.3e-3, sample)
    bed.sim.run(until=0.06)

    assert helper_bad == []
    # The helper is load-bearing: without the same-step refresh, at
    # least one sampled instant read a stale page. (Deterministic:
    # fixed seed, fixed sample grid.)
    assert raw_lags, "raw counters never lagged; sampling grid is " \
                     "not exercising the mid-pass window"
