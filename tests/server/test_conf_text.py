"""Tests for the appendix A.7 conf-text parser."""

import pytest

from repro.server.conf_text import (ConfError, parse_conf,
                                    server_config_from_text)

PAPER_EXAMPLE = """
worker_processes 8;
load_module modules/ngx_ssl_engine_qat_module.so;
ssl_engine {
    use qat_engine;
    default_algorithm RSA,EC,DH,PKEY_CRYPTO;
    qat_engine {
        qat_offload_mode async;
        qat_notify_mode poll;
        qat_poll_mode heuristic;
        qat_heuristic_poll_asym_threshold 48;
        qat_heuristic_poll_sym_threshold 24;
    }
}
"""


def test_paper_appendix_example_parses():
    cfg = server_config_from_text(PAPER_EXAMPLE)
    assert cfg.worker_processes == 8
    assert cfg.ssl_engine.use_engine == "qat_engine"
    assert cfg.ssl_engine.default_algorithm == ("RSA", "EC", "DH",
                                                "PKEY_CRYPTO")
    assert cfg.ssl_engine.qat_offload_mode == "async"
    assert cfg.ssl_engine.qat_poll_mode == "heuristic"
    assert cfg.ssl_engine.qat_heuristic_poll_asym_threshold == 48
    assert cfg.ssl_engine.qat_heuristic_poll_sym_threshold == 24
    assert cfg.uses_qat and cfg.async_offload


def test_parse_tree_structure():
    tree = parse_conf("a 1;\nb { c 2; d { e 3; } }")
    assert tree["a"] == ["1"]
    assert tree["b"]["c"] == ["2"]
    assert tree["b"]["d"]["e"] == ["3"]


def test_comments_ignored():
    tree = parse_conf("# header\nx 1; # trailing\n")
    assert tree == {"x": ["1"]}


def test_suite_and_curve_directives():
    cfg = server_config_from_text(
        "ssl_ciphers ECDHE-RSA:TLS-RSA;\nssl_ecdh_curve P-384:P-256;\n"
        "ssl_protocols TLSv1.2;\n")
    assert cfg.suites == ("ECDHE-RSA", "TLS-RSA")
    assert cfg.curves == ("P-384", "P-256")


def test_tls13_protocol():
    cfg = server_config_from_text(
        "ssl_ciphers TLS1.3-ECDHE-RSA;\nssl_protocols TLSv1.3;")
    assert cfg.tls_version == "1.3"


def test_notify_mode_directive():
    cfg = server_config_from_text("ssl_asynch_notify queue;")
    assert cfg.async_notify_mode == "queue"


def test_timer_poll_settings():
    cfg = server_config_from_text(
        "ssl_engine { use qat_engine; "
        "qat_engine { qat_poll_mode timer; "
        "qat_timer_poll_interval 0.00001; } }")
    assert cfg.ssl_engine.qat_poll_mode == "timer"
    assert cfg.ssl_engine.qat_timer_poll_interval == pytest.approx(1e-5)


@pytest.mark.parametrize("bad,msg", [
    ("bogus_directive on;", "unknown directive"),
    ("x 1", "missing ';'"),
    ("{ }", "block without a name"),
    ("a { b 1;", "unbalanced"),
    ("a 1; }", "unbalanced"),
    (";", "empty directive"),
    ("ssl_engine { whatever 1; }", "unknown ssl_engine"),
    ("ssl_engine { qat_engine { nope 1; } }", "unknown qat_engine"),
    ("ssl_protocols SSLv3;", "unsupported protocol"),
    ("ssl_asynch_notify telepathy;", "unknown notify mode"),
    ("worker_processes 1 2;", "exactly one"),
])
def test_malformed_rejected(bad, msg):
    with pytest.raises(ConfError, match=msg):
        server_config_from_text(bad)


def test_validation_applies():
    with pytest.raises(ValueError):
        server_config_from_text("worker_processes 0;")


def test_pool_and_admission_directives():
    cfg = server_config_from_text(
        "ssl_engine { use qat_engine; offload_admission_limit 16; "
        "qat_engine { qat_instance_policy dynamic; "
        "qat_rebalance_interval 0.002; } }")
    assert cfg.ssl_engine.qat_instance_policy == "dynamic"
    assert cfg.ssl_engine.qat_rebalance_interval == pytest.approx(2e-3)
    assert cfg.ssl_engine.offload_admission_limit == 16


def test_pool_directive_defaults():
    cfg = server_config_from_text("ssl_engine { use qat_engine; }")
    assert cfg.ssl_engine.qat_instance_policy == "static"
    assert cfg.ssl_engine.offload_admission_limit == 0  # unbounded


@pytest.mark.parametrize("bad,msg", [
    ("ssl_engine { use qat_engine; "
     "qat_engine { qat_instance_policy bogus; } }",
     "unknown instance policy"),
    ("ssl_engine { use qat_engine; offload_admission_limit 0; }",
     "offload_admission_limit must be >= 1"),
    ("ssl_engine { use qat_engine; offload_admission_limit -3; }",
     "offload_admission_limit must be >= 1"),
    ("ssl_engine { use qat_engine; "
     "qat_engine { qat_rebalance_interval 0; } }",
     "qat_rebalance_interval must be positive"),
    ("ssl_engine { use qat_engine; "
     "qat_engine { qat_rebalance_interval -0.5; } }",
     "qat_rebalance_interval must be positive"),
])
def test_pool_directives_rejected(bad, msg):
    with pytest.raises(ConfError, match=msg):
        server_config_from_text(bad)


def test_scheduler_directives():
    cfg = server_config_from_text(
        "ssl_engine { use qat_engine; "
        "offload_sched_policy weighted-fair; "
        "offload_sched_weights handshake-asym=6,record-cipher=2; "
        "offload_conn_budget 4; }")
    eng = cfg.ssl_engine
    assert eng.offload_sched_policy == "weighted-fair"
    assert eng.offload_sched_weights == {"handshake-asym": 6,
                                         "record-cipher": 2}
    assert eng.offload_conn_budget == 4


def test_scheduler_directive_defaults():
    cfg = server_config_from_text("ssl_engine { use qat_engine; }")
    assert cfg.ssl_engine.offload_sched_policy == "fifo"
    assert cfg.ssl_engine.offload_sched_weights == {}
    assert cfg.ssl_engine.offload_conn_budget == 0  # unbounded


@pytest.mark.parametrize("bad,msg", [
    ("ssl_engine { use qat_engine; offload_sched_policy lottery; }",
     "unknown scheduling policy"),
    ("ssl_engine { use qat_engine; "
     "offload_sched_weights bulk=3; }",
     "unknown scheduling class"),
    ("ssl_engine { use qat_engine; "
     "offload_sched_weights prf=0; }",
     "must be >= 1"),
    ("ssl_engine { use qat_engine; "
     "offload_sched_weights prf; }",
     "expected class=weight"),
    ("ssl_engine { use qat_engine; "
     "offload_sched_weights prf=two; }",
     "must be an integer"),
    ("ssl_engine { use qat_engine; offload_conn_budget 0; }",
     "offload_conn_budget must be >= 1"),
])
def test_scheduler_directives_rejected(bad, msg):
    with pytest.raises(ConfError, match=msg):
        server_config_from_text(bad)


def test_interrupt_notify_requires_static_policy():
    # Cross-field validation happens at the config layer, after parse.
    with pytest.raises(ValueError, match="static instance"):
        server_config_from_text(
            "ssl_engine { use qat_engine; qat_engine { "
            "qat_notify_mode interrupt; qat_instance_policy shared; } }")


def test_lifecycle_directives():
    cfg = server_config_from_text("""
        worker_respawn off;
        max_respawns 2;
        worker_drain_timeout 0.03;
    """)
    assert cfg.worker_respawn is False
    assert cfg.max_respawns == 2
    assert cfg.worker_drain_timeout == 0.03


def test_lifecycle_defaults():
    cfg = server_config_from_text("worker_processes 2;")
    assert cfg.worker_respawn is True
    assert cfg.max_respawns == 5
    assert cfg.worker_drain_timeout == 50e-3


@pytest.mark.parametrize("bad,msg", [
    ("max_respawns -1;", "max_respawns must be >= 0"),
    ("worker_drain_timeout 0;", "worker_drain_timeout must be positive"),
    ("worker_drain_timeout -0.1;",
     "worker_drain_timeout must be positive"),
])
def test_lifecycle_directives_rejected(bad, msg):
    with pytest.raises(ConfError, match=msg):
        server_config_from_text(bad)
