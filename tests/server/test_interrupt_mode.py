"""Unit tests for the interrupt-driven retrieval path (section 3.3's
road-not-taken) and the ring response-callback hook behind it."""

import pytest

from repro.core.costmodel import CostModel
from repro.cpu import Core
from repro.crypto.ops import CryptoOp, CryptoOpKind
from repro.offload.engine import AsyncOffloadEngine
from repro.offload.qat_backend import QatBackend
from repro.qat import QatDevice, QatUserspaceDriver
from repro.server.polling.interrupt_mode import InterruptRetriever
from repro.sim import Simulator
from repro.ssl.async_job import FiberAsyncJob
from repro.tls.actions import CryptoCall


def make_env():
    sim = Simulator()
    core = Core(sim, 0)
    dev = QatDevice(sim, n_endpoints=1)
    drv = QatUserspaceDriver(dev.allocate_instances(1)[0])
    eng = AsyncOffloadEngine(QatBackend([drv]), core, CostModel())
    return sim, core, eng


def submit_one(sim, eng, result="r"):
    job = FiberAsyncJob(lambda: iter(()), kind="h")
    job.mark_paused(None)

    def proc(sim):
        ok = yield from eng.submit_async(
            CryptoCall(CryptoOp(CryptoOpKind.RSA_PRIV, rsa_bits=2048),
                       compute=lambda: result), job, "w")
        assert ok

    sim.process(proc(sim))
    return job


def test_ring_response_callback_fires():
    sim, core, eng = make_env()
    hits = []
    eng.backend.drivers[0].instance.set_response_callback(
        lambda ring: hits.append(ring))
    submit_one(sim, eng)
    sim.run()
    assert len(hits) == 1
    assert hits[0].available_responses == 1


def test_interrupt_delivers_response_without_polling():
    sim, core, eng = make_env()
    irq = InterruptRetriever(sim, eng)
    irq.arm()
    job = submit_one(sim, eng)
    sim.run()
    assert irq.interrupts == 1
    assert job.response_ready
    assert job.take_resume() == ("r", None)
    assert eng.inflight.total == 0


def test_interrupts_coalesce():
    sim, core, eng = make_env()
    irq = InterruptRetriever(sim, eng)
    irq.arm()
    jobs = [submit_one(sim, eng, result=i) for i in range(6)]
    sim.run()
    # Six responses landed within the moderation window of one or two
    # interrupts, not six.
    assert irq.interrupts < 6
    assert all(j.response_ready for j in jobs)


def test_interrupt_charges_kernel_work():
    sim, core, eng = make_env()
    irq = InterruptRetriever(sim, eng)
    irq.arm()
    submit_one(sim, eng)
    sim.run()
    assert core.stats.kernel_crossings >= 1
    assert core.stats.kernel_time > 0


def test_wake_callback_invoked():
    sim, core, eng = make_env()
    woken = []
    irq = InterruptRetriever(sim, eng, wake=lambda: woken.append(sim.now))
    irq.arm()
    submit_one(sim, eng)
    sim.run()
    assert len(woken) == 1


def test_double_arm_rejected():
    sim, core, eng = make_env()
    irq = InterruptRetriever(sim, eng)
    irq.arm()
    with pytest.raises(RuntimeError):
        irq.arm()
