"""End-to-end worker lifecycle supervision: crash respawn with lease
reclamation, graceful reload under load, and validated-config
rollback."""

import pytest

from repro.bench.runner import Testbed
from repro.core.configurations import make_server_config
from repro.server.lifecycle import WorkerState

KNOBS = dict(qat_request_deadline=8e-3, qat_watchdog_interval=1e-3,
             qat_submit_max_retries=8, worker_drain_timeout=20e-3)
CRASH_AT = 0.03
UNTIL = 0.10
WORKERS = 2
SUITES = ("TLS-RSA",)


def make_bed(seed=7, crashed=True, **extra):
    plan = dict(worker_crashes=((0, CRASH_AT),)) if crashed else None
    bed = Testbed("QTLS", workers=WORKERS, suites=SUITES, seed=seed,
                  fault_plan=plan, **dict(KNOBS, **extra))
    bed.add_s_time_fleet(n_clients=40)
    return bed


# -- crash -> respawn --------------------------------------------------------

@pytest.fixture(scope="module")
def crashed_bed():
    bed = make_bed()
    bed.sim.run(until=UNTIL)
    return bed


def test_crash_fault_fires_and_respawns(crashed_bed):
    sup = crashed_bed.server.supervisor
    assert sup.crashes == 1 and sup.respawns == 1
    assert crashed_bed.fault_plan.workers_crashed == 1
    kinds = [kind for _, kind, _ in sup.events]
    assert kinds[:2] == ["worker-crash", "worker-respawn"]


def test_respawned_worker_serves_on_the_same_core(crashed_bed):
    replacement = crashed_bed.server.workers[0]
    dead = crashed_bed.server.retired_workers[0]
    assert replacement is not dead
    assert replacement.core is dead.core
    assert replacement.listener is dead.listener
    # The replacement actually completed handshakes after the crash.
    assert (replacement.metrics.handshakes_full
            + replacement.metrics.handshakes_resumed) > 0


def test_crash_retires_epoch_and_strands_nothing(crashed_bed):
    pool = crashed_bed.server.instance_pool
    assert pool.is_retired(0, 0)
    assert pool.epochs[0] == 1
    # Every op the dead incarnation left on the card surfaced and was
    # tombstoned — nothing leaked, nothing delivered to the successor.
    assert pool.dead_epoch_inflight() == 0
    dead = crashed_bed.server.retired_workers[0]
    assert dead.engine.idle
    assert crashed_bed.server.workers[0].engine.backend.epoch == 1


def test_crash_ledger_and_stub_status(crashed_bed):
    sup = crashed_bed.server.supervisor
    record = sup.retired[0]
    assert record.state is WorkerState.EXITED
    assert record.crashed and record.slot == 0
    page = crashed_bed.server.workers[0].stub_status.render()
    assert "lifecycle: state serving generation 0 epoch 1 respawns 1" \
        in page


def test_cps_recovers_after_respawn(crashed_bed):
    pre = crashed_bed.metrics.cps(0.01, CRASH_AT)
    post = crashed_bed.metrics.cps(0.06, UNTIL)
    assert pre > 0
    assert post >= 0.9 * pre


def test_crash_run_replays_bit_for_bit():
    a, b = make_bed(seed=11), make_bed(seed=11)
    a.sim.run(until=UNTIL)
    b.sim.run(until=UNTIL)
    assert a.metrics.handshakes == b.metrics.handshakes
    assert a.fault_plan.trace() == b.fault_plan.trace()
    assert a.server.supervisor.events == b.server.supervisor.events
    assert (a.server.instance_pool.tombstone_log
            == b.server.instance_pool.tombstone_log)


def test_respawn_budget_exhaustion_abandons_and_reclaims():
    bed = make_bed(crashed=False, max_respawns=0)
    bed.sim.run(until=0.02)
    assert bed.server.crash_worker(0) is True
    sup = bed.server.supervisor
    assert sup.crashes == 1 and sup.respawns == 0
    assert sup.dead_slots == {0}
    pool = bed.server.instance_pool
    assert pool.lease_counts()[0] == 0
    assert pool.reclaimed > 0
    # A second crash on the dead slot is a no-op.
    assert bed.server.crash_worker(0) is False
    # The survivor keeps completing handshakes.
    before = len(bed.metrics.handshakes)
    bed.sim.run(until=0.06)
    assert len(bed.metrics.handshakes) > before


# -- graceful reload ---------------------------------------------------------

def reload_config(**overrides):
    return make_server_config("QTLS", workers=WORKERS, suites=SUITES,
                              **dict(KNOBS, **overrides))


@pytest.fixture(scope="module")
def reloaded_bed():
    bed = make_bed(crashed=False)

    def do_reload():
        bed.reload_ok = bed.server.reload(
            reload_config(qat_heuristic_poll_asym_threshold=32))

    bed.reload_ok = False
    bed.sim.call_at(CRASH_AT, do_reload)
    bed.sim.run(until=UNTIL)
    return bed


def test_reload_swaps_generation_without_errors(reloaded_bed):
    sup = reloaded_bed.server.supervisor
    assert reloaded_bed.reload_ok
    assert sup.generation == 1 and sup.reloads == 1
    assert reloaded_bed.metrics.errors == 0
    for worker in reloaded_bed.server.workers:
        assert worker.generation == 1
        assert (worker.config.ssl_engine
                .qat_heuristic_poll_asym_threshold) == 32


def test_reload_drains_old_generation(reloaded_bed):
    sup = reloaded_bed.server.supervisor
    assert sup.draining_count == 0
    assert len(reloaded_bed.server.retired_workers) == WORKERS
    for record in sup.draining_records:
        assert record.state is WorkerState.EXITED
        assert record.worker.drained
    pool = reloaded_bed.server.instance_pool
    assert pool.epochs == [1] * WORKERS
    assert pool.dead_epoch_inflight() == 0


def test_reload_never_zeroes_throughput(reloaded_bed):
    # 5 ms buckets across the swap: the new generation owns the
    # listeners before the old one stops, so handshakes keep landing.
    times = [t for t, _, _ in reloaded_bed.metrics.handshakes]
    start, width = 0.01, 5e-3
    n = int((UNTIL - start) / width)
    buckets = [0] * n
    for t in times:
        if start <= t < start + n * width:
            buckets[int((t - start) / width)] += 1
    assert min(buckets) > 0


def test_reload_metrics_survive_across_generations(reloaded_bed):
    # Aggregated snapshot covers retired + current incarnations: the
    # old generation's handshakes must not vanish from the totals.
    # (Server-side completion can lead the client's record by the
    # final flight's RTT, hence the 1-2 op slack at the run cutoff.)
    snap = reloaded_bed.server.metrics_snapshot()
    total_hs = snap["handshakes_full"] + snap["handshakes_resumed"]
    client_hs = len(reloaded_bed.metrics.handshakes)
    assert client_hs <= total_hs <= client_hs + WORKERS
    retired_hs = sum(w.metrics.handshakes_full
                     + w.metrics.handshakes_resumed
                     for w in reloaded_bed.server.retired_workers)
    assert retired_hs > 0


# -- reload validation / rollback -------------------------------------------

def test_invalid_reload_is_rejected_and_old_config_serves():
    bed = make_bed(crashed=False)
    old_config = bed.server.config

    def do_bad_reload():
        bed.reload_ok = bed.server.reload(
            make_server_config("QTLS", workers=WORKERS + 1,
                               suites=SUITES, **KNOBS))

    bed.reload_ok = None
    bed.sim.call_at(CRASH_AT, do_bad_reload)
    bed.sim.run(until=0.06)
    sup = bed.server.supervisor
    assert bed.reload_ok is False
    assert sup.reload_rejections == 1 and sup.generation == 0
    assert bed.server.config is old_config
    assert bed.metrics.errors == 0
    assert not bed.server.retired_workers


def test_reload_rejects_engine_shape_changes():
    bed = make_bed(crashed=False)
    bad = reload_config(qat_instances_per_worker=2)
    assert bed.server.reload(bad) is False
    assert bed.server.supervisor.reload_rejections == 1
    journal = bed.server.supervisor.events
    assert journal and journal[-1][1] == "reload-rejected"
    assert "qat_instances_per_worker" in journal[-1][2]


def test_plain_sighup_cycles_workers_on_same_config():
    bed = make_bed(crashed=False)
    bed.sim.call_at(CRASH_AT, lambda: bed.server.reload())
    bed.sim.run(until=UNTIL)
    sup = bed.server.supervisor
    assert sup.generation == 1
    assert bed.metrics.errors == 0
    assert sup.draining_count == 0


# -- reload x outage cross-product (via the scenario harness) ----------------

@pytest.fixture(scope="module")
def reload_during_outage():
    """Graceful reload fired while the whole card is dark: the old
    generation drains into an endpoint outage, so every drain op must
    fail over (deadline -> software fallback), not strand."""
    from repro.testing.scenario import (ActionSpec, ClientSpec,
                                        ScenarioSpec, run_scenario)
    spec = ScenarioSpec(
        seed=1021, config_name="QTLS", workers=WORKERS,
        suites=SUITES, duration=0.12, trace=True,
        overrides=dict(KNOBS),
        clients=[ClientSpec(kind="s_time", n_clients=40,
                            stagger=0.002)],
        faults={"outages": [(None, 0.025, 0.06)]},
        actions=[ActionSpec(kind="reload", at=0.03,
                            mutation={"qat_batch_size": 8})],
    )
    return run_scenario(spec)


def test_reload_during_outage_passes_all_invariants(reload_during_outage):
    from repro.testing.invariants import check_all
    assert check_all(reload_during_outage.bed) == []


def test_reload_during_outage_swaps_generation(reload_during_outage):
    bed = reload_during_outage.bed
    sup = bed.server.supervisor
    assert sup.generation == 1 and sup.reloads == 1
    assert sup.draining_count == 0
    for worker in bed.server.workers:
        assert worker.generation == 1
        assert worker.config.ssl_engine.qat_batch_size == 8


def test_reload_during_outage_fails_over_instead_of_stranding(
        reload_during_outage):
    bed = reload_during_outage.bed
    # The outage actually bit: submissions were rejected and drain ops
    # had to be rescued off the dead card.
    assert bed.fault_plan.submits_rejected > 0
    retired = bed.server.retired_workers
    assert len(retired) == WORKERS
    rescued = sum(w.engine.op_timeouts + w.engine.ops_fallback
                  + w.engine.submit_failures for w in retired)
    assert rescued > 0
    # ...and nothing stayed behind: every old-generation op retired.
    for w in retired:
        assert w.engine.inflight.total == 0
    pool = bed.server.instance_pool
    assert pool.dead_epoch_inflight() == 0
    assert pool.retired_inbox_entries() == 0


def test_service_recovers_after_outage_and_reload(reload_during_outage):
    bed = reload_during_outage.bed
    # Handshakes complete after the outage window ends at t=0.06 —
    # the new generation is live and the card is back.
    post = [t for t, _, _ in bed.metrics.handshakes if t > 0.07]
    assert post, "no handshakes completed after recovery"
