"""End-to-end failover: a faulted QTLS testbed must complete every
handshake through degradation and report it via stub_status."""

import pytest

from repro.bench.runner import Testbed
from repro.ssl.async_job import JobState

KNOBS = dict(qat_request_deadline=8e-3, qat_watchdog_interval=1e-3,
             qat_submit_max_retries=8)
PLAN = dict(response_loss=0.15, response_loss_window=(0.02, 0.04),
            outages=((0, 0.02, 0.035),))
UNTIL = 0.06


def run_faulted(seed=7):
    bed = Testbed("QTLS", workers=1, suites=("TLS-RSA",), seed=seed,
                  fault_plan=PLAN, **KNOBS)
    bed.add_s_time_fleet(n_clients=40)
    bed.sim.run(until=UNTIL)
    return bed


@pytest.fixture(scope="module")
def faulted_bed():
    return run_faulted()


def test_no_client_errors_under_faults(faulted_bed):
    assert faulted_bed.metrics.errors == 0


def test_handshakes_keep_completing_through_fault_window(faulted_bed):
    done_during = [t for t, _, _ in faulted_bed.metrics.handshakes
                   if 0.02 <= t < 0.04]
    done_after = [t for t, _, _ in faulted_bed.metrics.handshakes
                  if t >= 0.04]
    assert done_during and done_after


def test_faults_actually_injected(faulted_bed):
    plan = faulted_bed.fault_plan
    assert plan.responses_lost > 0
    assert plan.submits_rejected > 0


def test_failover_exercised_and_nothing_left_hanging(faulted_bed):
    worker = faulted_bed.server.workers[0]
    assert worker.engine.ops_fallback > 0
    now = faulted_bed.sim.now
    stale = 2 * KNOBS["qat_request_deadline"]
    for conn in worker.conns.values():
        if conn.in_async and conn.async_since is not None:
            assert now - conn.async_since <= stale, (
                f"conn {conn.conn_id} hung in TLS-ASYNC")
        job = conn.ssl.job
        if job is not None:
            assert job.state is not JobState.FINISHED or job.result


def test_stub_status_reports_degradation(faulted_bed):
    worker = faulted_bed.server.workers[0]
    worker.stop()  # publishes final counters
    st = worker.stub_status
    assert st.degraded
    page = st.render()
    assert "offload degradation:" in page
    assert f"fallback_ops {st.fallback_ops}" in page
    assert st.fallback_ops > 0


def test_faulted_run_is_deterministic(faulted_bed):
    replay = run_faulted()
    assert replay.metrics.handshakes == faulted_bed.metrics.handshakes
    assert replay.fault_plan.trace() == faulted_bed.fault_plan.trace()
    assert (replay.fault_plan.counters()
            == faulted_bed.fault_plan.counters())
