"""End-to-end integration: full server + client fleets, all five
configurations, data transfer, resumption, TLS 1.3, real crypto."""

import pytest

from repro.clients import AbFleet, STimeFleet
from repro.core import ClientMetrics, default_cost_model, make_server_config
from repro.crypto.provider import ModeledCryptoProvider, RealCryptoProvider
from repro.net import Network
from repro.qat import dh8970
from repro.server import TlsServer
from repro.sim import RngRegistry, Simulator
from repro.tls.config import TlsClientConfig
from repro.tls.constants import ProtocolVersion
from repro.tls.suites import get_suite


class World:
    """One simulated testbed."""

    def __init__(self, config_name, workers=2, suites=("TLS-RSA",),
                 curves=("P-256",), provider=None, tls_version="1.2",
                 rsa_bits=2048, seed=7, **overrides):
        self.sim = Simulator()
        self.rng = RngRegistry(seed)
        self.net = Network(self.sim)
        self.provider = provider or ModeledCryptoProvider()
        self.cm = default_cost_model()
        self.config = make_server_config(
            config_name, workers=workers, suites=suites, curves=curves,
            tls_version=tls_version, rsa_bits=rsa_bits, **overrides)
        self.device = dh8970(self.sim) if self.config.uses_qat else None
        self.server = TlsServer(self.sim, self.net, self.config,
                                self.provider, self.rng,
                                qat_device=self.device)
        self.server.start()
        self.metrics = ClientMetrics()
        self.suites = suites
        self.curves = curves
        self.version = (ProtocolVersion.TLS13 if tls_version == "1.3"
                        else ProtocolVersion.TLS12)

    def client_config_factory(self):
        suites = tuple(get_suite(s) for s in self.suites)

        def factory(cid):
            return TlsClientConfig(
                provider=self.provider, suites=suites,
                rng=self.rng.stream(f"client-{cid}"), curves=self.curves)

        return factory

    def s_time(self, n, **kw):
        fleet = STimeFleet(self.sim, self.net, self.server.addresses(),
                           self.client_config_factory(), self.cm,
                           self.metrics, n_clients=n, version=self.version,
                           mix_rng=self.rng.stream("mix"), **kw)
        fleet.start()
        return fleet

    def ab(self, n, size, **kw):
        fleet = AbFleet(self.sim, self.net, self.server.addresses(),
                        self.client_config_factory(), self.cm, self.metrics,
                        n_clients=n, file_size=size, version=self.version,
                        **kw)
        fleet.start()
        return fleet


ALL_CONFIGS = ("SW", "QAT+S", "QAT+A", "QAT+AH", "QTLS")


@pytest.mark.parametrize("name", ALL_CONFIGS)
def test_handshakes_complete_under_all_configs(name):
    w = World(name)
    w.s_time(30)
    w.sim.run(until=0.1)
    assert w.metrics.errors == 0
    assert len(w.metrics.handshakes) > 20
    snap = w.server.metrics_snapshot()
    assert snap["alerts"] == 0
    assert snap["handshakes_full"] >= len(w.metrics.handshakes)


def test_qtls_beats_sw_and_straight():
    results = {}
    for name in ("SW", "QAT+S", "QTLS"):
        w = World(name)
        w.s_time(60)
        w.sim.run(until=0.2)
        results[name] = w.metrics.cps(0.08, 0.2)
    assert results["QTLS"] > 3 * results["QAT+S"]
    assert results["QAT+S"] > 1.5 * results["SW"]


def test_qat_fw_counters_nonzero_after_offload():
    """The artifact appendix's fw_counters check."""
    w = World("QTLS")
    w.s_time(20)
    w.sim.run(until=0.05)
    totals = w.device.fw_counter_totals()
    assert totals["total"] > 0
    assert totals["kind.rsa_priv"] > 0
    assert totals.get("errors", 0) == 0
    # SW config never touches the device.
    w2 = World("SW")
    w2.s_time(20)
    w2.sim.run(until=0.05)
    assert w2.device is None


def test_data_transfer_keepalive():
    w = World("QTLS")
    w.ab(20, size=65536)
    w.sim.run(until=0.1)
    assert w.metrics.errors == 0
    assert len(w.metrics.requests) > 10
    assert w.metrics.throughput_bps(0.05, 0.1) > 1e9  # > 1 Gbps
    snap = w.server.metrics_snapshot()
    assert snap["requests_served"] >= len(w.metrics.requests)


def test_data_transfer_fragments_served():
    w = World("SW")
    w.ab(4, size=40000)  # 3 records per response
    w.sim.run(until=0.05)
    assert len(w.metrics.requests) > 3
    got = w.metrics.transfers[0][1]
    assert got == 40000


def test_response_time_mode_full_handshake_per_request():
    w = World("QTLS")
    w.ab(4, size=64, keepalive=False)
    w.sim.run(until=0.1)
    assert len(w.metrics.requests) > 10
    assert len(w.metrics.handshakes) == len(w.metrics.requests)
    lat = w.metrics.mean_latency(0.02, 0.1)
    assert 0.0002 < lat < 0.01


def test_session_resumption_reuse():
    w = World("QTLS", suites=("ECDHE-RSA",))
    w.s_time(30, reuse=True)
    w.sim.run(until=0.15)
    snap = w.server.metrics_snapshot()
    assert snap["handshakes_resumed"] > 0
    # Each client does one full handshake then resumes forever.
    assert snap["handshakes_full"] <= 31
    assert snap["handshakes_resumed"] > snap["handshakes_full"]


def test_mixed_ratio_roughly_one_to_nine():
    w = World("QTLS", suites=("ECDHE-RSA",))
    w.s_time(40, full_ratio=0.1)
    w.sim.run(until=0.3)
    snap = w.server.metrics_snapshot()
    total = snap["handshakes_full"] + snap["handshakes_resumed"]
    frac_full = snap["handshakes_full"] / total
    assert 0.05 < frac_full < 0.2


def test_tls13_end_to_end():
    w = World("QTLS", suites=("TLS1.3-ECDHE-RSA",), tls_version="1.3")
    w.s_time(20)
    w.sim.run(until=0.1)
    assert w.metrics.errors == 0
    assert len(w.metrics.handshakes) > 10


def test_real_crypto_end_to_end_qtls():
    """Full stack with REAL RSA/ECDHE/PRF crypto through the simulated
    QAT offload path."""
    w = World("QTLS", suites=("ECDHE-RSA",), rsa_bits=1024,
              provider=RealCryptoProvider())
    w.s_time(6)
    w.sim.run(until=0.03)
    assert w.metrics.errors == 0
    assert len(w.metrics.handshakes) > 3
    assert w.server.metrics_snapshot()["alerts"] == 0


def test_stack_async_end_to_end():
    w = World("QTLS", async_impl="stack")
    w.s_time(20)
    w.sim.run(until=0.08)
    assert w.metrics.errors == 0
    assert len(w.metrics.handshakes) > 10


def test_timer_interval_1ms_hurts_low_concurrency():
    """Figure 12's 1 ms interval pathology: with one client, every
    crypto op waits for the next poll tick."""
    results = {}
    for interval in (10e-6, 1e-3):
        w = World("QAT+A", workers=1, timer_poll_interval=interval)
        w.ab(1, size=64, keepalive=False)
        w.sim.run(until=0.3)
        results[interval] = w.metrics.mean_latency(0.05, 0.3)
    assert results[1e-3] > 3 * results[10e-6]


def test_stub_status_consistent_after_load():
    w = World("QTLS")
    w.s_time(20)
    w.sim.run(until=0.1)
    for worker in w.server.workers:
        st = worker.stub_status
        assert 0 <= st.tls_idle <= st.tls_alive
        assert st.tls_alive == len(worker.conns)


def test_heuristic_poller_actually_used():
    w = World("QTLS")
    w.s_time(40)
    w.sim.run(until=0.1)
    polls = sum(wk.poller.polls for wk in w.server.workers)
    assert polls > 50
    for wk in w.server.workers:
        assert wk.timer_thread is None


def test_timer_thread_used_in_qat_a():
    w = World("QAT+A")
    w.s_time(20)
    w.sim.run(until=0.05)
    for wk in w.server.workers:
        assert wk.poller is None
        assert wk.timer_thread is not None
        assert wk.timer_thread.polls > 100


def test_interrupt_notify_mode_end_to_end():
    """The section 3.3 alternative: kernel interrupts retrieve
    responses. Functional, but slower than polling."""
    w = World("QTLS", qat_notify_mode="interrupt")
    w.s_time(30)
    w.sim.run(until=0.1)
    assert w.metrics.errors == 0
    assert len(w.metrics.handshakes) > 20
    irq = sum(wk.interrupt_retriever.interrupts for wk in w.server.workers)
    assert irq > 50
    for wk in w.server.workers:
        assert wk.poller is None and wk.timer_thread is None


def test_session_tickets_end_to_end_config():
    w = World("QTLS", suites=("ECDHE-RSA",), session_tickets=True,
              session_cache_enabled=False)
    w.s_time(20, reuse=True)
    w.sim.run(until=0.1)
    snap = w.server.metrics_snapshot()
    assert snap["handshakes_resumed"] > 0
    assert w.server.ticket_keeper.accepted > 0
