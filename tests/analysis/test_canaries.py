"""Checker-rot canaries: every ``--inject-violation`` recipe is caught.

Mirrors the fuzzer's ``--inject-bug`` teeth-check: for each finding
code with an injection recipe, patch the known-bad pattern into a
throwaway copy of ``src/`` and assert the checker still reports it.
A checker that silently stops matching (AST shape drift, renamed
hook, loosened rule) fails here, in tier-1, not months later.
"""

import sys

import pytest

from .helpers import REPO_ROOT

sys.path.insert(0, str(REPO_ROOT / "tools"))

import analyze  # noqa: E402


@pytest.mark.parametrize("code", sorted(analyze.INJECTIONS))
def test_injected_violation_is_caught(code, capsys):
    assert analyze.inject_violation(code, select_only=True) == 0, (
        f"checker for {code} no longer catches its canary pattern:\n"
        + capsys.readouterr().out)


def test_every_file_checker_family_has_a_canary():
    """Each RAx family keeps at least one live injection recipe."""
    families = {c[:3] for c in analyze.INJECTIONS}
    assert families == {"RA1", "RA2", "RA3", "RA4", "RA5", "RA6"}
