"""Shared scaffolding for the static-analysis tests.

``analyze_source`` runs the suite over a synthetic in-memory tree:
each entry maps a root-relative path (``repro/qat/mod.py``) to source
text, materialised in a tmp dir so :class:`SourceFile` sees a real
layout. Checkers under test are isolated with ``select``.
"""

from pathlib import Path

from repro.analysis import AnalysisContext, Baseline, run_analysis

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC_ROOT = REPO_ROOT / "src"


def build_tree(tmp_path, files, readme=None):
    """Materialise ``{relpath: source}`` under ``tmp_path/src``."""
    root = tmp_path / "src"
    for relpath, text in files.items():
        p = root / relpath
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(text, encoding="utf-8")
    readme_path = None
    if readme is not None:
        readme_path = tmp_path / "README.md"
        readme_path.write_text(readme, encoding="utf-8")
    return AnalysisContext.from_paths(root, readme_path=readme_path)


def analyze_source(tmp_path, files, select=None, readme=None,
                   baseline=None):
    ctx = build_tree(tmp_path, files, readme=readme)
    return run_analysis(ctx, select=select,
                        baseline=baseline or Baseline())


def codes_of(result):
    return [f.code for f in result.findings]
