"""Golden tests for the sim-purity checker (RA2xx)."""

from .helpers import analyze_source, codes_of

SELECT = ["sim-purity"]


def run(tmp_path, source):
    return analyze_source(tmp_path, {"repro/net/mod.py": source},
                          select=SELECT)


def test_flags_real_concurrency_imports(tmp_path):
    result = run(tmp_path, (
        "import threading\n"
        "import socket\n"
        "from select import epoll\n"
        "import multiprocessing.pool\n"
    ))
    assert codes_of(result) == ["RA201"] * 4


def test_flags_function_level_import(tmp_path):
    result = run(tmp_path, (
        "def lazy():\n"
        "    import threading\n"
        "    return threading.Thread\n"
    ))
    assert codes_of(result) == ["RA201"]


def test_flags_blocking_calls_including_aliased(tmp_path):
    result = run(tmp_path, (
        "import time\n"
        "import time as t\n"
        "def f():\n"
        "    time.sleep(1)\n"
        "    t.sleep(1)\n"
        "    os.system('ls')\n"
    ))
    assert codes_of(result) == ["RA202"] * 3


def test_flags_entropy_reads(tmp_path):
    result = run(tmp_path, (
        "import os\n"
        "import secrets\n"
        "from uuid import uuid4\n"
        "key = os.urandom(16)\n"
    ))
    # secrets import, uuid4 from-import, os.urandom call
    assert codes_of(result) == ["RA203"] * 3


def test_sim_equivalents_pass(tmp_path):
    result = run(tmp_path, (
        "from repro.net.socket_sim import SimSocket\n"
        "def f(sim):\n"
        "    yield sim.timeout(0.5)\n"
        "    os.path.join('a', 'b')\n"
        "    time.perf_counter  # reference, not a call\n"
    ))
    assert result.findings == []


def test_optout(tmp_path):
    result = run(tmp_path, (
        "import threading  # analysis: allow[RA201]\n"
    ))
    assert result.findings == []
    assert result.suppressed == 1
