"""Golden tests for the layering checker (RA3xx)."""

from .helpers import analyze_source, codes_of

SELECT = ["layering"]


def test_flags_upward_absolute_import(tmp_path):
    result = analyze_source(tmp_path, {
        "repro/crypto/bad.py": "from repro.server.config import X\n",
    }, select=SELECT)
    assert codes_of(result) == ["RA301"]
    assert "rank" in result.findings[0].message


def test_flags_upward_relative_import(tmp_path):
    result = analyze_source(tmp_path, {
        "repro/qat/bad.py": "from ..server import config\n",
    }, select=SELECT)
    assert codes_of(result) == ["RA301"]


def test_flags_lateral_import(tmp_path):
    # qat and tls share rank 3: lateral imports are also rejected
    result = analyze_source(tmp_path, {
        "repro/qat/bad.py": "from repro.tls import actions\n",
    }, select=SELECT)
    assert codes_of(result) == ["RA301"]


def test_downward_and_intra_package_imports_pass(tmp_path):
    result = analyze_source(tmp_path, {
        "repro/server/ok.py": (
            "from repro.sim import Simulator\n"
            "from ..offload.engine import AsyncOffloadEngine\n"
            "from .config import ServerConfig\n"
            "from . import reactor\n"
        ),
    }, select=SELECT)
    assert result.findings == []


def test_package_init_relative_import_resolves_to_itself(tmp_path):
    # `from . import x` inside repro/qat/__init__.py is intra-package
    result = analyze_source(tmp_path, {
        "repro/qat/__init__.py": "from . import rings\n"
                                 "from .rings import RingFull\n",
        "repro/qat/rings.py": "RingFull = object\n",
    }, select=SELECT)
    assert result.findings == []


def test_function_body_import_is_exempt(tmp_path):
    result = analyze_source(tmp_path, {
        "repro/core/ok.py": (
            "def build():\n"
            "    from repro.server.config import ServerConfig\n"
            "    return ServerConfig()\n"
        ),
    }, select=SELECT)
    assert result.findings == []


def test_type_checking_guard_is_exempt(tmp_path):
    result = analyze_source(tmp_path, {
        "repro/offload/ok.py": (
            "from typing import TYPE_CHECKING\n"
            "if TYPE_CHECKING:\n"
            "    from repro.server.worker import Worker\n"
        ),
    }, select=SELECT)
    assert result.findings == []


def test_conditional_toplevel_import_still_counts(tmp_path):
    result = analyze_source(tmp_path, {
        "repro/crypto/bad.py": (
            "try:\n"
            "    from repro.server.config import X\n"
            "except ImportError:\n"
            "    X = None\n"
        ),
    }, select=SELECT)
    assert codes_of(result) == ["RA301"]


def test_unranked_package_flags_ra302(tmp_path):
    result = analyze_source(tmp_path, {
        "repro/mystery/mod.py": "x = 1\n",
    }, select=SELECT)
    assert codes_of(result) == ["RA302"]
