"""Golden tests for the reactor-source conformance checker (RA6xx)."""

from .helpers import analyze_source, codes_of

SELECT = ["reactor-sources"]

_GOOD = """
class EventSource:
    name = "source"
    has_stage = False

class GoodSource(EventSource):
    name = "good"
    has_stage = True
    def matches(self, pollable):
        return False
    def on_event(self, pollable, owner):
        yield from ()
    def next_timeout(self, now):
        return None
    def on_pass(self, owner):
        yield from ()
    def stats(self):
        s = super().stats()
        s["extra"] = 1
        return s
"""


def run(tmp_path, source):
    return analyze_source(tmp_path, {"repro/server/mod.py": source},
                          select=SELECT)


def test_conforming_source_passes(tmp_path):
    assert run(tmp_path, _GOOD).findings == []


def test_flags_missing_and_duplicate_names(tmp_path):
    result = run(tmp_path, (
        "class A(EventSource):\n"
        "    pass\n"
        "class B(EventSource):\n"
        "    name = 'dup'\n"
        "class C(EventSource):\n"
        "    name = 'dup'\n"
    ))
    assert codes_of(result) == ["RA601", "RA601"]
    assert "reuses" in result.findings[1].message


def test_flags_base_default_name(tmp_path):
    result = run(tmp_path, (
        "class D(EventSource):\n"
        "    name = 'source'\n"
    ))
    assert codes_of(result) == ["RA601"]


def test_flags_non_generator_stage(tmp_path):
    result = run(tmp_path, (
        "class S(EventSource):\n"
        "    name = 's'\n"
        "    has_stage = True\n"
        "    def on_pass(self, owner):\n"
        "        return []\n"
    ))
    assert codes_of(result) == ["RA602"]


def test_flags_stage_without_on_pass(tmp_path):
    result = run(tmp_path, (
        "class S(EventSource):\n"
        "    name = 's'\n"
        "    has_stage = True\n"
    ))
    assert codes_of(result) == ["RA602"]


def test_flags_wrong_hook_arity(tmp_path):
    result = run(tmp_path, (
        "class S(EventSource):\n"
        "    name = 's'\n"
        "    def next_timeout(self, now, slack):\n"
        "        return None\n"
    ))
    assert codes_of(result) == ["RA603"]


def test_defaulted_and_variadic_hooks_pass(tmp_path):
    result = run(tmp_path, (
        "class S(EventSource):\n"
        "    name = 's'\n"
        "    def next_timeout(self, now, slack=0.0):\n"
        "        return None\n"
        "class V(EventSource):\n"
        "    name = 'v'\n"
        "    def on_event(self, *args, **kw):\n"
        "        yield from ()\n"
    ))
    assert result.findings == []


def test_flags_stats_without_super(tmp_path):
    result = run(tmp_path, (
        "class S(EventSource):\n"
        "    name = 's'\n"
        "    def stats(self):\n"
        "        return {'polls': 0}\n"
    ))
    assert codes_of(result) == ["RA604"]


def test_non_source_classes_ignored(tmp_path):
    result = run(tmp_path, (
        "class Plain:\n"
        "    def stats(self):\n"
        "        return {}\n"
    ))
    assert result.findings == []
