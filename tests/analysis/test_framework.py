"""Framework-level tests: findings, suppression, baseline, registry."""

import pytest

from repro.analysis import (Baseline, Finding, all_codes,
                            checker_registry, run_analysis)
from repro.analysis.core import _selected

from .helpers import analyze_source, build_tree


def test_finding_render_format():
    f = Finding(path="repro/x.py", line=7, code="RA101", message="boom")
    assert f.render() == "repro/x.py:7: RA101 boom"
    assert f.baseline_key == ("RA101", "repro/x.py")


def test_registry_names_and_codes_are_unique():
    registry = checker_registry()
    assert set(registry) == {"determinism", "sim-purity", "layering",
                             "span-discipline", "conf-directives",
                             "reactor-sources"}
    codes = all_codes()
    per_checker = [c for chk in registry.values() for c in chk.codes]
    assert len(per_checker) == len(set(per_checker)) == len(codes)
    # every code belongs to the family its checker owns
    assert all(c.startswith("RA") for c in codes)


def test_select_and_ignore_by_prefix_and_name():
    assert _selected("RA101", "determinism", ["RA1"], None)
    assert _selected("RA101", "determinism", ["determinism"], None)
    assert not _selected("RA301", "layering", ["RA1"], None)
    assert not _selected("RA101", "determinism", None, ["determinism"])
    assert not _selected("RA101", "determinism", ["RA1"], ["RA101"])


def test_inline_suppression_variants(tmp_path):
    src = (
        "import time\n"
        "a = time.time()\n"
        "b = time.time()  # analysis: allow\n"
        "c = time.time()  # analysis: allow[RA101]\n"
        "d = time.time()  # analysis: allow[RA102]\n"
        "e = time.time()  # determinism: allowed\n"
    )
    result = analyze_source(tmp_path, {"repro/sim/mod.py": src},
                            select=["RA101"])
    flagged = sorted(f.line for f in result.findings)
    # line 2 (no mark) and line 5 (wrong code in the bracket) flag;
    # bare allow, matching code, and the legacy mark suppress.
    assert flagged == [2, 5]
    assert result.suppressed == 3


def test_baseline_roundtrip_and_stale(tmp_path):
    baseline_file = tmp_path / "baseline.txt"
    baseline_file.write_text(
        "# comment\n"
        "\n"
        "RA101 repro/sim/mod.py — known debt\n"
        "RA101 repro/sim/other.py — paid off already\n",
        encoding="utf-8")
    baseline = Baseline.load(baseline_file)
    assert set(baseline.entries) == {("RA101", "repro/sim/mod.py"),
                                     ("RA101", "repro/sim/other.py")}
    result = analyze_source(
        tmp_path,
        {"repro/sim/mod.py": "import time\nx = time.time()\n",
         "repro/sim/other.py": "x = 1\n"},
        select=["RA101"], baseline=baseline)
    assert result.findings == []
    assert result.baselined == 1
    assert result.stale_baseline == [("RA101", "repro/sim/other.py")]


def test_baseline_rejects_malformed_lines(tmp_path):
    bad = tmp_path / "baseline.txt"
    bad.write_text("not a baseline line\n", encoding="utf-8")
    with pytest.raises(ValueError, match="malformed baseline"):
        Baseline.load(bad)


def test_stale_scoping_to_selected_checkers(tmp_path):
    """A --select run must not condemn baseline entries belonging to
    checkers that did not run (the check_determinism shim regression)."""
    baseline = Baseline({("RA301", "repro/sim/mod.py"): "layering debt"})
    ctx = build_tree(tmp_path, {"repro/sim/mod.py": "x = 1\n"})
    result = run_analysis(ctx, select=["determinism"], baseline=baseline)
    assert result.stale_baseline == []
    result = run_analysis(ctx, select=["layering"], baseline=baseline)
    assert result.stale_baseline == [("RA301", "repro/sim/mod.py")]


def test_findings_sorted_deterministically(tmp_path):
    src = "import time\nb = time.time()\nimport random\nc = random.random()\n"
    result = analyze_source(
        tmp_path, {"repro/sim/b.py": src, "repro/sim/a.py": src},
        select=["RA1"])
    keys = [(f.path, f.line, f.code) for f in result.findings]
    assert keys == sorted(keys)
