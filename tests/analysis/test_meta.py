"""Meta-tests: the real tree is clean, and the tooling has teeth.

The first half runs the full suite over the actual ``src/`` with the
checked-in baseline — the same gate CI applies — so a regression
anywhere in the repo fails tier-1, not just the lint job. The second
half drives the ``tools/analyze.py`` CLI (exit codes, shim,
``--inject-violation`` canaries).
"""

import subprocess
import sys

import pytest

from repro.analysis import AnalysisContext, Baseline, run_analysis

from .helpers import REPO_ROOT, SRC_ROOT

BASELINE = REPO_ROOT / "tools" / "analysis_baseline.txt"


def real_context():
    return AnalysisContext.from_paths(
        SRC_ROOT, readme_path=REPO_ROOT / "README.md")


def test_src_tree_is_clean_modulo_baseline():
    result = run_analysis(real_context(),
                          baseline=Baseline.load(BASELINE))
    assert result.findings == [], "\n".join(
        f.render() for f in result.findings)


def test_baseline_has_no_stale_entries():
    result = run_analysis(real_context(),
                          baseline=Baseline.load(BASELINE))
    assert result.stale_baseline == []


def test_baseline_entries_carry_justifications():
    baseline = Baseline.load(BASELINE)
    assert baseline.entries, "baseline exists and parses"
    for (code, path), why in baseline.entries.items():
        assert why.strip(), f"{code} {path} needs a justification"


def run_cli(*args):
    return subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / "analyze.py"), *args],
        capture_output=True, text=True, cwd=REPO_ROOT)


def test_cli_ci_gate_exits_zero():
    proc = run_cli("--ci")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "clean" in proc.stdout


def test_cli_list_prints_catalogue():
    proc = run_cli("--list")
    assert proc.returncode == 0
    for code in ("RA101", "RA201", "RA301", "RA401", "RA501", "RA601"):
        assert code in proc.stdout


def test_determinism_shim_stays_green():
    proc = subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / "check_determinism.py")],
        capture_output=True, text=True, cwd=REPO_ROOT)
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_unknown_injection_code_exits_two(tools_on_path):
    import analyze
    assert analyze.inject_violation("RA999", select_only=True) == 2


@pytest.fixture(scope="module")
def tools_on_path():
    sys.path.insert(0, str(REPO_ROOT / "tools"))
    yield
    sys.path.remove(str(REPO_ROOT / "tools"))
