"""Golden tests for the span-discipline checker (RA401)."""

from .helpers import analyze_source, codes_of

SELECT = ["span-discipline"]


def run(tmp_path, source):
    return analyze_source(tmp_path, {"repro/obs/mod.py": source},
                          select=SELECT)


def test_flags_leaked_span(tmp_path):
    result = run(tmp_path, (
        "def f(obs, op, sim):\n"
        "    trace = obs.begin(op, 1, 2, 'x', sim.now)\n"
        "    return None\n"
    ))
    assert codes_of(result) == ["RA401"]
    assert "trace" in result.findings[0].message


def test_flags_discarded_bare_open(tmp_path):
    result = run(tmp_path, (
        "def f(obs, op, sim):\n"
        "    obs.begin(op, 1, 2, 'x', sim.now)\n"
    ))
    assert codes_of(result) == ["RA401"]


def test_closed_span_passes(tmp_path):
    result = run(tmp_path, (
        "def f(obs, op, sim):\n"
        "    trace = obs.begin(op, 1, 2, 'x', sim.now)\n"
        "    try:\n"
        "        work()\n"
        "    finally:\n"
        "        obs.finish(trace, sim.now)\n"
    ))
    assert result.findings == []


def test_conditional_open_conditional_close_passes(tmp_path):
    # the live engine.py idiom: trace = begin(...) if enabled else None
    result = run(tmp_path, (
        "def f(obs, op, sim, enabled):\n"
        "    trace = obs.begin(op, 1, 2, 'x', sim.now) if enabled else None\n"
        "    if trace is not None:\n"
        "        obs.abort_open(trace, sim.now)\n"
    ))
    assert result.findings == []


def test_attribute_store_is_ownership_transfer(tmp_path):
    result = run(tmp_path, (
        "def f(job, obs, op, sim):\n"
        "    job.trace = obs.begin(op, 1, 2, 'x', sim.now)\n"
    ))
    assert result.findings == []


def test_returned_and_passed_spans_are_transfers(tmp_path):
    result = run(tmp_path, (
        "def g(obs, op, sim):\n"
        "    trace = obs.begin(op, 1, 2, 'x', sim.now)\n"
        "    return trace\n"
        "def h(obs, op, sim, q):\n"
        "    trace = obs.begin(op, 1, 2, 'x', sim.now)\n"
        "    q.append(trace)\n"
        "def k(job, obs, op, sim):\n"
        "    trace = obs.begin(op, 1, 2, 'x', sim.now)\n"
        "    job.traces['op'] = trace\n"
    ))
    assert result.findings == []


def test_nested_function_audited_separately(tmp_path):
    result = run(tmp_path, (
        "def outer(obs, op, sim):\n"
        "    trace = obs.begin(op, 1, 2, 'x', sim.now)\n"
        "    obs.finish(trace, sim.now)\n"
        "    def inner():\n"
        "        t2 = obs.begin(op, 1, 2, 'y', sim.now)\n"
        "        return None\n"
        "    return inner\n"
    ))
    assert codes_of(result) == ["RA401"]
    assert "t2" in result.findings[0].message
