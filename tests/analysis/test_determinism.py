"""Golden tests for the determinism checker (RA1xx)."""

from .helpers import analyze_source, codes_of

SELECT = ["determinism"]


def run(tmp_path, source):
    return analyze_source(tmp_path, {"repro/sim/mod.py": source},
                          select=SELECT)


# -- RA101: wall clocks ----------------------------------------------------

def test_flags_wall_clock_reads(tmp_path):
    result = run(tmp_path, (
        "import time\n"
        "a = time.time()\n"
        "b = time.monotonic()\n"
        "c = time.perf_counter_ns()\n"
    ))
    assert codes_of(result) == ["RA101", "RA101", "RA101"]


def test_flags_aliased_wall_clock(tmp_path):
    result = run(tmp_path, (
        "from time import monotonic as mono\n"
        "import time as walltime\n"
        "a = mono()\n"
        "b = walltime.perf_counter()\n"
    ))
    assert codes_of(result) == ["RA101", "RA101"]


def test_flags_argless_datetime_now_and_utcnow(tmp_path):
    result = run(tmp_path, (
        "from datetime import datetime\n"
        "a = datetime.now()\n"
        "b = datetime.utcnow()\n"
        "c = datetime.now(tz)  # tz-aware from explicit source: still wall\n"
    ))
    # argless now() and utcnow() flag; now(tz) passes (explicit arg —
    # the regex lint's rule, kept for compatibility)
    assert codes_of(result) == ["RA101", "RA101"]


def test_sim_now_passes(tmp_path):
    result = run(tmp_path, (
        "def step(sim):\n"
        "    return sim.now + 1.0\n"
    ))
    assert result.findings == []


# -- RA102: global / unseeded RNG ------------------------------------------

def test_flags_global_random_draws(tmp_path):
    result = run(tmp_path, (
        "import random\n"
        "a = random.random()\n"
        "b = random.shuffle([1])\n"
    ))
    assert codes_of(result) == ["RA102", "RA102"]


def test_flags_numpy_global_state_and_argless_default_rng(tmp_path):
    result = run(tmp_path, (
        "import numpy as np\n"
        "from numpy.random import default_rng\n"
        "np.random.seed(0)\n"
        "a = np.random.random()\n"
        "rng = default_rng()\n"
    ))
    assert codes_of(result) == ["RA102", "RA102", "RA102"]


def test_seeded_streams_pass(tmp_path):
    result = run(tmp_path, (
        "import random\n"
        "import numpy as np\n"
        "from numpy.random import default_rng\n"
        "r = random.Random(7)\n"
        "a = r.random()\n"
        "rng = default_rng(7)\n"
        "b = np.random.default_rng(seed)\n"
    ))
    assert result.findings == []


# -- RA103: set-ordering leaks ---------------------------------------------

def test_flags_set_iteration(tmp_path):
    result = run(tmp_path, (
        "def f(items):\n"
        "    for x in set(items):\n"
        "        use(x)\n"
        "    return [y for y in {1, 2, 3}]\n"
    ))
    assert codes_of(result) == ["RA103", "RA103"]


def test_flags_list_of_set(tmp_path):
    result = run(tmp_path, "names = list(set(raw))\n")
    assert codes_of(result) == ["RA103"]


def test_sorted_set_passes(tmp_path):
    result = run(tmp_path, (
        "def f(items):\n"
        "    for x in sorted(set(items)):\n"
        "        use(x)\n"
        "    return sorted({1, 2})\n"
    ))
    assert result.findings == []


# -- RA104: id() ordering --------------------------------------------------

def test_flags_id_in_sort_key_and_hash(tmp_path):
    result = run(tmp_path, (
        "a = sorted(objs, key=lambda o: id(o))\n"
        "objs.sort(key=id)\n"
        "h = hash(id(x))\n"
    ))
    # objs.sort(key=id) passes no Call to id() — key=id is a bare
    # reference; only key expressions *calling* id() flag.
    assert codes_of(result) == ["RA104", "RA104"]


def test_id_membership_passes(tmp_path):
    result = run(tmp_path, (
        "def f(x, seen):\n"
        "    if id(x) in seen:\n"
        "        return True\n"
        "    seen.add(id(x))\n"
        "    return False\n"
    ))
    assert result.findings == []


# -- opt-outs --------------------------------------------------------------

def test_legacy_and_bracketed_optouts(tmp_path):
    result = run(tmp_path, (
        "import time\n"
        "a = time.time()  # determinism: allowed\n"
        "b = time.time()  # analysis: allow[RA101]\n"
    ))
    assert result.findings == []
    assert result.suppressed == 2
