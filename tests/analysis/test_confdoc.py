"""Golden tests for the conf-directive consistency checker (RA5xx).

These build a miniature repo (parser + scenario generator + README)
so the cross-referencing runs against a controlled surface; RA503
noise from the real allowlist is filtered per-assertion.
"""

from .helpers import analyze_source

SELECT = ["conf-directives"]

_PARSER = """
def server_config_from_text(tree):
    for directive, value in tree.items():
        if directive == "worker_processes":
            pass
        elif directive in ("qat_batch_size", "qat_batch_timeout"):
            pass
        elif directive == "qat_mystery_knob":
            pass
"""

_SCENARIO = """
def sample(ov):
    ov["worker_processes"] = 4
    ov["qat_batch_size"] = 8
    ov["qat_mystery_knob"] = 1
"""

_README = """
| `worker_processes` | workers |
| `qat_batch_size` | batch |
| `qat_batch_timeout` | linger |
"""


def run(tmp_path, parser=_PARSER, scenario=_SCENARIO, readme=_README):
    return analyze_source(
        tmp_path,
        {"repro/server/conf_text.py": parser,
         "repro/testing/scenario.py": scenario},
        select=SELECT, readme=readme)


def by_code(result, code):
    return [f for f in result.findings if f.code == code]


def test_documented_and_sampled_directives_pass(tmp_path):
    result = run(tmp_path)
    # qat_mystery_knob is sampled but undocumented -> exactly one RA501
    ra501 = by_code(result, "RA501")
    assert len(ra501) == 1 and "qat_mystery_knob" in ra501[0].message


def test_flags_undocumented_directive(tmp_path):
    result = run(tmp_path, readme="| `worker_processes` | workers |\n")
    names = [f.message.split("'")[1] for f in by_code(result, "RA501")]
    assert names == ["qat_batch_size", "qat_batch_timeout",
                     "qat_mystery_knob"]


def test_flags_unsampled_directive(tmp_path):
    # qat_batch_timeout is in the real ALLOWLIST; qat_mystery_knob is
    # sampled; drop worker_processes from the scenario: it is in
    # SAMPLED_VIA (ScenarioSpec.workers) so it must still pass.
    result = run(tmp_path, scenario="def sample(ov):\n    pass\n")
    names = [f.message.split("'")[1] for f in by_code(result, "RA502")]
    assert names == ["qat_batch_size", "qat_mystery_knob"]


def test_flags_stale_allowlist_entry(tmp_path):
    # the tiny parser doesn't parse (e.g.) 'processors', so the real
    # allowlist entry for it must be reported stale
    result = run(tmp_path)
    stale = {f.message.split("'")[1] for f in by_code(result, "RA503")}
    assert "processors" in stale


def test_absent_parser_module_disables_checker(tmp_path):
    result = analyze_source(
        tmp_path, {"repro/sim/mod.py": "x = 1\n"},
        select=SELECT, readme=_README)
    assert result.findings == []
