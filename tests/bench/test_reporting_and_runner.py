"""Tests for the bench harness plumbing (no heavy simulations)."""

import pytest

from repro.bench import ExperimentResult, Testbed, Windows, format_table
from repro.bench.experiments import ALL_EXPERIMENTS, run_table1


# -- reporting -----------------------------------------------------------------

def test_experiment_result_rows_and_lookup():
    r = ExperimentResult("x", "t", columns=["a", "config", "value"])
    r.add_row(a=1, config="SW", value=10.0)
    r.add_row(a=1, config="QTLS", value=90.0)
    assert r.value(a=1, config="QTLS") == 90.0
    with pytest.raises(KeyError):
        r.value(a=2, config="SW")


def test_checks_accumulate_and_gate():
    r = ExperimentResult("x", "t", columns=["value"])
    r.add_check("claim1", "e", "m", True)
    assert r.all_checks_pass
    r.add_check("claim2", "e", "m", False)
    assert not r.all_checks_pass
    rendered = r.render()
    assert "[PASS] claim1" in rendered
    assert "[MISS] claim2" in rendered


def test_format_table_alignment():
    text = format_table(["name", "value"],
                        [dict(name="x", value=1234.5),
                         dict(name="longer", value=2.0)])
    lines = text.splitlines()
    assert len(lines) == 4
    assert "1,234" in text or "1234" in text


def test_format_table_empty():
    text = format_table(["a"], [])
    assert "a" in text


# -- experiment registry --------------------------------------------------------

def test_registry_covers_every_table_and_figure():
    expected = {"table1", "fig7a", "fig7b", "fig7c", "fig8", "fig9a",
                "fig9b", "fig10", "fig11", "fig12a", "fig12b", "fig12c"}
    assert expected <= set(ALL_EXPERIMENTS)


def test_registry_includes_ablations():
    assert any(k.startswith("ablation-") for k in ALL_EXPERIMENTS)


def test_table1_is_fast_and_passes():
    result = run_table1()
    assert result.all_checks_pass
    assert len(result.rows) == 4


# -- testbed -----------------------------------------------------------------------

def test_windows_end():
    w = Windows(warmup=0.1, measure=0.2)
    assert w.end == pytest.approx(0.3)


def test_testbed_builds_all_configs():
    for name in ("SW", "QAT+S", "QAT+A", "QAT+AH", "QTLS"):
        bed = Testbed(name, workers=1)
        assert (bed.device is not None) == bed.config.uses_qat
        assert len(bed.server.workers) == 1


def test_testbed_default_clients_scale():
    assert Testbed("SW", workers=2).default_clients() == 32
    assert Testbed("QTLS", workers=2).default_clients() == 200


def test_testbed_seed_reproducibility():
    a = Testbed("QTLS", workers=1, seed=3)
    cps_a = a.measure_cps(Windows(0.02, 0.04), n_clients=10)
    b = Testbed("QTLS", workers=1, seed=3)
    cps_b = b.measure_cps(Windows(0.02, 0.04), n_clients=10)
    assert cps_a == cps_b  # bit-identical simulation


def test_testbed_different_seeds_vary():
    a = Testbed("QTLS", workers=1, seed=3)
    cps_a = a.measure_cps(Windows(0.02, 0.04), n_clients=10)
    b = Testbed("QTLS", workers=1, seed=4)
    cps_b = b.measure_cps(Windows(0.02, 0.04), n_clients=10)
    # Identical values are possible but astronomically unlikely.
    assert cps_a != cps_b
