"""Async offload jobs: the two OpenSSL implementations (section 4.1).

:class:`FiberAsyncJob`
    The fiber mechanism merged into OpenSSL 1.1.0: the running piece
    of the TLS connection is encapsulated in an ASYNC_JOB that can be
    paused at any point (a fiber context swap) and resumed later,
    jumping straight back to the pause point. Python generators *are*
    fibers for our purposes: ``ASYNC_pause_job`` is the generator
    suspending at ``yield``; ``ASYNC_start_job(job)`` is ``gen.send``.

:class:`StackAsyncJob`
    The earlier intrusive implementation (Figure 5): no fiber — on
    resume, the same TLS API is called again from the top and
    "carefully skips" already-completed operations using state flags.
    Modelled by re-running the generator from scratch while replaying
    memoized results of completed steps. Cheaper per switch (no
    context swap) but pays a replay cost per completed step and is
    API-intrusive (why the OpenSSL community rejected it).

Both expose the same protocol to the SSL connection driver:
``advance()`` steps the state machine and returns ``("action", a)`` or
``("done", result)``.
"""

from __future__ import annotations

from enum import Enum, auto
from typing import Any, Callable, Generator, List, Optional, Tuple

import numpy as np

from ..tls.actions import CryptoCall, NeedMessage, SendMessage
from .wait_ctx import AsyncWaitCtx

__all__ = ["JobState", "AsyncJob", "FiberAsyncJob", "StackAsyncJob"]


class JobState(Enum):
    RUNNING = auto()
    #: Paused with a crypto request in flight (WANT_ASYNC).
    PAUSED = auto()
    #: Paused after a failed submission; must retry (ring was full).
    RETRY = auto()
    FINISHED = auto()


class AsyncJob:
    """Common machinery for both implementations."""

    def __init__(self, make_gen: Callable[[], Generator],
                 kind: str = "job") -> None:
        self._make_gen = make_gen
        self.kind = kind  # async-handler identity: handshake/read/write
        self.state = JobState.RUNNING
        self.wait_ctx = AsyncWaitCtx()
        self.result: Any = None
        # Response delivery slot (filled by the engine's dispatch).
        self._resume_value: Any = None
        self._resume_exc: Optional[BaseException] = None
        self._has_resume = False
        #: The CryptoCall we paused on (for retry-after-ring-full).
        self.pending_call: Optional[CryptoCall] = None
        #: Action re-presented on the next drive (e.g. a NeedMessage
        #: that returned WANT_READ).
        self.parked_action: Any = None
        self.swaps = 0   # context swaps (fiber) / API re-entries (stack)
        #: Consecutive failed ring submissions (reset on acceptance);
        #: bounds the WANT_RETRY loop under ring-full storms.
        self.submit_attempts = 0
        #: Request-lifecycle trace context for the op currently in
        #: flight (:class:`repro.obs.context.OpTrace`); one op is in
        #: flight per job at a time, and the SSL driver clears this on
        #: resume.
        self.trace = None

    # -- engine-facing ------------------------------------------------------

    def deliver(self, value: Any, exc: Optional[BaseException]) -> None:
        """Store the crypto response; the job resumes when the
        application reschedules its async handler."""
        if self.state is not JobState.PAUSED:
            raise RuntimeError(f"deliver() on job in state {self.state}")
        self._resume_value = value
        self._resume_exc = exc
        self._has_resume = True

    @property
    def response_ready(self) -> bool:
        return self._has_resume

    # -- driver-facing --------------------------------------------------------

    def mark_paused(self, call: CryptoCall) -> None:
        self.state = JobState.PAUSED
        self.pending_call = call

    def mark_retry(self, call: CryptoCall) -> None:
        self.state = JobState.RETRY
        self.pending_call = call

    def take_resume(self) -> Tuple[Any, Optional[BaseException]]:
        if not self._has_resume:
            raise RuntimeError("no response delivered yet")
        self._has_resume = False
        value, exc = self._resume_value, self._resume_exc
        self._resume_value = self._resume_exc = None
        self.pending_call = None
        self.state = JobState.RUNNING
        return value, exc

    def advance(self, value: Any = None,
                exc: Optional[BaseException] = None) -> Tuple[str, Any]:
        raise NotImplementedError

    # Recording hooks: only the stack implementation memoizes.

    def record_crypto(self, result: Any) -> None:
        pass

    def record_message(self, message: Any) -> None:
        pass

    def record_send(self) -> None:
        pass

    def prepare_resume(self) -> int:
        """Re-enter the job after a pause; returns the number of steps
        replayed (0 for fibers, which jump straight to the pause
        point)."""
        self.swaps += 1
        return 0


class FiberAsyncJob(AsyncJob):
    """Generator-as-fiber implementation (OpenSSL 1.1.0 fiber async)."""

    def __init__(self, make_gen: Callable[[], Generator],
                 kind: str = "job") -> None:
        super().__init__(make_gen, kind)
        self._gen = make_gen()
        self._started = False

    def advance(self, value: Any = None,
                exc: Optional[BaseException] = None) -> Tuple[str, Any]:
        try:
            if not self._started:
                self._started = True
                action = self._gen.send(None)
            elif exc is not None:
                action = self._gen.throw(exc)
            else:
                action = self._gen.send(value)
        except StopIteration as stop:
            self.state = JobState.FINISHED
            self.result = stop.value
            return ("done", stop.value)
        return ("action", action)


class StackAsyncJob(AsyncJob):
    """State-flag implementation (Figure 5): restart + careful skip.

    ``rng`` must be the generator the state machine draws from; its
    state is snapshotted at job creation so a replay reproduces the
    original draws bit-for-bit, then restored so fresh work continues
    from the live stream.
    """

    def __init__(self, make_gen: Callable[[], Generator], kind: str = "job",
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(make_gen, kind)
        self._gen = make_gen()
        self._started = False
        self._rng = rng
        self._rng_snapshot = (None if rng is None
                              else rng.bit_generator.state)
        # Log: ("crypto", result) | ("msg", message) | ("send",)
        self._log: List[Tuple[str, Any]] = []
        self.replayed_steps = 0

    @property
    def completed_steps(self) -> int:
        return len(self._log)

    def record_crypto(self, result: Any) -> None:
        self._log.append(("crypto", result))

    def record_message(self, message: Any) -> None:
        self._log.append(("msg", message))

    def record_send(self) -> None:
        self._log.append(("send", None))

    def advance(self, value: Any = None,
                exc: Optional[BaseException] = None) -> Tuple[str, Any]:
        try:
            if not self._started:
                self._started = True
                action = self._gen.send(None)
            elif exc is not None:
                action = self._gen.throw(exc)
            else:
                action = self._gen.send(value)
        except StopIteration as stop:
            self.state = JobState.FINISHED
            self.result = stop.value
            return ("done", stop.value)
        return ("action", action)

    def prepare_resume(self) -> int:
        """Call the TLS API again from the top: fresh generator, replay
        the log, stop at the pause point. The paused CryptoCall is
        re-yielded and becomes :attr:`parked_action`."""
        self.swaps += 1
        live_state = None
        if self._rng is not None:
            live_state = self._rng.bit_generator.state
            self._rng.bit_generator.state = self._rng_snapshot
        try:
            self._gen = self._make_gen()
            self._started = True
            action = self._gen.send(None)
            for kind, payload in self._log:
                self.replayed_steps += 1
                if kind == "crypto":
                    if not isinstance(action, CryptoCall):
                        raise RuntimeError("stack replay diverged at crypto")
                    action = self._gen.send(payload)
                elif kind == "msg":
                    if not isinstance(action, NeedMessage):
                        raise RuntimeError("stack replay diverged at msg")
                    action = self._gen.send(payload)
                else:
                    if not isinstance(action, SendMessage):
                        raise RuntimeError("stack replay diverged at send")
                    action = self._gen.send(None)
        finally:
            if self._rng is not None and live_state is not None:
                self._rng.bit_generator.state = live_state
        self.parked_action = action
        return len(self._log)
