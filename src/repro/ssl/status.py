"""SSL-level return statuses (the OpenSSL ``SSL_get_error`` codes the
paper's Nginx modifications recognize — section 4.2)."""

from __future__ import annotations

from enum import Enum, auto

__all__ = ["SslStatus"]


class SslStatus(Enum):
    """Result of driving an SSL operation one step."""

    OK = auto()
    #: Needs more inbound data (SSL_ERROR_WANT_READ).
    WANT_READ = auto()
    #: An async crypto request was submitted; the offload job is paused
    #: (SSL_ERROR_WANT_ASYNC). Re-invoke the same API when notified.
    WANT_ASYNC = auto()
    #: Crypto submission failed (ring full); the offload job is paused
    #: in retry state (SSL_ERROR_WANT_ASYNC_JOB in OpenSSL terms).
    WANT_RETRY = auto()
