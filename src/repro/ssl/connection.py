"""The SSL connection object (OpenSSL's ``SSL *``) for the server side.

Drives the sans-IO TLS state machines against the configured engine,
implementing the four SSL entry points the paper's Nginx patches touch
(``ngx_ssl_handshake``, ``ngx_ssl_handle_recv``, ``ngx_ssl_write``,
``ngx_ssl_shutdown``): each returns a :class:`SslStatus`, with
``WANT_ASYNC`` signalling a paused offload job.

Every method that can block on crypto is a simulation generator; the
worker event loop invokes them with ``yield from``.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, List, Optional

from ..obs.span import SpanStatus
from ..offload.engine import AsyncOffloadEngine
from ..tls.actions import (CryptoCall, HandshakeResult, NeedMessage,
                           SendMessage)
from ..tls.record import RecordLayer, TlsRecord
from .async_job import AsyncJob, FiberAsyncJob, JobState, StackAsyncJob
from .status import SslStatus

__all__ = ["SslConnection"]


class SslConnection:
    """Server-side SSL state for one TCP connection."""

    def __init__(self, ctx, conn_id: int) -> None:
        self.ctx = ctx
        self.conn_id = conn_id
        self.hs_inbox: Deque[Any] = deque()    # inbound handshake messages
        self.outbox: List[SendMessage] = []    # outbound, flushed by caller
        self.handshake_result: Optional[HandshakeResult] = None
        self.record_layer: Optional[RecordLayer] = None
        self._job: Optional[AsyncJob] = None
        self._pending_write: Optional[bytes] = None
        self.jobs_created = 0

    # -- transport-facing -----------------------------------------------------

    def feed_message(self, message: Any) -> None:
        """Deliver an inbound handshake message from the transport."""
        self.hs_inbox.append(message)

    @property
    def job(self) -> Optional[AsyncJob]:
        return self._job

    @property
    def handshake_done(self) -> bool:
        return self.handshake_result is not None

    # -- job plumbing ------------------------------------------------------------

    def _new_job(self, make_gen, kind: str) -> AsyncJob:
        self.jobs_created += 1
        if self.ctx.async_mode == "stack":
            job = StackAsyncJob(make_gen, kind=kind,
                                rng=self.ctx.tls_config.rng)
        else:
            job = FiberAsyncJob(make_gen, kind=kind)
        # The offload scheduler keys per-connection in-flight budgets
        # off this (one job at a time per connection, but jobs churn
        # across the connection's lifetime).
        job.conn_id = self.conn_id
        return job

    # -- SSL entry points ----------------------------------------------------------

    def do_handshake(self, owner: object) -> Generator:
        """ngx_ssl_handshake: returns an SslStatus."""
        if self.handshake_done:
            return SslStatus.OK
        if self._job is None:
            factory = self.ctx.handshake_factory()
            self._job = self._new_job(factory, kind="handshake")
            if self.ctx.async_mode == "fiber":
                # ASYNC_start_job: encapsulating the running piece of
                # the connection costs one context swap.
                yield from self.ctx.core.consume(
                    self.ctx.cost_model.fiber_swap_cost, owner=owner)
                self._job.swaps += 1
        status = yield from self._drive(owner)
        if status is SslStatus.OK:
            result: HandshakeResult = self._job.result
            self.handshake_result = result
            self.record_layer = RecordLayer(
                self.ctx.provider,
                write_keys=result.server_write_keys,
                read_keys=result.client_write_keys,
                rng=self.ctx.record_rng,
                version=result.suite.version)
            self._job = None
        return status

    def write(self, data: bytes, owner: object) -> Generator:
        """ngx_ssl_write: protect application data into records.

        Returns ``(status, records)``; records is non-None only on OK.
        A paused write resumes by calling write again with the same
        data (or None).
        """
        if self.record_layer is None:
            raise RuntimeError("write before handshake completion")
        if self._job is None:
            if data is None:
                raise ValueError("no pending write to resume")
            self._pending_write = data
            layer = self.record_layer
            self._job = self._new_job(lambda: layer.protect(data),
                                      kind="write")
        status = yield from self._drive(owner)
        if status is SslStatus.OK:
            records = self._job.result
            self._job = None
            self._pending_write = None
            return status, records
        return status, None

    def read_record(self, record: Optional[TlsRecord], owner: object
                    ) -> Generator:
        """ngx_ssl_handle_recv: open one inbound application record.

        Returns ``(status, payload)``. Pass ``record=None`` when
        resuming a paused read.
        """
        if self.record_layer is None:
            raise RuntimeError("read before handshake completion")
        if self._job is None:
            if record is None:
                raise ValueError("no pending read to resume")
            layer = self.record_layer
            self._job = self._new_job(lambda: layer.unprotect(record),
                                      kind="read")
        status = yield from self._drive(owner)
        if status is SslStatus.OK:
            payload = self._job.result
            self._job = None
            return status, payload
        return status, None

    # -- the driver --------------------------------------------------------------

    def _drive(self, owner: object) -> Generator:
        """Advance the current job until OK / WANT_READ / WANT_ASYNC /
        WANT_RETRY."""
        job = self._job
        ctx = self.ctx
        core, cm, engine = ctx.core, ctx.cost_model, ctx.engine
        use_async = ctx.async_mode != "sync"

        # -- re-entry ---------------------------------------------------------
        if job.state is JobState.PAUSED:
            if not job.response_ready:
                return SslStatus.WANT_ASYNC  # spurious wakeup
            value, exc = job.take_resume()
            replayed = job.prepare_resume()
            if ctx.async_mode == "fiber":
                yield from core.consume(cm.fiber_swap_cost, owner=owner)
            else:
                yield from core.consume(cm.stack_replay_cost * replayed,
                                        owner=owner)
            # The op's lifecycle ends here: the paused job is running
            # again (the "resume" stage covers notification + context
            # restore). Failure statuses were stamped by the engine.
            trace = job.trace
            if trace is not None:
                job.trace = None
                obs = getattr(core.sim, "obs", None)
                if obs is not None and obs.enabled:
                    obs.finish(trace, core.sim.now)
            job.parked_action = None
            if exc is None:
                job.record_crypto(value)
                outcome = job.advance(value)
            else:
                outcome = job.advance(exc=exc)
        elif job.state is JobState.RETRY:
            call = job.pending_call
            job.pending_call = None
            job.state = JobState.RUNNING
            outcome = ("action", call)
        elif job.parked_action is not None:
            outcome = ("action", job.parked_action)
            job.parked_action = None
        else:
            outcome = job.advance()

        # -- main loop -----------------------------------------------------------
        while True:
            tag, payload = outcome
            if tag == "done":
                return SslStatus.OK

            action = payload
            if isinstance(action, CryptoCall):
                if (use_async and isinstance(engine, AsyncOffloadEngine)
                        and engine.offloads(action)):
                    obs = getattr(core.sim, "obs", None)
                    if (obs is not None and obs.enabled
                            and job.trace is None):
                        # One trace per offloaded op, opened at the
                        # offload decision; WANT_RETRY re-submissions
                        # reuse it (the queue stage absorbs them).
                        job.trace = obs.begin(
                            action.op, self.conn_id,
                            getattr(owner, "worker_id", -1), job.kind,
                            core.sim.now)
                    ok = yield from engine.submit_async(action, job, owner)
                    if ok:
                        job.mark_paused(action)
                        if ctx.async_mode == "fiber":
                            # ASYNC_pause_job: swap back to main code.
                            yield from core.consume(cm.fiber_swap_cost,
                                                    owner=owner)
                            job.swaps += 1
                        return SslStatus.WANT_ASYNC
                    if engine.should_retry_submit(job):
                        job.mark_retry(action)
                        return SslStatus.WANT_RETRY
                    # Degraded: retry budget spent or every instance's
                    # breaker is open — complete this op on the CPU so
                    # the handshake still makes progress.
                    result = yield from engine.execute_fallback(action,
                                                                owner)
                    trace = job.trace
                    if trace is not None:
                        job.trace = None
                        obs = getattr(core.sim, "obs", None)
                        if obs is not None and obs.enabled:
                            obs.finish(trace, core.sim.now,
                                       SpanStatus.FAILOVER)
                    job.submit_attempts = 0
                    job.record_crypto(result)
                    outcome = job.advance(result)
                    continue
                # Synchronous path: software crypto, straight offload,
                # or a non-offloadable op (HKDF) in async mode.
                try:
                    result = yield from engine.execute_blocking(action, owner)
                except Exception as exc:
                    outcome = job.advance(exc=exc)
                    continue
                job.record_crypto(result)
                outcome = job.advance(result)
            elif isinstance(action, NeedMessage):
                if self.hs_inbox:
                    msg = self.hs_inbox.popleft()
                    job.record_message(msg)
                    yield from core.consume(
                        cm.handshake_msg_cost + self._marshal_extra(msg),
                        owner=owner)
                    outcome = job.advance(msg)
                else:
                    job.parked_action = action
                    return SslStatus.WANT_READ
            elif isinstance(action, SendMessage):
                self.outbox.append(action)
                job.record_send()
                yield from core.consume(
                    cm.handshake_msg_cost
                    + self._marshal_extra(action.message),
                    owner=owner)
                outcome = job.advance(None)
            else:
                raise TypeError(f"unknown action {action!r}")

    def _marshal_extra(self, message) -> float:
        """Extra CPU for (de)serializing EC points in key-exchange
        messages (ServerKeyExchange construction, point parsing)."""
        from ..tls.messages import ClientKeyExchange, ServerKeyExchange
        if isinstance(message, ServerKeyExchange):
            return self.ctx.cost_model.ec_marshal_cost
        if isinstance(message, ClientKeyExchange) and message.public:
            return self.ctx.cost_model.ec_marshal_cost
        return 0.0

    # -- teardown -----------------------------------------------------------------

    def abort_job(self) -> None:
        """Drop any in-progress job (connection is being torn down)."""
        job = self._job
        if job is not None:
            trace = getattr(job, "trace", None)
            if trace is not None:
                job.trace = None
                sim = self.ctx.core.sim
                obs = getattr(sim, "obs", None)
                if obs is not None and obs.enabled:
                    obs.abort_open(trace, sim.now)
        self._job = None
