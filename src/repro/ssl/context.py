"""SSL context: per-worker factory/configuration for SSL connections."""

from __future__ import annotations

from typing import Callable, Generator, Optional

import numpy as np

from ..core.costmodel import CostModel
from ..cpu.core import Core
from ..engine.base import Engine
from ..tls.config import TlsServerConfig
from ..tls.constants import ProtocolVersion
from ..tls.handshake import server_handshake12, server_handshake13

__all__ = ["SslContext", "AsyncMode"]

#: How crypto pause/resume is implemented (paper section 4.1):
#: "sync" (no pauses), "fiber" (OpenSSL 1.1.0 ASYNC_JOB) or "stack"
#: (the intrusive state-flag variant).
AsyncMode = str


class SslContext:
    """The SSL_CTX equivalent: shared server TLS state + engine."""

    def __init__(self, tls_config: TlsServerConfig, engine: Engine,
                 core: Core, cost_model: CostModel,
                 async_mode: AsyncMode = "sync",
                 version: ProtocolVersion = ProtocolVersion.TLS12,
                 record_rng: Optional[np.random.Generator] = None) -> None:
        if async_mode not in ("sync", "fiber", "stack"):
            raise ValueError(f"unknown async mode {async_mode!r}")
        if async_mode != "sync" and not engine.supports_async:
            raise ValueError(
                f"engine {type(engine).__name__} cannot run async mode")
        self.tls_config = tls_config
        self.engine = engine
        self.core = core
        self.cost_model = cost_model
        self.async_mode = async_mode
        self.version = version
        self.record_rng = record_rng if record_rng is not None \
            else tls_config.rng

    def handshake_factory(self) -> Callable[[], Generator]:
        if self.version == ProtocolVersion.TLS13:
            return lambda: server_handshake13(self.tls_config)
        return lambda: server_handshake12(self.tls_config)

    @property
    def provider(self):
        return self.tls_config.provider
