"""OpenSSL-like async SSL layer.

Implements the paper's crypto pause/resumption (section 4.1): fiber
async (ASYNC_JOB), stack async (state-flag replay), WANT_ASYNC status
propagation and the ASYNC_WAIT_CTX notification plumbing.
"""

from .async_job import AsyncJob, FiberAsyncJob, JobState, StackAsyncJob
from .connection import SslConnection
from .context import SslContext
from .status import SslStatus
from .wait_ctx import AsyncWaitCtx

__all__ = ["SslStatus", "SslConnection", "SslContext", "AsyncWaitCtx",
           "AsyncJob", "FiberAsyncJob", "StackAsyncJob", "JobState"]
