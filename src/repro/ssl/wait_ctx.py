"""ASYNC_WAIT_CTX: per-job notification state (paper section 4.4).

Carries either a notification FD (the FD-based scheme: ``set_fd`` /
``get_fd`` APIs, monitored by the application's epoll) or an
application-level callback + argument (the kernel-bypass scheme:
``SSL_set_async_callback`` / ``ASYNC_WAIT_CTX_get_callback`` — the two
new members added to the ASYNC_JOB structure).
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Tuple

from ..net.epoll_sim import NotifyFd

__all__ = ["AsyncWaitCtx"]


class AsyncWaitCtx:
    """Notification channel attached to an async offload job."""

    def __init__(self) -> None:
        self.notify_fd: Optional[NotifyFd] = None
        self._callback: Optional[Callable[[Any], None]] = None
        self._callback_arg: Any = None

    # -- FD-based scheme --------------------------------------------------

    def set_fd(self, fd: NotifyFd) -> None:
        """Associate a notification FD (shared per connection — the
        one-FD-per-connection optimization of section 4.4)."""
        self.notify_fd = fd

    def get_fd(self) -> Optional[NotifyFd]:
        return self.notify_fd

    # -- kernel-bypass scheme -----------------------------------------------

    def set_callback(self, callback: Callable[[Any], None],
                     arg: Any) -> None:
        """SSL_set_async_callback: register the application-level
        callback and the async-handler argument."""
        self._callback = callback
        self._callback_arg = arg

    def get_callback(self) -> Tuple[Optional[Callable[[Any], None]], Any]:
        """ASYNC_WAIT_CTX_get_callback."""
        return self._callback, self._callback_arg

    def clear(self) -> None:
        self._callback = None
        self._callback_arg = None
