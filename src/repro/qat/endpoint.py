"""A QAT endpoint: parallel computation engines + instance rings.

The endpoint's hardware scheduler load-balances requests from all
assigned instances' rings across all available computation engines
(paper Figure 2). Concurrent requests from a *single* instance run in
parallel as long as engines are free — the parallelism QTLS unlocks
(paper section 2.3 "Parallelism").
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from ..sim.resources import Resource
from .firmware import FirmwareCounters
from .instance import CryptoInstance
from .request import QatRequest, QatResponse
from .rings import DEFAULT_RING_CAPACITY, RingPair
from .service_times import (PCIE_LATENCY, qat_pipeline_latency,
                            qat_service_time)

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.kernel import Simulator

__all__ = ["QatEndpoint"]


class QatEndpoint:
    """One QAT silicon endpoint with ``n_engines`` computation engines."""

    def __init__(self, sim: "Simulator", endpoint_id: int,
                 n_engines: int = 10,
                 ring_capacity: int = DEFAULT_RING_CAPACITY,
                 pcie_latency: float = PCIE_LATENCY) -> None:
        if n_engines < 1:
            raise ValueError("need at least one engine")
        self.sim = sim
        self.endpoint_id = endpoint_id
        self.n_engines = n_engines
        self.ring_capacity = ring_capacity
        self.pcie_latency = pcie_latency
        self.engines = Resource(sim, n_engines, name=f"qat{endpoint_id}-eng")
        self.instances: List[CryptoInstance] = []
        self.fw_counters = FirmwareCounters()
        self._rr_cursor = 0  # round-robin over instance rings
        #: Installed by :meth:`QatDevice.install_fault_plan`.
        self.fault_plan = None
        self.responses_lost = 0

    # -- provisioning ---------------------------------------------------

    def create_instance(self) -> CryptoInstance:
        """Allocate a crypto instance (a logical unit assignable to one
        process/thread — paper section 2.3)."""
        inst_id = len(self.instances)
        rings = {
            cat: RingPair(self.sim, f"ep{self.endpoint_id}-i{inst_id}-{cat}",
                          self.ring_capacity)
            for cat in ("asym", "cipher", "prf")
        }
        inst = CryptoInstance(self, inst_id, rings)
        self.instances.append(inst)
        return inst

    # -- submission path ----------------------------------------------------

    def notify_submission(self) -> None:
        """Called by an instance after a successful ring write; starts
        the hardware pull if engines are idle."""
        self._dispatch()

    def _dispatch(self) -> None:
        """Hand pending ring entries to free engines (round-robin over
        rings for fairness, like the hardware load balancer)."""
        while self.engines.available > 0:
            req_ring = self._next_nonempty_ring()
            if req_ring is None:
                return
            request = req_ring.take_request()
            assert request is not None
            request.dequeued_at = self.sim.now
            grant = self.engines.request()
            assert grant.triggered  # capacity was checked above
            self._sample_engines()
            self.sim.process(self._run_engine(request, req_ring),
                             name=f"qat-exec-{request.request_id}")

    def _sample_engines(self) -> None:
        """Report engine occupancy to the request tracer, if any."""
        obs = getattr(self.sim, "obs", None)
        if obs is not None and obs.enabled:
            obs.util_sample(f"qat{self.endpoint_id}.engines", self.sim.now,
                            self.engines.in_use, capacity=self.n_engines)

    def _next_nonempty_ring(self) -> Optional[RingPair]:
        rings: List[RingPair] = []
        for inst in self.instances:
            rings.extend(inst.rings.values())
        if not rings:
            return None
        n = len(rings)
        for i in range(n):
            ring = rings[(self._rr_cursor + i) % n]
            if ring.pending_requests:
                self._rr_cursor = (self._rr_cursor + i + 1) % n
                return ring
        return None

    def _run_engine(self, request: QatRequest, ring: RingPair):
        """One engine executing one request (a simulation process)."""
        # Inbound DMA + calculation (engine occupied).
        service = qat_service_time(request.op)
        plan = self.fault_plan
        if plan is not None:
            service *= plan.latency_multiplier(self.endpoint_id,
                                               request.op, self.sim.now)
        yield self.sim.timeout(self.pcie_latency + service)
        request.serviced_at = self.sim.now
        response = QatResponse(request)
        try:
            response.result = request.compute()
        except Exception as exc:  # functional failure -> errored response
            response.error = exc
        if plan is not None:
            hw_error = plan.corrupt(self.endpoint_id, request.op,
                                    self.sim.now)
            if hw_error is not None:
                response.result = None
                response.error = hw_error
        self.fw_counters.record(request.op, ok=response.ok)
        obs = getattr(self.sim, "obs", None)
        if obs is not None and obs.enabled:
            obs.fw_record(self.endpoint_id, request.op, response.ok)
        # The engine frees up now; completion continues down the
        # response pipeline (firmware + outbound DMA) without holding
        # engine capacity.
        self.engines.release()
        self._sample_engines()
        self._dispatch()  # pull more work if rings are backed up
        yield self.sim.timeout(self.pcie_latency
                               + qat_pipeline_latency(request.op))
        if plan is not None and plan.response_lost(self.endpoint_id,
                                                   request.op, self.sim.now):
            self.responses_lost += 1
            ring.drop_response(response)
            return
        ring.land_response(response)

    def reset(self) -> int:
        """Device-level recovery: wipe every instance's rings. Ops that
        were queued (or landed but unretrieved) are silently dropped —
        their owners must recover through deadline/failover paths."""
        dropped = sum(inst.reset() for inst in self.instances)
        if self.fault_plan is not None:
            self.fault_plan.on_reset(self.endpoint_id, dropped,
                                     self.sim.now)
        return dropped

    # -- introspection ---------------------------------------------------

    @property
    def busy_engines(self) -> int:
        return self.engines.in_use

    def total_in_flight(self) -> int:
        return sum(r.in_flight for inst in self.instances
                   for r in inst.rings.values())
