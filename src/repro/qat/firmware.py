"""Firmware counters, mirroring ``/sys/kernel/debug/qat*/fw_counters``.

The paper's artifact appendix suggests checking these after each test
to confirm requests were actually processed by the accelerator; the
bench harness does the same against this model.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict

from ..crypto.ops import CryptoOp

__all__ = ["FirmwareCounters"]


class FirmwareCounters:
    """Requests processed by an endpoint, by op kind and category."""

    def __init__(self) -> None:
        self.by_kind: Counter = Counter()
        self.by_category: Counter = Counter()
        self.errors = 0
        self.total = 0
        #: Optional per-record hook ``sink(op, ok)`` — lets observers
        #: (tracers, tests) see firmware-level completions as they
        #: happen rather than only in aggregate.
        self.sink = None

    def record(self, op: CryptoOp, ok: bool = True) -> None:
        self.total += 1
        self.by_kind[op.kind.label] += 1
        self.by_category[op.category.value] += 1
        if not ok:
            self.errors += 1
        if self.sink is not None:
            self.sink(op, ok)

    def snapshot(self) -> Dict[str, int]:
        snap = {f"kind.{k}": v for k, v in sorted(self.by_kind.items())}
        snap.update({f"cat.{k}": v
                     for k, v in sorted(self.by_category.items())})
        snap["total"] = self.total
        snap["errors"] = self.errors
        return snap
