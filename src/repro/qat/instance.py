"""QAT crypto instances.

A crypto instance groups several ring pairs (one per crypto type) and
is the logical unit assigned to a process/thread (paper section 2.3).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from ..crypto.ops import OpCategory
from .request import QatRequest, QatResponse
from .rings import RingPair

if TYPE_CHECKING:  # pragma: no cover
    from .endpoint import QatEndpoint

__all__ = ["CryptoInstance"]


class CryptoInstance:
    """A logical QAT unit: one ring pair per op category."""

    def __init__(self, endpoint: "QatEndpoint", instance_id: int,
                 rings: Dict[str, RingPair]) -> None:
        self.endpoint = endpoint
        self.instance_id = instance_id
        self.rings = rings
        self.owner: Optional[object] = None  # the worker it is assigned to
        #: The userspace driver bound to this instance (set by the
        #: driver; lets the device aggregate driver-level counters).
        self.driver: Optional[object] = None

    def _ring_for(self, category: OpCategory) -> RingPair:
        return self.rings[category.value]

    # -- driver-facing API ---------------------------------------------------

    def try_submit(self, request: QatRequest) -> bool:
        """Non-blocking submission; False when the target ring is full
        (or an injected outage / ring-full storm refuses the write)."""
        plan = self.endpoint.fault_plan
        if plan is not None and plan.submit_rejected(
                self.endpoint.endpoint_id, self.endpoint.sim.now):
            return False
        ring = self._ring_for(request.op.category)
        if not ring.try_submit(request):
            return False
        self._sample_inflight()
        self.endpoint.notify_submission()
        return True

    def poll(self, max_responses: Optional[int] = None) -> List[QatResponse]:
        """Retrieve available responses across this instance's rings."""
        out: List[QatResponse] = []
        for ring in self.rings.values():
            budget = None if max_responses is None \
                else max_responses - len(out)
            if budget == 0:
                break
            out.extend(ring.poll_responses(budget))
        if out:
            self._sample_inflight()
        return out

    def _sample_inflight(self) -> None:
        """Report ring occupancy to the request tracer, if any."""
        sim = self.endpoint.sim
        obs = getattr(sim, "obs", None)
        if obs is not None and obs.enabled:
            obs.util_sample(
                f"ep{self.endpoint.endpoint_id}.i{self.instance_id}"
                ".inflight",
                sim.now, self.in_flight,
                capacity=sum(r.capacity for r in self.rings.values()))

    def reset(self) -> int:
        """Wipe this instance's rings (device recovery); returns the
        number of queued/landed entries dropped."""
        return sum(ring.reset() for ring in self.rings.values())

    def set_response_callback(self, callback) -> None:
        """Arm hardware interrupts: ``callback(ring)`` fires whenever a
        response lands on any of this instance's rings."""
        for ring in self.rings.values():
            ring.response_callback = callback

    # -- introspection ---------------------------------------------------

    @property
    def in_flight(self) -> int:
        return sum(r.in_flight for r in self.rings.values())

    @property
    def available_responses(self) -> int:
        return sum(r.available_responses for r in self.rings.values())

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<CryptoInstance ep{self.endpoint.endpoint_id}"
                f"/i{self.instance_id}>")
