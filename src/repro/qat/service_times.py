"""QAT computation-engine service times.

Per-operation durations on **one** QAT computation engine, calibrated
so the simulated DH8970 card (3 endpoints x 10 engines) reproduces the
paper's aggregate ceilings:

- ~100K RSA-2048 ops/s card-wide (Fig. 7a plateau: "about 100K CPS,
  achieving the upper limit of the DH8970 QAT card"),
- ~40K ECDHE-RSA full handshakes/s (Fig. 7b plateau: 1 RSA + 2 P-256
  ECC ops per handshake).

Symmetric chained-cipher throughput is charged per byte on top of a
fixed setup cost; PRF offloads are small fixed-cost ops.

These are *simulated* durations; see ``repro.core.costmodel`` for the
CPU-side (software) costs they are compared against.
"""

from __future__ import annotations

from ..crypto.ops import CryptoOp, CryptoOpKind

__all__ = ["qat_service_time", "qat_pipeline_latency", "PCIE_LATENCY"]

#: One-way PCIe/DMA transfer latency per request or response.
PCIE_LATENCY = 8.0e-6

#: Additional request-to-response latency beyond engine occupancy:
#: descriptor processing, firmware scheduling, DMA completion. This is
#: *pipelined* — it adds latency without consuming engine capacity —
#: so it hurts the blocking straight-offload mode (QAT+S) while the
#: asynchronous framework hides it entirely (paper section 2.4).
_PIPELINE_ASYM = 300e-6
_PIPELINE_SYM = 22e-6
_PIPELINE_PRF = 14e-6


def qat_pipeline_latency(op: CryptoOp) -> float:
    """Post-engine completion latency of ``op`` (see above)."""
    from ..crypto.ops import OpCategory
    cat = op.category
    if cat is OpCategory.ASYM:
        return _PIPELINE_ASYM
    if cat is OpCategory.CIPHER:
        return _PIPELINE_SYM
    return _PIPELINE_PRF

#: RSA private-key op service time by modulus size (seconds/engine).
_RSA_PRIV = {1024: 70e-6, 2048: 280e-6, 3072: 700e-6, 4096: 1500e-6}
_RSA_PUB = {1024: 6e-6, 2048: 14e-6, 3072: 25e-6, 4096: 40e-6}

#: EC op service times by curve. QAT's EC units handle prime and
#: binary fields in comparable time; bigger fields cost more.
_EC = {
    "P-256": 220e-6,
    "P-384": 430e-6,
    "B-283": 340e-6,
    "B-409": 620e-6,
    "K-283": 320e-6,
    "K-409": 580e-6,
}

_PRF_BASE = 4.0e-6
_PRF_PER_BYTE = 8.0e-9

_CIPHER_SETUP = 9.0e-6
#: Chained AES128-CBC-HMAC-SHA1 throughput per engine ~= 2.2 GB/s.
_CIPHER_PER_BYTE = 1.0 / 2.2e9


def qat_service_time(op: CryptoOp) -> float:
    """Service time of ``op`` on one QAT computation engine."""
    kind = op.kind
    if kind is CryptoOpKind.RSA_PRIV:
        return _lookup_rsa(_RSA_PRIV, op)
    if kind is CryptoOpKind.RSA_PUB:
        return _lookup_rsa(_RSA_PUB, op)
    if kind in (CryptoOpKind.ECDSA_SIGN, CryptoOpKind.ECDSA_VERIFY,
                CryptoOpKind.ECDH_KEYGEN, CryptoOpKind.ECDH_COMPUTE):
        try:
            return _EC[op.curve]
        except KeyError:
            raise ValueError(f"no QAT service time for curve {op.curve!r}") \
                from None
    if kind is CryptoOpKind.PRF:
        return _PRF_BASE + _PRF_PER_BYTE * op.nbytes
    if kind is CryptoOpKind.RECORD_CIPHER:
        return _CIPHER_SETUP + _CIPHER_PER_BYTE * op.nbytes
    if kind is CryptoOpKind.HKDF:
        raise ValueError("HKDF is not offloadable to QAT (paper section 5.2)")
    raise ValueError(f"unknown op kind {kind}")  # pragma: no cover


def _lookup_rsa(table: dict, op: CryptoOp) -> float:
    bits = op.rsa_bits or 2048
    try:
        return table[bits]
    except KeyError:
        raise ValueError(f"no QAT service time for RSA-{bits}") from None
