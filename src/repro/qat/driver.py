"""Userspace QAT driver facade.

QTLS uses userspace I/O for crypto offloading: one userspace polling
operation is far cheaper than a kernel interrupt (paper section 3.3),
so the driver exposes a non-blocking submit and an explicit poll. CPU
costs of these calls are charged by the *caller* (the engine layer /
polling schemes) because they run on the worker's core.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from ..crypto.ops import CryptoOp
from .instance import CryptoInstance
from .request import QatRequest, QatResponse

__all__ = ["QatUserspaceDriver", "SUBMIT_CPU_COST",
           "SUBMIT_COALESCED_CPU_COST", "POLL_CPU_COST",
           "POLL_PER_RESPONSE_CPU_COST"]

#: CPU cost of writing one request descriptor onto a ring.
SUBMIT_CPU_COST = 1.2e-6
#: CPU cost of each *additional* descriptor coalesced into the same
#: ring write: the doorbell/MMIO part of SUBMIT_CPU_COST is paid once
#: per batch, only the descriptor copy repeats.
SUBMIT_COALESCED_CPU_COST = 0.35e-6
#: CPU cost of one polling operation (checking the response rings).
POLL_CPU_COST = 0.6e-6
#: Additional CPU cost per retrieved response (descriptor handling).
POLL_PER_RESPONSE_CPU_COST = 0.4e-6


class QatUserspaceDriver:
    """Thin non-blocking facade over a crypto instance's rings."""

    def __init__(self, instance: CryptoInstance) -> None:
        self.instance = instance
        instance.driver = self
        self.submitted = 0
        self.submit_failures = 0
        self.polls = 0
        self.empty_polls = 0
        self.responses_retrieved = 0
        # Degradation counters, charged by the engine layer: requests
        # whose response missed its deadline, and ops completed through
        # the software fallback after failing on this instance.
        self.op_timeouts = 0
        self.fallback_ops = 0

    def try_submit(self, op: CryptoOp, compute: Callable[[], Any],
                   cookie: Any = None) -> Optional[QatRequest]:
        """Submit a request; returns the accepted request (truthy) or
        None when the ring is full — the caller pauses the offload job
        and retries (paper section 3.2). Returning the request lets the
        engine track per-request identity and deadlines."""
        request = QatRequest(op=op, compute=compute, cookie=cookie)
        if self.instance.try_submit(request):
            self.submitted += 1
            return request
        self.submit_failures += 1
        return None

    def poll(self, max_responses: Optional[int] = None) -> List[QatResponse]:
        """Retrieve available responses (non-blocking)."""
        self.polls += 1
        responses = self.instance.poll(max_responses)
        if not responses:
            self.empty_polls += 1
        self.responses_retrieved += len(responses)
        return responses

    def submit_cpu_cost(self, n_requests: int) -> float:
        """CPU time the caller must charge for submitting
        ``n_requests`` descriptors in one coalesced ring write."""
        if n_requests < 1:
            return 0.0
        return (SUBMIT_CPU_COST
                + SUBMIT_COALESCED_CPU_COST * (n_requests - 1))

    def poll_cpu_cost(self, n_responses: int) -> float:
        """CPU time the caller must charge for a poll that returned
        ``n_responses`` responses."""
        return POLL_CPU_COST + POLL_PER_RESPONSE_CPU_COST * n_responses

    @property
    def in_flight(self) -> int:
        return self.instance.in_flight
