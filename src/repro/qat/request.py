"""QAT request/response records."""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Any, Callable, Optional

from ..crypto.ops import CryptoOp

__all__ = ["QatRequest", "QatResponse"]

_request_ids = count(1)


@dataclass(eq=False)  # identity semantics: hashable in-flight table key
class QatRequest:
    """A crypto request written to a request ring.

    ``compute`` is the deferred functional computation (a zero-argument
    callable returning the crypto result); the device model executes it
    when the simulated calculation completes, so results exist exactly
    when the simulation says they do.
    """

    op: CryptoOp
    compute: Callable[[], Any]
    cookie: Any = None  # opaque engine-layer context (offload job ref)
    request_id: int = field(default_factory=lambda: next(_request_ids))
    submitted_at: Optional[float] = None
    #: When the hardware scheduler pulled this request off its ring.
    dequeued_at: Optional[float] = None
    #: When the computation engine finished the calculation.
    serviced_at: Optional[float] = None


@dataclass
class QatResponse:
    """A completion landed on a response ring."""

    request: QatRequest
    result: Any = None
    error: Optional[BaseException] = None
    completed_at: Optional[float] = None
    retrieved_at: Optional[float] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def cookie(self) -> Any:
        return self.request.cookie

    @property
    def latency(self) -> Optional[float]:
        """Submit-to-retrieve latency, once retrieved."""
        if self.retrieved_at is None or self.request.submitted_at is None:
            return None
        return self.retrieved_at - self.request.submitted_at
