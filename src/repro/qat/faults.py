"""Deterministic fault injection for the QAT model.

Production offload stacks treat the accelerator as a remote, failable
service: requests can be rejected, responses can be lost or corrupted,
latency can spike, and whole endpoints can drop out and come back. The
paper's only robustness mechanism is the failover timer of the
heuristic polling scheme (section 3.4); everything else in the stack
assumes a healthy card. A :class:`FaultPlan` lets experiments inject
those failures *deterministically* — every stochastic decision draws
from one seeded :mod:`repro.sim.rng` stream, so a run with the same
master seed and the same plan reproduces the identical fault event
trace bit-for-bit.

Injection points (installed via :meth:`QatDevice.install_fault_plan`):

- ``submit_rejected`` — consulted by :meth:`CryptoInstance.try_submit`;
  models endpoint outages (the endpoint stops accepting work) and
  ring-full storms (the card reports full rings regardless of actual
  occupancy).
- ``latency_multiplier`` / ``corrupt`` / ``response_lost`` — consulted
  by :meth:`QatEndpoint._run_engine` at service start, completion, and
  response landing; model latency spikes, bad status codes, and lost
  completions (the response never reaches the response ring; the
  hardware credits the slot back, the op must be recovered by the
  engine's deadline machinery).
- ``resets`` — scheduled on the simulator when the plan is installed;
  a reset wipes an endpoint's queued requests and unretrieved
  responses, as a device-level recovery action would.
- ``worker_crashes`` — not a device fault at all: ``(worker_id, time)``
  pairs the server's supervision layer (:mod:`repro.server.lifecycle`)
  arms to kill a worker *process* mid-pass, exercising crash respawn
  and lease-epoch reclamation. Listed here so the whole failure
  schedule of a run lives in one replayable plan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..crypto.ops import CryptoOp

__all__ = ["FaultPlan", "OutageWindow", "QatHardwareError"]


class QatHardwareError(RuntimeError):
    """A response carrying a bad status code (firmware-level failure,
    as opposed to a functional crypto error raised by ``compute``)."""


@dataclass(frozen=True)
class OutageWindow:
    """One endpoint (or the whole card, ``endpoint_id=None``) is down
    during ``[start, end)``: submissions are rejected and in-flight
    completions are lost."""

    endpoint_id: Optional[int]
    start: float
    end: float

    def covers(self, endpoint_id: int, now: float) -> bool:
        return ((self.endpoint_id is None
                 or self.endpoint_id == endpoint_id)
                and self.start <= now < self.end)


def _normalize_outages(outages: Iterable) -> Tuple[OutageWindow, ...]:
    out = []
    for o in outages:
        if isinstance(o, OutageWindow):
            out.append(o)
        else:
            ep, start, end = o
            out.append(OutageWindow(ep, start, end))
    return tuple(out)


def _in_window(window: Optional[Tuple[float, float]], now: float) -> bool:
    return window is None or window[0] <= now < window[1]


class FaultPlan:
    """A replayable schedule of accelerator misbehaviour.

    ``rng`` must come from the experiment's :class:`RngRegistry` (e.g.
    ``rng.stream("faults")``); all randomized decisions draw from it in
    simulation order, so identical (seed, plan) pairs produce identical
    traces. Rate parameters are probabilities per opportunity; window
    parameters are ``(start, end)`` in simulated seconds and default to
    the whole run.
    """

    def __init__(self, rng: np.random.Generator, *,
                 response_loss: float = 0.0,
                 response_loss_window: Optional[Tuple[float, float]] = None,
                 corruption: float = 0.0,
                 corruption_window: Optional[Tuple[float, float]] = None,
                 latency_spike_rate: float = 0.0,
                 latency_spike_factor: float = 25.0,
                 latency_spike_window: Optional[Tuple[float, float]] = None,
                 ring_full_windows: Sequence[Tuple[float, float]] = (),
                 outages: Iterable = (),
                 resets: Sequence[Tuple[int, float]] = (),
                 worker_crashes: Sequence[Tuple[int, float]] = ()) -> None:
        for rate in (response_loss, corruption, latency_spike_rate):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"rate {rate} outside [0, 1]")
        if latency_spike_factor < 1.0:
            raise ValueError("latency spike factor must be >= 1")
        self.rng = rng
        self.response_loss = response_loss
        self.response_loss_window = response_loss_window
        self.corruption = corruption
        self.corruption_window = corruption_window
        self.latency_spike_rate = latency_spike_rate
        self.latency_spike_factor = latency_spike_factor
        self.latency_spike_window = latency_spike_window
        self.ring_full_windows = tuple(ring_full_windows)
        self.outages = _normalize_outages(outages)
        self.resets = tuple(resets)
        for worker_id, when in worker_crashes:
            if worker_id < 0 or when < 0:
                raise ValueError(
                    f"bad worker crash ({worker_id}, {when})")
        self.worker_crashes = tuple(worker_crashes)
        #: The replayable event trace: (time, kind, detail) tuples.
        self.events: List[Tuple[float, str, str]] = []
        self.responses_lost = 0
        self.responses_corrupted = 0
        self.latency_spikes = 0
        self.submits_rejected = 0
        self.resets_fired = 0
        self.workers_crashed = 0

    # -- injection queries (called by the QAT model) -----------------------

    def outage_active(self, endpoint_id: int, now: float) -> bool:
        return any(o.covers(endpoint_id, now) for o in self.outages)

    def submit_rejected(self, endpoint_id: int,
                        now: float) -> Optional[str]:
        """Reason the submission is refused, or None to accept."""
        if self.outage_active(endpoint_id, now):
            self.submits_rejected += 1
            self._record(now, "submit_rejected", f"ep{endpoint_id} outage")
            return "outage"
        for start, end in self.ring_full_windows:
            if start <= now < end:
                self.submits_rejected += 1
                self._record(now, "submit_rejected",
                             f"ep{endpoint_id} ring-full storm")
                return "ring_full"
        return None

    def latency_multiplier(self, endpoint_id: int, op: CryptoOp,
                           now: float) -> float:
        if (self.latency_spike_rate <= 0.0
                or not _in_window(self.latency_spike_window, now)):
            return 1.0
        if self.rng.random() < self.latency_spike_rate:
            self.latency_spikes += 1
            self._record(now, "latency_spike",
                         f"ep{endpoint_id} {op.kind.label} "
                         f"x{self.latency_spike_factor:g}")
            return self.latency_spike_factor
        return 1.0

    def corrupt(self, endpoint_id: int, op: CryptoOp,
                now: float) -> Optional[QatHardwareError]:
        """Bad status code to stamp on the response, or None."""
        if (self.corruption <= 0.0
                or not _in_window(self.corruption_window, now)):
            return None
        if self.rng.random() < self.corruption:
            self.responses_corrupted += 1
            self._record(now, "response_corrupted",
                         f"ep{endpoint_id} {op.kind.label}")
            return QatHardwareError(
                f"injected bad status (ep{endpoint_id}, {op.kind.label})")
        return None

    def response_lost(self, endpoint_id: int, op: CryptoOp,
                      now: float) -> bool:
        if self.outage_active(endpoint_id, now):
            self.responses_lost += 1
            self._record(now, "response_lost",
                         f"ep{endpoint_id} {op.kind.label} (outage)")
            return True
        if (self.response_loss > 0.0
                and _in_window(self.response_loss_window, now)
                and self.rng.random() < self.response_loss):
            self.responses_lost += 1
            self._record(now, "response_lost",
                         f"ep{endpoint_id} {op.kind.label}")
            return True
        return False

    def on_reset(self, endpoint_id: int, dropped: int, now: float) -> None:
        self.resets_fired += 1
        self._record(now, "endpoint_reset",
                     f"ep{endpoint_id} dropped {dropped} entries")

    def on_worker_crash(self, worker_id: int, now: float) -> None:
        """Fired by the supervision layer when a scheduled worker
        crash actually kills a worker process."""
        self.workers_crashed += 1
        self._record(now, "worker_crash", f"worker{worker_id} killed")

    # -- observability -----------------------------------------------------

    def _record(self, now: float, kind: str, detail: str) -> None:
        self.events.append((now, kind, detail))

    def counters(self) -> dict:
        return dict(responses_lost=self.responses_lost,
                    responses_corrupted=self.responses_corrupted,
                    latency_spikes=self.latency_spikes,
                    submits_rejected=self.submits_rejected,
                    resets_fired=self.resets_fired,
                    workers_crashed=self.workers_crashed)

    def trace(self) -> List[Tuple[float, str, str]]:
        return list(self.events)
