"""Hardware-assisted request/response ring pairs.

Software writes requests onto a request ring and reads responses back
from a response ring (paper section 2.3, Figure 2). Request rings have
finite capacity: a full ring fails the submission, which QTLS handles
with pause-and-retry (paper section 3.2 "a special case is the failure
of crypto submission").

Ring-full is signalled by ``try_submit`` returning False; callers that
want to raise use the canonical :class:`~repro.offload.errors.RingFull`
re-exported here.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, List, Optional

from ..offload.errors import RingFull
from .request import QatRequest, QatResponse

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.kernel import Simulator

__all__ = ["RingPair", "RingFull", "DEFAULT_RING_CAPACITY"]

DEFAULT_RING_CAPACITY = 64


class RingPair:
    """One request ring + one response ring.

    The response ring is unbounded: the device always has room to land
    completions (real QAT sizes response rings to match outstanding
    request capacity).
    """

    def __init__(self, sim: "Simulator", name: str,
                 capacity: int = DEFAULT_RING_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("ring capacity must be >= 1")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._requests: Deque[QatRequest] = deque()
        self._responses: Deque[QatResponse] = deque()
        # Occupancy counts in-flight work: a slot frees only when the
        # response has been produced AND retrieved, mirroring how the
        # hardware credits ring slots back to software.
        self._occupied = 0
        #: Optional hardware-interrupt hook: invoked when a response
        #: lands (None = pure polling, the QTLS default).
        self.response_callback = None

    # -- software side -----------------------------------------------------

    def try_submit(self, request: QatRequest) -> bool:
        """Write a request; False when the ring is full."""
        if self._occupied >= self.capacity:
            return False
        self._occupied += 1
        request.submitted_at = self.sim.now
        self._requests.append(request)
        return True

    def poll_responses(self, max_responses: Optional[int] = None
                       ) -> List[QatResponse]:
        """Read available responses (the driver's polling primitive)."""
        out: List[QatResponse] = []
        while self._responses and (max_responses is None
                                   or len(out) < max_responses):
            resp = self._responses.popleft()
            resp.retrieved_at = self.sim.now
            self._occupied -= 1
            out.append(resp)
        return out

    # -- hardware side ---------------------------------------------------

    def take_request(self) -> Optional[QatRequest]:
        """Device pulls the next request, if any."""
        if self._requests:
            return self._requests.popleft()
        return None

    def land_response(self, response: QatResponse) -> None:
        response.completed_at = self.sim.now
        self._responses.append(response)
        if self.response_callback is not None:
            self.response_callback(self)

    def drop_response(self, response: QatResponse) -> None:
        """A completion whose response write was lost (fault injection):
        nothing lands, but the hardware still credits the slot back."""
        self._occupied -= 1

    def reset(self) -> int:
        """Device-level recovery: wipe queued requests and unretrieved
        responses, crediting their slots. Requests already inside the
        hardware pipeline keep their slots and complete (or are
        dropped) through the normal paths. Returns entries dropped."""
        dropped = len(self._requests) + len(self._responses)
        self._occupied -= dropped
        self._requests.clear()
        self._responses.clear()
        return dropped

    # -- introspection -----------------------------------------------------

    @property
    def pending_requests(self) -> int:
        return len(self._requests)

    @property
    def available_responses(self) -> int:
        return len(self._responses)

    @property
    def in_flight(self) -> int:
        """Submitted but not yet retrieved."""
        return self._occupied
