"""QAT cards (PCIe devices) composed of endpoints.

The paper's testbed uses one Intel DH8970 card containing three
independent QAT endpoints; instances handed to workers are distributed
evenly across the endpoints (paper section 5.1).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from .endpoint import QatEndpoint
from .instance import CryptoInstance
from .rings import DEFAULT_RING_CAPACITY

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.kernel import Simulator

__all__ = ["QatDevice", "dh8970"]


class QatDevice:
    """A QAT accelerator card with one or more endpoints."""

    def __init__(self, sim: "Simulator", n_endpoints: int = 3,
                 engines_per_endpoint: int = 10,
                 ring_capacity: int = DEFAULT_RING_CAPACITY,
                 name: str = "qat0") -> None:
        if n_endpoints < 1:
            raise ValueError("need at least one endpoint")
        self.sim = sim
        self.name = name
        self.endpoints: List[QatEndpoint] = [
            QatEndpoint(sim, i, n_engines=engines_per_endpoint,
                        ring_capacity=ring_capacity)
            for i in range(n_endpoints)
        ]
        self._alloc_cursor = 0
        self.fault_plan = None

    def allocate_instances(self, count: int) -> List[CryptoInstance]:
        """Allocate ``count`` instances spread evenly over endpoints
        (round-robin), one per worker as in the paper's setup."""
        out = []
        for _ in range(count):
            ep = self.endpoints[self._alloc_cursor % len(self.endpoints)]
            self._alloc_cursor += 1
            out.append(ep.create_instance())
        return out

    @property
    def total_engines(self) -> int:
        return sum(ep.n_engines for ep in self.endpoints)

    def install_fault_plan(self, plan) -> None:
        """Attach a :class:`~repro.qat.faults.FaultPlan` to every
        endpoint and schedule its endpoint resets."""
        self.fault_plan = plan
        for ep in self.endpoints:
            ep.fault_plan = plan
        for endpoint_id, when in plan.resets:
            ep = self.endpoints[endpoint_id]
            self.sim.call_at(when, ep.reset)

    def fw_counter_totals(self) -> dict:
        """Aggregate firmware counters across endpoints (the artifact
        appendix's ``cat /sys/kernel/debug/qat*/fw_counters`` check),
        plus driver-level degradation counters and any fault-plan
        injection totals."""
        total: dict = {}
        for ep in self.endpoints:
            for key, val in ep.fw_counters.snapshot().items():
                total[key] = total.get(key, 0) + val
        total["responses_lost"] = sum(ep.responses_lost
                                      for ep in self.endpoints)
        for key in ("submitted", "submit_failures", "op_timeouts",
                    "fallback_ops"):
            total[f"driver.{key}"] = 0
        for ep in self.endpoints:
            for inst in ep.instances:
                drv = inst.driver
                if drv is None:
                    continue
                total["driver.submitted"] += drv.submitted
                total["driver.submit_failures"] += drv.submit_failures
                total["driver.op_timeouts"] += drv.op_timeouts
                total["driver.fallback_ops"] += drv.fallback_ops
        if self.fault_plan is not None:
            for key, val in self.fault_plan.counters().items():
                total[f"faults.{key}"] = val
        return total

    def total_in_flight(self) -> int:
        return sum(ep.total_in_flight() for ep in self.endpoints)


def dh8970(sim: "Simulator") -> QatDevice:
    """The paper's accelerator: an Intel DH8970 PCIe card with three
    independent endpoints (calibration: ~100K RSA-2048 ops/s)."""
    return QatDevice(sim, n_endpoints=3, engines_per_endpoint=10,
                     name="dh8970")
