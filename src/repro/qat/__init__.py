"""Simulated Intel QuickAssist accelerator.

Endpoints with parallel computation engines, hardware ring pairs,
crypto instances, a userspace driver facade, and firmware counters —
the substrate QTLS offloads to (paper section 2.3).
"""

from .device import QatDevice, dh8970
from .driver import (POLL_CPU_COST, POLL_PER_RESPONSE_CPU_COST,
                     SUBMIT_CPU_COST, QatUserspaceDriver)
from .endpoint import QatEndpoint
from .faults import FaultPlan, OutageWindow, QatHardwareError
from .firmware import FirmwareCounters
from .instance import CryptoInstance
from .request import QatRequest, QatResponse
from .rings import DEFAULT_RING_CAPACITY, RingPair
from .service_times import (PCIE_LATENCY, qat_pipeline_latency,
                            qat_service_time)

__all__ = [
    "QatDevice", "dh8970", "QatEndpoint", "CryptoInstance", "RingPair",
    "QatRequest", "QatResponse", "QatUserspaceDriver", "FirmwareCounters",
    "FaultPlan", "OutageWindow", "QatHardwareError",
    "qat_service_time", "qat_pipeline_latency", "PCIE_LATENCY",
    "DEFAULT_RING_CAPACITY",
    "SUBMIT_CPU_COST", "POLL_CPU_COST", "POLL_PER_RESPONSE_CPU_COST",
]
