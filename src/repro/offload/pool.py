"""Shared QAT instance pool with pluggable allocation policies.

QTLS maps crypto instances to worker processes at startup (paper
section 2.3: "each process/thread is assigned dedicated instance(s)").
That mapping was hard-coded in the server master as a consecutive-chunk
partition; this module lifts instance *ownership* into an explicit
:class:`InstancePool` owning every allocated instance (one
:class:`~repro.qat.driver.QatUserspaceDriver` per instance, shared by
all workers) plus a pluggable :class:`AllocationPolicy` deciding which
worker may submit to which instance at any moment:

- ``static`` — today's consecutive-chunk partition. The default, and
  bit-for-bit identical to the pre-pool wiring: each worker leases a
  fixed chunk, pays no arbitration cost, and polls only its own
  drivers.
- ``shared`` — every worker leases every instance. Any worker can
  submit into any ring, soaking up skewed load, but each submission
  acquires the instance under a lock shared with the other workers and
  pays :data:`ARBITRATION_CPU_COST` on top of the driver's submit cost
  (the multi-worker-per-instance arbitration the paper avoids by
  dedicating instances).
- ``dynamic`` — starts from the static partition; a periodic rebalance
  tick *migrates* instance leases from the least- to the most-pressured
  worker (engine in-flight + admission-queue depth), with hysteresis
  (minimum lease dwell time and a pressure-gap threshold) so leases
  don't thrash.

Workers see the pool through :class:`PooledQatBackend`, an
:class:`~repro.offload.backend.OffloadBackend` whose *lane ids are
global* (lane = driver index in the pool) but which only *admits*
submissions on currently-leased lanes. Completions are routed by
request ownership: whichever worker polls a ring, a response belongs
to the worker that submitted the request and is delivered to that
worker's inbox — so a lease migration never loses in-flight work.
"""

from __future__ import annotations

from typing import (TYPE_CHECKING, Any, Callable, Dict, List, Optional,
                    Sequence, Tuple)

from ..qat.driver import QatUserspaceDriver
from .backend import Completion, OffloadBackend, OpSpec
from .qat_backend import completion_from_response

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.kernel import Simulator

__all__ = ["ARBITRATION_CPU_COST", "AllocationPolicy", "StaticPolicy",
           "SharedPolicy", "DynamicPolicy", "POLICIES", "make_policy",
           "InstancePool", "PooledQatBackend"]

#: CPU seconds to acquire an instance that other workers may also be
#: submitting to (userspace spinlock + cache-line bounce on the ring
#: tail pointer). Charged per submit call under the ``shared`` policy;
#: exclusive leases (``static``, ``dynamic``) submit lock-free.
ARBITRATION_CPU_COST = 0.3e-6


class AllocationPolicy:
    """How pool instances are apportioned among workers over time."""

    name = "abstract"
    #: Extra CPU per submit call for lock/arbitration on instances the
    #: worker does not exclusively own.
    arbitration_cost = 0.0

    def initial_leases(self, n_workers: int, n_lanes: int
                       ) -> List[List[int]]:
        """Per-worker ordered list of leased lane indices at startup."""
        raise NotImplementedError

    def rebalance(self, pool: "InstancePool", now: float
                  ) -> List[Tuple[int, int, int]]:
        """Lease migrations ``(lane, from_worker, to_worker)`` to apply
        at this tick. Static policies return nothing."""
        return []


def _chunks(n_workers: int, n_lanes: int) -> List[List[int]]:
    """Consecutive chunks of ``n_lanes // n_workers`` lanes per worker
    — with round-robin device allocation each chunk spans distinct
    endpoints (see ``tests/qat/test_endpoint_spread.py``)."""
    if n_lanes % n_workers:
        raise ValueError(
            f"{n_lanes} instances do not partition over {n_workers} workers")
    per = n_lanes // n_workers
    return [list(range(w * per, (w + 1) * per)) for w in range(n_workers)]


class StaticPolicy(AllocationPolicy):
    """Fixed consecutive-chunk partition (the paper's dedicated
    instances; pre-pool behaviour, bit-for-bit)."""

    name = "static"

    def initial_leases(self, n_workers: int, n_lanes: int
                       ) -> List[List[int]]:
        return _chunks(n_workers, n_lanes)


class SharedPolicy(AllocationPolicy):
    """Every worker leases every instance; submission pays the
    arbitration cost."""

    name = "shared"
    arbitration_cost = ARBITRATION_CPU_COST

    def initial_leases(self, n_workers: int, n_lanes: int
                       ) -> List[List[int]]:
        # Each worker's lease list starts at its static chunk and wraps
        # around the whole pool, so lightly-loaded workers spread their
        # round-robin submissions instead of all piling onto lane 0.
        if n_lanes % n_workers:
            raise ValueError(
                f"{n_lanes} instances do not partition over "
                f"{n_workers} workers")
        per = n_lanes // n_workers
        return [[(w * per + i) % n_lanes for i in range(n_lanes)]
                for w in range(n_workers)]


class DynamicPolicy(AllocationPolicy):
    """Static start; leases migrate toward pressured workers.

    One migration per tick at most: the least-pressured worker owning
    a spare lease (> 1) donates its least-busy lane to the
    most-pressured worker — and only when the pressure gap exceeds
    ``pressure_gap`` and the lane has been settled for ``min_dwell``
    seconds (hysteresis against thrash).
    """

    name = "dynamic"

    def __init__(self, min_dwell: float = 1e-3,
                 pressure_gap: float = 4.0) -> None:
        if min_dwell <= 0:
            raise ValueError("min_dwell must be positive")
        if pressure_gap <= 0:
            raise ValueError("pressure_gap must be positive")
        self.min_dwell = min_dwell
        self.pressure_gap = pressure_gap

    def initial_leases(self, n_workers: int, n_lanes: int
                       ) -> List[List[int]]:
        return _chunks(n_workers, n_lanes)

    def rebalance(self, pool: "InstancePool", now: float
                  ) -> List[Tuple[int, int, int]]:
        pressures = [pool.pressure(w) for w in range(pool.n_workers)]
        hi, hi_p = 0, pressures[0]
        for w in range(1, pool.n_workers):
            if pressures[w] > hi_p:
                hi, hi_p = w, pressures[w]
        lo, lo_p = -1, None
        for w in range(pool.n_workers):
            if w == hi or len(pool.leases[w]) <= 1:
                continue  # donors must keep at least one lease
            if lo_p is None or pressures[w] < lo_p:
                lo, lo_p = w, pressures[w]
        if lo < 0 or hi_p - lo_p < self.pressure_gap:
            return []
        settled = [lane for lane in pool.leases[lo]
                   if now - pool.lease_since(lane) >= self.min_dwell]
        if not settled:
            return []
        lane = min(settled,
                   key=lambda ln: (pool.drivers[ln].in_flight, ln))
        return [(lane, lo, hi)]


POLICIES: Dict[str, Callable[[], AllocationPolicy]] = {
    "static": StaticPolicy,
    "shared": SharedPolicy,
    "dynamic": DynamicPolicy,
}


def make_policy(name: str, **kw: Any) -> AllocationPolicy:
    try:
        factory = POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown instance policy {name!r}; "
            f"expected one of {sorted(POLICIES)}") from None
    return factory(**kw)


class InstancePool:
    """Owns every allocated QAT instance (as userspace drivers) and the
    worker -> instance lease map the policy maintains."""

    def __init__(self, sim: "Simulator",
                 drivers: Sequence[QatUserspaceDriver],
                 n_workers: int, policy: AllocationPolicy) -> None:
        if n_workers < 1:
            raise ValueError("need at least one worker")
        self.sim = sim
        self.drivers: List[QatUserspaceDriver] = list(drivers)
        if not self.drivers:
            raise ValueError("need at least one instance")
        self.n_workers = n_workers
        self.policy = policy
        self.leases: List[List[int]] = policy.initial_leases(
            n_workers, len(self.drivers))
        self._lease_sets = [set(ls) for ls in self.leases]
        self._lease_since: Dict[int, float] = {
            lane: sim.now for lane in range(len(self.drivers))}
        #: Request -> submitting worker, so completions polled by any
        #: worker route back to their owner.
        self._owner: Dict[Any, int] = {}
        self._inboxes: List[List[Completion]] = [[] for _ in
                                                 range(n_workers)]
        self._pressure: List[Optional[Callable[[], float]]] = \
            [None] * n_workers
        self._backends: List[Optional[PooledQatBackend]] = \
            [None] * n_workers
        self.migrations = 0
        self.routed_completions = 0
        self.migration_log: List[Tuple[float, int, int, int]] = []

    # -- worker-facing ------------------------------------------------------

    def register(self, worker_id: int) -> "PooledQatBackend":
        """The backend handle worker ``worker_id`` submits through."""
        if not 0 <= worker_id < self.n_workers:
            raise ValueError(f"worker {worker_id} out of range")
        backend = self._backends[worker_id]
        if backend is None:
            backend = PooledQatBackend(self, worker_id)
            self._backends[worker_id] = backend
            self._sample_leases(worker_id)
        return backend

    def set_pressure_source(self, worker_id: int,
                            fn: Callable[[], float]) -> None:
        """Install the pressure metric (engine in-flight + admission
        queue depth) the dynamic policy rebalances on."""
        self._pressure[worker_id] = fn

    def pressure(self, worker_id: int) -> float:
        fn = self._pressure[worker_id]
        return fn() if fn is not None else 0.0

    def admits(self, worker_id: int, lane: int) -> bool:
        return lane in self._lease_sets[worker_id]

    def lease_since(self, lane: int) -> float:
        return self._lease_since[lane]

    # -- submission / completion routing ------------------------------------

    def submit(self, worker_id: int, specs: List[OpSpec],
               lane: int) -> List[Any]:
        if not self.admits(worker_id, lane):
            return [None] * len(specs)
        drv = self.drivers[lane]
        tokens = [drv.try_submit(spec.op, spec.compute, cookie=spec.cookie)
                  for spec in specs]
        for token in tokens:
            if token is not None:
                self._owner[token] = worker_id
        return tokens

    def poll(self, worker_id: int, start: int,
             max_responses: Optional[int] = None) -> List[Completion]:
        """Drain worker ``worker_id``'s inbox, then its leased rings
        (round-robin from ``start`` within the lease list). Responses
        owned by other workers are routed to their inboxes and do not
        consume this worker's budget."""
        out: List[Completion] = []
        inbox = self._inboxes[worker_id]
        while inbox and (max_responses is None
                         or len(out) < max_responses):
            out.append(inbox.pop(0))
        lanes = self.leases[worker_id]
        n = len(lanes)
        for i in range(n):
            budget = (None if max_responses is None
                      else max_responses - len(out))
            if budget == 0:
                break
            drv = self.drivers[lanes[(start + i) % n]]
            for resp in drv.poll(budget):
                completion = completion_from_response(resp)
                owner = self._owner.pop(resp.request, worker_id)
                if owner == worker_id:
                    out.append(completion)
                else:
                    self._inboxes[owner].append(completion)
                    self.routed_completions += 1
        return out

    def inbox_depth(self, worker_id: int) -> int:
        return len(self._inboxes[worker_id])

    # -- rebalancing --------------------------------------------------------

    def rebalance(self, now: float) -> List[Tuple[int, int, int]]:
        """Apply one policy rebalance tick; returns the migrations."""
        moves = self.policy.rebalance(self, now)
        for lane, src, dst in moves:
            self.leases[src].remove(lane)
            self._lease_sets[src].discard(lane)
            self.leases[dst].append(lane)
            self._lease_sets[dst].add(lane)
            self._lease_since[lane] = now
            self.migrations += 1
            self.migration_log.append((now, lane, src, dst))
            obs = getattr(self.sim, "obs", None)
            if obs is not None and obs.enabled:
                obs.event(f"lease-migrate lane{lane}", now,
                          args={"lane": lane, "from": src, "to": dst})
            self._sample_leases(src)
            self._sample_leases(dst)
        return moves

    def _sample_leases(self, worker_id: int) -> None:
        obs = getattr(self.sim, "obs", None)
        if obs is not None and obs.enabled:
            obs.util_sample(f"pool.w{worker_id}.leases", self.sim.now,
                            len(self.leases[worker_id]),
                            capacity=len(self.drivers))

    # -- introspection ------------------------------------------------------

    def lease_counts(self) -> List[int]:
        return [len(ls) for ls in self.leases]

    def snapshot(self) -> dict:
        return {
            "policy": self.policy.name,
            "instances": len(self.drivers),
            "workers": self.n_workers,
            "leases": self.lease_counts(),
            "migrations": self.migrations,
            "routed_completions": self.routed_completions,
        }


class PooledQatBackend(OffloadBackend):
    """One worker's view of the shared pool.

    Lane ids are *global* driver indices, so engine breaker state stays
    attached to the physical instance across lease migrations; lanes
    outside the current lease set are simply not admitted
    (:meth:`admits` / zero :meth:`capacity_hint`).
    """

    name = "qat"

    def __init__(self, pool: InstancePool, worker_id: int) -> None:
        self.pool = pool
        self.worker_id = worker_id
        self._poll_rr = 0

    @property
    def drivers(self) -> List[QatUserspaceDriver]:
        """The currently-leased drivers (interrupt-mode arming and
        tests iterate these)."""
        return [self.pool.drivers[lane]
                for lane in self.pool.leases[self.worker_id]]

    @property
    def lanes(self) -> int:
        return len(self.pool.drivers)

    def admits(self, lane: int) -> bool:
        return self.pool.admits(self.worker_id, lane)

    def submit_batch(self, specs: List[OpSpec], lane: int) -> List[Any]:
        return self.pool.submit(self.worker_id, specs, lane)

    def poll_completions(self, max_responses: Optional[int] = None
                         ) -> List[Completion]:
        start = self._poll_rr
        self._poll_rr += 1
        return self.pool.poll(self.worker_id, start, max_responses)

    def submit_cpu_cost(self, n_ops: int) -> float:
        return (self.pool.drivers[0].submit_cpu_cost(n_ops)
                + self.pool.policy.arbitration_cost)

    def poll_cpu_cost(self, n_responses: int) -> float:
        return self.pool.drivers[0].poll_cpu_cost(n_responses)

    def capacity_hint(self, lane: Optional[int] = None,
                      category: Optional[Any] = None) -> int:
        if lane is not None:
            if not self.admits(lane):
                return 0
            lanes = [lane]
        else:
            lanes = self.pool.leases[self.worker_id]
        return sum(max(0, ring.capacity - ring.in_flight)
                   for ln in lanes
                   for key, ring in
                   self.pool.drivers[ln].instance.rings.items()
                   if category is None or key == category.value)

    def lane_stats(self, lane: int) -> QatUserspaceDriver:
        return self.pool.drivers[lane]

    def health(self) -> dict:
        snap = self.pool.snapshot()
        snap.update({
            "backend": self.name,
            "worker": self.worker_id,
            "leased": len(self.pool.leases[self.worker_id]),
            "capacity_hint": self.capacity_hint(),
        })
        return snap
