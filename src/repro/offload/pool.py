"""Shared QAT instance pool with pluggable allocation policies.

QTLS maps crypto instances to worker processes at startup (paper
section 2.3: "each process/thread is assigned dedicated instance(s)").
That mapping was hard-coded in the server master as a consecutive-chunk
partition; this module lifts instance *ownership* into an explicit
:class:`InstancePool` owning every allocated instance (one
:class:`~repro.qat.driver.QatUserspaceDriver` per instance, shared by
all workers) plus a pluggable :class:`AllocationPolicy` deciding which
worker may submit to which instance at any moment:

- ``static`` — today's consecutive-chunk partition. The default, and
  bit-for-bit identical to the pre-pool wiring: each worker leases a
  fixed chunk, pays no arbitration cost, and polls only its own
  drivers.
- ``shared`` — every worker leases every instance. Any worker can
  submit into any ring, soaking up skewed load, but each submission
  acquires the instance under a lock shared with the other workers and
  pays :data:`ARBITRATION_CPU_COST` on top of the driver's submit cost
  (the multi-worker-per-instance arbitration the paper avoids by
  dedicating instances).
- ``dynamic`` — starts from the static partition; a periodic rebalance
  tick *migrates* instance leases from the least- to the most-pressured
  worker (engine in-flight + admission-queue depth), with hysteresis
  (minimum lease dwell time and a pressure-gap threshold) so leases
  don't thrash.

Workers see the pool through :class:`PooledQatBackend`, an
:class:`~repro.offload.backend.OffloadBackend` whose *lane ids are
global* (lane = driver index in the pool) but which only *admits*
submissions on currently-leased lanes. Completions are routed by
request ownership: whichever worker polls a ring, a response belongs
to the worker that submitted the request and is delivered to that
worker's inbox — so a lease migration never loses in-flight work.

Worker *incarnations* are told apart by a per-slot **lease epoch**:
ownership is recorded as ``(worker, epoch)`` and each registered
backend is bound to the epoch it was created under. When a worker
crashes or an old generation drains out (see
:mod:`repro.server.lifecycle`), its epoch is :meth:`retired
<InstancePool.retire>`: completions still in flight on the accelerator
under the dead epoch are *tombstoned* — counted and dropped at poll
time — instead of being misdelivered to the replacement worker that
now serves the same slot. A slot that stays dead (respawn disabled or
budget exhausted) can have its leases :meth:`reclaimed
<InstancePool.reclaim_leases>` for the surviving workers.
"""

from __future__ import annotations

from typing import (TYPE_CHECKING, Any, Callable, Dict, List, Optional,
                    Sequence, Tuple)

from ..qat.driver import QatUserspaceDriver
from .backend import Completion, OffloadBackend, OpSpec
from .qat_backend import completion_from_response

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.kernel import Simulator

__all__ = ["ARBITRATION_CPU_COST", "AllocationPolicy", "StaticPolicy",
           "SharedPolicy", "DynamicPolicy", "POLICIES", "make_policy",
           "InstancePool", "PooledQatBackend"]

#: CPU seconds to acquire an instance that other workers may also be
#: submitting to (userspace spinlock + cache-line bounce on the ring
#: tail pointer). Charged per submit call under the ``shared`` policy;
#: exclusive leases (``static``, ``dynamic``) submit lock-free.
ARBITRATION_CPU_COST = 0.3e-6


class AllocationPolicy:
    """How pool instances are apportioned among workers over time."""

    name = "abstract"
    #: Extra CPU per submit call for lock/arbitration on instances the
    #: worker does not exclusively own.
    arbitration_cost = 0.0

    def initial_leases(self, n_workers: int, n_lanes: int
                       ) -> List[List[int]]:
        """Per-worker ordered list of leased lane indices at startup."""
        raise NotImplementedError

    def rebalance(self, pool: "InstancePool", now: float
                  ) -> List[Tuple[int, int, int]]:
        """Lease migrations ``(lane, from_worker, to_worker)`` to apply
        at this tick. Static policies return nothing."""
        return []


def _chunks(n_workers: int, n_lanes: int) -> List[List[int]]:
    """Consecutive chunks of ``n_lanes // n_workers`` lanes per worker
    — with round-robin device allocation each chunk spans distinct
    endpoints (see ``tests/qat/test_endpoint_spread.py``)."""
    if n_lanes % n_workers:
        raise ValueError(
            f"{n_lanes} instances do not partition over {n_workers} workers")
    per = n_lanes // n_workers
    return [list(range(w * per, (w + 1) * per)) for w in range(n_workers)]


class StaticPolicy(AllocationPolicy):
    """Fixed consecutive-chunk partition (the paper's dedicated
    instances; pre-pool behaviour, bit-for-bit)."""

    name = "static"

    def initial_leases(self, n_workers: int, n_lanes: int
                       ) -> List[List[int]]:
        return _chunks(n_workers, n_lanes)


class SharedPolicy(AllocationPolicy):
    """Every worker leases every instance; submission pays the
    arbitration cost."""

    name = "shared"
    arbitration_cost = ARBITRATION_CPU_COST

    def initial_leases(self, n_workers: int, n_lanes: int
                       ) -> List[List[int]]:
        # Each worker's lease list starts at its static chunk and wraps
        # around the whole pool, so lightly-loaded workers spread their
        # round-robin submissions instead of all piling onto lane 0.
        if n_lanes % n_workers:
            raise ValueError(
                f"{n_lanes} instances do not partition over "
                f"{n_workers} workers")
        per = n_lanes // n_workers
        return [[(w * per + i) % n_lanes for i in range(n_lanes)]
                for w in range(n_workers)]


class DynamicPolicy(AllocationPolicy):
    """Static start; leases migrate toward pressured workers.

    One migration per tick at most: the least-pressured worker owning
    a spare lease (> 1) donates its least-busy lane to the
    most-pressured worker — and only when the pressure gap exceeds
    ``pressure_gap`` and the lane has been settled for ``min_dwell``
    seconds (hysteresis against thrash).
    """

    name = "dynamic"

    def __init__(self, min_dwell: float = 1e-3,
                 pressure_gap: float = 4.0) -> None:
        if min_dwell <= 0:
            raise ValueError("min_dwell must be positive")
        if pressure_gap <= 0:
            raise ValueError("pressure_gap must be positive")
        self.min_dwell = min_dwell
        self.pressure_gap = pressure_gap

    def initial_leases(self, n_workers: int, n_lanes: int
                       ) -> List[List[int]]:
        return _chunks(n_workers, n_lanes)

    def rebalance(self, pool: "InstancePool", now: float
                  ) -> List[Tuple[int, int, int]]:
        pressures = [pool.pressure(w) for w in range(pool.n_workers)]
        # A worker with an open circuit breaker (or a dead slot) is
        # pressured *because* it is failing ops over, not because it
        # could use more lanes — migrating leases toward it would just
        # starve the healthy workers. Skip it as a recipient; it may
        # still donate.
        hi, hi_p = -1, 0.0
        for w in range(pool.n_workers):
            if not pool.healthy(w):
                continue
            if hi < 0 or pressures[w] > hi_p:
                hi, hi_p = w, pressures[w]
        if hi < 0:
            return []
        lo, lo_p = -1, None
        for w in range(pool.n_workers):
            if w == hi or len(pool.leases[w]) <= 1:
                continue  # donors must keep at least one lease
            if lo_p is None or pressures[w] < lo_p:
                lo, lo_p = w, pressures[w]
        if lo < 0 or hi_p - lo_p < self.pressure_gap:
            return []
        settled = [lane for lane in pool.leases[lo]
                   if now - pool.lease_since(lane) >= self.min_dwell]
        if not settled:
            return []
        lane = min(settled,
                   key=lambda ln: (pool.drivers[ln].in_flight, ln))
        return [(lane, lo, hi)]


POLICIES: Dict[str, Callable[[], AllocationPolicy]] = {
    "static": StaticPolicy,
    "shared": SharedPolicy,
    "dynamic": DynamicPolicy,
}


def make_policy(name: str, **kw: Any) -> AllocationPolicy:
    try:
        factory = POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown instance policy {name!r}; "
            f"expected one of {sorted(POLICIES)}") from None
    return factory(**kw)


class InstancePool:
    """Owns every allocated QAT instance (as userspace drivers) and the
    worker -> instance lease map the policy maintains."""

    def __init__(self, sim: "Simulator",
                 drivers: Sequence[QatUserspaceDriver],
                 n_workers: int, policy: AllocationPolicy) -> None:
        if n_workers < 1:
            raise ValueError("need at least one worker")
        self.sim = sim
        self.drivers: List[QatUserspaceDriver] = list(drivers)
        if not self.drivers:
            raise ValueError("need at least one instance")
        self.n_workers = n_workers
        self.policy = policy
        self.leases: List[List[int]] = policy.initial_leases(
            n_workers, len(self.drivers))
        self._lease_sets = [set(ls) for ls in self.leases]
        self._lease_since: Dict[int, float] = {
            lane: sim.now for lane in range(len(self.drivers))}
        #: Current lease epoch per slot; bumped on respawn/reload so
        #: a replacement worker never inherits its predecessor's ops.
        self.epochs: List[int] = [0] * n_workers
        self._retired: set = set()  # {(worker, epoch)} dead incarnations
        #: Request -> (worker, epoch) that submitted it, so completions
        #: polled by any worker route back to their owner — or to the
        #: tombstone counter if the owner's incarnation is dead.
        self._owner: Dict[Any, Tuple[int, int]] = {}
        self._inboxes: Dict[Tuple[int, int], List[Completion]] = {
            (w, 0): [] for w in range(n_workers)}
        self._pressure: List[Optional[Callable[[], float]]] = \
            [None] * n_workers
        self._health: List[Optional[Callable[[], bool]]] = \
            [None] * n_workers
        self._backends: List[Optional[PooledQatBackend]] = \
            [None] * n_workers
        self.migrations = 0
        self.routed_completions = 0
        self.migration_log: List[Tuple[float, int, int, int]] = []
        #: Completions for retired incarnations, dropped at poll time.
        self.tombstone_drops = 0
        self.tombstone_log: List[Tuple[float, int, int]] = []
        #: Lanes taken back from permanently-dead slots.
        self.reclaimed = 0
        #: Lease-map snapshots, one per mutation (initial map, each
        #: rebalance tick, each reclamation): ``(now, ((lanes of w0),
        #: (lanes of w1), ...))``. repro.testing invariants replay the
        #: audit to prove exclusive policies partition the instances at
        #: every tick, not just at exit.
        self.lease_audit: List[Tuple[float, Tuple[Tuple[int, ...], ...]]] = []
        self._audit_leases()

    # -- worker-facing ------------------------------------------------------

    def register(self, worker_id: int) -> "PooledQatBackend":
        """The backend handle worker ``worker_id`` submits through."""
        if not 0 <= worker_id < self.n_workers:
            raise ValueError(f"worker {worker_id} out of range")
        backend = self._backends[worker_id]
        if backend is None:
            backend = PooledQatBackend(self, worker_id,
                                       epoch=self.epochs[worker_id])
            self._backends[worker_id] = backend
            self._sample_leases(worker_id)
        return backend

    def set_pressure_source(self, worker_id: int,
                            fn: Callable[[], float]) -> None:
        """Install the pressure metric (engine in-flight + admission
        queue depth) the dynamic policy rebalances on."""
        self._pressure[worker_id] = fn

    def pressure(self, worker_id: int) -> float:
        fn = self._pressure[worker_id]
        return fn() if fn is not None else 0.0

    def set_health_source(self, worker_id: int,
                          fn: Callable[[], bool]) -> None:
        """Install the health predicate (no open circuit breakers) the
        dynamic policy consults before migrating leases *toward* a
        worker."""
        self._health[worker_id] = fn

    def healthy(self, worker_id: int) -> bool:
        fn = self._health[worker_id]
        return fn() if fn is not None else True

    def admits(self, worker_id: int, lane: int,
               epoch: Optional[int] = None) -> bool:
        if epoch is not None and (worker_id, epoch) in self._retired:
            return False
        return lane in self._lease_sets[worker_id]

    def lease_since(self, lane: int) -> float:
        return self._lease_since[lane]

    # -- submission / completion routing ------------------------------------

    def submit(self, worker_id: int, specs: List[OpSpec], lane: int,
               epoch: Optional[int] = None) -> List[Any]:
        if epoch is None:
            epoch = self.epochs[worker_id]
        if not self.admits(worker_id, lane, epoch):
            return [None] * len(specs)
        drv = self.drivers[lane]
        tokens = [drv.try_submit(spec.op, spec.compute, cookie=spec.cookie)
                  for spec in specs]
        for token in tokens:
            if token is not None:
                self._owner[token] = (worker_id, epoch)
        return tokens

    def poll(self, worker_id: int, start: int,
             max_responses: Optional[int] = None,
             epoch: Optional[int] = None) -> List[Completion]:
        """Drain worker ``worker_id``'s inbox, then its leased rings
        (round-robin from ``start`` within the lease list). Responses
        owned by other live incarnations are routed to their inboxes
        (without consuming this worker's budget); responses owned by
        retired incarnations are tombstoned and dropped."""
        if epoch is None:
            epoch = self.epochs[worker_id]
        me = (worker_id, epoch)
        if me in self._retired:
            return []
        out: List[Completion] = []
        inbox = self._inboxes.setdefault(me, [])
        while inbox and (max_responses is None
                         or len(out) < max_responses):
            out.append(inbox.pop(0))
        lanes = self.leases[worker_id]
        n = len(lanes)
        for i in range(n):
            budget = (None if max_responses is None
                      else max_responses - len(out))
            if budget == 0:
                break
            drv = self.drivers[lanes[(start + i) % n]]
            for resp in drv.poll(budget):
                completion = completion_from_response(resp)
                owner = self._owner.pop(resp.request, me)
                if self.completion_retired(owner):
                    self._tombstone(owner)
                elif owner == me:
                    out.append(completion)
                else:
                    self._inboxes.setdefault(owner, []).append(completion)
                    self.routed_completions += 1
        return out

    def inbox_depth(self, worker_id: int,
                    epoch: Optional[int] = None) -> int:
        if epoch is None:
            epoch = self.epochs[worker_id]
        return len(self._inboxes.get((worker_id, epoch), ()))

    # -- worker lifecycle (epochs / reclamation) -----------------------------

    def advance_epoch(self, worker_id: int) -> int:
        """Open a fresh lease epoch for the slot (crash respawn or
        reload): the next :meth:`register` hands out a backend bound to
        the new epoch. The previous epoch stays live — a draining
        old-generation worker keeps polling under it — until
        :meth:`retire`\\ d."""
        if not 0 <= worker_id < self.n_workers:
            raise ValueError(f"worker {worker_id} out of range")
        self.epochs[worker_id] += 1
        epoch = self.epochs[worker_id]
        self._inboxes.setdefault((worker_id, epoch), [])
        self._backends[worker_id] = None
        return epoch

    def retire(self, worker_id: int, epoch: int) -> int:
        """Mark incarnation ``(worker_id, epoch)`` dead. Completions
        already sitting in its inbox are tombstoned immediately; its
        ops still in flight on the accelerator are tombstoned when
        their responses surface at some later poll. Returns the number
        of ops the dead incarnation leaves in flight (they drain to
        tombstones, never to the in-flight table of a live worker)."""
        key = (worker_id, epoch)
        if key in self._retired:
            return 0
        self._retired.add(key)
        for _ in self._inboxes.pop(key, ()):
            self._tombstone(key)
        if self._backends[worker_id] is not None \
                and self._backends[worker_id].epoch == epoch:
            self._backends[worker_id] = None
        orphans = sum(1 for owner in self._owner.values() if owner == key)
        obs = getattr(self.sim, "obs", None)
        if obs is not None and obs.enabled:
            obs.event(f"epoch-retire w{worker_id}", self.sim.now,
                      args={"worker": worker_id, "epoch": epoch,
                            "orphans": orphans})
        return orphans

    def is_retired(self, worker_id: int, epoch: int) -> bool:
        return (worker_id, epoch) in self._retired

    def completion_retired(self, owner: Tuple[int, int]) -> bool:
        """Is a surfacing completion owned by a dead incarnation?  The
        poll loop's lease-epoch check, kept as a seam so the fuzz
        harness (``tools/fuzz_scenarios.py --inject-bug lease-epoch``)
        can disable it and prove the invariant suite catches the leak."""
        return owner in self._retired

    def retired_inbox_entries(self) -> int:
        """Completions sitting in an inbox owned by a retired
        incarnation. Always zero when the poll loop's lease-epoch check
        holds: :meth:`retire` pops the inbox and later completions
        tombstone at the ring; a nonzero value means a dead epoch's
        response was queued for delivery — the leak the fuzz harness's
        ``lease-epoch`` bug injection recreates."""
        return sum(len(box) for key, box in self._inboxes.items()
                   if key in self._retired)

    def dead_epoch_inflight(self) -> int:
        """Ownership entries still held by retired incarnations — the
        experiment's zero-leak assertion drives this to zero once the
        accelerator rings drain."""
        return sum(1 for owner in self._owner.values()
                   if owner in self._retired)

    def _tombstone(self, owner: Tuple[int, int]) -> None:
        self.tombstone_drops += 1
        self.tombstone_log.append((self.sim.now, owner[0], owner[1]))

    def reclaim_leases(self, worker_id: int) -> List[Tuple[int, int]]:
        """A permanently-dead slot (crash with respawn disabled or
        budget exhausted) donates every lease round-robin to the other
        slots. Returns the ``(lane, new_worker)`` moves."""
        targets = [w for w in range(self.n_workers) if w != worker_id]
        moves: List[Tuple[int, int]] = []
        if not targets:
            return moves
        now = self.sim.now
        for i, lane in enumerate(list(self.leases[worker_id])):
            dst = targets[i % len(targets)]
            self.leases[worker_id].remove(lane)
            self._lease_sets[worker_id].discard(lane)
            self.leases[dst].append(lane)
            self._lease_sets[dst].add(lane)
            self._lease_since[lane] = now
            self.reclaimed += 1
            self.migration_log.append((now, lane, worker_id, dst))
            moves.append((lane, dst))
            obs = getattr(self.sim, "obs", None)
            if obs is not None and obs.enabled:
                obs.event(f"lease-reclaim lane{lane}", now,
                          args={"lane": lane, "from": worker_id,
                                "to": dst})
            self._sample_leases(dst)
        self._sample_leases(worker_id)
        if moves:
            self._audit_leases()
        return moves

    # -- rebalancing --------------------------------------------------------

    def rebalance(self, now: float) -> List[Tuple[int, int, int]]:
        """Apply one policy rebalance tick; returns the migrations."""
        moves = self.policy.rebalance(self, now)
        for lane, src, dst in moves:
            self.leases[src].remove(lane)
            self._lease_sets[src].discard(lane)
            self.leases[dst].append(lane)
            self._lease_sets[dst].add(lane)
            self._lease_since[lane] = now
            self.migrations += 1
            self.migration_log.append((now, lane, src, dst))
            obs = getattr(self.sim, "obs", None)
            if obs is not None and obs.enabled:
                obs.event(f"lease-migrate lane{lane}", now,
                          args={"lane": lane, "from": src, "to": dst})
            self._sample_leases(src)
            self._sample_leases(dst)
        if moves:
            self._audit_leases()
        return moves

    def _audit_leases(self) -> None:
        self.lease_audit.append(
            (self.sim.now, tuple(tuple(ls) for ls in self.leases)))

    def _sample_leases(self, worker_id: int) -> None:
        obs = getattr(self.sim, "obs", None)
        if obs is not None and obs.enabled:
            obs.util_sample(f"pool.w{worker_id}.leases", self.sim.now,
                            len(self.leases[worker_id]),
                            capacity=len(self.drivers))

    # -- introspection ------------------------------------------------------

    def lease_counts(self) -> List[int]:
        return [len(ls) for ls in self.leases]

    def snapshot(self) -> dict:
        return {
            "policy": self.policy.name,
            "instances": len(self.drivers),
            "workers": self.n_workers,
            "leases": self.lease_counts(),
            "epochs": list(self.epochs),
            "migrations": self.migrations,
            "routed_completions": self.routed_completions,
            "tombstone_drops": self.tombstone_drops,
        }


class PooledQatBackend(OffloadBackend):
    """One worker's view of the shared pool.

    Lane ids are *global* driver indices, so engine breaker state stays
    attached to the physical instance across lease migrations; lanes
    outside the current lease set are simply not admitted
    (:meth:`admits` / zero :meth:`capacity_hint`).
    """

    name = "qat"

    def __init__(self, pool: InstancePool, worker_id: int,
                 epoch: int = 0) -> None:
        self.pool = pool
        self.worker_id = worker_id
        #: Lease epoch this handle was issued under; a retired epoch's
        #: backend admits nothing and polls nothing.
        self.epoch = epoch
        self._poll_rr = 0

    @property
    def retired(self) -> bool:
        return self.pool.is_retired(self.worker_id, self.epoch)

    @property
    def drivers(self) -> List[QatUserspaceDriver]:
        """The currently-leased drivers (interrupt-mode arming and
        tests iterate these)."""
        return [self.pool.drivers[lane]
                for lane in self.pool.leases[self.worker_id]]

    @property
    def lanes(self) -> int:
        return len(self.pool.drivers)

    def admits(self, lane: int) -> bool:
        return self.pool.admits(self.worker_id, lane, self.epoch)

    def submit_batch(self, specs: List[OpSpec], lane: int) -> List[Any]:
        return self.pool.submit(self.worker_id, specs, lane, self.epoch)

    def poll_completions(self, max_responses: Optional[int] = None
                         ) -> List[Completion]:
        start = self._poll_rr
        self._poll_rr += 1
        return self.pool.poll(self.worker_id, start, max_responses,
                              self.epoch)

    def submit_cpu_cost(self, n_ops: int) -> float:
        return (self.pool.drivers[0].submit_cpu_cost(n_ops)
                + self.pool.policy.arbitration_cost)

    def poll_cpu_cost(self, n_responses: int) -> float:
        return self.pool.drivers[0].poll_cpu_cost(n_responses)

    def capacity_hint(self, lane: Optional[int] = None,
                      category: Optional[Any] = None) -> int:
        if lane is not None:
            if not self.admits(lane):
                return 0
            lanes = [lane]
        else:
            lanes = self.pool.leases[self.worker_id]
        return sum(max(0, ring.capacity - ring.in_flight)
                   for ln in lanes
                   for key, ring in
                   self.pool.drivers[ln].instance.rings.items()
                   if category is None or key == category.value)

    def lane_stats(self, lane: int) -> QatUserspaceDriver:
        return self.pool.drivers[lane]

    def health(self) -> dict:
        snap = self.pool.snapshot()
        snap.update({
            "backend": self.name,
            "worker": self.worker_id,
            "epoch": self.epoch,
            "leased": len(self.pool.leases[self.worker_id]),
            "capacity_hint": self.capacity_hint(),
        })
        return snap
