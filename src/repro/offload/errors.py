"""Typed failures of the offload-backend layer.

This module is intentionally dependency-free so that low-level device
code (e.g. :mod:`repro.qat.rings`) can re-export the canonical
exception types without creating an import cycle with the engine.
"""

from __future__ import annotations

__all__ = ["SubmitError", "RingFull", "OffloadTimeout"]


class SubmitError(RuntimeError):
    """A submission could not be accepted by the offload backend."""


class RingFull(SubmitError):
    """Submission failed because the hardware request ring (or the
    backend's equivalent admission window) is full.

    This is the single canonical ring-full exception type: the engine
    layer (``repro.engine.qat_engine``) and the device model
    (``repro.qat.rings``) both re-export it for backward compatibility.
    """


class OffloadTimeout(RuntimeError):
    """An offloaded crypto op could not be completed by the accelerator
    within its deadline / retry budget."""
