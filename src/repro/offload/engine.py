"""Backend-agnostic asynchronous offload engine.

This is the framework half of QTLS (paper sections 3.2, 4.3) factored
away from the QAT device model: the engine owns the in-flight table,
per-request deadlines, bounded submit retries with exponential
backoff, per-lane circuit breakers, software failover and
stale-response filtering, and drives any accelerator that implements
:class:`~repro.offload.backend.OffloadBackend`.

Two execution modes:

- **straight (blocking)** — :meth:`AsyncOffloadEngine.execute_blocking`:
  submit, then hold the worker's core until the response arrives
  (busy-looping on completions). This is the QAT+S configuration and
  exhibits exactly the offload-I/O blocking the paper diagnoses
  (section 2.4).
- **async** — :meth:`AsyncOffloadEngine.submit_async` +
  :meth:`AsyncOffloadEngine.poll_and_dispatch`: submit with a
  registered response cookie and return immediately; a polling scheme
  later retrieves responses and the engine resumes the paused offload
  jobs through their wait-ctx callbacks / notification FDs.

Submission batching (``batch_size > 1``): instead of one
doorbell/RPC per op, ``submit_async`` parks ops in a coalescing queue
and flushes up to ``batch_size`` of them in a single
``submit_batch`` backend call, amortizing the per-submit cost
(``backend.submit_cpu_cost`` grows sub-linearly in the batch size).
Flush triggers, in order of precedence:

1. the queue reaches ``batch_size`` ops (inside ``submit_async``);
2. a polling operation finds the head of the queue due;
3. a dedicated flush timer fires ``batch_timeout`` after the oldest
   queued op was enqueued — so latency-sensitive handshakes never
   stall behind an under-filled batch.

The flush path only ever *submits*; queued ops that can no longer
reach the backend (retry budget spent, deadline passed, every lane's
breaker open) are failed over to the software path by the timer and by
:meth:`check_timeouts` — never synchronously inside ``submit_async``,
where the caller has not yet armed the job's wait context.

With the default ``batch_size=1`` the engine behaves exactly like the
pre-batching QAT engine: one submit per op, False returned on
ring-full so the SSL layer can pause the job in WANT_RETRY.
"""

from __future__ import annotations

from collections import deque
from typing import (Any, Deque, Dict, Generator, Iterable, List, Optional,
                    Set, Tuple)

from ..core.costmodel import CostModel
from ..cpu.core import Core
from ..crypto.ops import CryptoOpKind
from ..net.epoll_sim import NOTIFY_FD_WRITE_COST
from ..obs.span import SpanStatus
from ..tls.actions import CryptoCall
from .backend import OffloadBackend, OpSpec
from .errors import OffloadTimeout
from .health import CircuitBreaker, PendingOp
from .inflight import InflightCounters
from .scheduler import ClassScheduler

__all__ = ["AsyncOffloadEngine", "ALGORITHM_GROUPS",
           "backoff_jitter_fraction"]

_MASK64 = (1 << 64) - 1


def backoff_jitter_fraction(seed: int, attempts: int) -> float:
    """Deterministic jitter in ``[0, 1)``: a splitmix64-style hash of
    ``(seed, attempts)``. Pure — no RNG state is consumed, so replays
    stay bit-for-bit while engines seeded differently desynchronize
    their retry instants."""
    x = (seed + attempts * 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    x ^= x >> 31
    return (x >> 11) / float(1 << 53)

#: ``default_algorithm`` groups accepted by the ssl_engine framework
#: (appendix A.7): which op kinds each group enables for offload.
ALGORITHM_GROUPS = {
    "RSA": {CryptoOpKind.RSA_PRIV, CryptoOpKind.RSA_PUB},
    "EC": {CryptoOpKind.ECDSA_SIGN, CryptoOpKind.ECDSA_VERIFY,
           CryptoOpKind.ECDH_KEYGEN, CryptoOpKind.ECDH_COMPUTE},
    "DH": set(),
    "PKEY_CRYPTO": {CryptoOpKind.PRF},
    "CIPHER": {CryptoOpKind.RECORD_CIPHER},
}


class _QueuedOp:
    """One op parked in the coalescing queue, waiting for a flush."""

    __slots__ = ("call", "job", "enqueued_at", "deadline", "attempts",
                 "seq", "conn")

    def __init__(self, call: CryptoCall, job: Any, enqueued_at: float,
                 deadline: float) -> None:
        self.call = call
        self.job = job
        self.enqueued_at = enqueued_at
        self.deadline = deadline
        self.attempts = 0
        self.seq = -1  # global arrival order, stamped by the scheduler
        self.conn = getattr(job, "conn_id", None)


class AsyncOffloadEngine:
    """Per-worker offload engine bound to one accelerator backend.

    The backend exposes one or more *lanes* (QAT crypto instances,
    remote connections); submission round-robins across lanes whose
    breakers admit traffic, polling drains all of them fairly.
    """

    supports_async = True

    def __init__(self, backend: OffloadBackend,
                 core: Core, cost_model: CostModel,
                 algorithms: Iterable[str] = ("RSA", "EC", "PKEY_CRYPTO",
                                              "CIPHER"),
                 busy_poll_slice: float = 1.5e-6,
                 request_deadline: float = 25e-3,
                 submit_max_retries: int = 32,
                 breaker_failure_threshold: int = 5,
                 breaker_reset_timeout: float = 10e-3,
                 software_fallback: bool = True,
                 batch_size: int = 1,
                 batch_timeout: float = 50e-6,
                 admission_limit: Optional[int] = None,
                 sched_policy: str = "fifo",
                 sched_weights: Optional[Dict[str, int]] = None,
                 conn_budget: Optional[int] = None,
                 backoff_jitter_seed: Optional[int] = None) -> None:
        if request_deadline <= 0:
            raise ValueError("request deadline must be positive")
        if submit_max_retries < 1:
            raise ValueError("need at least one submit attempt")
        if batch_size < 1:
            raise ValueError("batch size must be >= 1")
        if batch_timeout <= 0:
            raise ValueError("batch timeout must be positive")
        if admission_limit is not None and admission_limit < 1:
            raise ValueError("admission limit must be >= 1")
        self.backend = backend
        self._rr = 0
        self.core = core
        self.cost_model = cost_model
        self.busy_poll_slice = busy_poll_slice
        self.request_deadline = request_deadline
        self.submit_max_retries = submit_max_retries
        self.software_fallback = software_fallback
        self.batch_size = batch_size
        self.batch_timeout = batch_timeout
        #: None = no jitter (bit-for-bit the historical backoff). Set
        #: per worker (from its RNG stream) so simultaneous ring-full
        #: rejections across workers retry at different instants.
        self.backoff_jitter_seed = backoff_jitter_seed
        self.breakers: List[CircuitBreaker] = [
            CircuitBreaker(lambda: self.core.sim.now,
                           failure_threshold=breaker_failure_threshold,
                           reset_timeout=breaker_reset_timeout)
            for _ in range(backend.lanes)
        ]
        #: In-flight table: every accepted async request and its
        #: deadline. The sole source of truth for response ownership —
        #: completions without an entry are stale (already timed out
        #: and failed over) and must be dropped, not delivered twice.
        self._pending: Dict[Any, PendingOp] = {}
        #: Coalescing queue (batched mode only): accepted by the
        #: engine, not yet submitted to the backend. Counted in
        #: ``inflight`` from enqueue so the heuristic poller sees them.
        self._batch: Deque[_QueuedOp] = deque()
        self._flushing = False
        self._flush_timer_active = False
        #: Admission control (``admission_limit`` set): ops accepted by
        #: the engine while ``inflight`` is at the cap. Queued on the
        #: class-aware scheduler's per-class lanes — overload degrades
        #: into bounded queueing instead of ring-full retry storms. NOT
        #: counted in ``inflight`` (they are not on the accelerator and
        #: must not block their own admission). With the default
        #: ``fifo`` policy the lanes drain in global arrival order —
        #: bit-for-bit the historical single FIFO.
        self.admission_limit = admission_limit
        self.sched_policy = sched_policy
        self.conn_budget = conn_budget
        self.scheduler = ClassScheduler(policy=sched_policy,
                                        weights=sched_weights,
                                        conn_budget=conn_budget)
        self.admission_enqueued = 0
        self.admission_admitted = 0
        self.admission_peak = 0
        self.inflight = InflightCounters()
        #: Lifetime accept/retire ledger (monotone; `inflight` is the
        #: running difference). Read by repro.testing invariants to
        #: prove exactly-once retirement; never consulted on hot paths.
        self.ledger_accepted = 0
        self.ledger_retired = 0
        self._enabled_kinds: Set[CryptoOpKind] = set()
        for group in algorithms:
            try:
                self._enabled_kinds |= ALGORITHM_GROUPS[group]
            except KeyError:
                raise ValueError(f"unknown algorithm group {group!r}") \
                    from None
        self.ops_offloaded = 0
        self.ops_software = 0
        self.responses_dispatched = 0
        # Degradation counters.
        self.ops_fallback = 0
        self.op_timeouts = 0
        self.responses_stale = 0
        self.responses_corrupted = 0
        # Lifecycle counters (worker drain / crash teardown).
        self.ops_drained = 0
        self.ops_aborted = 0
        # Batching stats (stub_status).
        self.batches_submitted = 0
        self.batch_ops = 0
        #: Rejected submissions this engine attempted (ring full /
        #: window exhausted). Engine-local: with pooled backends the
        #: lanes are shared between workers, so summing lane counters
        #: would double-count other workers' rejections.
        self.submit_rejections = 0
        # Cycle accounting (CPU seconds) for the utilization analyses.
        self.software_crypto_time = 0.0
        self.blocking_wait_time = 0.0
        self.submit_time = 0.0
        self.poll_time = 0.0

    # -- engine command (paper section 4.3) ---------------------------------

    def get_num_requests_in_flight(self) -> int:
        """The new engine command exposing Rtotal to the application."""
        return self.inflight.total

    def offloads(self, call: CryptoCall) -> bool:
        return (call.op.qat_offloadable
                and call.op.kind in self._enabled_kinds)

    @property
    def open_breakers(self) -> int:
        return sum(1 for b in self.breakers if b.is_open)

    @property
    def submit_failures(self) -> int:
        """Rejected submissions this engine attempted."""
        return self.submit_rejections

    @property
    def mean_batch_size(self) -> float:
        return (self.batch_ops / self.batches_submitted
                if self.batches_submitted else 0.0)

    @property
    def queueing_enabled(self) -> bool:
        """Does the engine park ops in the admission lanes instead of
        bouncing them back to the caller (admission cap, non-default
        arbitration, or per-connection budgets)?"""
        return (self.admission_limit is not None
                or self.sched_policy != "fifo"
                or self.conn_budget is not None)

    @property
    def sched_active(self) -> bool:
        """Non-default scheduling: anything beyond the plain global
        FIFO (used to gate lane reporting so default configs stay
        bit-for-bit identical to the pre-scheduler engine)."""
        return self.sched_policy != "fifo" or self.conn_budget is not None

    # -- in-flight accounting (single source of truth) -----------------------

    def _op_accepted(self, call: CryptoCall, job: object = None) -> None:
        """An op entered the accelerator path (in flight or coalescing
        queue). The ONLY place the per-category Rasym/Rcipher/Rprf
        counters — and the per-connection budget — are charged; the
        poller, stub_status and the scheduler all read these counters
        rather than keeping shadow accounting."""
        self.inflight.increment(call.op.category)
        self.ledger_accepted += 1
        self.scheduler.conn_acquire(getattr(job, "conn_id", None))

    def _op_retired(self, call: CryptoCall, job: object = None) -> None:
        """The op left the accelerator path (delivered, expired,
        drained or aborted): uncharge the same counters."""
        self.inflight.decrement(call.op.category)
        self.ledger_retired += 1
        self.scheduler.conn_release(getattr(job, "conn_id", None))

    def _pick_lane(self) -> Optional[int]:
        """Rotate to the next lane the backend leases to this engine
        and whose breaker admits traffic."""
        n = self.backend.lanes
        for i in range(n):
            idx = (self._rr + i) % n
            if self.backend.admits(idx) and self.breakers[idx].allow():
                self._rr = (idx + 1) % n
                return idx
        return None

    def _try_submit(self, op, compute, cookie=None
                    ) -> Optional[Tuple[Any, int]]:
        """Single-op submission, round-robin across lanes; tries every
        leased lane whose breaker admits traffic before reporting
        ring-full. Returns ``(token, lane)`` or None."""
        n = self.backend.lanes
        for i in range(n):
            idx = (self._rr + i) % n
            if not self.backend.admits(idx):
                continue
            breaker = self.breakers[idx]
            if not breaker.allow():
                continue
            tokens = self.backend.submit_batch(
                [OpSpec(op, compute, cookie=cookie)], idx)
            if tokens[0] is not None:
                self._rr = (idx + 1) % n
                self.batches_submitted += 1
                self.batch_ops += 1
                return tokens[0], idx
            self.submit_rejections += 1
            # Ring-full is backpressure, not ill health: release the
            # half-open probe slot (if one was claimed) unconsumed.
            breaker.cancel_probe()
        return None

    def _any_lane_available(self) -> bool:
        """Non-mutating: could a submission be admitted right now (or
        as soon as ring space frees up)?"""
        return any(b.available() and self.backend.admits(i)
                   for i, b in enumerate(self.breakers))

    def submit_backoff(self, attempts: int) -> float:
        """Exponential backoff before retry number ``attempts + 1``,
        jittered into ``[base/2, base)`` when a jitter seed is set so
        workers that bounced off the same full ring in the same pass
        don't re-collide on every retry."""
        base = min(self.busy_poll_slice * (2 ** max(attempts - 1, 0)),
                   128 * self.busy_poll_slice)
        if self.backoff_jitter_seed is None:
            return base
        frac = backoff_jitter_fraction(self.backoff_jitter_seed, attempts)
        return base * (0.5 + 0.5 * frac)

    # -- software fallback ----------------------------------------------------

    def _execute_software(self, call: CryptoCall, owner: object
                          ) -> Generator:
        cost = self.cost_model.software_cost(call.op)
        yield from self.core.consume(cost, owner=owner)
        self.ops_software += 1
        self.software_crypto_time += cost
        return call.compute()

    def execute_fallback(self, call: CryptoCall, owner: object
                         ) -> Generator:
        """Complete ``call`` on the CPU because the accelerator path is
        degraded (exhausted submit retries / open breakers)."""
        self.ops_fallback += 1
        return (yield from self._execute_software(call, owner))

    def _offload_failed(self, call: CryptoCall, owner: object,
                        exc: BaseException,
                        lane: Optional[int] = None) -> Generator:
        """Offload attempt gave up: degrade to software, or raise the
        typed error when fallback is disabled."""
        if not self.software_fallback:
            raise exc
        self.ops_fallback += 1
        if lane is not None:
            self.backend.lane_stats(lane).fallback_ops += 1
        return (yield from self._execute_software(call, owner))

    # -- straight (blocking) offload -------------------------------------------

    def execute_blocking(self, call: CryptoCall, owner: object
                         ) -> Generator:
        """QAT+S: submit, then spin on the worker's core until the
        response lands. The core does no other work meanwhile — the
        blocking the paper's Figure 3 illustrates. Batching never
        applies here: there is exactly one op outstanding per worker.

        Submit retries are bounded (exponential backoff up to
        ``submit_max_retries``) and the response wait is bounded by
        ``request_deadline``; either bound exhausted degrades the op to
        the software path (or raises :class:`OffloadTimeout`)."""
        if not self.offloads(call):
            return (yield from self._execute_software(call, owner))
        sim = self.core.sim
        obs = getattr(sim, "obs", None)
        trace = (obs.begin(call.op, -1, -1, "blocking", sim.now)
                 if obs is not None and obs.enabled else None)
        submit_cost = self.backend.submit_cpu_cost(1)
        yield from self.core.consume(submit_cost, owner=owner)
        self.submit_time += submit_cost
        submitted = self._try_submit(call.op, call.compute)
        attempts = 1
        while submitted is None:
            if (attempts >= self.submit_max_retries
                    or not self._any_lane_available()):
                if trace is not None:
                    obs.finish(trace, sim.now, SpanStatus.TIMEOUT)
                return (yield from self._offload_failed(
                    call, owner,
                    OffloadTimeout(
                        f"submit of {call.op.kind.name} still rejected "
                        f"after {attempts} attempts")))
            delay = self.submit_backoff(attempts)
            yield from self.core.consume(delay, owner=owner)
            self.blocking_wait_time += delay
            attempts += 1
            submitted = self._try_submit(call.op, call.compute)
        token, lane = submitted
        if trace is not None:
            trace.accept(sim.now, self.backend.name, lane,
                         attempts=attempts - 1)
        self._op_accepted(call)
        self.ops_offloaded += 1
        wait_started = self.core.sim.now
        deadline = wait_started + self.request_deadline
        resp = None
        while resp is None:
            completions = self.backend.poll_completions()
            yield from self.core.consume(
                self.backend.poll_cpu_cost(len(completions)), owner=owner)
            for candidate in completions:
                if candidate.token is token:
                    resp = candidate
                else:
                    # A late response to an op that already timed out.
                    self.responses_stale += 1
            if resp is not None:
                break
            if self.core.sim.now >= deadline:
                self.blocking_wait_time += self.core.sim.now - wait_started
                self._op_retired(call)
                self.op_timeouts += 1
                self.backend.lane_stats(lane).op_timeouts += 1
                self.breakers[lane].record_failure()
                if trace is not None:
                    obs.finish(trace, sim.now, SpanStatus.TIMEOUT)
                return (yield from self._offload_failed(
                    call, owner,
                    OffloadTimeout(
                        f"{call.op.kind.name} response missed its "
                        f"{self.request_deadline * 1e3:.1f}ms deadline"),
                    lane=lane))
            yield from self.core.consume(self.busy_poll_slice, owner=owner)
        self.blocking_wait_time += self.core.sim.now - wait_started
        self._op_retired(call)
        if trace is not None:
            trace.absorb_device_marks(resp.device_marks)
            trace.mark("delivered", sim.now)
        if resp.transport_error:
            self.responses_corrupted += 1
            self.breakers[lane].record_failure()
            if trace is not None:
                obs.finish(trace, sim.now, SpanStatus.FAILOVER)
            return (yield from self._offload_failed(call, owner, resp.error,
                                                    lane=lane))
        self.breakers[lane].record_success()
        if resp.error is not None:
            if trace is not None:
                obs.finish(trace, sim.now, SpanStatus.ERROR)
            raise resp.error
        if trace is not None:
            obs.finish(trace, sim.now)
        return resp.result

    # -- asynchronous offload ----------------------------------------------------

    def _must_queue(self, job: object) -> bool:
        """Should this submission park in the admission lanes rather
        than go straight to the backend? True at the admission cap,
        behind already-queued ops (so the arbitration policy — global
        FIFO by default — stays authoritative over ordering), or when
        the connection is at its in-flight budget."""
        s = self.scheduler
        if not s.conn_allows(getattr(job, "conn_id", None)):
            return True
        if self.admission_limit is not None and (
                s.queued or self.inflight.total >= self.admission_limit):
            return True
        return self.sched_policy != "fifo" and bool(s.queued)

    def submit_async(self, call: CryptoCall, job: object, owner: object
                     ) -> Generator:
        """Submit without waiting; the response resumes ``job`` later.

        Unbatched (``batch_size == 1``): returns True on success, False
        when the request ring is full (the offload job must pause in
        retry state — section 3.2). Accepted requests enter the
        in-flight table with a deadline; failed submissions bump
        ``job.submit_attempts`` so the caller can bound its retry loop
        via :meth:`should_retry_submit`.

        Batched (``batch_size > 1``): the op is parked in the
        coalescing queue and always accepted (True); ring backpressure
        is handled inside the flush machinery, and ops that never
        reach the backend fail over to software from the flush timer.
        """
        if not self.offloads(call):
            raise ValueError(
                f"submit_async on non-offloadable op {call.op.kind}")
        if self._must_queue(job):
            # At the concurrency cap, behind ops already queued (the
            # arbitration order is part of the contract), or the
            # connection is at its in-flight budget: bounded queueing.
            return self._admission_enqueue(call, job)
        if self.batch_size > 1:
            return (yield from self._submit_batched(call, job, owner))
        submit_cost = self.backend.submit_cpu_cost(1)
        yield from self.core.consume(submit_cost, owner=owner)
        self.submit_time += submit_cost
        submitted = self._try_submit(call.op, call.compute, cookie=job)
        if submitted is None:
            if self.queueing_enabled:
                # Ring backpressure with queueing on: park the op
                # instead of bouncing the job into a WANT_RETRY storm.
                return self._admission_enqueue(call, job)
            job.submit_attempts = getattr(job, "submit_attempts", 0) + 1
            return False
        token, lane = submitted
        now = self.core.sim.now
        trace = getattr(job, "trace", None)
        if trace is not None:
            trace.accept(now, self.backend.name, lane,
                         attempts=getattr(job, "submit_attempts", 0))
        self._pending[token] = PendingOp(
            call=call, job=job, lane=lane, submitted_at=now,
            deadline=now + self.request_deadline)
        job.submit_attempts = 0
        self._op_accepted(call, job)
        self.ops_offloaded += 1
        return True

    def _submit_batched(self, call: CryptoCall, job: object, owner: object
                        ) -> Generator:
        """Park the op in the coalescing queue; flush when full."""
        now = self.core.sim.now
        # Pause the job before any flush could race a completion in:
        # the SSL layer marks it paused again after we return (a
        # no-op), but a poll interleaved with the flush below must
        # already find the job in a deliverable state.
        mark_paused = getattr(job, "mark_paused", None)
        if mark_paused is not None:
            mark_paused(call)
        trace = getattr(job, "trace", None)
        if trace is not None:
            trace.mark("enqueued", now)
        self._batch.append(_QueuedOp(call, job, now,
                                     now + self.request_deadline))
        self._op_accepted(call, job)
        job.submit_attempts = 0
        if len(self._batch) >= self.batch_size:
            yield from self._flush_batch(owner)
        self._arm_flush_timer()
        return True

    def _flush_batch(self, owner: object) -> Generator:
        """Submit queued ops, one backend call per chunk of up to
        ``batch_size``. Submit-only: never delivers failures (callers
        may not have armed the jobs' wait contexts yet). Stops on
        backpressure; re-entrant calls (poll interleaved with a flush
        already consuming core time) are no-ops."""
        if self._flushing:
            return
        self._flushing = True
        try:
            while self._batch:
                lane = self._pick_lane()
                if lane is None:
                    return
                # Flow-control the flush by the lane's advertised
                # headroom, per op category (QAT rings are per-
                # category): overshooting a near-full ring burns
                # submit CPU on ops that bounce and parks the whole
                # queue behind the retry backoff. Skipping an op whose
                # ring is full is safe — a job has at most one op in
                # flight, so cross-category reordering cannot reorder
                # any job's own ops.
                room: Dict[object, int] = {}
                take: List[_QueuedOp] = []
                for q in self.scheduler.flush_order(self._batch):
                    cat = q.call.op.category
                    if cat not in room:
                        room[cat] = self.backend.capacity_hint(lane, cat)
                    if room[cat] <= 0:
                        continue
                    room[cat] -= 1
                    take.append(q)
                    if len(take) == self.batch_size:
                        break
                if not take:
                    self.breakers[lane].cancel_probe()
                    return
                cost = self.backend.submit_cpu_cost(len(take))
                self.submit_time += cost
                yield from self.core.consume(cost, owner=owner)
                # Re-filter after the yield: check_timeouts may have
                # expired queued ops while we consumed core time.
                chunk = [q for q in take if q in self._batch]
                if not chunk:
                    self.breakers[lane].cancel_probe()
                    return
                specs = [OpSpec(q.call.op, q.call.compute, cookie=q.job)
                         for q in chunk]
                tokens = self.backend.submit_batch(specs, lane)
                now = self.core.sim.now
                accepted = 0
                for q, token in zip(chunk, tokens):
                    if token is None:
                        q.attempts += 1
                        self.submit_rejections += 1
                        continue
                    self._batch.remove(q)
                    trace = getattr(q.job, "trace", None)
                    if trace is not None:
                        trace.accept(now, self.backend.name, lane,
                                     attempts=q.attempts)
                    self._pending[token] = PendingOp(
                        call=q.call, job=q.job, lane=lane,
                        submitted_at=now, deadline=q.deadline)
                    self.ops_offloaded += 1
                    accepted += 1
                if accepted:
                    self.batches_submitted += 1
                    self.batch_ops += accepted
                else:
                    self.breakers[lane].cancel_probe()
                if accepted < len(chunk):
                    return  # backpressure: retry the rest later
        finally:
            self._flushing = False

    def _arm_flush_timer(self) -> None:
        """Ensure a flush timer process is running while ops are
        queued. One timer per engine; it exits when the queue drains
        and is re-armed on the next enqueue."""
        if self._flush_timer_active or not self._batch:
            return
        self._flush_timer_active = True
        self.core.sim.process(self._flush_timer_loop(),
                              name="offload-batch-flush")

    def _flush_timer_loop(self) -> Generator:
        sim = self.core.sim
        try:
            while self._batch:
                head = self._batch[0]
                due = min(head.enqueued_at + self.batch_timeout,
                          head.deadline)
                if due > sim.now:
                    yield sim.timeout(due - sim.now)
                    continue
                yield from self._flush_batch(owner=self)
                yield from self._expire_queued(owner=self)
                if self._batch:
                    # The queue could not fully drain (ring pressure /
                    # open breakers). The poll path flushes into freed
                    # capacity as soon as completions drain, so the
                    # timer only needs a coarse safety-net cadence.
                    attempts = max(q.attempts for q in self._batch)
                    yield sim.timeout(max(
                        self.submit_backoff(max(attempts, 1)),
                        self.batch_timeout / 2))
        finally:
            self._flush_timer_active = False

    def _expire_queued(self, owner: object) -> Generator:
        """Fail over queued ops that can no longer reach the backend:
        retry budget spent, deadline passed, or no lane admitting
        traffic. Ops younger than ``batch_timeout`` are left alone —
        their submitter may still be arming the wait context, and the
        next timer round will revisit them. Returns jobs resumed."""
        now = self.core.sim.now
        jobs: List[object] = []
        no_lane = not self._any_lane_available()
        for q in list(self._batch):
            if q not in self._batch:
                # Submitted by a flush that interleaved with a yield
                # in a previous iteration of this loop.
                continue
            if now - q.enqueued_at < self.batch_timeout:
                continue
            timed_out = now >= q.deadline
            exhausted = q.attempts >= self.submit_max_retries
            if not (timed_out or exhausted or no_lane):
                continue
            self._batch.remove(q)
            self._op_retired(q.call, q.job)
            if timed_out:
                self.op_timeouts += 1
            job = q.job
            state = getattr(job, "state", None)
            if state is not None and state.name != "PAUSED":
                continue
            exc = OffloadTimeout(
                f"{q.call.op.kind.name} never reached the accelerator "
                f"after {q.attempts} submit attempts")
            yield from self._deliver_failure(
                PendingOp(call=q.call, job=job, lane=-1,
                          submitted_at=q.enqueued_at, deadline=q.deadline),
                owner, exc)
            jobs.append(job)
        return jobs

    # -- admission control ------------------------------------------------------

    @property
    def admission_queued(self) -> int:
        """Ops waiting in the admission lanes (not yet offloaded)."""
        return self.scheduler.queued

    def _admission_capacity(self) -> bool:
        """Is there in-flight headroom to admit another queued op?"""
        return (self.admission_limit is None
                or self.inflight.total < self.admission_limit)

    def _admission_enqueue(self, call: CryptoCall, job: object) -> bool:
        """Park the op on its class lane; always accepted (the job
        pauses exactly as if the op were in flight)."""
        now = self.core.sim.now
        mark_paused = getattr(job, "mark_paused", None)
        if mark_paused is not None:
            mark_paused(call)
        trace = getattr(job, "trace", None)
        if trace is not None:
            trace.mark("enqueued", now)
        self.scheduler.push(_QueuedOp(call, job, now,
                                      now + self.request_deadline),
                            call.op.category)
        self.admission_enqueued += 1
        if self.scheduler.queued > self.admission_peak:
            self.admission_peak = self.scheduler.queued
        job.submit_attempts = 0
        self._sample_admission(now)
        return True

    def _note_admitted(self, q: _QueuedOp) -> None:
        """A queued op left the lanes for the accelerator path: feed
        the per-class queue-wait histogram."""
        self.admission_admitted += 1
        obs = getattr(self.core.sim, "obs", None)
        if obs is not None and obs.enabled:
            obs.latency_sample(
                self.backend.name,
                f"sched-wait.{q.call.op.category.sched_class}",
                self.core.sim.now - q.enqueued_at)

    def admit_queued(self, owner: object) -> Generator:
        """Admit queued ops into freed in-flight capacity, in the
        arbitration policy's order (global arrival order under the
        default ``fifo``), through the normal submit path (direct or
        coalescing). Stops on ring backpressure. Returns ops
        admitted."""
        admitted = 0
        s = self.scheduler
        while s.queued and self._admission_capacity():
            q = s.pop()
            if q is None:
                break  # every queued op is budget-blocked
            state = getattr(q.job, "state", None)
            if state is not None and state.name != "PAUSED":
                # Rescued/aborted while queued; nothing to submit.
                continue
            if self.batch_size > 1:
                self._batch.append(q)
                self._op_accepted(q.call, q.job)
                self._note_admitted(q)
                admitted += 1
                if len(self._batch) >= self.batch_size:
                    yield from self._flush_batch(owner)
                self._arm_flush_timer()
                continue
            # Unbatched: the pop above already removed the op, so the
            # expiry paths cannot fail it over while we consume core
            # time to submit it.
            submit_cost = self.backend.submit_cpu_cost(1)
            yield from self.core.consume(submit_cost, owner=owner)
            self.submit_time += submit_cost
            state = getattr(q.job, "state", None)
            if state is not None and state.name != "PAUSED":
                continue
            submitted = self._try_submit(q.call.op, q.call.compute,
                                         cookie=q.job)
            if submitted is None:
                q.attempts += 1
                s.push_front(q, q.call.op.category)
                break
            token, lane = submitted
            now = self.core.sim.now
            trace = getattr(q.job, "trace", None)
            if trace is not None:
                trace.accept(now, self.backend.name, lane,
                             attempts=q.attempts)
            self._pending[token] = PendingOp(
                call=q.call, job=q.job, lane=lane,
                submitted_at=now, deadline=q.deadline)
            self._op_accepted(q.call, q.job)
            self.ops_offloaded += 1
            self._note_admitted(q)
            admitted += 1
        if admitted:
            self._sample_admission(self.core.sim.now)
        return admitted

    def _expire_admission(self, owner: object) -> Generator:
        """Fail over admission-queued ops that can no longer make it:
        deadline passed or no lane admitting traffic. Same freshness
        guard as :meth:`_expire_queued` (the submitter may still be
        arming the job's wait context). Returns jobs resumed."""
        now = self.core.sim.now
        jobs: List[object] = []
        no_lane = not self._any_lane_available()
        for q in self.scheduler.items():
            if q not in self.scheduler:
                continue
            if now - q.enqueued_at < self.batch_timeout:
                continue
            timed_out = now >= q.deadline
            if not (timed_out or no_lane):
                continue
            self.scheduler.remove(q)
            self.scheduler.note_expired(q.call.op.category)
            if timed_out:
                self.op_timeouts += 1
            job = q.job
            state = getattr(job, "state", None)
            if state is not None and state.name != "PAUSED":
                continue
            exc = OffloadTimeout(
                f"{q.call.op.kind.name} expired in the admission queue "
                f"after {(now - q.enqueued_at) * 1e3:.1f}ms")
            yield from self._deliver_failure(
                PendingOp(call=q.call, job=job, lane=-1,
                          submitted_at=q.enqueued_at, deadline=q.deadline),
                owner, exc)
            jobs.append(job)
        if jobs:
            # Sample at the CURRENT time, not the entry snapshot: the
            # failover deliveries above yield core time, and another
            # engine sharing this core's timeline (a draining
            # generation next to its successor) may have sampled a
            # later instant during those yields.
            self._sample_admission(self.core.sim.now)
        return jobs

    def _sample_admission(self, now: float) -> None:
        obs = getattr(self.core.sim, "obs", None)
        if obs is None or not obs.enabled:
            return
        obs.util_sample(f"w{self.core.core_id}.admission", now,
                        self.scheduler.queued,
                        capacity=self.admission_limit or 0)
        if self.sched_active:
            # Per-lane depth timelines only under non-default
            # scheduling, so default-config trace exports stay
            # byte-identical to the pre-scheduler engine.
            for lane in self.scheduler.lanes:
                obs.util_sample(
                    f"w{self.core.core_id}.lane.{lane.name}",
                    now, lane.depth)

    @property
    def queued_batch_ops(self) -> int:
        """Ops sitting in the coalescing queue awaiting a flush."""
        return len(self._batch)

    def flush_batch(self, owner: object) -> Generator:
        """Flush the coalescing queue immediately, regardless of op
        age. The application calls this when it is about to stall —
        every active connection parked waiting on the accelerator —
        where holding ops back for a fuller batch would only idle the
        core (the timeliness constraint, section 3.3)."""
        if self._batch:
            yield from self._flush_batch(owner)
        return None

    def should_retry_submit(self, job: object) -> bool:
        """After a False :meth:`submit_async`: keep retrying (pause in
        WANT_RETRY), or give up and degrade to software? Gives up once
        the retry budget is spent or no lane can admit traffic."""
        if getattr(job, "submit_attempts", 0) >= self.submit_max_retries:
            return False
        return self._any_lane_available()

    def is_pending(self, job: object) -> bool:
        """Is an accepted request for ``job`` still in flight (or
        parked in the coalescing or admission queue)?"""
        return (any(p.job is job for p in self._pending.values())
                or any(q.job is job for q in self._batch)
                or any(q.job is job for q in self.scheduler.items()))

    # -- worker lifecycle (drain / crash) -----------------------------------

    @property
    def idle(self) -> bool:
        """No accepted op anywhere in the engine — in flight, in the
        coalescing queue, or awaiting admission. The drained condition
        the lifecycle layer waits on."""
        return not (self._pending or self._batch or self.scheduler.queued)

    def drain_queued(self, owner: object) -> Generator:
        """Worker drain: fail every queued-but-unsubmitted op over to
        software *now*, regardless of age. A draining worker stops
        feeding the accelerator, so an op parked in the coalescing or
        admission queue has nobody left to flush it and would hang its
        connection past the drain deadline. In-flight ops are left to
        complete normally. Returns the jobs resumed."""
        jobs: List[object] = []
        had_admission = bool(self.scheduler.queued)
        for source in ("batch", "admission"):
            items = (list(self._batch) if source == "batch"
                     else self.scheduler.items())
            for q in items:
                if source == "batch":
                    if q not in self._batch:
                        continue
                    self._batch.remove(q)
                    self._op_retired(q.call, q.job)
                else:
                    if q not in self.scheduler:
                        continue
                    self.scheduler.remove(q)
                self.ops_drained += 1
                job = q.job
                state = getattr(job, "state", None)
                if state is not None and state.name != "PAUSED":
                    continue
                exc = OffloadTimeout(
                    f"{q.call.op.kind.name} drained before reaching the "
                    "accelerator (worker shutting down)")
                yield from self._deliver_failure(
                    PendingOp(call=q.call, job=job, lane=-1,
                              submitted_at=q.enqueued_at,
                              deadline=q.deadline),
                    owner, exc)
                jobs.append(job)
        if had_admission:
            self._sample_admission(self.core.sim.now)
        return jobs

    def abort_all(self) -> int:
        """Worker crash: empty every engine table *synchronously* (the
        worker process is dead, nothing can consume its core). Jobs are
        not resumed — their connections died with the worker — but each
        op's open trace is closed ABORTED so nothing leaks from the
        in-flight table. Late accelerator completions for the aborted
        ops are dropped as stale (engine) or tombstoned (pool epoch).
        Returns the number of ops aborted."""
        sim = self.core.sim
        obs = getattr(sim, "obs", None)
        aborted = 0
        for token in list(self._pending):
            p = self._pending.pop(token)
            self._op_retired(p.call, p.job)
            self._abort_trace(p.job, obs, sim.now)
            aborted += 1
        while self._batch:
            q = self._batch.popleft()
            self._op_retired(q.call, q.job)
            self._abort_trace(q.job, obs, sim.now)
            aborted += 1
        for q in self.scheduler.items():
            self.scheduler.remove(q)
            self._abort_trace(q.job, obs, sim.now)
            aborted += 1
        self.ops_aborted += aborted
        return aborted

    @staticmethod
    def _abort_trace(job: object, obs: Any, now: float) -> None:
        trace = getattr(job, "trace", None)
        if trace is None:
            return
        # Detach before closing: the SSL teardown path also aborts the
        # job's trace and must find nothing left to close.
        job.trace = None
        if obs is not None and obs.enabled:
            obs.abort_open(trace, now)

    def poll_and_dispatch(self, owner: object,
                          max_responses: Optional[int] = None
                          ) -> Generator:
        """One polling operation: retrieve completions, settle them
        against the in-flight table, fire each job's registered
        notification (async-queue callback or notification FD), then
        flush the coalescing queue if due — into the capacity the
        drain just freed.

        Stale responses (no table entry — the op already timed out and
        failed over) are dropped. Transport-corrupted responses degrade
        to the software path and still resume the job with a good
        result.

        Returns the list of jobs whose responses were delivered.
        """
        completions = self.backend.poll_completions(max_responses)
        poll_cost = self.backend.poll_cpu_cost(len(completions))
        self.poll_time += poll_cost
        yield from self.core.consume(poll_cost, owner=owner)
        jobs: List[object] = []
        for resp in completions:
            pending = self._pending.pop(resp.token, None)
            if pending is None:
                self.responses_stale += 1
                continue
            self._op_retired(pending.call, pending.job)
            job = pending.job
            trace = getattr(job, "trace", None)
            if trace is not None and trace.closed:
                trace = None  # aborted at the TLS layer; don't restamp
            if trace is not None:
                trace.absorb_device_marks(resp.device_marks)
            breaker = self.breakers[pending.lane]
            if resp.transport_error:
                self.responses_corrupted += 1
                breaker.record_failure()
                yield from self._deliver_failure(pending, owner, resp.error)
            else:
                breaker.record_success()
                if trace is not None:
                    trace.mark("delivered", self.core.sim.now)
                    if resp.error is not None:
                        trace.status = SpanStatus.ERROR
                job.deliver(resp.result, resp.error)
                self.responses_dispatched += 1
                yield from self._notify_job(job, owner)
            jobs.append(job)
        # Flush due coalescing ops AFTER draining completions: the
        # drain just freed ring slots, so the flush lands in capacity
        # the backend actually has.
        if self._batch:
            head_age = self.core.sim.now - self._batch[0].enqueued_at
            if (len(self._batch) >= self.batch_size
                    or head_age >= self.batch_timeout):
                yield from self._flush_batch(owner)
        # Admit queued ops into the in-flight capacity the drain freed.
        if self.scheduler.queued:
            yield from self.admit_queued(owner)
        return jobs

    def check_timeouts(self, owner: object) -> Generator:
        """Expire in-flight requests past their deadline: count the
        timeout against the owning lane's breaker and resume each
        affected job through the software fallback (or deliver an
        :class:`OffloadTimeout`). Queued-but-never-submitted ops are
        expired through the same rules as the flush timer. Returns the
        list of jobs resumed."""
        now = self.core.sim.now
        expired = [token for token, p in self._pending.items()
                   if now >= p.deadline]
        jobs: List[object] = []
        for token in expired:
            # Re-check: while this generator yields core time, the
            # event loop can poll and settle entries from our snapshot.
            pending = self._pending.pop(token, None)
            if pending is None:
                continue
            self._op_retired(pending.call, pending.job)
            self.op_timeouts += 1
            self.backend.lane_stats(pending.lane).op_timeouts += 1
            self.breakers[pending.lane].record_failure()
            job = pending.job
            state = getattr(job, "state", None)
            if state is not None and state.name != "PAUSED":
                # Job already rescued/aborted elsewhere; the late
                # response (if any) will be dropped as stale.
                continue
            exc = OffloadTimeout(
                f"{pending.call.op.kind.name} response missed its "
                f"{self.request_deadline * 1e3:.1f}ms deadline")
            yield from self._deliver_failure(pending, owner, exc)
            jobs.append(job)
        if self._batch:
            jobs.extend((yield from self._expire_queued(owner)))
        if self.scheduler.queued:
            jobs.extend((yield from self._expire_admission(owner)))
            if self.scheduler.queued:
                yield from self.admit_queued(owner)
        return jobs

    def fail_over_job(self, job: object, owner: object) -> Generator:
        """Watchdog rescue for a paused job with *no* in-flight request
        (e.g. its ring entry was wiped by an endpoint reset before the
        engine ever saw a response): complete its pending call on the
        CPU and resume it."""
        call = getattr(job, "pending_call", None)
        if call is None or getattr(job, "state", None) is None \
                or job.state.name != "PAUSED":
            return False
        # Drop a queued entry for this job, if any, so a later flush
        # cannot submit (and then deliver) the same op twice.
        for q in list(self._batch):
            if q.job is job:
                self._batch.remove(q)
                self._op_retired(q.call, q.job)
        for q in self.scheduler.items():
            if q.job is job:
                self.scheduler.remove(q)
        pending = PendingOp(call=call, job=job, lane=-1,
                            submitted_at=self.core.sim.now,
                            deadline=self.core.sim.now)
        exc = OffloadTimeout(
            f"{call.op.kind.name} lost in flight (no pending entry)")
        yield from self._deliver_failure(pending, owner, exc)
        return True

    # -- delivery helpers -------------------------------------------------------

    def _deliver_failure(self, pending: PendingOp, owner: object,
                         exc: BaseException) -> Generator:
        """Resume a paused job whose offload failed: software-fallback
        result when enabled, the error itself otherwise."""
        job = pending.job
        trace = getattr(job, "trace", None)
        # A job aborted at the TLS layer (connection torn down while
        # its op was still in flight) closes its trace immediately;
        # this late retirement must not restamp it — a "delivered"
        # mark after ``finished`` breaks span well-formedness.
        if trace is not None and trace.closed:
            trace = None
        if trace is not None:
            # Timeouts (deadline missed, lost op, never-submitted) and
            # transport failovers are distinct terminal statuses; the
            # SSL driver closes the trace when the job resumes.
            trace.status = (SpanStatus.TIMEOUT
                            if isinstance(exc, OffloadTimeout)
                            else SpanStatus.FAILOVER)
        if self.software_fallback:
            self.ops_fallback += 1
            if pending.lane >= 0:
                self.backend.lane_stats(pending.lane).fallback_ops += 1
            result = yield from self._execute_software(pending.call, owner)
            job.deliver(result, None)
        else:
            job.deliver(None, exc)
        # Re-check: the software-fallback execution yields core time,
        # and a teardown interrupt in that window closes the trace.
        if trace is not None and not trace.closed:
            trace.mark("delivered", self.core.sim.now)
        yield from self._notify_job(job, owner)

    def _notify_job(self, job: object, owner: object) -> Generator:
        """The response callback (paper section 4.4): kernel-bypass
        callback wins if set; otherwise the FD-based path."""
        callback, arg = job.wait_ctx.get_callback()
        if callback is not None:
            yield from self.core.consume(
                self.cost_model.async_queue_cost, owner=owner)
            callback(arg)
        elif job.wait_ctx.notify_fd is not None:
            yield from self.core.kernel_crossing(
                extra=NOTIFY_FD_WRITE_COST)
            job.wait_ctx.notify_fd.write_event()
