"""QAT adapter for the offload-backend seam.

Wraps the existing :mod:`repro.qat` userspace drivers — one lane per
crypto instance — behind :class:`~repro.offload.backend.OffloadBackend`.
All ring/instance manipulation lives here; the engine above never
touches the device model directly.

Batched submission maps to coalesced ring writes: descriptors for one
batch are written back-to-back and the doorbell/MMIO cost is paid once
(``QatUserspaceDriver.submit_cpu_cost``). Polling drains instances
round-robin from a rotating start index, so a busy instance 0 cannot
monopolize a bounded ``max_responses`` budget and starve the others.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from ..qat.driver import QatUserspaceDriver
from ..qat.faults import QatHardwareError
from ..qat.request import QatResponse
from .backend import Completion, OffloadBackend, OpSpec

__all__ = ["QatBackend", "completion_from_response"]


def completion_from_response(resp: QatResponse) -> Completion:
    """Wrap a driver-level :class:`~repro.qat.request.QatResponse` in
    the backend-seam :class:`Completion` (shared by :class:`QatBackend`
    and :class:`~repro.offload.pool.PooledQatBackend`)."""
    return Completion(
        token=resp.request, op=resp.request.op,
        result=resp.result, error=resp.error,
        transport_error=isinstance(resp.error, QatHardwareError),
        device_marks={
            "dequeued": resp.request.dequeued_at,
            "serviced": resp.request.serviced_at,
            "landed": resp.completed_at,
        })


class QatBackend(OffloadBackend):
    """One lane per QAT crypto instance (userspace driver)."""

    name = "qat"

    def __init__(self, drivers: Sequence[QatUserspaceDriver]) -> None:
        self.drivers: List[QatUserspaceDriver] = list(drivers)
        if not self.drivers:
            raise ValueError("need at least one driver")
        self._poll_rr = 0

    @property
    def lanes(self) -> int:
        return len(self.drivers)

    def submit_batch(self, specs: List[OpSpec], lane: int) -> List[Any]:
        drv = self.drivers[lane]
        return [drv.try_submit(spec.op, spec.compute, cookie=spec.cookie)
                for spec in specs]

    def poll_completions(self, max_responses: Optional[int] = None
                         ) -> List[Completion]:
        out: List[Completion] = []
        n = len(self.drivers)
        start = self._poll_rr
        self._poll_rr = (self._poll_rr + 1) % n
        for i in range(n):
            budget = (None if max_responses is None
                      else max_responses - len(out))
            if budget == 0:
                break
            drv = self.drivers[(start + i) % n]
            for resp in drv.poll(budget):
                out.append(completion_from_response(resp))
        return out

    def submit_cpu_cost(self, n_ops: int) -> float:
        return self.drivers[0].submit_cpu_cost(n_ops)

    def poll_cpu_cost(self, n_responses: int) -> float:
        return self.drivers[0].poll_cpu_cost(n_responses)

    def capacity_hint(self, lane: Optional[int] = None,
                      category: Optional[Any] = None) -> int:
        drivers = (self.drivers if lane is None else [self.drivers[lane]])
        return sum(max(0, ring.capacity - ring.in_flight)
                   for drv in drivers
                   for key, ring in drv.instance.rings.items()
                   if category is None or key == category.value)

    def lane_stats(self, lane: int) -> QatUserspaceDriver:
        # The driver already carries the per-lane counters the engine
        # charges (submit_failures, op_timeouts, fallback_ops).
        return self.drivers[lane]

    def health(self) -> dict:
        return {
            "backend": self.name,
            "lanes": self.lanes,
            "capacity_hint": self.capacity_hint(),
            "in_flight": sum(drv.in_flight for drv in self.drivers),
            "submit_failures": sum(drv.submit_failures
                                   for drv in self.drivers),
        }
