"""In-flight crypto request counters (paper section 4.3).

Collected in the offload-engine layer "for accuracy": Rasym, Rcipher
and Rprf are incremented at submission and decremented in the response
callback; their sum Rtotal is exported to the application through an
engine command and drives the heuristic polling scheme.
"""

from __future__ import annotations

from ..crypto.ops import OpCategory

__all__ = ["InflightCounters"]


class InflightCounters:
    """Per-worker counters of submitted-but-unretrieved crypto requests."""

    def __init__(self) -> None:
        self._counts = {cat: 0 for cat in OpCategory}
        self.peak_total = 0

    def increment(self, category: OpCategory) -> None:
        self._counts[category] += 1
        self.peak_total = max(self.peak_total, self.total)

    def decrement(self, category: OpCategory) -> None:
        if self._counts[category] <= 0:
            raise RuntimeError(f"inflight underflow for {category}")
        self._counts[category] -= 1

    @property
    def asym(self) -> int:
        return self._counts[OpCategory.ASYM]

    @property
    def cipher(self) -> int:
        return self._counts[OpCategory.CIPHER]

    @property
    def prf(self) -> int:
        return self._counts[OpCategory.PRF]

    @property
    def total(self) -> int:
        """Rtotal = Rasym + Rcipher + Rprf."""
        return sum(self._counts.values())

    def snapshot(self) -> dict:
        return {cat.value: n for cat, n in self._counts.items()}

    def by_class(self) -> dict:
        """Counts keyed by scheduling class name — the single source
        the class-aware scheduler, poller and stub_status all read
        (no layer keeps shadow per-category accounting)."""
        return {cat.sched_class: n for cat, n in self._counts.items()}
