"""Pluggable offload backends behind a backend-agnostic async engine.

The QTLS framework (deadlines, breakers, batching, failover, polling)
lives in :class:`~repro.offload.engine.AsyncOffloadEngine`; concrete
accelerators implement :class:`~repro.offload.backend.OffloadBackend`:

- :class:`~repro.offload.qat_backend.QatBackend` — the on-board QAT
  card (``repro.qat`` device model), one lane per crypto instance;
- :class:`~repro.offload.remote.RemoteAcceleratorBackend` — a
  network-attached crypto service reached over ``repro.net`` links;
- :class:`~repro.offload.pool.PooledQatBackend` — one worker's view of
  a shared :class:`~repro.offload.pool.InstancePool`, whose
  :class:`~repro.offload.pool.AllocationPolicy` (static / shared /
  dynamic) decides which worker may submit to which instance.

Attribute access is lazy (PEP 562) so low-level device modules can
import :mod:`repro.offload.errors` without dragging in the engine
stack (and its transitive deps) during their own import.
"""

from __future__ import annotations

from .errors import OffloadTimeout, RingFull, SubmitError

__all__ = [
    "SubmitError", "RingFull", "OffloadTimeout",
    "OpSpec", "Completion", "LaneStats", "OffloadBackend",
    "PendingOp", "CircuitBreaker", "InflightCounters",
    "AsyncOffloadEngine", "ALGORITHM_GROUPS",
    "ClassScheduler", "SchedLane", "SCHED_POLICIES", "DEFAULT_WEIGHTS",
    "QatBackend", "RemoteAcceleratorBackend", "RemoteCryptoService",
    "InstancePool", "PooledQatBackend", "AllocationPolicy",
    "StaticPolicy", "SharedPolicy", "DynamicPolicy", "POLICIES",
    "make_policy", "ARBITRATION_CPU_COST",
]

_LAZY = {
    "OpSpec": "backend",
    "Completion": "backend",
    "LaneStats": "backend",
    "OffloadBackend": "backend",
    "PendingOp": "health",
    "CircuitBreaker": "health",
    "InflightCounters": "inflight",
    "AsyncOffloadEngine": "engine",
    "ALGORITHM_GROUPS": "engine",
    "ClassScheduler": "scheduler",
    "SchedLane": "scheduler",
    "SCHED_POLICIES": "scheduler",
    "DEFAULT_WEIGHTS": "scheduler",
    "QatBackend": "qat_backend",
    "RemoteAcceleratorBackend": "remote",
    "RemoteCryptoService": "remote",
    "InstancePool": "pool",
    "PooledQatBackend": "pool",
    "AllocationPolicy": "pool",
    "StaticPolicy": "pool",
    "SharedPolicy": "pool",
    "DynamicPolicy": "pool",
    "POLICIES": "pool",
    "make_policy": "pool",
    "ARBITRATION_CPU_COST": "pool",
}


def __getattr__(name: str):
    try:
        module_name = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}") from None
    from importlib import import_module
    module = import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value
