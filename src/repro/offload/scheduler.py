"""Class-aware admission scheduling for the offload engine.

QTLS distinguishes asymmetric, cipher and PRF offload traffic (the
Rasym/Rcipher/Rprf counters of the heuristic polling scheme), yet the
original engine funnelled every queued op through one FIFO admission
queue. Under mixed load that lets a few bulk transfers — eight record
ciphers per 128 KB file (Figure 10) — park dozens of cipher ops ahead
of new handshakes and blow handshake CPS p99. This module splits the
admission queue into per-class *lanes* (one per
:data:`~repro.crypto.ops.SCHED_CLASSES` entry) and arbitrates between
them with a pluggable policy:

- ``fifo`` (default) — pop the globally-oldest queued op. Every entry
  carries a monotonically increasing arrival sequence number, so the
  min-seq pop across lanes reproduces the single-FIFO order
  *bit-for-bit* (including :meth:`push_front` restores after ring
  backpressure, which keep their original sequence number).
- ``strict-priority`` — serve the highest-priority non-empty lane
  (handshake-asym > prf > record-cipher). Starvation-proof: each time
  a non-empty lane is passed over its deficit counter grows; a lane
  whose deficit reaches ``starvation_threshold`` is served next
  regardless of priority (counted in ``starved``).
- ``weighted-fair`` — deficit round robin over the lanes. Each lane's
  quantum is its configured weight (ops are the service unit — the
  device model charges per request, not per byte), so the accelerator
  is shared in weight proportion under saturation while any lane alone
  gets full capacity.

Within a lane, entries are kept in deadline order (:meth:`push`
insert-sorts on the entry's deadline). Engine deadlines are
``enqueue-time + request_deadline`` with a constant deadline, so for
real traffic this is exactly arrival order — the sort only reorders
when a caller supplies explicit earlier deadlines.

The scheduler also owns **per-connection in-flight budgets**
(``conn_budget``): the engine reports every op entering/leaving the
accelerator path via :meth:`conn_acquire`/:meth:`conn_release`, and
:meth:`pop` skips entries whose connection is at its budget, so one
bulk transfer cannot monopolize a worker's lane. (Today's TLS layer
keeps at most one op in flight per connection, so the budget binds
only for pipelined callers; the mechanism is generic.)

Everything here is pure bookkeeping — no RNG, no wall-clock — so
scheduling decisions replay bit-for-bit from the simulation seed.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Iterable, List, Optional

from ..crypto.ops import OpCategory, SCHED_CLASSES

__all__ = ["ClassScheduler", "SchedLane", "SCHED_POLICIES",
           "DEFAULT_WEIGHTS", "PRIORITY_ORDER", "STARVATION_THRESHOLD"]

SCHED_POLICIES = ("fifo", "strict-priority", "weighted-fair")

#: Lane priority, highest first: handshakes gate new-connection latency
#: (and each asym op frees a whole connection's worth of state), key
#: derivation gates handshake completion, record ciphers are bulk.
PRIORITY_ORDER = (OpCategory.ASYM, OpCategory.PRF, OpCategory.CIPHER)

#: Default weighted-fair quanta (ops per DRR round).
DEFAULT_WEIGHTS = {"handshake-asym": 8, "prf": 2, "record-cipher": 1}

#: strict-priority deficit fallback: a lane passed over this many times
#: in a row is served next regardless of priority.
STARVATION_THRESHOLD = 16


class SchedLane:
    """One per-class admission lane plus its service counters."""

    __slots__ = ("name", "category", "priority", "weight", "q",
                 "enqueued", "served", "starved", "expired", "peak",
                 "deficit")

    def __init__(self, name: str, category: OpCategory, priority: int,
                 weight: int) -> None:
        self.name = name
        self.category = category
        self.priority = priority          # 0 = highest
        self.weight = weight              # DRR quantum (ops)
        self.q: Deque[Any] = deque()      # entries in deadline order
        self.enqueued = 0                 # total pushes
        self.served = 0                   # total policy pops
        self.starved = 0                  # deficit-fallback services
        self.expired = 0                  # deadline/no-lane expiries
        self.peak = 0                     # max depth observed
        self.deficit = 0                  # policy bookkeeping

    @property
    def depth(self) -> int:
        return len(self.q)

    def snapshot(self) -> dict:
        return {"depth": self.depth, "peak": self.peak,
                "enqueued": self.enqueued, "served": self.served,
                "starved": self.starved, "expired": self.expired,
                "weight": self.weight}


class ClassScheduler:
    """Priority lanes + arbitration policy + per-connection budgets.

    Queue entries are the engine's ``_QueuedOp`` records (anything with
    ``deadline``, ``conn`` and a writable ``seq`` attribute works):
    :meth:`push` stamps the global arrival sequence number the fifo
    policy and the expiry iteration order are built on.
    """

    def __init__(self, policy: str = "fifo",
                 weights: Optional[Dict[str, int]] = None,
                 conn_budget: Optional[int] = None,
                 starvation_threshold: int = STARVATION_THRESHOLD) -> None:
        if policy not in SCHED_POLICIES:
            raise ValueError(
                f"unknown scheduling policy {policy!r}; expected one of "
                f"{', '.join(SCHED_POLICIES)}")
        if conn_budget is not None and conn_budget < 1:
            raise ValueError("per-connection budget must be >= 1")
        if starvation_threshold < 1:
            raise ValueError("starvation threshold must be >= 1")
        merged = dict(DEFAULT_WEIGHTS)
        for name, w in (weights or {}).items():
            if name not in merged:
                raise ValueError(
                    f"unknown scheduling class {name!r}; expected one of "
                    f"{', '.join(sorted(merged))}")
            if not isinstance(w, int) or w < 1:
                raise ValueError(
                    f"weight for {name!r} must be an integer >= 1")
            merged[name] = w
        self.policy = policy
        self.conn_budget = conn_budget
        self.starvation_threshold = starvation_threshold
        self._lanes: List[SchedLane] = [
            SchedLane(SCHED_CLASSES[cat], cat, prio,
                      merged[SCHED_CLASSES[cat]])
            for prio, cat in enumerate(PRIORITY_ORDER)]
        self._by_category: Dict[OpCategory, SchedLane] = {
            lane.category: lane for lane in self._lanes}
        self._by_name: Dict[str, SchedLane] = {
            lane.name: lane for lane in self._lanes}
        self._seq = 0
        self._drr_idx = 0
        #: Accelerator-path ops per connection (budget accounting).
        self._conn_inflight: Dict[Any, int] = {}
        #: High-water mark across every connection ever charged — read
        #: by repro.testing invariants (budgets must never exceed cap).
        self.conn_peak = 0

    # -- introspection -------------------------------------------------------

    @property
    def queued(self) -> int:
        """Total entries waiting across all lanes."""
        return sum(len(lane.q) for lane in self._lanes)

    def __len__(self) -> int:
        return self.queued

    def __contains__(self, item: Any) -> bool:
        return any(item in lane.q for lane in self._lanes)

    def lane(self, name: str) -> SchedLane:
        return self._by_name[name]

    @property
    def lanes(self) -> List[SchedLane]:
        return list(self._lanes)

    def lane_depths(self) -> Dict[str, int]:
        return {lane.name: lane.depth for lane in self._lanes}

    def snapshot(self) -> dict:
        """stub_status / experiment payload."""
        return {"policy": self.policy,
                "conn_budget": self.conn_budget or 0,
                "lanes": {lane.name: lane.snapshot()
                          for lane in self._lanes}}

    def items(self) -> List[Any]:
        """Every queued entry, in global arrival (seq) order — the
        expiry paths iterate this so fifo-policy expiry scans match the
        historical single-queue iteration exactly."""
        merged: List[Any] = []
        for lane in self._lanes:
            merged.extend(lane.q)
        merged.sort(key=lambda item: item.seq)
        return merged

    # -- queue mutation ------------------------------------------------------

    def push(self, item: Any, category: OpCategory) -> int:
        """Enqueue ``item`` on its class lane, in deadline order, and
        stamp its global arrival sequence number."""
        lane = self._by_category[category]
        self._seq += 1
        item.seq = self._seq
        q = lane.q
        if q and item.deadline < q[-1].deadline:
            # Deadline-aware insert (stable: after the last entry whose
            # deadline is <= ours). Engine deadlines are arrival-ordered
            # so real traffic always takes the append fast path.
            idx = len(q)
            while idx > 0 and q[idx - 1].deadline > item.deadline:
                idx -= 1
            q.insert(idx, item)
        else:
            q.append(item)
        lane.enqueued += 1
        if lane.depth > lane.peak:
            lane.peak = lane.depth
        return item.seq

    def push_front(self, item: Any, category: OpCategory) -> None:
        """Restore a popped entry at the head of its lane (ring
        backpressure requeue). The entry keeps its original sequence
        number, so the fifo policy re-pops it first — exactly the
        historical ``appendleft`` semantics."""
        self._by_category[category].q.appendleft(item)

    def remove(self, item: Any) -> bool:
        """Drop a specific queued entry (expiry / drain / rescue)."""
        for lane in self._lanes:
            try:
                lane.q.remove(item)
                return True
            except ValueError:
                continue
        return False

    def note_expired(self, category: OpCategory) -> None:
        self._by_category[category].expired += 1

    # -- per-connection budgets ----------------------------------------------

    def conn_allows(self, conn: Any) -> bool:
        """May another op from ``conn`` enter the accelerator path?"""
        if self.conn_budget is None or conn is None:
            return True
        return self._conn_inflight.get(conn, 0) < self.conn_budget

    def conn_acquire(self, conn: Any) -> None:
        if self.conn_budget is None or conn is None:
            return
        held = self._conn_inflight.get(conn, 0) + 1
        self._conn_inflight[conn] = held
        if held > self.conn_peak:
            self.conn_peak = held

    def conn_release(self, conn: Any) -> None:
        if self.conn_budget is None or conn is None:
            return
        left = self._conn_inflight.get(conn, 0) - 1
        if left < 0:
            raise RuntimeError(f"connection budget underflow for {conn!r}")
        if left:
            self._conn_inflight[conn] = left
        else:
            self._conn_inflight.pop(conn, None)

    def conn_inflight(self, conn: Any) -> int:
        return self._conn_inflight.get(conn, 0)

    def _eligible_idx(self, lane: SchedLane) -> Optional[int]:
        """Index of the lane's first entry whose connection has budget
        headroom (None when every entry is budget-blocked)."""
        for idx, item in enumerate(lane.q):
            if self.conn_allows(getattr(item, "conn", None)) \
                    or getattr(item, "conn", None) is None:
                return idx
        return None

    # -- arbitration ---------------------------------------------------------

    def pop(self) -> Optional[Any]:
        """Remove and return the next entry to admit, in policy order,
        skipping entries whose connection is at its in-flight budget.
        None when nothing is eligible (empty, or all blocked)."""
        if self.policy == "strict-priority":
            return self._pop_strict()
        if self.policy == "weighted-fair":
            return self._pop_drr()
        return self._pop_fifo()

    def _take(self, lane: SchedLane, idx: int) -> Any:
        if idx == 0:
            item = lane.q.popleft()
        else:
            item = lane.q[idx]
            del lane.q[idx]
        lane.served += 1
        return item

    def _pop_fifo(self) -> Optional[Any]:
        best_lane: Optional[SchedLane] = None
        best_idx = 0
        best_seq = None
        for lane in self._lanes:
            idx = self._eligible_idx(lane)
            if idx is None:
                continue
            seq = lane.q[idx].seq
            if best_seq is None or seq < best_seq:
                best_lane, best_idx, best_seq = lane, idx, seq
        if best_lane is None:
            return None
        return self._take(best_lane, best_idx)

    def _pop_strict(self) -> Optional[Any]:
        avail: List[tuple] = []          # (lane, eligible idx)
        for lane in self._lanes:         # already in priority order
            idx = self._eligible_idx(lane)
            if idx is not None:
                avail.append((lane, idx))
        if not avail:
            return None
        chosen = None
        for lane, idx in avail:          # starvation-proof fallback
            if lane.deficit >= self.starvation_threshold:
                chosen = (lane, idx)
                lane.starved += 1
                break
        if chosen is None:
            chosen = avail[0]            # highest-priority eligible
        lane, idx = chosen
        lane.deficit = 0
        for other, _ in avail:
            if other is not lane:
                other.deficit += 1       # passed over while eligible
        return self._take(lane, idx)

    def _pop_drr(self) -> Optional[Any]:
        n = len(self._lanes)
        for _ in range(2 * n + 1):
            lane = self._lanes[self._drr_idx]
            idx = self._eligible_idx(lane)
            if idx is None:
                # Classic DRR: an empty (or fully blocked) lane forfeits
                # its accumulated deficit.
                lane.deficit = 0
                self._drr_idx = (self._drr_idx + 1) % n
                continue
            if lane.deficit <= 0:
                lane.deficit += lane.weight
            item = self._take(lane, idx)
            lane.deficit -= 1
            if lane.deficit <= 0 or self._eligible_idx(lane) is None:
                if self._eligible_idx(lane) is None:
                    lane.deficit = 0
                self._drr_idx = (self._drr_idx + 1) % n
            return item
        return None

    # -- batched-flush ordering ---------------------------------------------

    def flush_order(self, items: Iterable[Any]) -> List[Any]:
        """Order a coalescing-queue flush chunk by the arbitration
        policy. ``fifo`` preserves the queue order untouched (the
        bit-for-bit guarantee); ``strict-priority`` sorts (stably) by
        lane priority; ``weighted-fair`` interleaves weight-many ops
        per lane per round so one class cannot fill the whole batch."""
        if self.policy == "fifo":
            return list(items)
        per_lane: Dict[str, List[Any]] = {lane.name: []
                                          for lane in self._lanes}
        for item in items:
            per_lane[item.call.op.category.sched_class].append(item)
        if self.policy == "strict-priority":
            ordered: List[Any] = []
            for lane in self._lanes:
                ordered.extend(per_lane[lane.name])
            return ordered
        ordered = []
        while any(per_lane.values()):
            for lane in self._lanes:
                bucket = per_lane[lane.name]
                take = min(lane.weight, len(bucket))
                ordered.extend(bucket[:take])
                del bucket[:take]
        return ordered
