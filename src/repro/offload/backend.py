"""The offload-backend seam: what an accelerator must provide.

QTLS's contribution is the asynchronous offload *framework* around the
accelerator, not the ASIC itself (paper section 3). This module pins
down the seam between the backend-agnostic engine
(:class:`~repro.offload.engine.AsyncOffloadEngine`) and a concrete
accelerator:

- :class:`OpSpec` — one crypto op handed to the backend for
  submission;
- :class:`Completion` — one finished op retrieved from the backend;
- :class:`LaneStats` — per-lane degradation/throughput counters the
  engine charges and stub_status reports;
- :class:`OffloadBackend` — the protocol itself: batched non-blocking
  submission, non-blocking completion retrieval, CPU-cost accounting
  for both (charged by the *caller*, since they run on the worker's
  core), and capacity/health introspection.

Backends are passive from the engine's point of view: ``submit_batch``
and ``poll_completions`` never block and never consume simulated CPU
themselves. A backend models its device/service latency with sim
events internally and surfaces finished work through
``poll_completions`` only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..crypto.ops import CryptoOp

__all__ = ["OpSpec", "Completion", "LaneStats", "OffloadBackend"]


@dataclass
class OpSpec:
    """One crypto op offered to the backend for submission."""

    op: CryptoOp
    compute: Callable[[], Any]
    cookie: Any = None


@dataclass
class Completion:
    """One finished op retrieved from the backend.

    ``token`` is the opaque per-request identity returned by
    ``submit_batch`` — the engine keys its in-flight table on it.
    ``transport_error`` marks failures of the offload *path* (corrupted
    response, device fault): the engine degrades those to the software
    crypto path. A plain ``error`` is a crypto-level failure and is
    delivered to the job as-is.
    """

    token: Any
    op: CryptoOp
    result: Any = None
    error: Optional[BaseException] = None
    transport_error: bool = False
    #: Device-side checkpoint timestamps for request-lifecycle tracing
    #: (mark name -> simulated time; see :mod:`repro.obs.span`). None
    #: when the backend does not record them.
    device_marks: Optional[Dict[str, float]] = None


@dataclass
class LaneStats:
    """Per-lane counters shared between backend and engine."""

    submitted: int = 0
    submit_failures: int = 0
    op_timeouts: int = 0
    fallback_ops: int = 0

    extra: Dict[str, int] = field(default_factory=dict)


class OffloadBackend:
    """Abstract accelerator backend.

    A backend exposes one or more *lanes*: independently failable
    submission channels (QAT crypto instances, remote connections).
    The engine owns one circuit breaker per lane and picks the lane
    for every batch; the backend owns everything below that line.
    """

    #: Short identifier reported through stub_status.
    name = "abstract"

    @property
    def lanes(self) -> int:
        """Number of independent submission lanes."""
        raise NotImplementedError

    def admits(self, lane: int) -> bool:
        """May the caller submit to ``lane`` right now? Backends whose
        lanes are leased from a shared pool return False for lanes
        outside the current lease set; fixed-ownership backends admit
        every lane (the default)."""
        return True

    def submit_batch(self, specs: List[OpSpec], lane: int) -> List[Any]:
        """Submit ``specs`` to ``lane`` in one doorbell/RPC.

        Returns one entry per spec, in order: an opaque token for each
        accepted op, or None where admission failed (ring full /
        window exhausted). Admission is per-op — a full ring may
        accept a prefix of the batch.
        """
        raise NotImplementedError

    def poll_completions(self, max_responses: Optional[int] = None
                         ) -> List[Completion]:
        """Retrieve up to ``max_responses`` finished ops (non-blocking,
        all lanes, starvation-free across lanes)."""
        raise NotImplementedError

    def submit_cpu_cost(self, n_ops: int) -> float:
        """CPU seconds the caller must charge for submitting a batch of
        ``n_ops`` ops in one call."""
        raise NotImplementedError

    def poll_cpu_cost(self, n_responses: int) -> float:
        """CPU seconds the caller must charge for a poll that returned
        ``n_responses`` completions."""
        raise NotImplementedError

    def capacity_hint(self, lane: Optional[int] = None,
                      category: Optional[Any] = None) -> int:
        """Approximate number of further ops the backend could admit
        right now. Advisory — the engine uses it to flow-control batch
        flushes so it doesn't burn submit CPU on ops that will bounce.
        ``lane`` restricts the answer to one submission channel;
        ``category`` (an :class:`~repro.crypto.ops.OpCategory`) to the
        queue that class of op would land on (QAT rings are
        per-category)."""
        raise NotImplementedError

    def lane_stats(self, lane: int) -> Any:
        """Mutable per-lane stats object (``LaneStats``-shaped: at
        least ``submitted``, ``submit_failures``, ``op_timeouts`` and
        ``fallback_ops`` attributes the engine may increment)."""
        raise NotImplementedError

    def health(self) -> dict:
        """Introspection snapshot for status pages / experiments."""
        return {
            "backend": self.name,
            "lanes": self.lanes,
            "capacity_hint": self.capacity_hint(),
        }
