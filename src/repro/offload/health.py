"""Accelerator health tracking for the offload-engine layer.

The paper assumes a healthy card; this module adds the machinery a
production offload stack needs when the accelerator is treated as a
remote, failable service:

- :class:`OffloadTimeout` — the typed failure surfaced when a submit
  retry budget is exhausted or a response misses its deadline (instead
  of the seed's unbounded busy-retry livelock);
- :class:`PendingOp` — one entry of the engine's in-flight table,
  carrying the submission time and per-request deadline;
- :class:`CircuitBreaker` — per-lane closed → open → half-open health
  state. Repeated timeouts/corrupted responses open the breaker; while
  open, submissions skip the lane (ops degrade to the software
  engine); after a cool-down one probe request is let through, and its
  outcome closes or re-opens the breaker.

A *lane* is one independently failable submission channel of a backend
(a QAT crypto instance, a remote service connection, ...).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from ..tls.actions import CryptoCall
from .errors import OffloadTimeout

__all__ = ["OffloadTimeout", "PendingOp", "CircuitBreaker"]


@dataclass
class PendingOp:
    """One submitted-but-unanswered request in the in-flight table."""

    call: CryptoCall
    job: Any                # the paused offload job (cookie)
    lane: int               # which backend lane it was submitted to
    submitted_at: float
    deadline: float

    @property
    def driver_idx(self) -> int:
        """Backward-compatible alias from the QAT-only engine era."""
        return self.lane


class CircuitBreaker:
    """Closed/open/half-open health state for one backend lane."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(self, clock: Callable[[], float],
                 failure_threshold: int = 5,
                 reset_timeout: float = 10e-3) -> None:
        if failure_threshold < 1:
            raise ValueError("failure threshold must be >= 1")
        if reset_timeout <= 0:
            raise ValueError("reset timeout must be positive")
        self._clock = clock
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.state = self.CLOSED
        self.consecutive_failures = 0
        self.opened_at = 0.0
        self.opens = 0          # total closed/half-open -> open transitions
        self._probe_outstanding = False

    def allow(self) -> bool:
        """May a request be submitted to this lane right now?"""
        if self.state == self.CLOSED:
            return True
        now = self._clock()
        if self.state == self.OPEN:
            if now - self.opened_at < self.reset_timeout:
                return False
            # Cool-down elapsed: probe the hardware.
            self.state = self.HALF_OPEN
            self._probe_outstanding = False
        # Half-open: admit a single probe at a time.
        if self._probe_outstanding:
            return False
        self._probe_outstanding = True
        return True

    def available(self) -> bool:
        """Non-mutating variant of :meth:`allow`: could a request be
        admitted now (or once the cool-down elapses this instant)?"""
        if self.state == self.CLOSED:
            return True
        if self.state == self.OPEN:
            return self._clock() - self.opened_at >= self.reset_timeout
        return not self._probe_outstanding

    def cancel_probe(self) -> None:
        """Release a probe slot claimed by :meth:`allow` when the
        request was never actually sent (e.g. the ring was full)."""
        if self.state == self.HALF_OPEN:
            self._probe_outstanding = False

    def record_success(self) -> None:
        self.consecutive_failures = 0
        if self.state != self.CLOSED:
            self.state = self.CLOSED
        self._probe_outstanding = False

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if (self.state == self.HALF_OPEN
                or self.consecutive_failures >= self.failure_threshold):
            if self.state != self.OPEN:
                self.opens += 1
            self.state = self.OPEN
            self.opened_at = self._clock()
            self._probe_outstanding = False

    @property
    def is_open(self) -> bool:
        return self.state == self.OPEN
