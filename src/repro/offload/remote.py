"""Network-attached accelerator backend.

The second production backend proving the offload seam: batches are
marshalled into RPCs and shipped over a :class:`repro.net.link.Link`
pair to a :class:`RemoteCryptoService` — a simulated crypto appliance
with its own processor pool and service-time model (related work:
network-attached HSM / PQC accelerators behind a uniform driver
interface).

Queue model::

    worker core --submit_batch--> [tx link] --> service queue
                                                (FIFO, N processors,
                                                 qat-derived service
                                                 times x scale)
    completions <-- [rx link] <---------------- per-op replies

Admission is a credit *window*: at most ``window`` ops outstanding per
backend; beyond that, per-op submission fails exactly like a full QAT
ring (the engine's retry/failover machinery applies unchanged).

Batching amortizes the dominant per-RPC cost: one syscall +
serialization per batch (``RPC_SUBMIT_CPU_COST``) plus a small per-op
marshalling term, and one link transfer per batch (the RPC header is
paid once). Everything is event-driven — link delivery and service
completion are sim events — so runs replay bit-for-bit from the seed.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Deque, List, Optional

from ..qat.service_times import qat_service_time
from ..sim.resources import Resource
from .backend import Completion, LaneStats, OffloadBackend, OpSpec

if TYPE_CHECKING:  # pragma: no cover
    from ..net.link import Link
    from ..sim.kernel import Simulator

__all__ = ["RemoteAcceleratorBackend", "RemoteCryptoService",
           "RPC_SUBMIT_CPU_COST", "RPC_PER_OP_CPU_COST"]

#: CPU cost of issuing one RPC (syscall + header serialization),
#: paid once per batch.
RPC_SUBMIT_CPU_COST = 2.6e-6
#: CPU cost of marshalling each op into the RPC payload.
RPC_PER_OP_CPU_COST = 0.3e-6
#: CPU cost of one completion-queue check.
RPC_POLL_CPU_COST = 0.5e-6
#: CPU cost per completion drained.
RPC_POLL_PER_RESPONSE_CPU_COST = 0.3e-6

#: Wire sizes of the RPC framing and payloads.
RPC_REQUEST_HEADER_BYTES = 96
RPC_REQUEST_OP_BYTES = 320
RPC_RESPONSE_BYTES = 288


class _RemoteRequest:
    """One op in flight to/inside/back from the remote service."""

    __slots__ = ("op", "compute", "cookie", "submitted_at", "arrived_at",
                 "serviced_at")

    def __init__(self, op, compute: Callable[[], Any], cookie: Any,
                 submitted_at: float) -> None:
        self.op = op
        self.compute = compute
        self.cookie = cookie
        self.submitted_at = submitted_at
        # Lifecycle stamps for request tracing: RPC arrival at the
        # service and service completion.
        self.arrived_at: Optional[float] = None
        self.serviced_at: Optional[float] = None


class RemoteCryptoService:
    """The appliance side: a FIFO pool of crypto processors.

    Shared by all workers of a server (one appliance per deployment);
    per-op service times reuse the QAT calibration scaled by
    ``service_scale`` (> 1 models a slower network box, < 1 a beefier
    one).
    """

    def __init__(self, sim: "Simulator", n_processors: int = 8,
                 service_scale: float = 1.0, name: str = "accel0") -> None:
        if n_processors < 1:
            raise ValueError("need at least one processor")
        if service_scale <= 0:
            raise ValueError("service scale must be positive")
        self.sim = sim
        self.name = name
        self.service_scale = service_scale
        self.processors = Resource(sim, n_processors, name=f"{name}-proc")
        self.requests_served = 0
        self.peak_queue = 0

    def service_time(self, op) -> float:
        return qat_service_time(op) * self.service_scale

    def submit(self, request: _RemoteRequest,
               reply: Callable[[_RemoteRequest, Any,
                                Optional[BaseException]], None]) -> None:
        """Accept one op; ``reply`` fires when it finishes service."""
        self.sim.process(self._serve(request, reply),
                         name=f"{self.name}-serve")

    def _serve(self, request, reply):
        grant = self.processors.request()
        self.peak_queue = max(self.peak_queue, self.processors.queue_length)
        if not grant.triggered:
            yield grant
        yield self.sim.timeout(self.service_time(request.op))
        try:
            result, error = request.compute(), None
        except Exception as exc:
            result, error = None, exc
        self.processors.release()
        self.requests_served += 1
        reply(request, result, error)


class RemoteAcceleratorBackend(OffloadBackend):
    """Per-worker RPC channel to a shared :class:`RemoteCryptoService`.

    Single-lane: one connection per worker. The engine's circuit
    breaker on that lane covers service outages/timeouts the same way
    it covers a sick QAT instance.
    """

    name = "remote"

    def __init__(self, sim: "Simulator", service: RemoteCryptoService,
                 tx_link: "Link", rx_link: "Link",
                 window: int = 256) -> None:
        if window < 1:
            raise ValueError("credit window must be >= 1")
        self.sim = sim
        self.service = service
        self.tx_link = tx_link
        self.rx_link = rx_link
        self.window = window
        self.outstanding = 0
        self.stats = LaneStats()
        self.batches_sent = 0
        self._completions: Deque[Completion] = deque()

    @property
    def lanes(self) -> int:
        return 1

    def submit_batch(self, specs: List[OpSpec], lane: int) -> List[Any]:
        now = self.sim.now
        tokens: List[Any] = []
        accepted: List[_RemoteRequest] = []
        for spec in specs:
            if self.outstanding >= self.window:
                # Credit window exhausted: the remote analog of a full
                # request ring.
                self.stats.submit_failures += 1
                tokens.append(None)
                continue
            request = _RemoteRequest(spec.op, spec.compute, spec.cookie, now)
            self.outstanding += 1
            self.stats.submitted += 1
            tokens.append(request)
            accepted.append(request)
        if accepted:
            self.batches_sent += 1
            nbytes = (RPC_REQUEST_HEADER_BYTES
                      + RPC_REQUEST_OP_BYTES * len(accepted))
            delivery = self.tx_link.transfer(nbytes)
            batch = tuple(accepted)
            delivery.callbacks.append(lambda _ev: self._arrive(batch))
        return tokens

    def _arrive(self, batch) -> None:
        now = self.sim.now
        for request in batch:
            request.arrived_at = now
            self.service.submit(request, self._serviced)

    def _serviced(self, request, result, error) -> None:
        request.serviced_at = self.sim.now
        delivery = self.rx_link.transfer(RPC_RESPONSE_BYTES)
        delivery.callbacks.append(
            lambda _ev: self._land(request, result, error))

    def _land(self, request, result, error) -> None:
        self.outstanding -= 1
        self._completions.append(Completion(
            token=request, op=request.op, result=result, error=error,
            transport_error=False,
            device_marks={
                "dequeued": request.arrived_at,
                "serviced": request.serviced_at,
                "landed": self.sim.now,
            }))

    def poll_completions(self, max_responses: Optional[int] = None
                         ) -> List[Completion]:
        out: List[Completion] = []
        while self._completions and (max_responses is None
                                     or len(out) < max_responses):
            out.append(self._completions.popleft())
        return out

    def submit_cpu_cost(self, n_ops: int) -> float:
        return RPC_SUBMIT_CPU_COST + RPC_PER_OP_CPU_COST * n_ops

    def poll_cpu_cost(self, n_responses: int) -> float:
        return (RPC_POLL_CPU_COST
                + RPC_POLL_PER_RESPONSE_CPU_COST * n_responses)

    def capacity_hint(self, lane: Optional[int] = None,
                      category: Optional[Any] = None) -> int:
        # One window shared by all op categories.
        return max(0, self.window - self.outstanding)

    def lane_stats(self, lane: int) -> LaneStats:
        return self.stats

    def health(self) -> dict:
        return {
            "backend": self.name,
            "lanes": 1,
            "capacity_hint": self.capacity_hint(),
            "outstanding": self.outstanding,
            "batches_sent": self.batches_sent,
            "service_queue": self.service.processors.queue_length,
            "requests_served": self.service.requests_served,
        }
