"""Workload generators: s_time-like CPS clients and ab-like clients."""

from .ab import AbFleet
from .s_time import STimeFleet
from .tls_session import ClientTlsSession

__all__ = ["ClientTlsSession", "STimeFleet", "AbFleet"]
