"""ApacheBench-like clients (paper sections 5.4 and 5.5).

Two modes:

- **keepalive** (Figure 10): connect + handshake once, then request a
  fixed-size file in a closed loop — measures data-transfer
  throughput with the handshake amortized away;
- **per-request handshake** (Figure 11): each request opens a fresh
  connection with a full handshake and fetches a small page —
  measures end-to-end response time under varied concurrency.
"""

from __future__ import annotations

from typing import List, Tuple

from ..core.costmodel import CostModel
from ..core.metrics import ClientMetrics
from ..net.network import Network
from ..server.http import RESPONSE_HEADER_SIZE, encode_request
from ..tls.actions import TlsAlert
from ..tls.constants import ProtocolVersion
from .tls_session import ClientTlsSession

__all__ = ["AbFleet"]


class AbFleet:
    """A population of ab worker processes."""

    def __init__(self, sim, net: Network, addresses: List[str],
                 client_config_factory, cost_model: CostModel,
                 metrics: ClientMetrics, n_clients: int, file_size: int,
                 machines: Tuple[str, ...] = ("client0",),
                 version: ProtocolVersion = ProtocolVersion.TLS12,
                 keepalive: bool = True, stagger: float = 0.02) -> None:
        if n_clients < 1:
            raise ValueError("need at least one client")
        if file_size < 0:
            raise ValueError("negative file size")
        self.sim = sim
        self.net = net
        self.addresses = addresses
        self.make_client_config = client_config_factory
        self.cm = cost_model
        self.metrics = metrics
        self.n_clients = n_clients
        self.file_size = file_size
        self.machines = machines
        self.version = version
        self.keepalive = keepalive
        self.stagger = stagger
        self._procs = []

    def start(self) -> None:
        loop = (self._keepalive_loop if self.keepalive
                else self._full_handshake_loop)
        for i in range(self.n_clients):
            self._procs.append(
                self.sim.process(loop(i), name=f"ab-{i}"))

    # -- Figure 10 mode ------------------------------------------------------

    def _keepalive_loop(self, client_id: int):
        machine = self.machines[client_id % len(self.machines)]
        address = self.addresses[client_id % len(self.addresses)]
        expected = RESPONSE_HEADER_SIZE + self.file_size
        request = encode_request(self.file_size, keepalive=True)
        if self.stagger > 0:
            yield self.sim.timeout(
                self.stagger * (client_id + 1) / self.n_clients)
        while True:
            try:
                sock = yield from self.net.connect(
                    machine, address, label=f"ab{client_id}")
                session = ClientTlsSession(self.sim, sock,
                                           self.make_client_config(client_id),
                                           self.cm, version=self.version)
                yield from session.handshake()
                while True:
                    t0 = self.sim.now
                    yield from session.send_request(request)
                    got = yield from session.receive_payload(expected)
                    now = self.sim.now
                    self.metrics.record_request(now, now - t0,
                                                got - RESPONSE_HEADER_SIZE)
            except (TlsAlert, ConnectionError):
                self.metrics.record_error()
                yield self.sim.timeout(1e-3)

    # -- Figure 11 mode ---------------------------------------------------------

    def _full_handshake_loop(self, client_id: int):
        machine = self.machines[client_id % len(self.machines)]
        address = self.addresses[client_id % len(self.addresses)]
        expected = RESPONSE_HEADER_SIZE + self.file_size
        request = encode_request(self.file_size, keepalive=False)
        if self.stagger > 0:
            yield self.sim.timeout(
                self.stagger * (client_id + 1) / self.n_clients)
        while True:
            t0 = self.sim.now
            try:
                sock = yield from self.net.connect(
                    machine, address, label=f"ab{client_id}")
                session = ClientTlsSession(self.sim, sock,
                                           self.make_client_config(client_id),
                                           self.cm, version=self.version)
                result = yield from session.handshake()
                yield from session.send_request(request)
                got = yield from session.receive_payload(expected)
                now = self.sim.now
                self.metrics.record_request(now, now - t0,
                                            got - RESPONSE_HEADER_SIZE)
                self.metrics.record_handshake(now, now - t0, result.resumed)
                sock.close()
            except (TlsAlert, ConnectionError):
                self.metrics.record_error()
                yield self.sim.timeout(1e-3)
