"""Client-side TLS session driver.

Runs the sans-IO client handshake over a simulated socket. Client
machines are load generators, not the system under test: their crypto
charges simulated *time* (so Figure 11 latency is end-to-end) but no
modelled CPU core — the paper's two client servers (88 HT each) were
never the bottleneck.
"""

from __future__ import annotations

from typing import Generator, List, Optional

import numpy as np

from ..core.costmodel import CostModel
from ..net.pollable import wait_readable
from ..net.socket_sim import SimSocket
from ..tls.actions import (CryptoCall, HandshakeResult, NeedMessage,
                           SendMessage, TlsAlert)
from ..tls.config import TlsClientConfig
from ..tls.constants import ProtocolVersion
from ..tls.handshake import client_handshake12, client_handshake13
from ..tls.messages import Alert
from ..tls.record import RecordLayer, TlsRecord

__all__ = ["ClientTlsSession"]


class ClientTlsSession:
    """One client-side TLS connection over ``sock``."""

    def __init__(self, sim, sock: SimSocket, config: TlsClientConfig,
                 cost_model: CostModel,
                 version: ProtocolVersion = ProtocolVersion.TLS12) -> None:
        self.sim = sim
        self.sock = sock
        self.config = config
        self.cm = cost_model
        self.version = version
        self.result: Optional[HandshakeResult] = None
        self.record_layer: Optional[RecordLayer] = None

    # -- handshake -----------------------------------------------------------

    def handshake(self) -> Generator:
        """Run the handshake to completion (a sim process helper)."""
        gen = (client_handshake13(self.config)
               if self.version == ProtocolVersion.TLS13
               else client_handshake12(self.config))
        outbuf: List[SendMessage] = []
        send_value = None
        throw_exc = None
        while True:
            try:
                if throw_exc is not None:
                    action = gen.throw(throw_exc)
                    throw_exc = None
                else:
                    action = gen.send(send_value)
            except StopIteration as stop:
                self.result = stop.value
                self.record_layer = RecordLayer(
                    self.config.provider,
                    write_keys=self.result.client_write_keys,
                    read_keys=self.result.server_write_keys,
                    rng=self.config.rng,
                    version=self.result.suite.version)
                return self.result
            send_value = None
            if isinstance(action, CryptoCall):
                cost = self.cm.client_crypto_cost(action.op)
                if cost > 0:
                    yield self.sim.timeout(cost)
                try:
                    send_value = action.compute()
                except Exception as exc:
                    throw_exc = exc
            elif isinstance(action, SendMessage):
                outbuf.append(action)
                if action.flush:
                    yield from self._flush(outbuf)
            elif isinstance(action, NeedMessage):
                yield from self._flush(outbuf)
                send_value = yield from self._recv_message()
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown action {action!r}")

    def _flush(self, outbuf: List[SendMessage]) -> Generator:
        for sm in outbuf:
            if self.cm.client_step_cost > 0:
                yield self.sim.timeout(self.cm.client_step_cost / 4)
            self.sock.send(sm.message, nbytes=sm.message.wire_size())
        outbuf.clear()
        return None

    def _recv_message(self) -> Generator:
        while True:
            msg = self.sock.recv()
            if msg is None:
                yield wait_readable(self.sim, self.sock)
                continue
            if isinstance(msg, bytes) and msg == b"":
                raise TlsAlert("connection closed during handshake")
            if isinstance(msg, Alert):
                raise TlsAlert(f"received fatal alert: {msg.description}")
            return msg

    # -- application data -------------------------------------------------------

    def send_request(self, payload: bytes) -> Generator:
        """Protect and send one request record."""
        if self.record_layer is None:
            raise RuntimeError("send_request before handshake")
        gen = self.record_layer.protect(payload)
        records = yield from self._run_record_gen(gen)
        for rec in records:
            self.sock.send(rec, nbytes=rec.wire_size())
        return records

    def receive_payload(self, expected_bytes: int) -> Generator:
        """Receive records until ``expected_bytes`` of plaintext arrived.

        Returns the total plaintext length received. Uses the record
        accounting field (client decryption is not the system under
        test); a small per-record client cost is charged.
        """
        got = 0
        while got < expected_bytes:
            msg = self.sock.recv()
            if msg is None:
                yield wait_readable(self.sim, self.sock)
                continue
            if isinstance(msg, bytes) and msg == b"":
                raise TlsAlert("connection closed mid-response")
            if isinstance(msg, Alert):
                raise TlsAlert(f"received fatal alert: {msg.description}")
            if not isinstance(msg, TlsRecord):
                raise TlsAlert(f"unexpected message {type(msg).__name__}")
            got += msg.plaintext_len
            if self.cm.client_step_cost > 0:
                yield self.sim.timeout(self.cm.client_step_cost / 6)
        return got

    def _run_record_gen(self, gen) -> Generator:
        send_value = None
        while True:
            try:
                action = gen.send(send_value)
            except StopIteration as stop:
                return stop.value
            if not isinstance(action, CryptoCall):  # pragma: no cover
                raise TypeError("record layer yielded a non-crypto action")
            cost = self.cm.client_crypto_cost(action.op)
            if cost > 0:
                yield self.sim.timeout(cost)
            send_value = action.compute()

    # -- resumption state ------------------------------------------------------------

    def resumption_config(self, rng: np.random.Generator
                          ) -> TlsClientConfig:
        """A client config that offers resumption of this session."""
        if self.result is None:
            raise RuntimeError("no completed handshake to resume")
        # TLS 1.3 resumption offers the derived PSK; TLS 1.2 offers the
        # master secret alongside the session id / ticket.
        secret = (self.result.resumption_psk
                  if self.result.resumption_psk is not None
                  else self.result.master_secret)
        return TlsClientConfig(
            provider=self.config.provider, suites=self.config.suites,
            rng=rng, curves=self.config.curves,
            session_id=self.result.session_id,
            session_ticket=self.result.session_ticket,
            session_master_secret=secret,
            session_suite=self.result.suite)
