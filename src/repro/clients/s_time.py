"""The ``openssl s_time``-like CPS workload (paper section 5.2).

Each client is a closed loop: TCP connect, TLS handshake, close,
repeat. With ``reuse`` (section 5.3) the client resumes its previous
session (abbreviated handshake); a ``full_ratio`` between 0 and 1
mixes full and abbreviated handshakes (Figure 9b's 1:9 uses 0.1).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..core.costmodel import CostModel
from ..core.metrics import ClientMetrics
from ..net.network import Network
from ..tls.actions import TlsAlert
from ..tls.config import TlsClientConfig
from ..tls.constants import ProtocolVersion
from .tls_session import ClientTlsSession

__all__ = ["STimeFleet"]


class STimeFleet:
    """A population of s_time client processes."""

    def __init__(self, sim, net: Network, addresses: List[str],
                 client_config_factory, cost_model: CostModel,
                 metrics: ClientMetrics, n_clients: int,
                 machines: Tuple[str, ...] = ("client0", "client1"),
                 version: ProtocolVersion = ProtocolVersion.TLS12,
                 reuse: bool = False, full_ratio: float = 1.0,
                 mix_rng: Optional[np.random.Generator] = None,
                 stagger: float = 0.04) -> None:
        if n_clients < 1:
            raise ValueError("need at least one client")
        if not 0.0 <= full_ratio <= 1.0:
            raise ValueError("full_ratio in [0, 1]")
        if reuse and full_ratio == 1.0:
            full_ratio = 0.0  # pure-resumption mode ("reuse" flag)
        self.sim = sim
        self.net = net
        self.addresses = addresses
        self.make_client_config = client_config_factory
        self.cm = cost_model
        self.metrics = metrics
        self.n_clients = n_clients
        self.machines = machines
        self.version = version
        self.reuse = reuse or full_ratio < 1.0
        self.full_ratio = full_ratio
        self.mix_rng = mix_rng if mix_rng is not None \
            else np.random.default_rng(0)
        #: Client processes start spread over [0, stagger] seconds —
        #: real benchmark processes never launch in lockstep, and
        #: synchronized starts distort short measurement windows.
        self.stagger = stagger
        self._procs = []

    def start(self) -> None:
        for i in range(self.n_clients):
            self._procs.append(
                self.sim.process(self._client_loop(i),
                                 name=f"s_time-{i}"))

    def _client_loop(self, client_id: int):
        machine = self.machines[client_id % len(self.machines)]
        address = self.addresses[client_id % len(self.addresses)]
        resume_cfg: Optional[TlsClientConfig] = None
        if self.stagger > 0:
            yield self.sim.timeout(float(self.mix_rng.random())
                                   * self.stagger)
        while True:
            base_cfg = self.make_client_config(client_id)
            want_full = (resume_cfg is None
                         or self.mix_rng.random() < self.full_ratio)
            cfg = base_cfg if want_full else resume_cfg

            start = self.sim.now
            try:
                sock = yield from self.net.connect(
                    machine, address, label=f"st{client_id}")
                session = ClientTlsSession(self.sim, sock, cfg, self.cm,
                                           version=self.version)
                result = yield from session.handshake()
            except (TlsAlert, ConnectionError):
                self.metrics.record_error()
                yield self.sim.timeout(1e-3)  # back off briefly
                continue
            now = self.sim.now
            self.metrics.record_handshake(now, now - start, result.resumed)
            sock.close()
            if self.reuse and not result.resumed \
                    and (result.session_id or result.session_ticket):
                resume_cfg = session.resumption_config(cfg.rng)
            # s_time immediately loops; a small client-side turnaround
            # keeps per-client cycles from being zero-time.
            yield self.sim.timeout(self.cm.client_step_cost)
