"""Crypto execution engines (software baseline + QAT Engine layer)."""

from .base import Engine
from .health import CircuitBreaker, OffloadTimeout
from .inflight import InflightCounters
from .qat_engine import ALGORITHM_GROUPS, QatEngine, RingFull
from .software import SoftwareEngine

__all__ = ["Engine", "SoftwareEngine", "QatEngine", "RingFull",
           "InflightCounters", "ALGORITHM_GROUPS",
           "CircuitBreaker", "OffloadTimeout"]
