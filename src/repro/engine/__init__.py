"""Crypto execution engines (software baseline + QAT Engine layer).

The framework machinery (:class:`CircuitBreaker`,
:class:`InflightCounters`, :class:`OffloadTimeout`) lives in
:mod:`repro.offload`; it is re-exported here because the QAT Engine is
the canonical consumer.
"""

from ..offload.errors import OffloadTimeout, RingFull
from ..offload.health import CircuitBreaker
from ..offload.inflight import InflightCounters
from .base import Engine
from .qat_engine import ALGORITHM_GROUPS, QatEngine
from .software import SoftwareEngine

__all__ = ["Engine", "SoftwareEngine", "QatEngine", "RingFull",
           "InflightCounters", "ALGORITHM_GROUPS",
           "CircuitBreaker", "OffloadTimeout"]
