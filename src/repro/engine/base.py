"""Engine interface: where crypto operations get executed.

Mirrors the OpenSSL engine concept. The SSL layer hands each
:class:`~repro.tls.actions.CryptoCall` to an engine:

- :class:`~repro.engine.software.SoftwareEngine` runs it on the
  worker's CPU core (the SW baseline);
- :class:`~repro.engine.qat_engine.QatEngine` offloads offloadable ops
  to a QAT instance, either blocking (straight mode, QAT+S) or
  asynchronously (the QTLS framework).
"""

from __future__ import annotations

from typing import Generator

from ..tls.actions import CryptoCall

__all__ = ["Engine"]


class Engine:
    """Abstract crypto execution engine (simulation-side)."""

    #: True when async offload (pause/resume) is supported.
    supports_async = False

    def execute_blocking(self, call: CryptoCall, owner: object
                         ) -> Generator:
        """Run the op to completion before returning its result.

        A sim generator: ``result = yield from engine.execute_blocking(...)``.
        """
        raise NotImplementedError

    def offloads(self, call: CryptoCall) -> bool:
        """Whether this engine would offload the op (vs. run on CPU)."""
        return False
