"""The QAT Engine layer: bridge between the TLS library and the QAT
driver (paper sections 2.3, 3.2, 4.3).

Two execution modes:

- **straight (blocking)** — :meth:`QatEngine.execute_blocking`:
  submit, then hold the worker's core until the response arrives
  (busy-looping on the response ring). This is the QAT+S
  configuration and exhibits exactly the offload-I/O blocking the
  paper diagnoses (section 2.4).
- **async** — :meth:`QatEngine.submit_async` +
  :meth:`QatEngine.poll_and_dispatch`: submit with a registered
  response cookie and return immediately; a polling scheme later
  retrieves responses and the engine resumes the paused offload jobs
  through their wait-ctx callbacks / notification FDs.

Non-offloadable ops (HKDF) and ops excluded by the configured
``default_algorithm`` set always run on the CPU via the software path.
"""

from __future__ import annotations

from typing import Generator, Iterable, List, Optional, Sequence, Set, Union

from ..core.costmodel import CostModel
from ..cpu.core import Core
from ..crypto.ops import CryptoOpKind
from ..net.epoll_sim import NOTIFY_FD_WRITE_COST
from ..qat.driver import SUBMIT_CPU_COST, QatUserspaceDriver
from ..tls.actions import CryptoCall
from .base import Engine
from .inflight import InflightCounters

__all__ = ["QatEngine", "RingFull", "ALGORITHM_GROUPS"]

#: ``default_algorithm`` groups accepted by the ssl_engine framework
#: (appendix A.7): which op kinds each group enables for offload.
ALGORITHM_GROUPS = {
    "RSA": {CryptoOpKind.RSA_PRIV, CryptoOpKind.RSA_PUB},
    "EC": {CryptoOpKind.ECDSA_SIGN, CryptoOpKind.ECDSA_VERIFY,
           CryptoOpKind.ECDH_KEYGEN, CryptoOpKind.ECDH_COMPUTE},
    "DH": set(),
    "PKEY_CRYPTO": {CryptoOpKind.PRF},
    "CIPHER": {CryptoOpKind.RECORD_CIPHER},
}


class RingFull(RuntimeError):
    """Submission failed because the hardware request ring is full."""


class QatEngine(Engine):
    """Per-worker QAT engine bound to one or more crypto instances.

    One instance is the paper's default deployment; assigning a worker
    several instances from different endpoints employs more
    computation engines (section 2.3: "one process can be assigned
    with multiple QAT instances from different endpoints"). Submission
    round-robins across instances; polling drains all of them.
    """

    supports_async = True

    def __init__(self,
                 driver: Union[QatUserspaceDriver,
                               Sequence[QatUserspaceDriver]],
                 core: Core, cost_model: CostModel,
                 algorithms: Iterable[str] = ("RSA", "EC", "PKEY_CRYPTO",
                                              "CIPHER"),
                 busy_poll_slice: float = 1.5e-6) -> None:
        if isinstance(driver, QatUserspaceDriver):
            self.drivers: List[QatUserspaceDriver] = [driver]
        else:
            self.drivers = list(driver)
            if not self.drivers:
                raise ValueError("need at least one driver")
        self.driver = self.drivers[0]  # primary (compat/introspection)
        self._rr = 0
        self.core = core
        self.cost_model = cost_model
        self.busy_poll_slice = busy_poll_slice
        self.inflight = InflightCounters()
        self._enabled_kinds: Set[CryptoOpKind] = set()
        for group in algorithms:
            try:
                self._enabled_kinds |= ALGORITHM_GROUPS[group]
            except KeyError:
                raise ValueError(f"unknown algorithm group {group!r}") \
                    from None
        self.ops_offloaded = 0
        self.ops_software = 0
        self.responses_dispatched = 0
        # Cycle accounting (CPU seconds) for the utilization analyses.
        self.software_crypto_time = 0.0
        self.blocking_wait_time = 0.0
        self.submit_time = 0.0
        self.poll_time = 0.0

    # -- engine command (paper section 4.3) ---------------------------------

    def get_num_requests_in_flight(self) -> int:
        """The new engine command exposing Rtotal to the application."""
        return self.inflight.total

    def offloads(self, call: CryptoCall) -> bool:
        return (call.op.qat_offloadable
                and call.op.kind in self._enabled_kinds)

    def _try_submit(self, op, compute, cookie=None) -> bool:
        """Round-robin submission across instances; tries every
        instance before reporting ring-full."""
        n = len(self.drivers)
        for i in range(n):
            drv = self.drivers[(self._rr + i) % n]
            if drv.try_submit(op, compute, cookie=cookie):
                self._rr = (self._rr + i + 1) % n
                return True
        return False

    def _poll_all(self, max_responses=None) -> List:
        responses: List = []
        for drv in self.drivers:
            budget = (None if max_responses is None
                      else max_responses - len(responses))
            if budget == 0:
                break
            responses.extend(drv.poll(budget))
        return responses

    # -- software fallback ----------------------------------------------------

    def _execute_software(self, call: CryptoCall, owner: object
                          ) -> Generator:
        cost = self.cost_model.software_cost(call.op)
        yield from self.core.consume(cost, owner=owner)
        self.ops_software += 1
        self.software_crypto_time += cost
        return call.compute()

    # -- straight (blocking) offload -------------------------------------------

    def execute_blocking(self, call: CryptoCall, owner: object
                         ) -> Generator:
        """QAT+S: submit, then spin on the worker's core until the
        response lands. The core does no other work meanwhile — the
        blocking the paper's Figure 3 illustrates."""
        if not self.offloads(call):
            return (yield from self._execute_software(call, owner))
        yield from self.core.consume(SUBMIT_CPU_COST, owner=owner)
        self.submit_time += SUBMIT_CPU_COST
        while not self._try_submit(call.op, call.compute):
            # Ring full: keep retrying (nothing else can progress).
            yield from self.core.consume(self.busy_poll_slice, owner=owner)
            self.blocking_wait_time += self.busy_poll_slice
        self.inflight.increment(call.op.category)
        self.ops_offloaded += 1
        wait_started = self.core.sim.now
        while True:
            responses = self._poll_all()
            yield from self.core.consume(
                self.driver.poll_cpu_cost(len(responses)), owner=owner)
            if responses:
                break
            yield from self.core.consume(self.busy_poll_slice, owner=owner)
        self.blocking_wait_time += self.core.sim.now - wait_started
        # Straight mode has exactly one outstanding request per worker.
        (resp,) = responses
        self.inflight.decrement(resp.request.op.category)
        if resp.error is not None:
            raise resp.error
        return resp.result

    # -- asynchronous offload ----------------------------------------------------

    def submit_async(self, call: CryptoCall, job: object, owner: object
                     ) -> Generator:
        """Submit without waiting; the response resumes ``job`` later.

        Returns True on success, False when the request ring is full
        (the offload job must pause in retry state — section 3.2).
        """
        if not self.offloads(call):
            raise ValueError(
                f"submit_async on non-offloadable op {call.op.kind}")
        yield from self.core.consume(SUBMIT_CPU_COST, owner=owner)
        self.submit_time += SUBMIT_CPU_COST
        ok = self._try_submit(call.op, call.compute, cookie=job)
        if ok:
            self.inflight.increment(call.op.category)
            self.ops_offloaded += 1
        return ok

    def poll_and_dispatch(self, owner: object,
                          max_responses: Optional[int] = None
                          ) -> Generator:
        """One polling operation: retrieve responses, decrement the
        inflight counters, and fire each job's registered notification
        (async-queue callback or notification FD).

        Returns the list of jobs whose responses were delivered.
        """
        responses = self._poll_all(max_responses)
        poll_cost = self.driver.poll_cpu_cost(len(responses))
        self.poll_time += poll_cost
        yield from self.core.consume(poll_cost, owner=owner)
        jobs: List[object] = []
        for resp in responses:
            self.inflight.decrement(resp.request.op.category)
            job = resp.cookie
            job.deliver(resp.result, resp.error)
            self.responses_dispatched += 1
            # The response callback (paper section 4.4): kernel-bypass
            # callback wins if set; otherwise the FD-based path.
            callback, arg = job.wait_ctx.get_callback()
            if callback is not None:
                yield from self.core.consume(
                    self.cost_model.async_queue_cost, owner=owner)
                callback(arg)
            elif job.wait_ctx.notify_fd is not None:
                yield from self.core.kernel_crossing(
                    extra=NOTIFY_FD_WRITE_COST)
                job.wait_ctx.notify_fd.write_event()
            jobs.append(job)
        return jobs
