"""The QAT Engine layer: bridge between the TLS library and the QAT
driver (paper sections 2.3, 3.2, 4.3).

Two execution modes:

- **straight (blocking)** — :meth:`QatEngine.execute_blocking`:
  submit, then hold the worker's core until the response arrives
  (busy-looping on the response ring). This is the QAT+S
  configuration and exhibits exactly the offload-I/O blocking the
  paper diagnoses (section 2.4).
- **async** — :meth:`QatEngine.submit_async` +
  :meth:`QatEngine.poll_and_dispatch`: submit with a registered
  response cookie and return immediately; a polling scheme later
  retrieves responses and the engine resumes the paused offload jobs
  through their wait-ctx callbacks / notification FDs.

Non-offloadable ops (HKDF) and ops excluded by the configured
``default_algorithm`` set always run on the CPU via the software path.

Resilience (the graceful-degradation layer): every accepted request is
tracked in an in-flight table with a deadline; submit retries are
bounded with exponential backoff; each instance has a circuit breaker
that opens after repeated timeouts/corrupted responses; and failed or
expired ops transparently fail over to the software crypto path so the
TLS handshake always completes (or surface a typed
:class:`~repro.engine.health.OffloadTimeout` when fallback is
disabled).
"""

from __future__ import annotations

from typing import (Dict, Generator, Iterable, List, Optional, Sequence,
                    Set, Tuple, Union)

from ..core.costmodel import CostModel
from ..cpu.core import Core
from ..crypto.ops import CryptoOpKind
from ..net.epoll_sim import NOTIFY_FD_WRITE_COST
from ..qat.driver import SUBMIT_CPU_COST, QatUserspaceDriver
from ..qat.faults import QatHardwareError
from ..qat.request import QatRequest
from ..tls.actions import CryptoCall
from .base import Engine
from .health import CircuitBreaker, OffloadTimeout, PendingOp
from .inflight import InflightCounters

__all__ = ["QatEngine", "RingFull", "OffloadTimeout", "ALGORITHM_GROUPS"]

#: ``default_algorithm`` groups accepted by the ssl_engine framework
#: (appendix A.7): which op kinds each group enables for offload.
ALGORITHM_GROUPS = {
    "RSA": {CryptoOpKind.RSA_PRIV, CryptoOpKind.RSA_PUB},
    "EC": {CryptoOpKind.ECDSA_SIGN, CryptoOpKind.ECDSA_VERIFY,
           CryptoOpKind.ECDH_KEYGEN, CryptoOpKind.ECDH_COMPUTE},
    "DH": set(),
    "PKEY_CRYPTO": {CryptoOpKind.PRF},
    "CIPHER": {CryptoOpKind.RECORD_CIPHER},
}


class RingFull(RuntimeError):
    """Submission failed because the hardware request ring is full."""


class QatEngine(Engine):
    """Per-worker QAT engine bound to one or more crypto instances.

    One instance is the paper's default deployment; assigning a worker
    several instances from different endpoints employs more
    computation engines (section 2.3: "one process can be assigned
    with multiple QAT instances from different endpoints"). Submission
    round-robins across instances; polling drains all of them.
    """

    supports_async = True

    def __init__(self,
                 driver: Union[QatUserspaceDriver,
                               Sequence[QatUserspaceDriver]],
                 core: Core, cost_model: CostModel,
                 algorithms: Iterable[str] = ("RSA", "EC", "PKEY_CRYPTO",
                                              "CIPHER"),
                 busy_poll_slice: float = 1.5e-6,
                 request_deadline: float = 25e-3,
                 submit_max_retries: int = 32,
                 breaker_failure_threshold: int = 5,
                 breaker_reset_timeout: float = 10e-3,
                 software_fallback: bool = True) -> None:
        if isinstance(driver, QatUserspaceDriver):
            self.drivers: List[QatUserspaceDriver] = [driver]
        else:
            self.drivers = list(driver)
            if not self.drivers:
                raise ValueError("need at least one driver")
        if request_deadline <= 0:
            raise ValueError("request deadline must be positive")
        if submit_max_retries < 1:
            raise ValueError("need at least one submit attempt")
        self.driver = self.drivers[0]  # primary (compat/introspection)
        self._rr = 0
        self.core = core
        self.cost_model = cost_model
        self.busy_poll_slice = busy_poll_slice
        self.request_deadline = request_deadline
        self.submit_max_retries = submit_max_retries
        self.software_fallback = software_fallback
        self.breakers: List[CircuitBreaker] = [
            CircuitBreaker(lambda: self.core.sim.now,
                           failure_threshold=breaker_failure_threshold,
                           reset_timeout=breaker_reset_timeout)
            for _ in self.drivers
        ]
        #: In-flight table: every accepted async request and its
        #: deadline. The sole source of truth for response ownership —
        #: responses without an entry are stale (already timed out and
        #: failed over) and must be dropped, not delivered twice.
        self._pending: Dict[QatRequest, PendingOp] = {}
        self.inflight = InflightCounters()
        self._enabled_kinds: Set[CryptoOpKind] = set()
        for group in algorithms:
            try:
                self._enabled_kinds |= ALGORITHM_GROUPS[group]
            except KeyError:
                raise ValueError(f"unknown algorithm group {group!r}") \
                    from None
        self.ops_offloaded = 0
        self.ops_software = 0
        self.responses_dispatched = 0
        # Degradation counters.
        self.ops_fallback = 0
        self.op_timeouts = 0
        self.responses_stale = 0
        self.responses_corrupted = 0
        # Cycle accounting (CPU seconds) for the utilization analyses.
        self.software_crypto_time = 0.0
        self.blocking_wait_time = 0.0
        self.submit_time = 0.0
        self.poll_time = 0.0

    # -- engine command (paper section 4.3) ---------------------------------

    def get_num_requests_in_flight(self) -> int:
        """The new engine command exposing Rtotal to the application."""
        return self.inflight.total

    def offloads(self, call: CryptoCall) -> bool:
        return (call.op.qat_offloadable
                and call.op.kind in self._enabled_kinds)

    @property
    def open_breakers(self) -> int:
        return sum(1 for b in self.breakers if b.is_open)

    def _try_submit(self, op, compute, cookie=None
                    ) -> Optional[Tuple[QatRequest, int]]:
        """Round-robin submission across instances; tries every
        instance whose breaker admits traffic before reporting
        ring-full. Returns ``(request, driver_idx)`` or None."""
        n = len(self.drivers)
        for i in range(n):
            idx = (self._rr + i) % n
            breaker = self.breakers[idx]
            if not breaker.allow():
                continue
            request = self.drivers[idx].try_submit(op, compute,
                                                   cookie=cookie)
            if request is not None:
                self._rr = (idx + 1) % n
                return request, idx
            # Ring-full is backpressure, not ill health: release the
            # half-open probe slot (if one was claimed) unconsumed.
            breaker.cancel_probe()
        return None

    def _any_instance_available(self) -> bool:
        """Non-mutating: could a submission be admitted right now (or
        as soon as ring space frees up)?"""
        return any(b.available() for b in self.breakers)

    def submit_backoff(self, attempts: int) -> float:
        """Exponential backoff before retry number ``attempts + 1``."""
        return min(self.busy_poll_slice * (2 ** max(attempts - 1, 0)),
                   128 * self.busy_poll_slice)

    def _poll_all(self, max_responses=None) -> List:
        responses: List = []
        for drv in self.drivers:
            budget = (None if max_responses is None
                      else max_responses - len(responses))
            if budget == 0:
                break
            responses.extend(drv.poll(budget))
        return responses

    # -- software fallback ----------------------------------------------------

    def _execute_software(self, call: CryptoCall, owner: object
                          ) -> Generator:
        cost = self.cost_model.software_cost(call.op)
        yield from self.core.consume(cost, owner=owner)
        self.ops_software += 1
        self.software_crypto_time += cost
        return call.compute()

    def execute_fallback(self, call: CryptoCall, owner: object
                         ) -> Generator:
        """Complete ``call`` on the CPU because the accelerator path is
        degraded (exhausted submit retries / open breakers)."""
        self.ops_fallback += 1
        return (yield from self._execute_software(call, owner))

    def _offload_failed(self, call: CryptoCall, owner: object,
                        exc: BaseException,
                        driver_idx: Optional[int] = None) -> Generator:
        """Offload attempt gave up: degrade to software, or raise the
        typed error when fallback is disabled."""
        if not self.software_fallback:
            raise exc
        self.ops_fallback += 1
        if driver_idx is not None:
            self.drivers[driver_idx].fallback_ops += 1
        return (yield from self._execute_software(call, owner))

    # -- straight (blocking) offload -------------------------------------------

    def execute_blocking(self, call: CryptoCall, owner: object
                         ) -> Generator:
        """QAT+S: submit, then spin on the worker's core until the
        response lands. The core does no other work meanwhile — the
        blocking the paper's Figure 3 illustrates.

        Submit retries are bounded (exponential backoff up to
        ``submit_max_retries``) and the response wait is bounded by
        ``request_deadline``; either bound exhausted degrades the op to
        the software path (or raises :class:`OffloadTimeout`)."""
        if not self.offloads(call):
            return (yield from self._execute_software(call, owner))
        yield from self.core.consume(SUBMIT_CPU_COST, owner=owner)
        self.submit_time += SUBMIT_CPU_COST
        submitted = self._try_submit(call.op, call.compute)
        attempts = 1
        while submitted is None:
            if (attempts >= self.submit_max_retries
                    or not self._any_instance_available()):
                return (yield from self._offload_failed(
                    call, owner,
                    OffloadTimeout(
                        f"submit of {call.op.kind.name} still rejected "
                        f"after {attempts} attempts")))
            delay = self.submit_backoff(attempts)
            yield from self.core.consume(delay, owner=owner)
            self.blocking_wait_time += delay
            attempts += 1
            submitted = self._try_submit(call.op, call.compute)
        request, drv_idx = submitted
        self.inflight.increment(call.op.category)
        self.ops_offloaded += 1
        wait_started = self.core.sim.now
        deadline = wait_started + self.request_deadline
        resp = None
        while resp is None:
            responses = self._poll_all()
            yield from self.core.consume(
                self.driver.poll_cpu_cost(len(responses)), owner=owner)
            for candidate in responses:
                if candidate.request is request:
                    resp = candidate
                else:
                    # A late response to an op that already timed out.
                    self.responses_stale += 1
            if resp is not None:
                break
            if self.core.sim.now >= deadline:
                self.blocking_wait_time += self.core.sim.now - wait_started
                self.inflight.decrement(call.op.category)
                self.op_timeouts += 1
                self.drivers[drv_idx].op_timeouts += 1
                self.breakers[drv_idx].record_failure()
                return (yield from self._offload_failed(
                    call, owner,
                    OffloadTimeout(
                        f"{call.op.kind.name} response missed its "
                        f"{self.request_deadline * 1e3:.1f}ms deadline"),
                    driver_idx=drv_idx))
            yield from self.core.consume(self.busy_poll_slice, owner=owner)
        self.blocking_wait_time += self.core.sim.now - wait_started
        self.inflight.decrement(call.op.category)
        if isinstance(resp.error, QatHardwareError):
            self.responses_corrupted += 1
            self.breakers[drv_idx].record_failure()
            return (yield from self._offload_failed(call, owner, resp.error,
                                                    driver_idx=drv_idx))
        self.breakers[drv_idx].record_success()
        if resp.error is not None:
            raise resp.error
        return resp.result

    # -- asynchronous offload ----------------------------------------------------

    def submit_async(self, call: CryptoCall, job: object, owner: object
                     ) -> Generator:
        """Submit without waiting; the response resumes ``job`` later.

        Returns True on success, False when the request ring is full
        (the offload job must pause in retry state — section 3.2).
        Accepted requests enter the in-flight table with a deadline;
        failed submissions bump ``job.submit_attempts`` so the caller
        can bound its retry loop via :meth:`should_retry_submit`.
        """
        if not self.offloads(call):
            raise ValueError(
                f"submit_async on non-offloadable op {call.op.kind}")
        yield from self.core.consume(SUBMIT_CPU_COST, owner=owner)
        self.submit_time += SUBMIT_CPU_COST
        submitted = self._try_submit(call.op, call.compute, cookie=job)
        if submitted is None:
            job.submit_attempts = getattr(job, "submit_attempts", 0) + 1
            return False
        request, drv_idx = submitted
        now = self.core.sim.now
        self._pending[request] = PendingOp(
            call=call, job=job, driver_idx=drv_idx, submitted_at=now,
            deadline=now + self.request_deadline)
        job.submit_attempts = 0
        self.inflight.increment(call.op.category)
        self.ops_offloaded += 1
        return True

    def should_retry_submit(self, job: object) -> bool:
        """After a False :meth:`submit_async`: keep retrying (pause in
        WANT_RETRY), or give up and degrade to software? Gives up once
        the retry budget is spent or no instance can admit traffic."""
        if getattr(job, "submit_attempts", 0) >= self.submit_max_retries:
            return False
        return self._any_instance_available()

    def is_pending(self, job: object) -> bool:
        """Is an accepted request for ``job`` still in flight?"""
        return any(p.job is job for p in self._pending.values())

    def poll_and_dispatch(self, owner: object,
                          max_responses: Optional[int] = None
                          ) -> Generator:
        """One polling operation: retrieve responses, settle them
        against the in-flight table, and fire each job's registered
        notification (async-queue callback or notification FD).

        Stale responses (no table entry — the op already timed out and
        failed over) are dropped. Corrupted responses degrade to the
        software path and still resume the job with a good result.

        Returns the list of jobs whose responses were delivered.
        """
        responses = self._poll_all(max_responses)
        poll_cost = self.driver.poll_cpu_cost(len(responses))
        self.poll_time += poll_cost
        yield from self.core.consume(poll_cost, owner=owner)
        jobs: List[object] = []
        for resp in responses:
            pending = self._pending.pop(resp.request, None)
            if pending is None:
                self.responses_stale += 1
                continue
            self.inflight.decrement(resp.request.op.category)
            job = pending.job
            breaker = self.breakers[pending.driver_idx]
            if isinstance(resp.error, QatHardwareError):
                self.responses_corrupted += 1
                breaker.record_failure()
                yield from self._deliver_failure(pending, owner, resp.error)
            else:
                breaker.record_success()
                job.deliver(resp.result, resp.error)
                self.responses_dispatched += 1
                yield from self._notify_job(job, owner)
            jobs.append(job)
        return jobs

    def check_timeouts(self, owner: object) -> Generator:
        """Expire in-flight requests past their deadline: count the
        timeout against the owning instance's breaker and resume each
        affected job through the software fallback (or deliver an
        :class:`OffloadTimeout`). Returns the list of jobs resumed."""
        now = self.core.sim.now
        expired = [req for req, p in self._pending.items()
                   if now >= p.deadline]
        jobs: List[object] = []
        for req in expired:
            # Re-check: while this generator yields core time, the
            # event loop can poll and settle entries from our snapshot.
            pending = self._pending.pop(req, None)
            if pending is None:
                continue
            self.inflight.decrement(pending.call.op.category)
            self.op_timeouts += 1
            self.drivers[pending.driver_idx].op_timeouts += 1
            self.breakers[pending.driver_idx].record_failure()
            job = pending.job
            state = getattr(job, "state", None)
            if state is not None and state.name != "PAUSED":
                # Job already rescued/aborted elsewhere; the late
                # response (if any) will be dropped as stale.
                continue
            exc = OffloadTimeout(
                f"{pending.call.op.kind.name} response missed its "
                f"{self.request_deadline * 1e3:.1f}ms deadline")
            yield from self._deliver_failure(pending, owner, exc)
            jobs.append(job)
        return jobs

    def fail_over_job(self, job: object, owner: object) -> Generator:
        """Watchdog rescue for a paused job with *no* in-flight request
        (e.g. its ring entry was wiped by an endpoint reset before the
        engine ever saw a response): complete its pending call on the
        CPU and resume it."""
        call = getattr(job, "pending_call", None)
        if call is None or getattr(job, "state", None) is None \
                or job.state.name != "PAUSED":
            return False
        pending = PendingOp(call=call, job=job, driver_idx=-1,
                            submitted_at=self.core.sim.now,
                            deadline=self.core.sim.now)
        exc = OffloadTimeout(
            f"{call.op.kind.name} lost in flight (no pending entry)")
        yield from self._deliver_failure(pending, owner, exc)
        return True

    # -- delivery helpers -------------------------------------------------------

    def _deliver_failure(self, pending: PendingOp, owner: object,
                         exc: BaseException) -> Generator:
        """Resume a paused job whose offload failed: software-fallback
        result when enabled, the error itself otherwise."""
        job = pending.job
        if self.software_fallback:
            self.ops_fallback += 1
            if pending.driver_idx >= 0:
                self.drivers[pending.driver_idx].fallback_ops += 1
            result = yield from self._execute_software(pending.call, owner)
            job.deliver(result, None)
        else:
            job.deliver(None, exc)
        yield from self._notify_job(job, owner)

    def _notify_job(self, job: object, owner: object) -> Generator:
        """The response callback (paper section 4.4): kernel-bypass
        callback wins if set; otherwise the FD-based path."""
        callback, arg = job.wait_ctx.get_callback()
        if callback is not None:
            yield from self.core.consume(
                self.cost_model.async_queue_cost, owner=owner)
            callback(arg)
        elif job.wait_ctx.notify_fd is not None:
            yield from self.core.kernel_crossing(
                extra=NOTIFY_FD_WRITE_COST)
            job.wait_ctx.notify_fd.write_event()
