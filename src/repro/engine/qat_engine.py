"""The QAT Engine layer: bridge between the TLS library and the QAT
driver (paper sections 2.3, 3.2, 4.3).

Since the offload-backend refactor this module is a thin adapter: all
framework logic (in-flight table, deadlines, circuit breakers,
batching, software failover, stale-response filtering) lives in the
backend-agnostic :class:`~repro.offload.engine.AsyncOffloadEngine`,
and all device access flows through
:class:`~repro.offload.qat_backend.QatBackend`. :class:`QatEngine`
merely binds the two together while preserving the historical
constructor and introspection surface (``drivers``, ``driver``, ...).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Union

from ..core.costmodel import CostModel
from ..cpu.core import Core
from ..offload.engine import ALGORITHM_GROUPS, AsyncOffloadEngine
from ..offload.errors import OffloadTimeout, RingFull
from ..offload.qat_backend import QatBackend
from ..qat.driver import QatUserspaceDriver
from .base import Engine

__all__ = ["QatEngine", "RingFull", "OffloadTimeout", "ALGORITHM_GROUPS"]


class QatEngine(AsyncOffloadEngine, Engine):
    """Per-worker QAT engine bound to one or more crypto instances.

    One instance is the paper's default deployment; assigning a worker
    several instances from different endpoints employs more
    computation engines (section 2.3: "one process can be assigned
    with multiple QAT instances from different endpoints"). Submission
    round-robins across instances; polling drains all of them from a
    rotating start index.
    """

    def __init__(self,
                 driver: Union[QatUserspaceDriver,
                               Sequence[QatUserspaceDriver]],
                 core: Core, cost_model: CostModel,
                 algorithms: Iterable[str] = ("RSA", "EC", "PKEY_CRYPTO",
                                              "CIPHER"),
                 busy_poll_slice: float = 1.5e-6,
                 request_deadline: float = 25e-3,
                 submit_max_retries: int = 32,
                 breaker_failure_threshold: int = 5,
                 breaker_reset_timeout: float = 10e-3,
                 software_fallback: bool = True,
                 batch_size: int = 1,
                 batch_timeout: float = 50e-6,
                 admission_limit: Optional[int] = None,
                 sched_policy: str = "fifo",
                 sched_weights: Optional[Dict[str, int]] = None,
                 conn_budget: Optional[int] = None,
                 backoff_jitter_seed: Optional[int] = None) -> None:
        if isinstance(driver, QatUserspaceDriver):
            drivers = [driver]
        else:
            drivers = list(driver)
            if not drivers:
                raise ValueError("need at least one driver")
        super().__init__(
            QatBackend(drivers), core, cost_model,
            algorithms=algorithms,
            busy_poll_slice=busy_poll_slice,
            request_deadline=request_deadline,
            submit_max_retries=submit_max_retries,
            breaker_failure_threshold=breaker_failure_threshold,
            breaker_reset_timeout=breaker_reset_timeout,
            software_fallback=software_fallback,
            batch_size=batch_size,
            batch_timeout=batch_timeout,
            admission_limit=admission_limit,
            sched_policy=sched_policy,
            sched_weights=sched_weights,
            conn_budget=conn_budget,
            backoff_jitter_seed=backoff_jitter_seed)

    @property
    def drivers(self) -> List[QatUserspaceDriver]:
        return self.backend.drivers

    @property
    def driver(self) -> QatUserspaceDriver:
        """Primary instance's driver (compat/introspection)."""
        return self.backend.drivers[0]
