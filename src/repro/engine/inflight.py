"""Backward-compatible re-export: the in-flight counters moved to
:mod:`repro.offload.inflight` with the offload-backend refactor."""

from __future__ import annotations

from ..offload.inflight import InflightCounters

__all__ = ["InflightCounters"]
