"""The software engine: AES-NI-class CPU crypto (the SW baseline)."""

from __future__ import annotations

from typing import Generator

from ..core.costmodel import CostModel
from ..cpu.core import Core
from ..tls.actions import CryptoCall
from .base import Engine

__all__ = ["SoftwareEngine"]


class SoftwareEngine(Engine):
    """Executes every crypto op on the owning worker's core."""

    supports_async = False

    def __init__(self, core: Core, cost_model: CostModel) -> None:
        self.core = core
        self.cost_model = cost_model
        self.ops_executed = 0
        #: Accumulated CPU seconds spent inside software crypto.
        self.software_crypto_time = 0.0

    def execute_blocking(self, call: CryptoCall, owner: object
                         ) -> Generator:
        cost = self.cost_model.software_cost(call.op)
        yield from self.core.consume(cost, owner=owner)
        self.ops_executed += 1
        self.software_crypto_time += cost
        return call.compute()

    def offloads(self, call: CryptoCall) -> bool:
        return False
