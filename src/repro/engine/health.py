"""Backward-compatible re-exports: the health machinery moved to
:mod:`repro.offload.health` with the offload-backend refactor (it
guards any backend's lanes now, not just QAT instances)."""

from __future__ import annotations

from ..offload.health import CircuitBreaker, OffloadTimeout, PendingOp

__all__ = ["OffloadTimeout", "PendingOp", "CircuitBreaker"]
