"""Streaming latency histograms.

Geometric (log-spaced) buckets give constant memory and ~3% relative
resolution across nine orders of magnitude — sub-microsecond poll
delays and multi-millisecond deadline timeouts land in the same
histogram without pre-declaring a range. Quantiles are answered from
the bucket boundaries (HdrHistogram-style), which is deterministic and
replay-stable: identical inputs produce identical summaries.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Tuple

__all__ = ["StreamingHistogram"]

#: Smallest resolvable latency (seconds): one simulated nanosecond.
_FLOOR = 1e-9


class StreamingHistogram:
    """Fixed-memory log-bucketed histogram of durations (seconds)."""

    __slots__ = ("_base", "_log_base", "_buckets", "count", "total",
                 "min", "max", "zeros")

    def __init__(self, growth: float = 1.25) -> None:
        if growth <= 1.0:
            raise ValueError("bucket growth factor must be > 1")
        self._base = growth
        self._log_base = math.log(growth)
        self._buckets: Dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = 0.0
        #: Zero-duration samples (e.g. a resume stage delivered and
        #: consumed in the same event) are tracked separately — they
        #: have no logarithm.
        self.zeros = 0

    def add(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"negative duration {value}")
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value < _FLOOR:
            self.zeros += 1
            return
        idx = int(math.log(value / _FLOOR) / self._log_base)
        self._buckets[idx] = self._buckets.get(idx, 0) + 1

    def extend(self, values: Iterable[float]) -> None:
        for v in values:
            self.add(v)

    # -- summaries -----------------------------------------------------------

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Value at quantile ``q`` (0-100): the upper bound of the
        bucket containing that rank (a conservative estimate)."""
        if not 0 <= q <= 100:
            raise ValueError("percentile in [0, 100]")
        if self.count == 0:
            return 0.0
        rank = q / 100 * self.count
        seen = self.zeros
        if rank <= seen:
            return 0.0
        for idx in sorted(self._buckets):
            seen += self._buckets[idx]
            if seen >= rank:
                return _FLOOR * self._base ** (idx + 1)
        return self.max

    def summary(self) -> Dict[str, float]:
        """The p50/p95/p99 digest reported per (backend, stage)."""
        return {
            "count": float(self.count),
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "max": self.max if self.count else 0.0,
        }

    def buckets(self) -> List[Tuple[float, float, int]]:
        """``(low, high, count)`` rows for non-empty buckets, sorted."""
        return [(_FLOOR * self._base ** i, _FLOOR * self._base ** (i + 1), n)
                for i, n in sorted(self._buckets.items())]
