"""Per-op trace context, propagated along the offload critical path.

An :class:`OpTrace` is created by the SSL driver when it decides to
offload a crypto op (``ssl/async_job`` submission) and rides along with
the offload job through the engine, the backend and the device model;
each layer records the checkpoint timestamps it owns (see
:mod:`repro.obs.span` for the stage map). The context itself is
passive: plain attribute writes, no simulation events, no CPU cost —
which is what keeps tracing side-effect-free on the simulation.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from .span import Span, SpanStatus, derive_spans

__all__ = ["OpTrace"]


class OpTrace:
    """The lifecycle record of one offloaded crypto op."""

    __slots__ = ("trace_id", "op", "category", "conn_id", "worker_id",
                 "kind", "backend", "lane", "created", "finished",
                 "status", "marks", "attempts")

    def __init__(self, trace_id: int, op: str, category: str,
                 conn_id: int, worker_id: int, kind: str,
                 created: float) -> None:
        self.trace_id = trace_id
        self.op = op                  # op kind label, e.g. "rsa_priv"
        self.category = category      # asym / cipher / prf
        self.conn_id = conn_id        # -1 for jobless (blocking) ops
        self.worker_id = worker_id    # -1 when the owner is not a worker
        self.kind = kind              # handshake / read / write / blocking
        self.backend = ""             # set on backend acceptance
        self.lane = -1
        self.created = created
        self.finished: Optional[float] = None
        self.status = SpanStatus.OPEN
        #: Checkpoint timestamps (simulated seconds), keys from
        #: :data:`repro.obs.span.MARK_ORDER`.
        self.marks: Dict[str, float] = {}
        #: Submit attempts the op needed before acceptance (ring-full
        #: retries surface here).
        self.attempts = 0

    # -- recording ---------------------------------------------------------

    def mark(self, name: str, when: float) -> None:
        """Record a checkpoint (first write wins: a retried mark keeps
        its original timestamp so stage intervals stay monotone)."""
        if name not in self.marks:
            self.marks[name] = when

    def accept(self, when: float, backend: str, lane: int,
               attempts: int = 0) -> None:
        """The backend admitted the op (ring write / RPC credit)."""
        self.mark("accepted", when)
        self.backend = backend
        self.lane = lane
        self.attempts = attempts

    def absorb_device_marks(self, device_marks: Optional[Dict[str, float]]
                            ) -> None:
        """Copy the device model's checkpoint stamps (ring dequeue,
        engine service, response landing, poll retrieval) off a
        completion."""
        if not device_marks:
            return
        for name, when in device_marks.items():
            if when is not None:
                self.mark(name, when)

    # -- closing -----------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self.finished is not None

    def close(self, when: float, status: Optional[str] = None) -> None:
        """Terminate the trace. Idempotent via :attr:`closed` (the
        tracer checks before double-closing)."""
        self.finished = when
        if status is not None:
            self.status = status
        elif self.status == SpanStatus.OPEN:
            self.status = SpanStatus.OK

    # -- derived views --------------------------------------------------------

    @property
    def duration(self) -> Optional[float]:
        return None if self.finished is None else self.finished - self.created

    def spans(self) -> List[Span]:
        """The span tree (root first); only valid once closed."""
        if self.finished is None:
            raise RuntimeError(f"trace #{self.trace_id} is still open")
        return derive_spans(self.op, self.created, self.finished, self.marks)

    def stage_durations(self) -> Dict[str, float]:
        """Stage name -> duration (seconds), root excluded."""
        return {s.name: s.duration for s in self.spans()[1:]}

    def as_dict(self) -> Dict[str, Any]:
        """Deterministic plain-data view (export / sinks / tests)."""
        return {
            "trace_id": self.trace_id,
            "op": self.op,
            "category": self.category,
            "conn_id": self.conn_id,
            "worker_id": self.worker_id,
            "kind": self.kind,
            "backend": self.backend,
            "lane": self.lane,
            "created": self.created,
            "finished": self.finished,
            "status": self.status,
            "attempts": self.attempts,
            "marks": dict(sorted(self.marks.items())),
        }

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<OpTrace #{self.trace_id} {self.op} conn={self.conn_id} "
                f"{self.status}>")
