"""The request-lifecycle tracer.

One :class:`RequestTracer` per simulation (attached to the kernel as
``sim.obs``), shared by every layer on the offload critical path. It
follows the check-enabled-first discipline of
:class:`repro.sim.trace.Tracer`: a disabled tracer is a single
attribute read at each instrumentation site — no allocation, no
formatting, no sim perturbation — so production-shaped runs pay
(approximately) nothing.

Profiling hooks:

- **span sinks** — callables invoked with each closed
  :class:`~repro.obs.context.OpTrace` (stream to a file, feed a live
  dashboard, assert invariants in tests);
- **sampling** — ``sample_rate`` traces a deterministic subset of ops
  (credit-accumulator, not RNG, so sampled runs still replay
  bit-for-bit and never perturb the simulation's random streams);
- **histograms** — closed traces feed per-(backend, stage) streaming
  latency histograms (p50/p95/p99);
- **timelines** — the device model reports per-endpoint engine
  occupancy and per-instance in-flight levels; the worker publishes
  per-reactor-source activity (``w<id>.reactor.<source>.wakes`` /
  ``.busy``) at watchdog/snapshot refresh points.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from .context import OpTrace
from .histogram import StreamingHistogram
from .span import SpanStatus
from .timeline import UtilizationTimeline

__all__ = ["RequestTracer"]

SpanSink = Callable[[OpTrace], None]


class RequestTracer:
    """Span-based tracing + streaming metrics for one simulation."""

    def __init__(self, enabled: bool = True, sample_rate: float = 1.0,
                 keep: bool = True,
                 sinks: Tuple[SpanSink, ...] = ()) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError("sample rate in [0, 1]")
        self.enabled = enabled
        self.sample_rate = sample_rate
        #: Retain closed traces in :attr:`traces` (disable for
        #: long-running profiling where only histograms matter).
        self.keep = keep
        self.sinks: List[SpanSink] = list(sinks)
        self._seq = 0
        self._sample_credit = 0.0
        # Lifecycle counters (stub_status `trace` section).
        self.ops_started = 0
        self.ops_closed = 0
        self.spans_closed = 0
        self.sampled_out = 0
        self.open: Dict[int, OpTrace] = {}
        self.traces: List[OpTrace] = []
        self.by_status: Dict[str, int] = {}
        #: (backend, stage) -> latency histogram; stage "total" is the
        #: root span.
        self.histograms: Dict[Tuple[str, str], StreamingHistogram] = {}
        self.timelines: Dict[str, UtilizationTimeline] = {}
        #: Point-in-time occurrences (instance-lease migrations, …):
        #: ``(time, name, args)`` tuples, exported as Chrome "i"
        #: (instant) events.
        self.events: List[Tuple[float, str, Dict[str, object]]] = []
        #: Firmware-level op counts (mirrors fw_counters, but visible
        #: per tracer so experiments can diff traced vs processed).
        self.fw_records: Dict[str, int] = {}

    def add_sink(self, sink: SpanSink) -> None:
        self.sinks.append(sink)

    # -- trace lifecycle ------------------------------------------------------

    def begin(self, op, conn_id: int, worker_id: int, kind: str,
              now: float) -> Optional[OpTrace]:
        """Open a trace for one crypto op; None when sampled out.

        Callers must check :attr:`enabled` first (the usual pattern),
        and keep the returned context on the offload job so later
        layers can find it.
        """
        self._sample_credit += self.sample_rate
        if self._sample_credit < 1.0:
            self.sampled_out += 1
            return None
        self._sample_credit -= 1.0
        self._seq += 1
        trace = OpTrace(self._seq, op.kind.label, op.category.value,
                        conn_id, worker_id, kind, now)
        self.ops_started += 1
        self.open[trace.trace_id] = trace
        return trace

    def finish(self, trace: OpTrace, now: float,
               status: Optional[str] = None) -> None:
        """Close a trace: derive its span tree, feed the histograms and
        sinks. Closing an already-closed trace is an error — the
        well-formedness invariant is exactly one close per op."""
        if trace.closed:
            raise RuntimeError(
                f"trace #{trace.trace_id} ({trace.op}) closed twice")
        trace.close(now, status)
        self.open.pop(trace.trace_id, None)
        self.ops_closed += 1
        self.by_status[trace.status] = self.by_status.get(trace.status, 0) + 1
        if self.keep:
            self.traces.append(trace)
        backend = trace.backend or "none"
        spans = trace.spans()
        self.spans_closed += len(spans)
        self._histogram(backend, "total").add(spans[0].duration)
        for span in spans[1:]:
            self._histogram(backend, span.name).add(span.duration)
        for sink in self.sinks:
            sink(trace)

    def abort_open(self, job_trace: Optional[OpTrace], now: float) -> None:
        """Connection teardown while an op was open: close as aborted
        (never leak an open span tree)."""
        if job_trace is not None and not job_trace.closed:
            self.finish(job_trace, now, SpanStatus.ABORTED)

    # -- metrics feeds ---------------------------------------------------------

    def _histogram(self, backend: str, stage: str) -> StreamingHistogram:
        key = (backend, stage)
        hist = self.histograms.get(key)
        if hist is None:
            hist = self.histograms[key] = StreamingHistogram()
        return hist

    def latency_sample(self, backend: str, stage: str,
                       duration: float) -> None:
        """Record one duration in a named stage histogram outside the
        span machinery — e.g. the offload scheduler's per-class
        queue-wait times (``sched-wait.<class>``)."""
        self._histogram(backend, stage).add(max(duration, 0.0))

    def util_sample(self, name: str, now: float, value: float,
                    capacity: int = 0) -> None:
        """Record a resource-occupancy change point."""
        timeline = self.timelines.get(name)
        if timeline is None:
            timeline = self.timelines[name] = UtilizationTimeline(
                name, capacity=capacity)
        timeline.sample(now, value)

    def event(self, name: str, now: float,
              args: Optional[Dict[str, object]] = None) -> None:
        """Record a point-in-time occurrence (no duration) — e.g. a
        pool lease migrating between workers."""
        self.events.append((now, name, dict(args or {})))

    def fw_record(self, endpoint_id: int, op, ok: bool) -> None:
        """Firmware hook: one request processed by the accelerator."""
        key = f"ep{endpoint_id}.{op.kind.label}" + ("" if ok else ".err")
        self.fw_records[key] = self.fw_records.get(key, 0) + 1

    # -- summaries ---------------------------------------------------------------

    def percentile(self, backend: str, stage: str, q: float) -> float:
        hist = self.histograms.get((backend, stage))
        return hist.percentile(q) if hist is not None else 0.0

    def stage_summary(self) -> Dict[str, Dict[str, float]]:
        """``"backend/stage" -> {count, mean, p50, p95, p99, max}``."""
        return {f"{b}/{s}": h.summary()
                for (b, s), h in sorted(self.histograms.items())}

    def snapshot_counts(self) -> Dict[str, int]:
        """The stub_status `trace` section payload."""
        return {
            "trace_ops": self.ops_started,
            "trace_open": len(self.open),
            "trace_spans": self.spans_closed,
            "trace_sampled_out": self.sampled_out,
        }

    def clear(self) -> None:
        self.open.clear()
        self.traces.clear()
        self.by_status.clear()
        self.histograms.clear()
        self.timelines.clear()
        self.events.clear()
        self.fw_records.clear()
        self.ops_started = self.ops_closed = 0
        self.spans_closed = self.sampled_out = 0
        self._seq = 0
        self._sample_credit = 0.0
