"""Chrome ``trace_event`` export.

Closed traces serialize to the Trace Event Format consumed by
``chrome://tracing`` and Perfetto (https://ui.perfetto.dev): complete
("X") events for spans, counter ("C") events for the utilization
timelines, instant ("i") events for point occurrences such as pool
lease migrations. The track layout maps the simulation onto the viewer's
process/thread model:

- ``pid`` = worker id (one process row per worker; -1 = jobless ops),
- ``tid`` = connection id (one thread row per connection),

so a connection's handshake reads as a root bar with the stage bars
(queue / batch-wait / ring / engine-service / poll-delay / resume)
nested beneath it, and the device occupancy counters ride on a
synthetic "device" process.

Export is deterministic: events are emitted in a fully specified order
and serialized with sorted keys and fixed separators, so two runs with
the same seed produce byte-identical files (the regression test in
``tests/obs`` locks this down).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from .span import STAGES, SpanStatus
from .tracer import RequestTracer

__all__ = ["chrome_trace_events", "export_chrome_trace",
           "validate_chrome_trace"]

#: pid used for the synthetic utilization-counter track.
DEVICE_PID = 10_000


def _us(t: float) -> float:
    """Simulated seconds -> trace microseconds (ns resolution kept)."""
    return round(t * 1e6, 3)


def chrome_trace_events(tracer: RequestTracer) -> List[Dict[str, Any]]:
    """The ``traceEvents`` list for all *closed* traces + counters.

    Open traces (ops still in flight when the simulation horizon hit)
    are deliberately excluded: the export must be a function of the
    deterministic closed set, and a span with no end has no "X" event.
    """
    events: List[Dict[str, Any]] = []
    for trace in tracer.traces:
        spans = trace.spans()
        root = spans[0]
        events.append({
            "ph": "X", "name": root.name, "cat": trace.category,
            "pid": trace.worker_id, "tid": trace.conn_id,
            "ts": _us(root.start), "dur": _us(root.duration),
            "args": {
                "trace_id": trace.trace_id,
                "status": trace.status,
                "backend": trace.backend or "none",
                "lane": trace.lane,
                "kind": trace.kind,
                "attempts": trace.attempts,
            },
        })
        for span in spans[1:]:
            events.append({
                "ph": "X", "name": span.name, "cat": "stage",
                "pid": trace.worker_id, "tid": trace.conn_id,
                "ts": _us(span.start), "dur": _us(span.duration),
                "args": {"trace_id": trace.trace_id},
            })
    for when, name, args in tracer.events:
        events.append({
            "ph": "i", "name": name, "cat": "pool", "s": "g",
            "pid": DEVICE_PID, "tid": 0,
            "ts": _us(when),
            "args": args,
        })
    for tid, name in enumerate(sorted(tracer.timelines)):
        timeline = tracer.timelines[name]
        for when, value in timeline.steps():
            events.append({
                "ph": "C", "name": name, "cat": "utilization",
                "pid": DEVICE_PID, "tid": tid,
                "ts": _us(when),
                "args": {"busy": value},
            })
    # Viewer-friendly and deterministic: time-major, then track, then
    # name (stable for same-instant events).
    events.sort(key=lambda e: (e["ts"], e["pid"], e["tid"], e["ph"],
                               e["name"], e.get("dur", 0.0)))
    return events


def export_chrome_trace(tracer: RequestTracer, path: str) -> int:
    """Write the JSON object form of the trace; returns #events.

    The file opens directly in Perfetto / ``chrome://tracing``.
    """
    events = chrome_trace_events(tracer)
    doc = {
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.obs",
            "ops_closed": tracer.ops_closed,
            "ops_open_at_export": len(tracer.open),
            "sampled_out": tracer.sampled_out,
        },
        "traceEvents": events,
    }
    with open(path, "w") as fh:
        json.dump(doc, fh, sort_keys=True, separators=(",", ":"))
        fh.write("\n")
    return len(events)


# -- validation (used by tests and the trace_overhead experiment) ------------

_KNOWN_STAGES = frozenset(STAGES)
_REQUIRED = {"ph", "name", "pid", "tid", "ts"}
#: Nesting tolerance in trace microseconds: ts and dur are each
#: rounded to 0.001 us on export, so a stage end can exceed the
#: root's rounded end by up to 2 rounding steps.
_NEST_TOL_US = 0.005


def validate_chrome_trace(doc: Dict[str, Any]) -> List[str]:
    """Check a loaded export against the trace_event schema subset we
    emit. Returns a list of problems (empty = valid)."""
    errors: List[str] = []
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    spans: List[tuple] = []  # (index, event, dur) for well-formed X events
    for i, ev in enumerate(events):
        missing = _REQUIRED - ev.keys()
        if missing:
            errors.append(f"event {i}: missing {sorted(missing)}")
            continue
        if ev["ph"] not in ("X", "C", "i"):
            errors.append(f"event {i}: unknown phase {ev['ph']!r}")
            continue
        if not isinstance(ev["ts"], (int, float)) or ev["ts"] < 0:
            errors.append(f"event {i}: bad ts {ev['ts']!r}")
            continue
        if ev["ph"] == "C":
            continue
        if ev["ph"] == "i":
            if ev.get("s") not in ("g", "p", "t"):
                errors.append(f"event {i}: instant event with bad "
                              f"scope {ev.get('s')!r}")
            continue
        dur = ev.get("dur")
        if not isinstance(dur, (int, float)) or dur < 0:
            errors.append(f"event {i}: X event with bad dur {dur!r}")
            continue
        if ev.get("args", {}).get("trace_id") is None:
            errors.append(f"event {i}: X event without args.trace_id")
            continue
        spans.append((i, ev, dur))
    # Pass 2: roots first (order-insensitive), then nesting checks.
    roots: Dict[Any, tuple] = {}
    for i, ev, dur in spans:
        if ev["name"] in _KNOWN_STAGES:
            continue
        args = ev["args"]
        key = args["trace_id"]
        if key in roots:
            errors.append(f"event {i}: duplicate root for trace {key}")
        roots[key] = (ev["ts"], ev["ts"] + dur)
        if args.get("status") not in SpanStatus.TERMINAL:
            errors.append(
                f"event {i}: root with non-terminal status "
                f"{args.get('status')!r}")
    for i, ev, dur in spans:
        if ev["name"] not in _KNOWN_STAGES:
            continue
        key = ev["args"]["trace_id"]
        root = roots.get(key)
        if root is None:
            errors.append(
                f"event {i}: stage {ev['name']!r} with no root "
                f"(trace {key})")
            continue
        r_ts, r_end = root
        if (ev["ts"] < r_ts - _NEST_TOL_US
                or ev["ts"] + dur > r_end + _NEST_TOL_US):
            errors.append(
                f"event {i}: stage {ev['name']!r} escapes root span "
                f"of trace {key}")
    return errors
