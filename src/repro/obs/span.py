"""The span model: one crypto op = one span tree.

A *trace* follows a single crypto operation through the offload
critical path (paper Figs. 7-12 attribute CPS/latency differences to
exactly these stages). The root span covers the whole op lifetime —
from the moment the SSL driver decides to offload (``ssl/async_job``
submission) to the moment the paused job resumes with the result — and
the child *stage* spans partition the interesting interior:

==============  ============================================================
stage           interval
==============  ============================================================
``queue``       offload decision -> op parked (batched) or accepted
                (unbatched; includes the WANT_RETRY submit-retry dance)
``batch-wait``  coalescing-queue residence: enqueued -> flushed/accepted
``ring``        accepted on the request ring / RPC channel -> pulled by a
                device computation engine (or arrived at the remote
                service)
``engine-service``  device compute + response pipeline: pulled -> response
                landed on the response ring / completion queue
``poll-delay``  response landed -> retrieved by a poll and delivered to
                the job (includes the poll CPU + dispatch)
``resume``      delivered -> the worker event loop actually resumed the
                paused job (async event notification + post-processing)
==============  ============================================================

Stage spans are consecutive, disjoint sub-intervals of the root span,
so the well-formedness invariants (children nested within the root, no
negative durations, stage durations summing to <= the root wall time)
hold by construction whenever the recorded marks are monotone — which
the tests in ``tests/obs`` verify against live runs.

Timestamps are *simulated* seconds throughout: traces are part of the
deterministic simulation output and replay bit-for-bit from the seed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

__all__ = ["SpanStatus", "Span", "STAGES", "MARK_ORDER", "derive_spans"]


class SpanStatus:
    """Terminal status of an op trace (plain strings: JSON-friendly)."""

    OPEN = "open"          # still in flight (not yet a terminal status)
    OK = "ok"              # response delivered and job resumed normally
    TIMEOUT = "timeout"    # deadline missed / lost op, degraded to SW
    FAILOVER = "failover"  # transport-corrupted response or submit path
    #                        exhausted; completed via software fallback
    ERROR = "error"        # crypto-level failure delivered to the job
    ABORTED = "aborted"    # connection torn down while the op was open

    TERMINAL = (OK, TIMEOUT, FAILOVER, ERROR, ABORTED)


#: Stage names in pipeline order.
STAGES: Tuple[str, ...] = ("queue", "batch-wait", "ring", "engine-service",
                           "poll-delay", "resume")

#: Mark names in the order they may be recorded on a trace. ``created``
#: and ``finished`` live on the trace itself; the rest are optional
#: checkpoints (a timed-out op may never get past ``accepted``).
MARK_ORDER: Tuple[str, ...] = ("enqueued", "accepted", "dequeued",
                               "serviced", "landed", "delivered")


class Span:
    """One closed interval of a trace (root or stage)."""

    __slots__ = ("name", "start", "end", "parent")

    def __init__(self, name: str, start: float, end: float,
                 parent: Optional[str] = None) -> None:
        self.name = name
        self.start = start
        self.end = end
        self.parent = parent

    @property
    def duration(self) -> float:
        return self.end - self.start

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<Span {self.name} [{self.start:.9f}, {self.end:.9f}]"
                f"{' <' + self.parent if self.parent else ''}>")


#: (stage name, start mark, end mark). ``None`` start means the trace's
#: ``created`` time; ``None`` end means the trace's ``finished`` time.
_STAGE_BOUNDS = (
    ("queue", None, "enqueued"),
    ("batch-wait", "enqueued", "accepted"),
    ("ring", "accepted", "dequeued"),
    ("engine-service", "dequeued", "landed"),
    ("poll-delay", "landed", "delivered"),
    ("resume", "delivered", None),
)


def derive_spans(root_name: str, created: float, finished: float,
                 marks: Dict[str, float]) -> List[Span]:
    """Build the span tree for one closed trace.

    Returns the root span first, then one stage span per pair of
    consecutive recorded marks. Stages whose bounding marks were never
    recorded (e.g. ``ring`` for an op that never reached the backend)
    are simply absent. An unbatched op has no ``enqueued`` mark, so its
    ``queue`` stage runs straight to ``accepted``.
    """
    spans = [Span(root_name, created, finished)]
    # The "queue" stage ends at the first recorded mark (enqueued for
    # batched ops, accepted for unbatched); later stages use the table.
    first_mark = next((marks[m] for m in MARK_ORDER if m in marks), None)
    if first_mark is not None:
        spans.append(Span("queue", created, first_mark, parent=root_name))
    for name, start_mark, end_mark in _STAGE_BOUNDS[1:]:
        start = marks.get(start_mark)
        end = finished if end_mark is None else marks.get(end_mark)
        if start is None or end is None:
            continue
        spans.append(Span(name, start, end, parent=root_name))
    return spans
