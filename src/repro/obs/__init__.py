"""repro.obs — request-lifecycle tracing and metrics.

A span-based observability layer for the QTLS simulation: each
offloaded crypto op carries an :class:`~repro.obs.context.OpTrace`
from SSL-driver submission through the offload engine and the device
model back to job resume; closed traces become span trees, feed
streaming per-stage latency histograms and export as Chrome
``trace_event`` JSON (viewable in Perfetto).

Tracing is off unless a :class:`~repro.obs.tracer.RequestTracer` is
attached to the simulator (``sim.obs``); every instrumentation site
checks ``obs is not None and obs.enabled`` before doing any work, so
the disabled cost is one attribute read.
"""

from .context import OpTrace
from .export import chrome_trace_events, export_chrome_trace, \
    validate_chrome_trace
from .histogram import StreamingHistogram
from .span import MARK_ORDER, STAGES, Span, SpanStatus, derive_spans
from .timeline import UtilizationTimeline
from .tracer import RequestTracer

__all__ = [
    "OpTrace",
    "RequestTracer",
    "Span",
    "SpanStatus",
    "StreamingHistogram",
    "UtilizationTimeline",
    "STAGES",
    "MARK_ORDER",
    "derive_spans",
    "chrome_trace_events",
    "export_chrome_trace",
    "validate_chrome_trace",
]
