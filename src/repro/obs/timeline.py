"""Utilization timelines: step functions sampled at change points.

The device model reports "how busy is this resource" (busy computation
engines per endpoint, in-flight ops per crypto instance) every time the
value changes; the timeline stores the step function and answers
time-weighted averages over arbitrary windows. Consecutive samples
with the same value are deduplicated, so a poll storm that never
changes occupancy costs one stored sample.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import List, Tuple

__all__ = ["UtilizationTimeline"]


class UtilizationTimeline:
    """A right-continuous step function of resource occupancy."""

    __slots__ = ("name", "capacity", "_times", "_values", "peak")

    def __init__(self, name: str, capacity: int = 0) -> None:
        self.name = name
        #: Advisory maximum (engines per endpoint, ring capacity);
        #: 0 = unknown.
        self.capacity = capacity
        self._times: List[float] = []
        self._values: List[float] = []
        self.peak = 0.0

    def sample(self, when: float, value: float) -> None:
        """Record ``value`` holding from ``when`` onward."""
        if self._times:
            if when < self._times[-1]:
                raise ValueError(
                    f"{self.name}: non-monotone sample at {when}")
            if value == self._values[-1]:
                return  # dedupe: the step function did not move
            if when == self._times[-1]:
                # Same-instant revision (several transitions inside one
                # sim event): keep only the final value.
                self._values[-1] = value
                self.peak = max(self.peak, value)
                return
        self._times.append(when)
        self._values.append(value)
        if value > self.peak:
            self.peak = value

    # -- queries ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._times)

    def value_at(self, when: float) -> float:
        """Value of the step function at time ``when`` (0 before the
        first sample)."""
        idx = bisect_right(self._times, when) - 1
        return self._values[idx] if idx >= 0 else 0.0

    def mean(self, start: float, end: float) -> float:
        """Time-weighted average occupancy over ``[start, end]``."""
        if end <= start:
            raise ValueError("empty window")
        area = 0.0
        t = start
        value = self.value_at(start)
        lo = bisect_left(self._times, start)
        for i in range(lo, len(self._times)):
            when = self._times[i]
            if when >= end:
                break
            area += value * (when - t)
            t, value = when, self._values[i]
        area += value * (end - t)
        return area / (end - start)

    def utilization(self, start: float, end: float) -> float:
        """Mean occupancy normalized by capacity (0 when unknown)."""
        if not self.capacity:
            return 0.0
        return self.mean(start, end) / self.capacity

    def steps(self) -> List[Tuple[float, float]]:
        """The raw ``(time, value)`` change points."""
        return list(zip(self._times, self._values))
