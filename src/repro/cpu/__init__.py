"""Simulated CPU substrate: cores, hyper-threading, switch costs."""

from .core import Core, CpuStats, CpuTopology

__all__ = ["Core", "CpuStats", "CpuTopology"]
