"""Simulated CPU cores.

A :class:`Core` is a serially-shared execution unit. Simulation
processes charge CPU time to a core with :meth:`Core.consume`; when two
processes share a core (e.g. an Nginx worker and its timer-based
polling thread, pinned together exactly as in the paper's testbed) they
serialize and pay a context-switch penalty on every ownership change —
the overhead the heuristic polling scheme eliminates (paper section 3.3).

Hyper-threading follows the paper's observation that CPS scales
linearly in HT cores: each logical core is modelled as an independent
unit whose ``speed`` already folds in the HT-sibling discount (see
:class:`CpuTopology`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, List, Optional

from ..sim.resources import Resource

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.kernel import Simulator

__all__ = ["Core", "CpuTopology", "CpuStats"]


class CpuStats:
    """Per-core accounting of where cycles went."""

    __slots__ = ("busy_time", "context_switches", "switch_time",
                 "kernel_crossings", "kernel_time")

    def __init__(self) -> None:
        self.busy_time = 0.0
        self.context_switches = 0
        self.switch_time = 0.0
        self.kernel_crossings = 0
        self.kernel_time = 0.0


class Core:
    """One logical CPU core with serial execution and switch costs."""

    def __init__(self, sim: "Simulator", core_id: int, speed: float = 1.0,
                 context_switch_cost: float = 2.0e-6,
                 kernel_switch_cost: float = 0.65e-6) -> None:
        if speed <= 0:
            raise ValueError("speed must be positive")
        self.sim = sim
        self.core_id = core_id
        self.speed = speed
        self.context_switch_cost = context_switch_cost
        self.kernel_switch_cost = kernel_switch_cost
        self.stats = CpuStats()
        self._lock = Resource(sim, capacity=1, name=f"core{core_id}")
        self._last_owner: Optional[object] = None

    def consume(self, cost: float, owner: object = None) -> Generator:
        """Charge ``cost`` seconds of nominal CPU work to this core.

        Use as ``yield from core.consume(...)`` inside a process. The
        actual duration is ``cost / speed`` plus a context-switch
        penalty when ``owner`` differs from the previous owner.
        """
        if cost < 0:
            raise ValueError("negative CPU cost")
        req = self._lock.request()
        try:
            yield req
        except BaseException:
            # Interrupted (e.g. the worker process was killed) while
            # parked on — or just granted — the core lock. Hand the
            # slot back so sharers of this core don't wedge forever.
            if req.triggered:
                self._lock.release()
            else:
                req.cancel()
            raise
        try:
            duration = cost / self.speed
            if owner is not None and self._last_owner is not None \
                    and owner is not self._last_owner:
                duration += self.context_switch_cost
                self.stats.context_switches += 1
                self.stats.switch_time += self.context_switch_cost
            if owner is not None:
                self._last_owner = owner
            self.stats.busy_time += duration
            if duration > 0:
                yield self.sim.timeout(duration)
        finally:
            self._lock.release()

    def kernel_crossing(self, extra: float = 0.0) -> Generator:
        """Charge one user→kernel→user mode switch (plus ``extra`` work
        done while in the kernel). This is the cost the kernel-bypass
        notification scheme avoids (paper section 3.4)."""
        self.stats.kernel_crossings += 1
        self.stats.kernel_time += self.kernel_switch_cost + extra
        yield from self.consume(self.kernel_switch_cost + extra)

    @property
    def utilization_window(self) -> float:
        """Busy time so far (caller divides by elapsed time)."""
        return self.stats.busy_time


class CpuTopology:
    """A set of logical cores with the HT discount folded into speed.

    ``n_workers`` logical cores are created. Following the testbed
    layout ("two Nginx workers on two dedicated HT cores belonging to
    the same physical core"), logical cores are carved out of physical
    cores in sibling pairs; each sibling runs at ``ht_efficiency`` of a
    full core, which preserves the paper's linear-in-HT scaling while
    charging the HT discount.
    """

    def __init__(self, sim: "Simulator", n_cores: int,
                 ht_efficiency: float = 1.0,
                 context_switch_cost: float = 2.0e-6,
                 kernel_switch_cost: float = 0.65e-6) -> None:
        if n_cores < 1:
            raise ValueError("need at least one core")
        if not 0 < ht_efficiency <= 1.0:
            raise ValueError("ht_efficiency in (0, 1]")
        self.sim = sim
        self.ht_efficiency = ht_efficiency
        self.cores: List[Core] = [
            Core(sim, i, speed=ht_efficiency,
                 context_switch_cost=context_switch_cost,
                 kernel_switch_cost=kernel_switch_cost)
            for i in range(n_cores)
        ]

    def __len__(self) -> int:
        return len(self.cores)

    def __getitem__(self, i: int) -> Core:
        return self.cores[i]

    def total_busy_time(self) -> float:
        return sum(c.stats.busy_time for c in self.cores)
