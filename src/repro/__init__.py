"""QTLS reproduction: high-performance TLS asynchronous offload framework.

Reproduction of Hu et al., "QTLS: High-Performance TLS Asynchronous
Offload Framework with Intel QuickAssist Technology" (PPoPP 2019) on a
from-scratch simulated substrate. See DESIGN.md for the system
inventory and EXPERIMENTS.md for paper-vs-measured results.
"""

__version__ = "1.0.0"
