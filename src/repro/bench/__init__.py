"""Benchmark harness reproducing every table and figure of the paper."""

from .experiments import ALL_EXPERIMENTS
from .reporting import ExperimentResult, format_table
from .runner import CLIENTS_PER_WORKER, Testbed, Windows

__all__ = ["ALL_EXPERIMENTS", "Testbed", "Windows", "CLIENTS_PER_WORKER",
           "ExperimentResult", "format_table"]
