"""Fault injection: CPS through fault -> degradation -> recovery.

Not a paper figure — a robustness experiment over the paper's testbed.
A deterministic :class:`~repro.qat.faults.FaultPlan` drops >= 10% of
QAT responses and takes endpoint 0 down for a window mid-run; the
engine's deadlines, circuit breakers and software failover must keep
every handshake completing, and CPS must recover to the fault-free
baseline once the card heals.

Timeline (full mode, simulated seconds)::

    0.00          0.04        0.10           0.16   0.20        0.28
    |-- warmup --|-- baseline --|-- FAULTS ---|------|-- recovery --|
                                ep0 outage 0.10-0.14
                                12% response loss 0.10-0.16

Checks: zero client errors and zero connections left hanging in
TLS-ASYNC; software fallback actually exercised (fallback_ops > 0,
responses actually lost); recovery-window CPS within 5% of a fault-free
run's same window; and the faulted run replays bit-for-bit from its
seed (identical handshake record and fault event trace).
"""

from __future__ import annotations

from typing import Optional

from ..reporting import ExperimentResult
from ..runner import Testbed

__all__ = ["run"]

#: Engine knobs tightened for fault runs. The deadline must clear the
#: worst-case *legitimate* queueing at the offered load (~100 clients
#: per worker => ~3-4 ms at the card's service rate) with margin, or
#: post-outage catch-up bursts trip spurious timeouts, open the
#: breakers and the system oscillates between offload and software
#: (a metastable failure, not graceful degradation). 8 ms = ~2x worst
#: legitimate queueing while still detecting lost responses well
#: inside the outage window. The submit-retry budget is cut so that
#: rejected submissions degrade to software after ~0.4 ms instead of
#: the default ~5 ms dance.
FAULT_OVERRIDES = dict(qat_request_deadline=8e-3,
                       qat_watchdog_interval=1e-3,
                       qat_submit_max_retries=8)

#: Closed-loop fleets produce a bursty CPS signal (clients finish in
#: near-synchronized rounds ~15-20 ms apart), so recovery windows must
#: span several burst periods or the clean/faulted comparison measures
#: phase jitter instead of residual degradation.
FULL_TIMELINE = dict(
    warmup=0.04, baseline=(0.04, 0.10), fault=(0.10, 0.16),
    outage=(0, 0.10, 0.14), recovery=(0.20, 0.28), until=0.30)
SMOKE_TIMELINE = dict(
    warmup=0.02, baseline=(0.02, 0.04), fault=(0.04, 0.07),
    outage=(0, 0.04, 0.06), recovery=(0.09, 0.15), until=0.15)

RESPONSE_LOSS = 0.12


def _fault_plan_kwargs(tl: dict) -> dict:
    return dict(response_loss=RESPONSE_LOSS,
                response_loss_window=tl["fault"],
                outages=(tl["outage"],))


def _run_one(config: str, workers: int, seed: int, tl: dict,
             faulted: bool) -> Testbed:
    bed = Testbed(config, workers=workers, suites=("TLS-RSA",), seed=seed,
                  fault_plan=_fault_plan_kwargs(tl) if faulted else None,
                  **FAULT_OVERRIDES)
    bed.add_s_time_fleet()
    bed.sim.run(until=tl["until"])
    return bed


def _stuck_connections(bed: Testbed, max_age: float) -> int:
    """Connections still parked in TLS-ASYNC longer than ``max_age``
    at the end of the run (a hung handshake the degradation machinery
    failed to rescue)."""
    now = bed.sim.now
    stuck = 0
    for worker in bed.server.workers:
        for conn in worker.conns.values():
            if (conn.in_async and conn.async_since is not None
                    and now - conn.async_since > max_age):
                stuck += 1
    return stuck


def _degradation(bed: Testbed) -> dict:
    out = dict(fallback_ops=0, op_timeouts=0, watchdog_rescues=0,
               submit_failures=0)
    for worker in bed.server.workers:
        worker.stop()  # publishes final degradation counters
        st = worker.stub_status
        out["fallback_ops"] += st.fallback_ops
        out["op_timeouts"] += st.op_timeouts
        out["watchdog_rescues"] += st.watchdog_rescues
        out["submit_failures"] += st.submit_failures
    if bed.fault_plan is not None:
        out.update({f"faults.{k}": v
                    for k, v in bed.fault_plan.counters().items()})
    return out


def run(quick: bool = True, seed: int = 7,
        smoke: bool = False) -> ExperimentResult:
    tl = SMOKE_TIMELINE if smoke else FULL_TIMELINE
    workers = 1 if smoke else 2
    configs = ("QTLS",) if smoke else ("QTLS", "QAT+A")
    result = ExperimentResult(
        exp_id="faults",
        title="CPS through QAT fault -> degradation -> recovery "
              f"({RESPONSE_LOSS:.0%} response loss + endpoint outage)",
        columns=["config", "metric", "value"],
        notes="windows in simulated seconds; clean = fault-free run "
              "with identical seed and knobs")

    stuck_age = 2 * FAULT_OVERRIDES["qat_request_deadline"]
    repro_ref: Optional[Testbed] = None
    for config in configs:
        clean = _run_one(config, workers, seed, tl, faulted=False)
        faulted = _run_one(config, workers, seed, tl, faulted=True)
        if config == "QTLS":
            repro_ref = faulted

        b0, b1 = tl["baseline"]
        f0, f1 = tl["fault"]
        r0, r1 = tl["recovery"]
        clean_recovery = clean.metrics.cps(r0, r1)
        vals = {
            "baseline_cps": faulted.metrics.cps(b0, b1),
            "fault_cps": faulted.metrics.cps(f0, f1),
            "recovery_cps": faulted.metrics.cps(r0, r1),
            "clean_recovery_cps": clean_recovery,
            "client_errors": faulted.metrics.errors,
            "stuck_connections": _stuck_connections(faulted, stuck_age),
        }
        vals.update(_degradation(faulted))
        for metric, value in vals.items():
            result.add_row(config=config, metric=metric, value=value)

        result.add_check(
            f"{config}: zero client errors under faults", "0",
            str(vals["client_errors"]), vals["client_errors"] == 0)
        result.add_check(
            f"{config}: no connection hung in TLS-ASYNC", "0",
            str(vals["stuck_connections"]), vals["stuck_connections"] == 0)
        result.add_check(
            f"{config}: responses actually lost", "> 0",
            str(vals["faults.responses_lost"]),
            vals["faults.responses_lost"] > 0)
        result.add_check(
            f"{config}: software fallback exercised", "> 0",
            str(vals["fallback_ops"]), vals["fallback_ops"] > 0)
        ratio = (vals["recovery_cps"] / clean_recovery
                 if clean_recovery else 0.0)
        result.add_check(
            f"{config}: CPS recovers to within 5% of fault-free",
            ">= 0.95x", f"{ratio:.3f}x", ratio >= 0.95)

    # Bit-for-bit reproducibility: same seed + same plan -> identical
    # handshake record and identical fault event trace.
    assert repro_ref is not None
    replay = _run_one("QTLS", workers, seed, tl, faulted=True)
    same_hs = replay.metrics.handshakes == repro_ref.metrics.handshakes
    same_trace = (replay.fault_plan.trace()
                  == repro_ref.fault_plan.trace())
    result.add_check("faulted run replays bit-for-bit from seed",
                     "identical handshakes + fault trace",
                     f"handshakes {'==' if same_hs else '!='}, "
                     f"trace {'==' if same_trace else '!='}",
                     same_hs and same_trace)
    return result
