"""The motivating measurement (paper sections 1 and 2.4): straight
offloading underutilizes BOTH the CPU (cycles burned waiting) and the
accelerator (at most one engine busy per worker), while the async
framework loads both.

Reported per configuration under identical load:

- worker-CPU busy fraction *and* how much of it is useful (non-wait),
- mean busy QAT engines (of 30),
- achieved CPS.

The paper states: "for each application process, no more than one
computation engine can be employed at the same time" in straight mode.
"""

from __future__ import annotations

from ..reporting import ExperimentResult
from ..runner import Testbed, Windows

__all__ = ["run"]


def run(quick: bool = True, seed: int = 7) -> ExperimentResult:
    windows = Windows(0.06, 0.1) if quick else Windows(0.15, 0.25)
    workers = 4
    result = ExperimentResult(
        exp_id="utilization",
        title="CPU & accelerator utilization under identical load "
              f"({workers} workers, TLS-RSA)",
        columns=["config", "value", "cpu_busy_frac", "busy_engines"],
        notes="value = CPS; busy_engines = time-averaged busy QAT "
              "computation engines (of 30)")
    stats = {}
    for config in ("QAT+S", "QTLS"):
        bed = Testbed(config, workers=workers, suites=("TLS-RSA",),
                      seed=seed)
        # Sample engine occupancy while the workload runs.
        samples = []

        def sampler(sim, bed=bed, samples=samples):
            while True:
                yield sim.timeout(1e-4)
                samples.append(sum(ep.busy_engines
                                   for ep in bed.device.endpoints))

        bed.sim.process(sampler(bed.sim))
        cps = bed.measure_cps(windows)
        cpu_busy = bed.server.total_busy_time() / (windows.end * workers)
        busy_engines = sum(samples) / max(1, len(samples))
        stats[config] = (cps, cpu_busy, busy_engines)
        result.add_row(config=config, value=cps,
                       cpu_busy_frac=round(cpu_busy, 3),
                       busy_engines=round(busy_engines, 2))

    s_cps, s_cpu, s_eng = stats["QAT+S"]
    q_cps, q_cpu, q_eng = stats["QTLS"]
    result.add_check(
        "straight mode: <= ~1 busy engine per worker (section 2.4)",
        f"<= {workers * 1.3:.0f}", f"{s_eng:.2f}",
        s_eng <= workers * 1.3)
    result.add_check(
        "async framework employs several times more engines",
        "> 2x of straight", f"{q_eng / max(s_eng, 1e-9):.1f}x",
        q_eng > 2 * s_eng)
    result.add_check(
        "straight mode burns CPU while waiting (busy but unproductive)",
        "CPU ~saturated in both, >= 0.85",
        f"QAT+S {s_cpu:.2f} / QTLS {q_cpu:.2f}",
        s_cpu >= 0.85 and q_cpu >= 0.7)
    result.add_check(
        "same busy CPUs, several-fold CPS difference",
        "> 3x", f"{q_cps / s_cps:.1f}x", q_cps > 3 * s_cps)
    return result
