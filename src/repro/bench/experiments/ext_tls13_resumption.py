"""Extension experiment: TLS 1.3 PSK resumption (beyond the paper).

The paper evaluates session resumption for TLS 1.2 only (Figure 9).
With TLS 1.3's psk_dhe_ke the picture changes: resumption drops the
RSA signature but *keeps* two ECC ops (forward secrecy) and adds HKDF
binder work — so, unlike TLS 1.2's PRF-only abbreviated handshake, the
accelerator still has asymmetric work to win on.
"""

from __future__ import annotations

from ..reporting import ExperimentResult
from ..runner import Testbed, Windows

__all__ = ["run"]


def run(quick: bool = True, seed: int = 7) -> ExperimentResult:
    windows = Windows(0.08, 0.12) if quick else Windows(0.2, 0.3)
    workers = 2
    result = ExperimentResult(
        exp_id="ext-tls13-resumption",
        title="TLS 1.3 PSK resumption CPS (psk_dhe_ke), 2 workers "
              "[extension]",
        columns=["config", "mode", "value"])
    cps = {}
    for config in ("SW", "QTLS"):
        for mode, fleet_kw in (("full", {}), ("resumed", dict(reuse=True))):
            bed = Testbed(config, workers=workers,
                          suites=("TLS1.3-ECDHE-RSA",), tls_version="1.3",
                          seed=seed, session_tickets=True)
            bed.add_s_time_fleet(**fleet_kw)
            bed.run_window(windows)
            # In reuse mode count only the resumed handshakes (each
            # client's bootstrap full handshake is excluded).
            v = bed.metrics.cps(windows.warmup, windows.end,
                                resumed=(mode == "resumed"))
            cps[(config, mode)] = v
            result.add_row(config=config, mode=mode, value=v)

    res_gain = cps[("QTLS", "resumed")] / cps[("SW", "resumed")]
    result.add_check(
        "QTLS stays ahead on 1.3 resumption (the ECC pair is still "
        "offloadable, unlike 1.2's PRF-only abbreviated handshake)",
        "> 1.1x", f"{res_gain:.2f}x", res_gain > 1.1)
    up_sw = cps[("SW", "resumed")] / cps[("SW", "full")]
    result.add_check(
        "SW: resumption is a big win (the software RSA disappears)",
        "> 1.5x", f"{up_sw:.2f}x", up_sw > 1.5)
    up_q = cps[("QTLS", "resumed")] / cps[("QTLS", "full")]
    result.add_check(
        "QTLS: resumption is roughly CPS-neutral — the dropped RSA was "
        "offloaded anyway, and the PSK binder's CPU-only HKDF work "
        "offsets the savings (a modeled finding, not a paper claim)",
        "0.8-1.2x", f"{up_q:.2f}x", 0.8 < up_q < 1.2)
    return result
