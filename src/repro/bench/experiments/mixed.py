"""Mixed workload: record-cipher saturation vs. handshake latency
under the three offload scheduling policies.

Not a paper figure — the experiment enabled by the class-aware offload
scheduler (``repro.offload.scheduler``). One worker runs two fleets at
once:

- a **keepalive ab fleet** pulling large files, so the engine sees a
  continuous stream of record-cipher ops (eight cipher ops per 128 KB
  response, Figure 10);
- an **s_time fleet** opening fresh TLS-RSA connections, so every
  connection costs an RSA private-key op on the same engine.

``offload_admission_limit`` keeps the accelerator window bounded, so
excess ops queue in the class lanes and the arbitration policy decides
who goes next:

- **fifo** — the historical single queue: handshake asym ops wait
  behind whatever burst of cipher ops arrived first, so handshake tail
  latency tracks the cipher backlog;
- **strict-priority** — asym first, with the deficit fallback keeping
  the cipher lane alive under constant handshake pressure;
- **weighted-fair** — DRR with the default 8/2/1 weights: handshake
  ops overtake most of the cipher backlog while the cipher lane keeps
  a guaranteed share.

Checks: the admission queue really holds both classes under fifo; both
class-aware policies hold handshake p99 below fifo's; the cipher lane
is still served under strict-priority (no starvation); every policy
replays bit-for-bit from its seed.
"""

from __future__ import annotations

from typing import Dict

from ..reporting import ExperimentResult
from ..runner import Testbed, Windows

__all__ = ["run"]

WORKERS = 1
#: Keepalive ab clients x file size: a standing record-cipher backlog.
AB_CLIENTS = 48
FILE_SIZE = 128 * 1024
#: Fresh-handshake clients sharing the same worker.
HANDSHAKE_CLIENTS = 32
#: Small enough that the mixed load keeps the class lanes populated.
ADMISSION_LIMIT = 8

POLICIES = ("fifo", "strict-priority", "weighted-fair")

FULL_WINDOWS = Windows(warmup=0.05, measure=0.1)
SMOKE_WINDOWS = Windows(warmup=0.03, measure=0.05)


def _p99(bed: Testbed, windows: Windows) -> float:
    durations = sorted(d for t, d, _ in bed.metrics.handshakes
                       if windows.warmup <= t < windows.end)
    if not durations:
        return 0.0
    return durations[int(0.99 * (len(durations) - 1))]


def _lane_total(bed: Testbed, lane: str, counter: str) -> int:
    return sum(getattr(w.engine.scheduler.lane(lane), counter)
               for w in bed.server.workers)


def _run_mix(policy: str, seed: int, windows: Windows) -> Testbed:
    bed = Testbed("QTLS", workers=WORKERS, suites=("TLS-RSA",),
                  seed=seed, offload_admission_limit=ADMISSION_LIMIT,
                  offload_sched_policy=policy)
    bed.add_ab_fleet(AB_CLIENTS, FILE_SIZE, keepalive=True)
    bed.add_s_time_fleet(n_clients=HANDSHAKE_CLIENTS)
    bed.run_window(windows)
    return bed


def run(quick: bool = True, seed: int = 7,
        smoke: bool = False) -> ExperimentResult:
    windows = SMOKE_WINDOWS if smoke else FULL_WINDOWS
    result = ExperimentResult(
        exp_id="mixed",
        title="class-aware offload scheduling under a mixed "
              "record-cipher + handshake load",
        columns=["scenario", "policy", "metric", "value"],
        notes=f"{WORKERS} worker, TLS-RSA; {AB_CLIENTS} keepalive ab "
              f"clients x {FILE_SIZE // 1024} KB + {HANDSHAKE_CLIENTS} "
              f"s_time clients; admission limit {ADMISSION_LIMIT}")

    beds: Dict[str, Testbed] = {}
    for policy in POLICIES:
        bed = _run_mix(policy, seed, windows)
        beds[policy] = bed
        vals = {
            "cps": bed.metrics.cps(windows.warmup, windows.end),
            "p99_handshake_ms": _p99(bed, windows) * 1e3,
            "throughput_mbps":
                bed.metrics.throughput_bps(windows.warmup, windows.end)
                / 1e6,
            "asym_lane_enqueued": _lane_total(bed, "handshake-asym",
                                              "enqueued"),
            "cipher_lane_enqueued": _lane_total(bed, "record-cipher",
                                                "enqueued"),
            "cipher_lane_served": _lane_total(bed, "record-cipher",
                                              "served"),
            "cipher_lane_starved": _lane_total(bed, "record-cipher",
                                               "starved"),
            "client_errors": bed.metrics.errors,
        }
        for metric, value in vals.items():
            result.add_row(scenario="mix", policy=policy, metric=metric,
                           value=value)
        result.add_check(
            f"mix/{policy}: zero client errors", "0",
            str(vals["client_errors"]), vals["client_errors"] == 0)

    def val(policy, metric):
        return result.value(scenario="mix", policy=policy, metric=metric)

    # The contention is real: under fifo both classes actually queue.
    for lane in ("asym", "cipher"):
        enq = val("fifo", f"{lane}_lane_enqueued")
        result.add_check(
            f"mix/fifo: {lane} lane sees queued ops", "> 0", str(enq),
            enq > 0)

    # The point of the refactor: class-aware arbitration holds the
    # handshake tail down while fifo lets it track the cipher backlog.
    fifo_p99 = val("fifo", "p99_handshake_ms")
    for policy in ("strict-priority", "weighted-fair"):
        p99 = val(policy, "p99_handshake_ms")
        result.add_check(
            f"mix: {policy} handshake p99 below fifo",
            f"< {fifo_p99:.2f} ms", f"{p99:.2f} ms", p99 < fifo_p99)

    # Starvation-proofness: strict-priority still serves the cipher
    # lane (deficit fallback), and record traffic keeps flowing.
    served = val("strict-priority", "cipher_lane_served")
    result.add_check(
        "mix/strict-priority: cipher lane still served", "> 0",
        str(served), served > 0)
    tput = val("strict-priority", "throughput_mbps")
    result.add_check(
        "mix/strict-priority: record throughput not starved", "> 0 Mbps",
        f"{tput:.1f} Mbps", tput > 0)

    # -- determinism: every policy replays bit-for-bit ----------------------
    for policy in POLICIES:
        replay = _run_mix(policy, seed, windows)
        same = (replay.metrics.handshakes
                == beds[policy].metrics.handshakes)
        result.add_check(
            f"{policy}: replays bit-for-bit from seed",
            "identical handshake record", "==" if same else "!=", same)
    return result
