"""Figure 10: secure data transfer throughput vs requested file size.

AES128-SHA records, 8 workers, keepalive tuned so handshakes do not
interfere; 400 ab processes continuously request a fixed file.
"""

from __future__ import annotations

from ...core.configurations import CONFIG_NAMES
from ...crypto.provider import AccountingCryptoProvider
from ..reporting import ExperimentResult
from ..runner import Testbed, Windows

__all__ = ["run"]

# Long warm-up: every keepalive connection performs its one
# handshake (an RSA op each on the SW baseline) before the
# measurement window opens, as the paper's keepalive tuning does.
QUICK = Windows(warmup=0.25, measure=0.2)
FULL = Windows(warmup=0.4, measure=0.35)

KB = 1024


def _gbps(config, size, workers, clients, windows, seed):
    bed = Testbed(config, workers=workers, suites=("TLS-RSA",),
                  provider=AccountingCryptoProvider(), seed=seed)
    bps = bed.measure_throughput(windows, n_clients=clients,
                                 file_size=size)
    return bps / 1e9


def run(quick: bool = True, seed: int = 7) -> ExperimentResult:
    windows = QUICK if quick else FULL
    if quick:
        sizes = [4 * KB, 128 * KB, 1024 * KB]
        configs = ("SW", "QAT+A", "QTLS")
        workers, clients = 4, 200
    else:
        sizes = [s * KB for s in (4, 16, 32, 64, 128, 256, 512, 1024)]
        configs = CONFIG_NAMES
        workers, clients = 8, 400
    result = ExperimentResult(
        exp_id="fig10",
        title=f"Secure data transfer throughput (Gbps), {workers} workers,"
              f" {clients} ab clients, AES128-SHA",
        columns=["size_kb", "config", "value"],
        notes="value = payload Gbps delivered to clients")
    gbps = {}
    for size in sizes:
        for config in configs:
            v = _gbps(config, size, workers, clients, windows, seed)
            gbps[(size, config)] = v
            result.add_row(size_kb=size // KB, config=config, value=v)

    small, big = sizes[0], sizes[-1]
    r_small = gbps[(small, "QTLS")] / gbps[(small, "SW")]
    result.add_check("4KB: QTLS only slightly higher than SW",
                     "1.0-1.5x", f"{r_small:.2f}x", 1.0 <= r_small < 1.5)
    mid = 128 * KB if (128 * KB, "QTLS") in gbps else big
    r_mid = gbps[(mid, "QTLS")] / gbps[(mid, "SW")]
    result.add_check(f"{mid // KB}KB+: QTLS more than 2x SW", "> 2x",
                     f"{r_mid:.2f}x", r_mid > 2.0)
    a_mid = gbps[(mid, "QAT+A")] / gbps[(mid, "SW")]
    result.add_check(f"{mid // KB}KB: QAT+A ~+60% over SW", "1.4-1.9x",
                     f"{a_mid:.2f}x", 1.4 < a_mid < 1.9)
    grow = gbps[(big, "QTLS")] / gbps[(small, "QTLS")]
    result.add_check("benefit grows with file size (more cipher ops)",
                     "throughput rises with size", f"{grow:.1f}x 4KB->1MB",
                     grow > 3)
    if not quick:
        result.add_check("QTLS stays under the 40 GbE line rate", "< 40",
                         f"{gbps[(big, 'QTLS')]:.1f} Gbps",
                         gbps[(big, "QTLS")] < 40)
    return result
