"""Figure 7: TLS 1.2 full-handshake performance.

- 7a: TLS-RSA (2048) CPS vs workers, five configurations;
- 7b: ECDHE-RSA (2048) CPS vs workers;
- 7c: ECDHE-ECDSA CPS for six NIST curves at four workers.
"""

from __future__ import annotations

from ...core.configurations import CONFIG_NAMES
from ..reporting import ExperimentResult
from ..runner import Testbed, Windows

__all__ = ["run_fig7a", "run_fig7b", "run_fig7c"]

QUICK = Windows(warmup=0.08, measure=0.12)
# Full sweeps reach ~100K CPS at 32 workers; windows are sized so the
# whole sweep stays in tens of minutes of wall clock.
FULL = Windows(warmup=0.1, measure=0.15)


def _cps(config, workers, suites, curves=("P-256",), seed=7,
         windows=QUICK, **kw):
    bed = Testbed(config, workers=workers, suites=suites, curves=curves,
                  seed=seed, **kw)
    return bed.measure_cps(windows)


def run_fig7a(quick: bool = True, seed: int = 7) -> ExperimentResult:
    windows = QUICK if quick else FULL
    worker_points = [2, 8] if quick else [2, 4, 8, 16, 24, 32]
    result = ExperimentResult(
        exp_id="fig7a",
        title="Full handshake CPS, TLS-RSA (2048-bit)",
        columns=["workers", "config", "value"],
        notes="value = connections/second")
    cps = {}
    for w in worker_points:
        for config in CONFIG_NAMES:
            v = _cps(config, w, ("TLS-RSA",), windows=windows, seed=seed)
            cps[(w, config)] = v
            result.add_row(workers=w, config=config, value=v)

    w = 8 if 8 in worker_points else worker_points[-1]
    sw = cps[(w, "SW")]
    result.add_check(f"QAT+S ~2x SW at {w}HT", "1.6-2.4x",
                     f"{cps[(w, 'QAT+S')] / sw:.2f}x",
                     1.6 < cps[(w, "QAT+S")] / sw < 2.4)
    result.add_check(f"QAT+A ~7x SW at {w}HT", "5.5-8.5x",
                     f"{cps[(w, 'QAT+A')] / sw:.2f}x",
                     5.5 < cps[(w, "QAT+A")] / sw < 8.5)
    result.add_check(f"QTLS ~9x SW at {w}HT", "7.5-11x",
                     f"{cps[(w, 'QTLS')] / sw:.2f}x",
                     7.5 < cps[(w, "QTLS")] / sw < 11)
    ah_gain = cps[(w, "QAT+AH")] / cps[(w, "QAT+A")]
    result.add_check("heuristic polling adds ~20%", "1.1-1.4x",
                     f"{ah_gain:.2f}x", 1.1 < ah_gain < 1.4)
    kb_gain = cps[(w, "QTLS")] / cps[(w, "QAT+AH")]
    result.add_check("kernel-bypass adds ~8%", "1.02-1.2x",
                     f"{kb_gain:.2f}x", 1.02 < kb_gain < 1.2)
    if not quick:
        plateau = cps[(32, "QTLS")]
        result.add_check("~100K CPS DH8970 ceiling at 32HT", "85K-115K",
                         f"{plateau:,.0f}", 85e3 < plateau < 115e3)
        lin = cps[(8, "QTLS")] / cps[(2, "QTLS")]
        result.add_check("near-linear scaling 2->8 workers", "3.2-4.4x",
                         f"{lin:.2f}x", 3.2 < lin < 4.4)
    return result


def run_fig7b(quick: bool = True, seed: int = 7) -> ExperimentResult:
    windows = QUICK if quick else FULL
    worker_points = [2, 8] if quick else [2, 4, 8, 12, 16, 20]
    result = ExperimentResult(
        exp_id="fig7b",
        title="Full handshake CPS, ECDHE-RSA (2048-bit, P-256)",
        columns=["workers", "config", "value"],
        notes="value = connections/second")
    cps = {}
    for w in worker_points:
        for config in CONFIG_NAMES:
            v = _cps(config, w, ("ECDHE-RSA",), windows=windows, seed=seed)
            cps[(w, config)] = v
            result.add_row(workers=w, config=config, value=v)

    w = 8 if 8 in worker_points else worker_points[-1]
    sw = cps[(w, "SW")]
    s_ratio = cps[(w, "QAT+S")] / sw
    result.add_check("QAT+S shows no improvement over SW", "0.8-1.3x",
                     f"{s_ratio:.2f}x", 0.8 < s_ratio < 1.3)
    a_ratio = cps[(w, "QAT+A")] / sw
    result.add_check("QAT+A improves by a factor > 4", "> 4x",
                     f"{a_ratio:.2f}x", a_ratio > 4)
    if quick:
        # The paper's 5.5x is quoted at the 16-worker QAT plateau
        # (40K cap / SW@16HT); uncapped mid-range ratios run higher.
        q_ratio = cps[(w, "QTLS")] / sw
        result.add_check("QTLS well above 4x SW below the QAT cap",
                         "> 4.5x", f"{q_ratio:.2f}x", q_ratio > 4.5)
    else:
        plateau = cps[(20, "QTLS")]
        result.add_check("~40K CPS QAT ceiling", "34K-46K",
                         f"{plateau:,.0f}", 34e3 < plateau < 46e3)
        q_ratio = cps[(16, "QTLS")] / cps[(16, "SW")]
        result.add_check("full QTLS ~5.5x SW at the 16-worker plateau",
                         "4.5-6.5x", f"{q_ratio:.2f}x",
                         4.5 < q_ratio < 6.5)
    return result


CURVES_7C = ("P-256", "P-384", "B-283", "B-409", "K-283", "K-409")


def run_fig7c(quick: bool = True, seed: int = 7) -> ExperimentResult:
    windows = QUICK if quick else FULL
    curves = ("P-256", "P-384") if quick else CURVES_7C
    configs = ("SW", "QAT+S", "QTLS") if quick else CONFIG_NAMES
    result = ExperimentResult(
        exp_id="fig7c",
        title="Full handshake CPS, ECDHE-ECDSA (six NIST curves, "
              "4 workers)",
        columns=["curve", "config", "value"],
        notes="value = connections/second; P-256 SW uses the "
              "Montgomery-domain fast path")
    cps = {}
    for curve in curves:
        for config in configs:
            v = _cps(config, 4, ("ECDHE-ECDSA",), curves=(curve,),
                     windows=windows, seed=seed)
            cps[(curve, config)] = v
            result.add_row(curve=curve, config=config, value=v)

    result.add_check(
        "P-256: SW anomalously outperforms QAT+S (Montgomery domain)",
        "SW > QAT+S",
        f"{cps[('P-256', 'SW')]:,.0f} vs {cps[('P-256', 'QAT+S')]:,.0f}",
        cps[("P-256", "SW")] > cps[("P-256", "QAT+S")])
    p256 = cps[("P-256", "QTLS")] / cps[("P-256", "SW")]
    result.add_check("P-256: QTLS still > +70% over SW", "1.7-2.6x",
                     f"{p256:.2f}x", 1.7 <= p256 < 2.6)
    p384 = cps[("P-384", "QTLS")] / cps[("P-384", "SW")]
    result.add_check("P-384: QTLS ~14x SW", "10-18x",
                     f"{p384:.1f}x", 10 < p384 < 18)
    if not quick:
        for curve in ("B-283", "B-409", "K-283", "K-409"):
            r = cps[(curve, "QTLS")] / cps[(curve, "SW")]
            result.add_check(f"{curve}: QTLS > 12x SW", "> 12x",
                             f"{r:.1f}x", r > 12)
    return result
