"""Figure 12: timer-based polling thread vs the heuristic scheme.

Three scenarios on the async offload framework (FD notification):
``10us`` and ``1ms`` timer intervals vs ``heuristic``. Panels:

- 12a: TLS-RSA full-handshake CPS vs workers;
- 12b: 64 KB secure-transfer throughput vs concurrent clients;
- 12c: average response time vs concurrent clients.
"""

from __future__ import annotations

from typing import Tuple

from ...crypto.provider import AccountingCryptoProvider
from ..reporting import ExperimentResult
from ..runner import Testbed, Windows

__all__ = ["run_fig12a", "run_fig12b", "run_fig12c", "SCENARIOS"]

QUICK = Windows(warmup=0.08, measure=0.12)
FULL = Windows(warmup=0.2, measure=0.3)

#: scenario name -> (configuration, overrides)
SCENARIOS: Tuple[Tuple[str, str, dict], ...] = (
    ("10us", "QAT+A", {"timer_poll_interval": 10e-6}),
    ("1ms", "QAT+A", {"timer_poll_interval": 1e-3}),
    ("heuristic", "QAT+AH", {}),
)


def _bed(scenario_cfg, overrides, workers, seed, provider=None):
    return Testbed(scenario_cfg, workers=workers, suites=("TLS-RSA",),
                   seed=seed, provider=provider, **overrides)


def run_fig12a(quick: bool = True, seed: int = 7) -> ExperimentResult:
    windows = QUICK if quick else FULL
    worker_points = [2, 8] if quick else [2, 4, 8, 12, 16, 20, 24, 28, 32]
    result = ExperimentResult(
        exp_id="fig12a",
        title="Polling schemes: TLS-RSA full-handshake CPS vs workers",
        columns=["workers", "scenario", "value"])
    cps = {}
    for w in worker_points:
        for name, cfg, overrides in SCENARIOS:
            bed = _bed(cfg, overrides, w, seed)
            # High client load, as in the figure (2000 s_time procs).
            v = bed.measure_cps(windows)
            cps[(w, name)] = v
            result.add_row(workers=w, scenario=name, value=v)

    w = worker_points[-1]
    gap = 1 - cps[(w, "10us")] / cps[(w, "heuristic")]
    result.add_check("10us polling ~20% below heuristic (context "
                     "switches + ineffective polls)", "10-30%",
                     f"{gap * 100:.0f}%", 0.08 < gap < 0.35)
    # At full-handshake load 1ms coalesces aggressively and lands within
    # noise of the heuristic (as in the figure); the heuristic must win
    # or tie, and clearly beat the 10us interval.
    result.add_check("heuristic best or tied at scale",
                     ">= 0.97x of both timers",
                     f"h={cps[(w, 'heuristic')]:,.0f} "
                     f"10us={cps[(w, '10us')]:,.0f} "
                     f"1ms={cps[(w, '1ms')]:,.0f}",
                     cps[(w, "heuristic")] >= 0.97 * cps[(w, "10us")]
                     and cps[(w, "heuristic")] >= 0.97 * cps[(w, "1ms")])
    return result


def run_fig12b(quick: bool = True, seed: int = 7) -> ExperimentResult:
    windows = QUICK if quick else FULL
    clients_points = [16, 128] if quick \
        else [16, 32, 48, 64, 96, 128, 192, 256, 512]
    workers = 4 if quick else 8
    result = ExperimentResult(
        exp_id="fig12b",
        title=f"Polling schemes: 64KB transfer Gbps vs clients "
              f"({workers} workers)",
        columns=["clients", "scenario", "value"])
    gbps = {}
    for n in clients_points:
        for name, cfg, overrides in SCENARIOS:
            bed = _bed(cfg, overrides, workers, seed,
                       provider=AccountingCryptoProvider())
            v = bed.measure_throughput(Windows(0.25, windows.measure),
                                       n_clients=n,
                                       file_size=64 * 1024) / 1e9
            gbps[(n, name)] = v
            result.add_row(clients=n, scenario=name, value=v)

    lo = clients_points[0]
    ratio = gbps[(lo, "1ms")] / gbps[(lo, "heuristic")]
    result.add_check("1ms interval strangles throughput at low "
                     "concurrency", "< 0.5x of heuristic",
                     f"{ratio:.2f}x", ratio < 0.5)
    hi = clients_points[-1]
    result.add_check("heuristic best or tied at high concurrency",
                     ">= both timers",
                     f"h={gbps[(hi, 'heuristic')]:.1f} "
                     f"10us={gbps[(hi, '10us')]:.1f} "
                     f"1ms={gbps[(hi, '1ms')]:.1f} Gbps",
                     gbps[(hi, "heuristic")] >= 0.95 * gbps[(hi, "10us")]
                     and gbps[(hi, "heuristic")] >= 0.95 * gbps[(hi, "1ms")])
    return result


def run_fig12c(quick: bool = True, seed: int = 7) -> ExperimentResult:
    windows = Windows(warmup=0.1, measure=0.2) if quick \
        else Windows(warmup=0.2, measure=0.4)
    clients_points = [1, 16] if quick else [1, 2, 4, 6, 8, 12, 16, 32, 64]
    result = ExperimentResult(
        exp_id="fig12c",
        title="Polling schemes: response time (ms) vs clients (1 worker)",
        columns=["clients", "scenario", "value"])
    lat = {}
    for n in clients_points:
        for name, cfg, overrides in SCENARIOS:
            bed = _bed(cfg, overrides, 1, seed)
            v = bed.measure_latency(windows, n_clients=n) * 1e3
            lat[(n, name)] = v
            result.add_row(clients=n, scenario=name, value=v)

    result.add_check("1ms interval adds ~1ms latency at 1 client",
                     ">= +0.7ms vs heuristic",
                     f"{lat[(1, '1ms')] - lat[(1, 'heuristic')]:.2f} ms",
                     lat[(1, "1ms")] - lat[(1, "heuristic")] > 0.7)
    result.add_check("heuristic lowest latency at 1 client",
                     "heuristic = min",
                     min(("10us", "1ms", "heuristic"),
                         key=lambda s: lat[(1, s)]),
                     lat[(1, "heuristic")] <= lat[(1, "10us")]
                     and lat[(1, "heuristic")] <= lat[(1, "1ms")])
    return result
