"""One experiment module per paper table/figure."""

from .ablations import (run_async_impl, run_fd_sharing,
                        run_instances_per_worker,
                        run_interrupt_vs_polling, run_p256_montgomery,
                        run_thresholds)
from .backends import run as run_backends
from .cycles import run as run_cycles
from .scaling import run as run_scaling
from .ext_tls13_resumption import run as run_ext_tls13_resumption
from .faults import run as run_faults
from .lifecycle import run as run_lifecycle
from .mixed import run as run_mixed
from .trace_overhead import run as run_trace_overhead
from .utilization import run as run_utilization
from .fig7 import run_fig7a, run_fig7b, run_fig7c
from .fig8 import run as run_fig8
from .fig9 import run_fig9a, run_fig9b
from .fig10 import run as run_fig10
from .fig11 import run as run_fig11
from .fig12 import run_fig12a, run_fig12b, run_fig12c
from .table1 import run as run_table1

ALL_EXPERIMENTS = {
    "table1": run_table1,
    "fig7a": run_fig7a,
    "fig7b": run_fig7b,
    "fig7c": run_fig7c,
    "fig8": run_fig8,
    "fig9a": run_fig9a,
    "fig9b": run_fig9b,
    "fig10": run_fig10,
    "fig11": run_fig11,
    "fig12a": run_fig12a,
    "fig12b": run_fig12b,
    "fig12c": run_fig12c,
    "ablation-thresholds": run_thresholds,
    "ablation-async-impl": run_async_impl,
    "ablation-fd-sharing": run_fd_sharing,
    "ablation-p256-montgomery": run_p256_montgomery,
    "ablation-interrupts": run_interrupt_vs_polling,
    "ablation-instances": run_instances_per_worker,
    "utilization": run_utilization,
    "cycles": run_cycles,
    "ext-tls13-resumption": run_ext_tls13_resumption,
    "faults": run_faults,
    "lifecycle": run_lifecycle,
    "mixed": run_mixed,
    "backends": run_backends,
    "scaling": run_scaling,
    "trace_overhead": run_trace_overhead,
}

__all__ = ["ALL_EXPERIMENTS", "run_table1", "run_fig7a", "run_fig7b",
           "run_fig7c", "run_fig8", "run_fig9a", "run_fig9b", "run_fig10",
           "run_fig11", "run_fig12a", "run_fig12b", "run_fig12c"]
