"""Offload backends: SW vs QTLS-QAT vs QTLS-remote, CPS + latency.

Not a paper figure — the multi-backend experiment enabled by the
offload-backend seam. The same asynchronous framework (deadlines,
breakers, batching, heuristic polling, kernel-bypass notification)
drives three backends:

- **SW** — no engine, every op on the CPU (baseline);
- **QTLS-QAT** — the on-board DH8970 model, unbatched and with
  ``qat_batch_size 8`` (coalesced ring writes amortize the doorbell);
- **QTLS-remote** — a network-attached crypto service reached over a
  25 GbE link pair, batched (one RPC per batch amortizes the per-RPC
  syscall + header).

Checks: every backend completes all handshakes with zero client
errors; batched QAT CPS >= unbatched QAT CPS at high concurrency (the
acceptance bar for submission batching); batching actually coalesces
(mean batch size > 1); and every backend replays bit-for-bit from its
seed.
"""

from __future__ import annotations

from ..reporting import ExperimentResult
from ..runner import Testbed, Windows

__all__ = ["run"]

BATCH = 8

#: Clients per worker for the offload variants. Twice the repo's
#: standard async sizing: high enough that the asym ring runs at
#: capacity, the regime submission batching targets (unbatched
#: submission churns on ring-full there; batching flow-controls
#: flushes by ``capacity_hint`` and amortizes the doorbell).
HIGH_CONCURRENCY = 200

#: (variant label, server config name, config overrides)
VARIANTS = (
    ("SW", "SW", {}),
    ("QTLS-QAT", "QTLS", {}),
    ("QTLS-QAT-batch8", "QTLS", dict(qat_batch_size=BATCH)),
    ("QTLS-remote", "QTLS", dict(offload_backend="remote",
                                 qat_batch_size=BATCH)),
)

FULL_WINDOWS = Windows(warmup=0.1, measure=0.4)
SMOKE_WINDOWS = Windows(warmup=0.1, measure=0.3)


def _run_one(config: str, overrides: dict, workers: int, seed: int,
             windows: Windows) -> Testbed:
    bed = Testbed(config, workers=workers, suites=("TLS-RSA",),
                  seed=seed, **overrides)
    n = None if config == "SW" else HIGH_CONCURRENCY * workers
    bed.add_s_time_fleet(n_clients=n)
    bed.run_window(windows)
    return bed


def _mean_latency(bed: Testbed, windows: Windows) -> float:
    durations = [d for t, d, _ in bed.metrics.handshakes
                 if windows.warmup <= t < windows.end]
    return sum(durations) / len(durations) if durations else 0.0


def _stub(bed: Testbed) -> dict:
    out = dict(backend="", batches=0, batch_ops=0)
    for worker in bed.server.workers:
        worker.stop()  # publishes final counters
        st = worker.stub_status
        out["backend"] = st.backend or out["backend"]
        out["batches"] += st.batches_submitted
        out["batch_ops"] += st.batch_ops
    return out


def run(quick: bool = True, seed: int = 7,
        smoke: bool = False) -> ExperimentResult:
    windows = SMOKE_WINDOWS if smoke else FULL_WINDOWS
    workers = 1
    result = ExperimentResult(
        exp_id="backends",
        title="offload backends: SW vs QTLS-QAT (un/batched) vs "
              "QTLS-remote",
        columns=["variant", "metric", "value"],
        notes=f"batch size {BATCH}; remote = shared crypto service "
              "behind a 25 GbE link pair; CPS/latency over the "
              "measurement window")

    beds = {}
    for label, config, overrides in VARIANTS:
        bed = _run_one(config, overrides, workers, seed, windows)
        beds[label] = bed
        stub = _stub(bed)
        mean_batch = (stub["batch_ops"] / stub["batches"]
                      if stub["batches"] else 0.0)
        vals = {
            "cps": bed.metrics.cps(windows.warmup, windows.end),
            "mean_handshake_ms": _mean_latency(bed, windows) * 1e3,
            "client_errors": bed.metrics.errors,
            "batches": stub["batches"],
            "mean_batch_size": mean_batch,
        }
        for metric, value in vals.items():
            result.add_row(variant=label, metric=metric, value=value)
        result.add_check(
            f"{label}: zero client errors", "0",
            str(vals["client_errors"]), vals["client_errors"] == 0)
        expected_backend = overrides.get(
            "offload_backend", "qat" if config != "SW" else "")
        result.add_check(
            f"{label}: stub_status reports backend "
            f"{expected_backend or 'none'}",
            expected_backend or "", stub["backend"],
            stub["backend"] == expected_backend)

    unbatched = beds["QTLS-QAT"].metrics.cps(windows.warmup, windows.end)
    batched = beds["QTLS-QAT-batch8"].metrics.cps(windows.warmup,
                                                  windows.end)
    ratio = batched / unbatched if unbatched else 0.0
    result.add_check(
        "batched QAT CPS >= unbatched at high concurrency",
        ">= 1.0x", f"{ratio:.3f}x", ratio >= 1.0)
    result.add_check(
        "batching actually coalesces (mean batch size > 1)", "> 1",
        f"{result.value(variant='QTLS-QAT-batch8', metric='mean_batch_size'):.2f}",
        result.value(variant="QTLS-QAT-batch8",
                     metric="mean_batch_size") > 1.0)
    remote_cps = beds["QTLS-remote"].metrics.cps(windows.warmup,
                                                 windows.end)
    result.add_check(
        "remote backend completes handshakes end-to-end", "> 0 CPS",
        f"{remote_cps:.0f}", remote_cps > 0)

    # Bit-for-bit reproducibility, one replay per backend flavor.
    for label in ("SW", "QTLS-QAT-batch8", "QTLS-remote"):
        config, overrides = next((c, o) for lb, c, o in VARIANTS
                                 if lb == label)
        replay = _run_one(config, overrides, workers, seed, windows)
        same = replay.metrics.handshakes == beds[label].metrics.handshakes
        result.add_check(
            f"{label}: replays bit-for-bit from seed",
            "identical handshake record", "==" if same else "!=", same)
    return result
