"""Where the CPU cycles go (the paper's Figure 3 narrative, measured).

Breaks each configuration's worker-CPU time into:

- ``crypto``      software crypto execution (incl. non-offloadable HKDF),
- ``wait``        blocking on the offload I/O (straight mode only),
- ``submit+poll`` offload submission and response-ring polling,
- ``kernel``      user/kernel mode crossings (epoll, eventfd, IRQs),
- ``switches``    context switches (worker <-> polling thread),
- ``other``       protocol/event-loop/network-path work.

The straight-offload row shows the paper's diagnosis directly: the
core stays busy, but the largest share is *waiting*.
"""

from __future__ import annotations

from ..reporting import ExperimentResult
from ..runner import Testbed, Windows

__all__ = ["run"]


def run(quick: bool = True, seed: int = 7) -> ExperimentResult:
    windows = Windows(0.06, 0.1) if quick else Windows(0.15, 0.25)
    workers = 2
    result = ExperimentResult(
        exp_id="cycles",
        title=f"Worker-CPU cycle breakdown, TLS-RSA, {workers} workers",
        columns=["config", "value", "crypto", "wait", "submit_poll",
                 "kernel", "switches", "other"],
        notes="value = CPS; remaining columns are fractions of total "
              "busy CPU time")
    rows = {}
    for config in ("SW", "QAT+S", "QAT+A", "QTLS"):
        bed = Testbed(config, workers=workers, suites=("TLS-RSA",),
                      seed=seed)
        cps = bed.measure_cps(windows)
        busy = max(bed.server.total_busy_time(), 1e-12)
        crypto = wait = submit_poll = 0.0
        kernel = switches = 0.0
        for w in bed.server.workers:
            eng = w.engine
            crypto += getattr(eng, "software_crypto_time", 0.0)
            wait += getattr(eng, "blocking_wait_time", 0.0)
            submit_poll += (getattr(eng, "submit_time", 0.0)
                            + getattr(eng, "poll_time", 0.0))
            kernel += w.core.stats.kernel_time
            switches += w.core.stats.switch_time
        # Blocking wait already includes its poll costs; avoid double
        # counting by removing poll time that happened inside waits.
        other = max(0.0, busy - crypto - wait - kernel - switches
                    - (submit_poll if config != "QAT+S" else 0.0))
        frac = lambda x: round(x / busy, 3)
        rows[config] = frac(wait)
        result.add_row(config=config, value=cps, crypto=frac(crypto),
                       wait=frac(wait),
                       submit_poll=frac(submit_poll
                                        if config != "QAT+S" else 0.0),
                       kernel=frac(kernel), switches=frac(switches),
                       other=frac(other))

    result.add_check(
        "straight offload spends most CPU waiting on the offload I/O "
        "(section 2.4)", "> 50% of busy time",
        f"{rows['QAT+S'] * 100:.0f}%", rows["QAT+S"] > 0.5)
    result.add_check(
        "the async framework eliminates the waiting", "< 2%",
        f"{rows['QTLS'] * 100:.1f}%", rows["QTLS"] < 0.02)
    result.add_check(
        "SW burns its cycles in crypto, not waiting", "wait = 0",
        f"{rows['SW'] * 100:.1f}%", rows["SW"] == 0.0)
    return result
