"""Ablations for the design choices DESIGN.md calls out.

Beyond the paper's own figures:

- heuristic threshold sweep (the 48/24 defaults of section 4.3);
- fiber vs stack async implementation overhead (section 4.1);
- per-connection notification-FD sharing (section 4.4);
- the Montgomery-domain P-256 software fast path (Figure 7c text).
"""

from __future__ import annotations

from ...core.costmodel import CostModel
from ..reporting import ExperimentResult
from ..runner import Testbed, Windows

__all__ = ["run_thresholds", "run_async_impl", "run_fd_sharing",
           "run_p256_montgomery"]

QUICK = Windows(warmup=0.08, measure=0.12)
FULL = Windows(warmup=0.2, measure=0.3)


def run_thresholds(quick: bool = True, seed: int = 7) -> ExperimentResult:
    windows = QUICK if quick else FULL
    points = [(8, 4), (48, 24), (128, 64)] if quick else \
        [(4, 2), (8, 4), (16, 8), (48, 24), (96, 48), (128, 64), (256, 128)]
    result = ExperimentResult(
        exp_id="ablation-thresholds",
        title="Heuristic efficiency thresholds (asym/sym), QTLS TLS-RSA, "
              "2 workers",
        columns=["asym_threshold", "sym_threshold", "value"])
    cps = {}
    for asym, sym in points:
        bed = Testbed("QTLS", workers=2, suites=("TLS-RSA",), seed=seed,
                      qat_heuristic_poll_asym_threshold=asym,
                      qat_heuristic_poll_sym_threshold=sym)
        v = bed.measure_cps(windows)
        cps[asym] = v
        result.add_row(asym_threshold=asym, sym_threshold=sym, value=v)
    default = cps[48]
    best = max(cps.values())
    result.add_check("default 48/24 within 10% of the best threshold",
                     ">= 0.9x best", f"{default / best:.2f}x",
                     default >= 0.9 * best)
    return result


def run_async_impl(quick: bool = True, seed: int = 7) -> ExperimentResult:
    windows = QUICK if quick else FULL
    result = ExperimentResult(
        exp_id="ablation-async-impl",
        title="Fiber vs stack async implementation, QTLS TLS-RSA, "
              "2 workers",
        columns=["impl", "value"],
        notes="stack async replays completed steps on every resume; "
              "fiber async pays a context swap per switch")
    cps = {}
    for impl in ("fiber", "stack"):
        bed = Testbed("QTLS", workers=2, suites=("TLS-RSA",), seed=seed,
                      async_impl=impl)
        v = bed.measure_cps(windows)
        cps[impl] = v
        result.add_row(impl=impl, value=v)
    ratio = min(cps.values()) / max(cps.values())
    result.add_check("both implementations within ~5% (the paper calls "
                     "the fiber penalty 'slight')", ">= 0.95x",
                     f"{ratio:.3f}x", ratio >= 0.95)
    return result


def run_fd_sharing(quick: bool = True, seed: int = 7) -> ExperimentResult:
    windows = QUICK if quick else FULL
    result = ExperimentResult(
        exp_id="ablation-fd-sharing",
        title="Notification-FD sharing across a connection's jobs, "
              "QAT+AH TLS-RSA, 2 workers",
        columns=["share_fd", "value"])
    cps = {}
    for share in (True, False):
        bed = Testbed("QAT+AH", workers=2, suites=("TLS-RSA",), seed=seed,
                      share_notify_fd=share)
        v = bed.measure_cps(windows)
        cps[share] = v
        result.add_row(share_fd=share, value=v)
    gain = cps[True] / cps[False]
    result.add_check("sharing one FD per connection lowers overhead",
                     ">= 1.0x", f"{gain:.3f}x", gain >= 1.0)
    return result


def run_p256_montgomery(quick: bool = True, seed: int = 7
                        ) -> ExperimentResult:
    windows = QUICK if quick else FULL
    result = ExperimentResult(
        exp_id="ablation-p256-montgomery",
        title="P-256 Montgomery-domain software fast path, SW "
              "ECDHE-ECDSA, 4 workers",
        columns=["montgomery", "value"],
        notes="the fast path makes ECDSA(P-256) sign 2.33x faster "
              "(Gueron-Krasnov), producing Figure 7c's SW anomaly")
    cps = {}
    for mont in (True, False):
        cm = CostModel(p256_montgomery=mont)
        bed = Testbed("SW", workers=4, suites=("ECDHE-ECDSA",),
                      curves=("P-256",), seed=seed, cost_model=cm)
        v = bed.measure_cps(windows)
        cps[mont] = v
        result.add_row(montgomery=mont, value=v)
    gain = cps[True] / cps[False]
    result.add_check("fast path gives a large SW speedup", "1.4-2.3x",
                     f"{gain:.2f}x", 1.4 < gain < 2.3)
    return result


def run_interrupt_vs_polling(quick: bool = True, seed: int = 7
                             ) -> ExperimentResult:
    windows = QUICK if quick else FULL
    result = ExperimentResult(
        exp_id="ablation-interrupts",
        title="Interrupt vs polling response retrieval, QTLS TLS-RSA, "
              "2 workers",
        columns=["retrieval", "value"],
        notes="section 3.3: one userspace polling operation has much "
              "less overhead than one kernel-based interrupt")
    cps = {}
    for name, kw in (("interrupt", dict(qat_notify_mode="interrupt")),
                     ("heuristic-poll", {})):
        bed = Testbed("QTLS", workers=2, suites=("TLS-RSA",), seed=seed,
                      **kw)
        v = bed.measure_cps(windows)
        cps[name] = v
        result.add_row(retrieval=name, value=v)
    ratio = cps["heuristic-poll"] / cps["interrupt"]
    result.add_check("polling clearly outperforms interrupts at load",
                     "> 1.15x", f"{ratio:.2f}x", ratio > 1.15)
    return result


def run_instances_per_worker(quick: bool = True, seed: int = 7
                             ) -> ExperimentResult:
    windows = QUICK if quick else FULL
    result = ExperimentResult(
        exp_id="ablation-instances",
        title="QAT instances per worker, QTLS TLS-RSA, 2 workers",
        columns=["instances", "value"],
        notes="section 2.3: with sufficient concurrent requests, one "
              "or two instances fully load the parallel engines")
    cps = {}
    for n in (1, 2, 3):
        bed = Testbed("QTLS", workers=2, suites=("TLS-RSA",), seed=seed,
                      qat_instances_per_worker=n)
        v = bed.measure_cps(windows)
        cps[n] = v
        result.add_row(instances=n, value=v)
    spread = min(cps.values()) / max(cps.values())
    result.add_check("one instance per worker already saturates "
                     "(sufficient concurrency)", ">= 0.95x of best",
                     f"{spread:.3f}x", spread >= 0.95)
    return result
