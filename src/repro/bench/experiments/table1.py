"""Table 1: server-side crypto operations per full handshake.

Counted functionally by running real handshakes through the sans-IO
state machines and logging every CryptoCall the server executes.
"""

from __future__ import annotations

import numpy as np

from ...crypto.ops import CryptoOpKind as K
from ...crypto.provider import ModeledCryptoProvider
from ...tls import (ECDHE_ECDSA, ECDHE_RSA, TLS13_ECDHE_RSA, TLS_RSA, OpLog,
                    TlsClientConfig, TlsServerConfig, client_handshake12,
                    client_handshake13, run_loopback_handshake,
                    server_handshake12, server_handshake13)
from ..reporting import ExperimentResult

__all__ = ["run"]

ECC_KINDS = (K.ECDH_KEYGEN, K.ECDH_COMPUTE, K.ECDSA_SIGN)

#: (row label, suite, tls13?, expected RSA, expected ECC, expected PRF/HKDF)
PAPER_ROWS = [
    ("1.2 TLS-RSA", TLS_RSA, False, 1, 0, "4"),
    ("1.2 ECDHE-RSA", ECDHE_RSA, False, 1, 2, "4"),
    ("1.2 ECDHE-ECDSA", ECDHE_ECDSA, False, 0, 3, "4"),
    ("1.3 ECDHE-RSA", TLS13_ECDHE_RSA, True, 1, 2, "> 4"),
]


def _handshake_ops(suite, tls13: bool):
    provider = ModeledCryptoProvider()
    rng = np.random.default_rng
    kw = {}
    if suite.auth == "rsa":
        kw["credentials_rsa"] = provider.make_rsa_credentials(2048, rng(1))
    else:
        kw["credentials_ecdsa"] = provider.make_ecdsa_credentials(
            "P-256", rng(1))
    scfg = TlsServerConfig(provider=provider, suites=(suite,), rng=rng(2),
                           curves=("P-256",), **kw)
    ccfg = TlsClientConfig(provider=provider, suites=(suite,), rng=rng(3),
                           curves=("P-256",))
    slog = OpLog()
    if tls13:
        run_loopback_handshake(client_handshake13(ccfg),
                               server_handshake13(scfg), server_oplog=slog)
    else:
        run_loopback_handshake(client_handshake12(ccfg),
                               server_handshake12(scfg), server_oplog=slog)
    return slog


def run(quick: bool = True, seed: int = 7) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="table1",
        title="Server-side crypto operations for full handshake",
        columns=["suite", "RSA", "ECC", "PRF/HKDF",
                 "paper_RSA", "paper_ECC", "paper_PRF/HKDF"])
    for label, suite, tls13, p_rsa, p_ecc, p_kdf in PAPER_ROWS:
        slog = _handshake_ops(suite, tls13)
        rsa = slog.count(K.RSA_PRIV)
        ecc = slog.count(*ECC_KINDS)
        kdf = slog.count(K.PRF) + slog.count(K.HKDF)
        kdf_str = str(kdf) if not tls13 else f"{kdf} (HKDF)"
        result.add_row(suite=label, RSA=rsa, ECC=ecc, **{
            "PRF/HKDF": kdf_str, "paper_RSA": p_rsa, "paper_ECC": p_ecc,
            "paper_PRF/HKDF": p_kdf})
        ok = (rsa == p_rsa and ecc == p_ecc
              and (kdf > 4 if p_kdf == "> 4" else kdf == int(p_kdf)))
        result.add_check(f"{label} op counts", f"{p_rsa}/{p_ecc}/{p_kdf}",
                         f"{rsa}/{ecc}/{kdf}", ok)
    return result
