"""Figure 8: TLS 1.3 full-handshake CPS with ECDHE-RSA (2048).

The speedup is capped at ~3.5x because the new HKDF key derivation
cannot be offloaded through the QAT Engine: those CPU cycles stay on
the worker cores in every configuration.
"""

from __future__ import annotations

from ...core.configurations import CONFIG_NAMES
from ..reporting import ExperimentResult
from ..runner import Testbed, Windows

__all__ = ["run"]

QUICK = Windows(warmup=0.08, measure=0.12)
FULL = Windows(warmup=0.1, measure=0.15)


def run(quick: bool = True, seed: int = 7) -> ExperimentResult:
    windows = QUICK if quick else FULL
    worker_points = [2, 8] if quick else [2, 4, 8, 12, 16, 20]
    configs = ("SW", "QAT+A", "QTLS") if quick else CONFIG_NAMES
    result = ExperimentResult(
        exp_id="fig8",
        title="Full handshake CPS, TLS 1.3 ECDHE-RSA (2048-bit)",
        columns=["workers", "config", "value"],
        notes="HKDF is not offloadable; it runs on the CPU in all "
              "configurations")
    cps = {}
    for w in worker_points:
        for config in configs:
            bed = Testbed(config, workers=w,
                          suites=("TLS1.3-ECDHE-RSA",), tls_version="1.3",
                          seed=seed)
            v = bed.measure_cps(windows)
            cps[(w, config)] = v
            result.add_row(workers=w, config=config, value=v)

    w = 8 if 8 in worker_points else worker_points[-1]
    ratio = cps[(w, "QTLS")] / cps[(w, "SW")]
    result.add_check(
        "QTLS ~3.5x SW (lower than TLS 1.2's 5.5x, because of HKDF)",
        "2.8-4.5x", f"{ratio:.2f}x", 2.8 < ratio < 4.5)
    return result
