"""Worker lifecycle supervision: crash respawn and graceful reload.

Not a paper figure — a robustness experiment over the paper's testbed
exercising the supervision layer (``repro.server.lifecycle``):

* **crash run** — a deterministic ``worker_crash`` fault kills worker 0
  mid-run. The master must reap it, abort its in-flight offload ops,
  retire its pool-lease epoch (late QAT completions tombstone instead
  of misdelivering to the successor) and respawn on the same core; CPS
  dips while the killed worker's clients reconnect and must recover.
* **reload run** — a mid-run ``Server.reload`` swaps in a validated
  config (nginx SIGHUP): the new worker generation takes the listeners
  immediately while the old generation drains, so the handshake rate
  never touches zero and no client sees an error.
* **rollback run** — a reload with an invalid candidate (changed
  ``worker_processes``) must be rejected with the old config untouched
  and still serving.

Checks: post-respawn CPS within 10% of pre-crash; zero ops stranded in
dead epochs and every retired engine idle (nothing leaked, nothing
misrouted); reload with zero client errors and no zero-CPS bucket;
rejected reload leaves zero errors; and the crash run replays
bit-for-bit from its seed (handshake record, fault trace, lifecycle
journal and tombstone log all identical).
"""

from __future__ import annotations

from typing import List, Tuple

from ...core.configurations import make_server_config
from ..reporting import ExperimentResult
from ..runner import Testbed

__all__ = ["run"]

#: Same rationale as the faults experiment: deadlines must clear
#: legitimate post-disruption catch-up queueing, and the retry budget
#: is cut so rejected submissions degrade fast. The drain timeout is
#: the config default (50 ms): a draining generation shares each core
#: with its successor, so ~80 mid-flight handshakes x ~4 remaining ops
#: on half a core legitimately take ~35 ms to finish — a shorter
#: deadline force-aborts drains that are making steady progress.
LIFECYCLE_OVERRIDES = dict(qat_request_deadline=8e-3,
                           qat_watchdog_interval=1e-3,
                           qat_submit_max_retries=8,
                           worker_drain_timeout=50e-3)

#: Closed-loop fleets are bursty (~15-20 ms rounds), so the windows
#: span several rounds and the no-zero-CPS scan uses 5 ms buckets.
FULL_TIMELINE = dict(warmup=0.04, pre=(0.04, 0.10), event_at=0.10,
                     dip=(0.10, 0.14), recovery=(0.16, 0.24),
                     until=0.24, bucket=5e-3)
SMOKE_TIMELINE = dict(warmup=0.02, pre=(0.02, 0.05), event_at=0.05,
                      dip=(0.05, 0.08), recovery=(0.09, 0.15),
                      until=0.15, bucket=5e-3)

WORKERS = 2
SUITES = ("TLS-RSA",)


def _make_bed(seed: int, smoke: bool, crashed: bool) -> Testbed:
    plan = (dict(worker_crashes=((0, (SMOKE_TIMELINE if smoke
                                      else FULL_TIMELINE)["event_at"]),))
            if crashed else None)
    bed = Testbed("QTLS", workers=WORKERS, suites=SUITES, seed=seed,
                  fault_plan=plan, **LIFECYCLE_OVERRIDES)
    bed.add_s_time_fleet(n_clients=60 if smoke else None)
    return bed


def _cps_buckets(handshakes: List[Tuple[float, float, bool]],
                 start: float, end: float,
                 width: float) -> List[int]:
    n = max(1, int(round((end - start) / width)))
    buckets = [0] * n
    for t, _dur, _resumed in handshakes:
        if start <= t < end:
            buckets[min(n - 1, int((t - start) / width))] += 1
    return buckets


def _retired_engines_idle(bed: Testbed) -> bool:
    from ...offload.engine import AsyncOffloadEngine
    for worker in bed.server.retired_workers:
        if isinstance(worker.engine, AsyncOffloadEngine):
            if not worker.engine.idle:
                return False
    return True


def run(quick: bool = True, seed: int = 7,
        smoke: bool = False) -> ExperimentResult:
    tl = SMOKE_TIMELINE if smoke else FULL_TIMELINE
    result = ExperimentResult(
        exp_id="lifecycle",
        title="Worker lifecycle: crash respawn + graceful reload "
              f"({WORKERS} workers, drain timeout "
              f"{LIFECYCLE_OVERRIDES['worker_drain_timeout'] * 1e3:.0f}"
              " ms)",
        columns=["scenario", "metric", "value"],
        notes="windows in simulated seconds; crash kills worker 0 "
              "mid-run, reload swaps a validated config under load")

    # ---- crash -> respawn -> recovery -----------------------------------
    crash = _make_bed(seed, smoke, crashed=True)
    crash.sim.run(until=tl["until"])
    sup = crash.server.supervisor
    pool = crash.server.instance_pool
    p0, p1 = tl["pre"]
    d0, d1 = tl["dip"]
    r0, r1 = tl["recovery"]
    pre_cps = crash.metrics.cps(p0, p1)
    dip_cps = crash.metrics.cps(d0, d1)
    recovery_cps = crash.metrics.cps(r0, r1)
    dead_inflight = pool.dead_epoch_inflight()
    vals = {
        "pre_crash_cps": pre_cps,
        "dip_cps": dip_cps,
        "recovery_cps": recovery_cps,
        "crashes": sup.crashes,
        "respawns": sup.respawns,
        "client_errors": crash.metrics.errors,
        "engine_ops_aborted": sum(
            getattr(w.engine, "ops_aborted", 0)
            for w in crash.server.retired_workers),
        "dead_epoch_inflight": dead_inflight,
        "tombstone_drops": pool.tombstone_drops,
        "leases_reclaimed": pool.reclaimed,
        "faults.workers_crashed": crash.fault_plan.workers_crashed,
    }
    for metric, value in vals.items():
        result.add_row(scenario="crash", metric=metric, value=value)
    result.add_check("crash: fault fired and worker respawned",
                     "crashes == respawns == 1",
                     f"crashes {sup.crashes} respawns {sup.respawns}",
                     sup.crashes == 1 and sup.respawns == 1)
    ratio = recovery_cps / pre_cps if pre_cps else 0.0
    result.add_check("crash: CPS recovers to within 10% of pre-crash",
                     ">= 0.90x", f"{ratio:.3f}x", ratio >= 0.90)
    result.add_check("crash: no completion stranded in a dead epoch",
                     "0", str(dead_inflight), dead_inflight == 0)
    result.add_check("crash: retired incarnations' engines fully idle",
                     "idle", "idle" if _retired_engines_idle(crash)
                     else "ops left", _retired_engines_idle(crash))

    # ---- graceful reload under load -------------------------------------
    reload_bed = _make_bed(seed, smoke, crashed=False)

    def do_reload() -> None:
        new_cfg = make_server_config(
            "QTLS", workers=WORKERS, suites=SUITES,
            **dict(LIFECYCLE_OVERRIDES,
                   qat_heuristic_poll_asym_threshold=32))
        reload_bed.reload_ok = reload_bed.server.reload(new_cfg)

    reload_bed.reload_ok = False
    reload_bed.sim.call_at(tl["event_at"], do_reload)
    reload_bed.sim.run(until=tl["until"])
    rsup = reload_bed.server.supervisor
    buckets = _cps_buckets(reload_bed.metrics.handshakes,
                           tl["warmup"], tl["until"], tl["bucket"])
    min_bucket = min(buckets) if buckets else 0
    vals = {
        "reload_accepted": int(reload_bed.reload_ok),
        "generation": rsup.generation,
        "client_errors": reload_bed.metrics.errors,
        "min_bucket_handshakes": min_bucket,
        "forced_aborts": rsup.forced_aborts,
        "still_draining": rsup.draining_count,
        "recovery_cps": reload_bed.metrics.cps(r0, r1),
    }
    for metric, value in vals.items():
        result.add_row(scenario="reload", metric=metric, value=value)
    result.add_check("reload: accepted and generation bumped",
                     "ok, generation 1",
                     f"ok={reload_bed.reload_ok} gen={rsup.generation}",
                     reload_bed.reload_ok and rsup.generation == 1)
    result.add_check("reload: zero client errors across the swap", "0",
                     str(reload_bed.metrics.errors),
                     reload_bed.metrics.errors == 0)
    result.add_check(
        f"reload: CPS never zero (every {tl['bucket'] * 1e3:.0f} ms "
        "bucket post-warmup)", "> 0 handshakes/bucket",
        f"min {min_bucket}", min_bucket > 0)
    result.add_check("reload: old generation fully drained", "0",
                     str(rsup.draining_count), rsup.draining_count == 0)

    # ---- invalid reload -> rollback -------------------------------------
    rollback = _make_bed(seed, smoke, crashed=False)

    def do_bad_reload() -> None:
        bad = make_server_config(
            "QTLS", workers=WORKERS + 1, suites=SUITES,
            **LIFECYCLE_OVERRIDES)
        rollback.reload_ok = rollback.server.reload(bad)

    rollback.reload_ok = None
    rollback.sim.call_at(tl["event_at"], do_bad_reload)
    rollback.sim.run(until=tl["until"])
    bsup = rollback.server.supervisor
    for metric, value in (("reload_accepted", int(bool(rollback.reload_ok))),
                          ("reload_rejections", bsup.reload_rejections),
                          ("client_errors", rollback.metrics.errors),
                          ("generation", bsup.generation)):
        result.add_row(scenario="rollback", metric=metric, value=value)
    result.add_check("rollback: invalid config rejected, old one serving",
                     "rejected, generation 0, 0 errors",
                     f"ok={rollback.reload_ok} gen={bsup.generation} "
                     f"errors={rollback.metrics.errors}",
                     rollback.reload_ok is False
                     and bsup.reload_rejections == 1
                     and bsup.generation == 0
                     and rollback.metrics.errors == 0)

    # ---- bit-for-bit replay ---------------------------------------------
    replay = _make_bed(seed, smoke, crashed=True)
    replay.sim.run(until=tl["until"])
    same_hs = replay.metrics.handshakes == crash.metrics.handshakes
    same_trace = replay.fault_plan.trace() == crash.fault_plan.trace()
    same_journal = (replay.server.supervisor.events
                    == crash.server.supervisor.events)
    same_tombs = (replay.server.instance_pool.tombstone_log
                  == crash.server.instance_pool.tombstone_log)
    result.add_check(
        "crash run replays bit-for-bit from seed",
        "identical handshakes + fault trace + lifecycle journal "
        "+ tombstone log",
        f"handshakes {'==' if same_hs else '!='}, "
        f"trace {'==' if same_trace else '!='}, "
        f"journal {'==' if same_journal else '!='}, "
        f"tombstones {'==' if same_tombs else '!='}",
        same_hs and same_trace and same_journal and same_tombs)
    return result
