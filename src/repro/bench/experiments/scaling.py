"""Instance-pool scaling: allocation policy x client-load shape.

Not a paper figure — the experiment enabled by the shared QAT instance
pool (``repro.offload.pool``). Four workers, two instances each (eight
instances over the DH8970's three endpoints), RSA-4096 so the card —
not the worker cores — is the scarce resource, under two load shapes:

- **uniform** — clients spread evenly over the workers;
- **skewed** — workers 0 and 3 receive 3x the clients of workers 1
  and 2 (a weighted listener list; both hot workers' static chunks
  collide on endpoint 0).

Each shape runs under all three ``qat_instance_policy`` settings:

- **static** — the historical consecutive-chunk partition: hot
  workers saturate their own endpoints while cold workers' instances
  idle;
- **shared** — every worker submits across the whole pool (paying the
  arbitration cost), so hot workers overflow onto cold endpoints;
- **dynamic** — the rebalance tick migrates instance leases toward
  pressured workers with hysteresis.

A separate **overload** pair (one worker, 300 clients) compares
``offload_admission_limit 16`` against the unbounded baseline: without
admission control, ring-full retry storms burn the retry budget and
degrade ops to RSA-4096 *software* fallback on the worker core —
milliseconds of CPU per op — while bounded FIFO queueing keeps the
core on useful work.

Checks: under skew, ``shared`` and ``dynamic`` each beat ``static`` on
total CPS *and* per-endpoint utilization imbalance; ``dynamic``
actually migrates; admission control achieves higher CPS and lower p99
handshake latency than the unbounded overload baseline; every policy
replays bit-for-bit from its seed.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..reporting import ExperimentResult
from ..runner import Testbed, Windows

__all__ = ["run"]

WORKERS = 4
INSTANCES_PER_WORKER = 2
RSA_BITS = 4096
#: Closed-loop clients for the policy matrix (60 per worker).
POLICY_CLIENTS = 240
#: Weighted listener shares under skew: workers 0 and 3 take 3x the
#: clients of workers 1 and 2.
SKEW_WEIGHTS = (3, 1, 1, 3)

#: Overload pair: one worker, far more clients than the admission
#: limit, so the queue (or the retry storm) is always populated.
OVERLOAD_CLIENTS = 300
ADMISSION_LIMIT = 16

POLICIES = ("static", "shared", "dynamic")

FULL_WINDOWS = Windows(warmup=0.05, measure=0.1)
SMOKE_WINDOWS = Windows(warmup=0.03, measure=0.05)


def _imbalance(values: List[float]) -> float:
    """Coefficient of variation (std/mean); 0 = perfectly balanced."""
    if not values:
        return 0.0
    mean = sum(values) / len(values)
    if mean == 0:
        return 0.0
    var = sum((v - mean) ** 2 for v in values) / len(values)
    return var ** 0.5 / mean


def _endpoint_imbalance(bed: Testbed) -> float:
    """Imbalance of ops submitted across the card's endpoints (the
    utilization the pool exists to even out)."""
    per_endpoint: Dict[int, int] = {}
    for drv in bed.server.instance_pool.drivers:
        key = id(drv.instance.endpoint)
        per_endpoint[key] = per_endpoint.get(key, 0) + drv.submitted
    return _imbalance(list(per_endpoint.values()))


def _p99(bed: Testbed, windows: Windows) -> float:
    durations = sorted(d for t, d, _ in bed.metrics.handshakes
                       if windows.warmup <= t < windows.end)
    if not durations:
        return 0.0
    return durations[int(0.99 * (len(durations) - 1))]


def _run_policy(policy: str, skewed: bool, seed: int,
                windows: Windows) -> Testbed:
    bed = Testbed("QTLS", workers=WORKERS, suites=("TLS-RSA",),
                  rsa_bits=RSA_BITS, seed=seed,
                  qat_instance_policy=policy,
                  qat_instances_per_worker=INSTANCES_PER_WORKER)
    addresses: Optional[List[str]] = None
    if skewed:
        base = bed.server.addresses()
        addresses = [addr for addr, w in zip(base, SKEW_WEIGHTS)
                     for _ in range(w)]
    bed.add_s_time_fleet(n_clients=POLICY_CLIENTS, addresses=addresses)
    bed.run_window(windows)
    return bed


def _run_overload(limit: int, seed: int, windows: Windows) -> Testbed:
    overrides = dict(offload_admission_limit=limit) if limit else {}
    bed = Testbed("QTLS", workers=1, suites=("TLS-RSA",),
                  rsa_bits=RSA_BITS, seed=seed, **overrides)
    bed.add_s_time_fleet(n_clients=OVERLOAD_CLIENTS)
    bed.run_window(windows)
    return bed


def run(quick: bool = True, seed: int = 7,
        smoke: bool = False) -> ExperimentResult:
    windows = SMOKE_WINDOWS if smoke else FULL_WINDOWS
    result = ExperimentResult(
        exp_id="scaling",
        title="instance-pool scaling: allocation policy x load shape "
              "+ admission control under overload",
        columns=["scenario", "policy", "metric", "value"],
        notes=f"{WORKERS} workers x {INSTANCES_PER_WORKER} instances, "
              f"RSA-{RSA_BITS}; skew weights {SKEW_WEIGHTS}; overload = "
              f"1 worker / {OVERLOAD_CLIENTS} clients, admission limit "
              f"{ADMISSION_LIMIT}")

    # -- policy matrix ----------------------------------------------------
    beds: Dict[tuple, Testbed] = {}
    for skewed in (False, True):
        scenario = "skewed" if skewed else "uniform"
        for policy in POLICIES:
            bed = _run_policy(policy, skewed, seed, windows)
            beds[(scenario, policy)] = bed
            vals = {
                "cps": bed.metrics.cps(windows.warmup, windows.end),
                "p99_handshake_ms": _p99(bed, windows) * 1e3,
                "endpoint_imbalance": _endpoint_imbalance(bed),
                "migrations": bed.server.instance_pool.migrations,
                "client_errors": bed.metrics.errors,
            }
            for metric, value in vals.items():
                result.add_row(scenario=scenario, policy=policy,
                               metric=metric, value=value)
            result.add_check(
                f"{scenario}/{policy}: zero client errors", "0",
                str(vals["client_errors"]), vals["client_errors"] == 0)

    def cps(scenario, policy):
        return result.value(scenario=scenario, policy=policy, metric="cps")

    def imb(scenario, policy):
        return result.value(scenario=scenario, policy=policy,
                            metric="endpoint_imbalance")

    # The point of the refactor: under skew, pooling beats the static
    # partition on throughput AND on endpoint utilization balance.
    for policy in ("shared", "dynamic"):
        ratio = cps("skewed", policy) / cps("skewed", "static")
        result.add_check(
            f"skewed: {policy} CPS strictly above static",
            "> 1.0x", f"{ratio:.3f}x", ratio > 1.0)
        result.add_check(
            f"skewed: {policy} endpoint imbalance below static",
            f"< {imb('skewed', 'static'):.3f}",
            f"{imb('skewed', policy):.3f}",
            imb("skewed", policy) < imb("skewed", "static"))
    migrations = result.value(scenario="skewed", policy="dynamic",
                              metric="migrations")
    result.add_check("skewed: dynamic policy actually migrates leases",
                     "> 0", str(migrations), migrations > 0)

    # -- admission control under overload ----------------------------------
    unbounded = _run_overload(0, seed, windows)
    bounded = _run_overload(ADMISSION_LIMIT, seed, windows)
    for label, bed in (("unbounded", unbounded), ("bounded", bounded)):
        vals = {
            "cps": bed.metrics.cps(windows.warmup, windows.end),
            "p99_handshake_ms": _p99(bed, windows) * 1e3,
            "software_fallbacks": sum(w.engine.ops_fallback
                                      for w in bed.server.workers),
            "client_errors": bed.metrics.errors,
        }
        for metric, value in vals.items():
            result.add_row(scenario="overload", policy=label,
                           metric=metric, value=value)

    def over(policy, metric):
        return result.value(scenario="overload", policy=policy,
                            metric=metric)

    result.add_check(
        "overload: admission control bounds p99 below unbounded",
        f"< {over('unbounded', 'p99_handshake_ms'):.1f} ms",
        f"{over('bounded', 'p99_handshake_ms'):.1f} ms",
        over("bounded", "p99_handshake_ms")
        < over("unbounded", "p99_handshake_ms"))
    result.add_check(
        "overload: admission control raises CPS over unbounded",
        f"> {over('unbounded', 'cps'):.0f}",
        f"{over('bounded', 'cps'):.0f}",
        over("bounded", "cps") > over("unbounded", "cps"))
    result.add_check(
        "overload: bounded queueing avoids retry-storm fallbacks",
        f"< {over('unbounded', 'software_fallbacks'):.0f}",
        f"{over('bounded', 'software_fallbacks'):.0f}",
        over("bounded", "software_fallbacks")
        < over("unbounded", "software_fallbacks"))

    # -- determinism: every policy replays bit-for-bit ----------------------
    replay_policies = ("dynamic",) if smoke else POLICIES
    for policy in replay_policies:
        replay = _run_policy(policy, True, seed, windows)
        same = (replay.metrics.handshakes
                == beds[("skewed", policy)].metrics.handshakes)
        result.add_check(
            f"{policy}: replays bit-for-bit from seed",
            "identical handshake record", "==" if same else "!=", same)
    return result
