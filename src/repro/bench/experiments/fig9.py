"""Figure 9: session resumption performance (TLS 1.2, ECDHE-RSA).

- 9a: 100% abbreviated handshakes (s_time ``reuse``);
- 9b: full:abbreviated = 1:9 (10% full handshakes).
"""

from __future__ import annotations

from ...core.configurations import CONFIG_NAMES
from ..reporting import ExperimentResult
from ..runner import Testbed, Windows

__all__ = ["run_fig9a", "run_fig9b"]

QUICK = Windows(warmup=0.08, measure=0.12)
FULL = Windows(warmup=0.2, measure=0.3)


def _cps(config, workers, windows, seed, **fleet_kw):
    bed = Testbed(config, workers=workers, suites=("ECDHE-RSA",), seed=seed)
    return bed.measure_cps(windows, **fleet_kw)


def run_fig9a(quick: bool = True, seed: int = 7) -> ExperimentResult:
    windows = QUICK if quick else FULL
    worker_points = [2] if quick else [2, 4, 8, 12, 16, 20]
    configs = ("SW", "QAT+S", "QTLS") if quick else CONFIG_NAMES
    result = ExperimentResult(
        exp_id="fig9a",
        title="Session resumption CPS, 100% abbreviated handshakes",
        columns=["workers", "config", "value"],
        notes="abbreviated handshakes involve PRF calculations only")
    cps = {}
    for w in worker_points:
        for config in configs:
            v = _cps(config, w, windows, seed, reuse=True)
            cps[(w, config)] = v
            result.add_row(workers=w, config=config, value=v)

    w = worker_points[-1]
    gain = cps[(w, "QTLS")] / cps[(w, "SW")]
    result.add_check("QTLS gains 30-40% over SW", "1.25-1.55x",
                     f"{gain:.2f}x", 1.25 < gain < 1.55)
    s_ratio = cps[(w, "QAT+S")] / cps[(w, "SW")]
    result.add_check("QAT+S obviously lower than SW", "< 0.95x",
                     f"{s_ratio:.2f}x", s_ratio < 0.95)
    return result


def run_fig9b(quick: bool = True, seed: int = 7) -> ExperimentResult:
    windows = QUICK if quick else FULL
    worker_points = [2] if quick else [2, 4, 8, 12, 16, 20]
    configs = ("SW", "QTLS") if quick else CONFIG_NAMES
    result = ExperimentResult(
        exp_id="fig9b",
        title="Session resumption CPS, full:abbreviated = 1:9",
        columns=["workers", "config", "value"])
    cps = {}
    for w in worker_points:
        for config in configs:
            v = _cps(config, w, windows, seed, full_ratio=0.1)
            cps[(w, config)] = v
            result.add_row(workers=w, config=config, value=v)

    w = worker_points[-1]
    gain = cps[(w, "QTLS")] / cps[(w, "SW")]
    result.add_check("QTLS improves CPS by more than 2x", "2-3.5x",
                     f"{gain:.2f}x", 2.0 < gain < 3.5)
    result.add_check("1:9 gain sits between pure-abbreviated (~1.4x) "
                     "and pure-full (~5.5x)", "1.4x < gain < 5.5x",
                     f"{gain:.2f}x", 1.4 < gain < 5.5)
    return result
