"""Tracing overhead: the observability layer must be free when off.

Not a paper figure — the acceptance experiment for the ``repro.obs``
request-lifecycle tracing layer. Three QTLS runs over the same seed and
windows:

- **off** — ``trace=False``: every instrumentation site degenerates to
  one attribute read (``sim.obs is None``). This is the production
  shape; its wall-clock is the number the <=5% regression budget is
  measured against.
- **on** — full tracing (sample rate 1.0): every offloaded op grows a
  span tree, stage histograms and utilization timelines accumulate, and
  the Chrome trace export validates.
- **sampled** — sample rate 0.25: the profiling compromise.

Checks: tracing (on, off or sampled) never perturbs the simulation —
all three runs produce the identical handshake record; the traced run
produces a schema-valid export whose op count matches the tracer; and
the traced wall-clock stays within a generous envelope of the untraced
run (tracing is bookkeeping, not simulation).
"""

from __future__ import annotations

import json
import time

from ...obs import chrome_trace_events, validate_chrome_trace
from ..reporting import ExperimentResult
from ..runner import Testbed, Windows

__all__ = ["run"]

FULL_WINDOWS = Windows(warmup=0.1, measure=0.4)
SMOKE_WINDOWS = Windows(warmup=0.02, measure=0.06)

#: Wall-clock envelope for the fully-traced run relative to untraced.
#: Tracing allocates one context + a handful of dict writes per op —
#: real overhead, but it must stay bookkeeping-sized. Generous because
#: CI wall-clocks are noisy.
TRACED_ENVELOPE = 3.0

N_CLIENTS = 100


def _run_one(windows: Windows, seed: int, **trace_kw):
    # Wall time is the measurand here (tracing *overhead*); it never
    # feeds back into simulated state, so replay stays exact.
    start = time.perf_counter()  # determinism: allowed
    bed = Testbed("QTLS", workers=1, suites=("TLS-RSA",), seed=seed,
                  **trace_kw)
    bed.add_s_time_fleet(n_clients=N_CLIENTS)
    bed.run_window(windows)
    wall = time.perf_counter() - start  # determinism: allowed
    return bed, wall


def run(quick: bool = True, seed: int = 7,
        smoke: bool = False) -> ExperimentResult:
    windows = SMOKE_WINDOWS if smoke else FULL_WINDOWS
    result = ExperimentResult(
        exp_id="trace_overhead",
        title="repro.obs tracing overhead (off / sampled / on)",
        columns=["variant", "metric", "value"],
        notes="same seed + windows for all variants; wall seconds are "
              "host wall-clock, everything else is simulated output")

    bed_off, wall_off = _run_one(windows, seed)
    bed_on, wall_on = _run_one(windows, seed, trace=True)
    bed_smp, wall_smp = _run_one(windows, seed, trace=True,
                                 trace_sample_rate=0.25)

    for label, bed, wall in (("off", bed_off, wall_off),
                             ("on", bed_on, wall_on),
                             ("sampled", bed_smp, wall_smp)):
        tracer = bed.tracer
        for metric, value in (
                ("wall_s", round(wall, 3)),
                ("handshakes", len(bed.metrics.handshakes)),
                ("client_errors", bed.metrics.errors),
                ("traced_ops", tracer.ops_closed if tracer else 0),
                ("sampled_out", tracer.sampled_out if tracer else 0)):
            result.add_row(variant=label, metric=metric, value=value)

    # 1. Zero simulation side-effects: bit-identical handshake records.
    for label, bed in (("on", bed_on), ("sampled", bed_smp)):
        same = bed.metrics.handshakes == bed_off.metrics.handshakes
        result.add_check(
            f"tracing {label}: simulation output identical to untraced",
            "identical handshake record", "==" if same else "!=", same)

    # 2. The traced run actually traced, and its export is valid.
    traced = bed_on.tracer
    result.add_check(
        "traced run covers the offloaded ops",
        "> 0 closed traces, 0 sampled out",
        f"{traced.ops_closed} closed, {traced.sampled_out} out",
        traced.ops_closed > 0 and traced.sampled_out == 0)
    events = chrome_trace_events(traced)
    problems = validate_chrome_trace(
        json.loads(json.dumps({"traceEvents": events})))
    result.add_check(
        "Chrome trace export validates against the trace_event schema",
        "0 problems", str(len(problems)), not problems)
    stages = {s for (_, s) in traced.histograms}
    result.add_check(
        "stage histograms populated (queue/ring/service/poll/resume)",
        "5+ stages", str(len(stages - {"total"})),
        {"queue", "ring", "engine-service", "poll-delay",
         "resume"} <= stages)

    # 3. Sampling traces a strict subset.
    smp = bed_smp.tracer
    result.add_check(
        "sample_rate 0.25 traces a strict subset",
        "0 < closed < full", f"{smp.ops_closed} of {traced.ops_closed}",
        0 < smp.ops_closed < traced.ops_closed)

    # 4. Wall-clock envelope (host-noisy, hence generous).
    ratio = wall_on / wall_off if wall_off else 0.0
    result.add_check(
        f"fully-traced wall-clock within {TRACED_ENVELOPE:.1f}x of "
        "untraced", f"< {TRACED_ENVELOPE:.1f}x", f"{ratio:.2f}x",
        0.0 < ratio < TRACED_ENVELOPE)
    return result
