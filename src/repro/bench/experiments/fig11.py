"""Figure 11: average response time vs concurrency.

One worker; each request is a fresh connection with a full TLS-RSA
handshake fetching a <100-byte page — latency is dominated by where
the RSA op runs and how fast its result comes back.
"""

from __future__ import annotations

from ..reporting import ExperimentResult
from ..runner import Testbed, Windows

__all__ = ["run"]

QUICK = Windows(warmup=0.1, measure=0.2)
FULL = Windows(warmup=0.2, measure=0.4)

CONFIGS = ("SW", "QAT+S", "QAT+A", "QTLS")  # the four the figure shows


def run(quick: bool = True, seed: int = 7) -> ExperimentResult:
    windows = QUICK if quick else FULL
    concurrencies = [1, 16, 64] if quick \
        else [1, 2, 4, 6, 8, 12, 16, 32, 64, 128, 256]
    result = ExperimentResult(
        exp_id="fig11",
        title="Average response time (ms) vs concurrency, TLS-RSA, "
              "1 worker, <100B page",
        columns=["concurrency", "config", "value"],
        notes="value = mean end-to-end response time in milliseconds")
    lat = {}
    for conc in concurrencies:
        for config in CONFIGS:
            bed = Testbed(config, workers=1, suites=("TLS-RSA",),
                          seed=seed)
            v = bed.measure_latency(windows, n_clients=conc) * 1e3
            lat[(conc, config)] = v
            result.add_row(concurrency=conc, config=config, value=v)

    # Concurrency 1: QAT+S lowest (busy-loop wait), SW highest
    # (software RSA), QTLS second-best (timeliness constraint).
    c1 = {cfg: lat[(1, cfg)] for cfg in CONFIGS}
    result.add_check("conc=1: QAT+S has the lowest latency",
                     "QAT+S = min", f"{min(c1, key=c1.get)}",
                     min(c1, key=c1.get) == "QAT+S")
    result.add_check("conc=1: SW has the highest latency",
                     "SW = max", f"{max(c1, key=c1.get)}",
                     max(c1, key=c1.get) == "SW")
    result.add_check("conc=1: QTLS beats QAT+A (immediate heuristic "
                     "poll vs 10us timer)", "QTLS < QAT+A",
                     f"{c1['QTLS']:.2f} vs {c1['QAT+A']:.2f} ms",
                     c1["QTLS"] < c1["QAT+A"])
    hi = 64 if 64 in concurrencies else concurrencies[-1]
    red_a = 1 - lat[(hi, "QAT+A")] / lat[(hi, "SW")]
    result.add_check(f"conc={hi}: QAT+A ~75% latency reduction vs SW",
                     "65-85%", f"{red_a * 100:.0f}%", 0.6 < red_a < 0.88)
    red_q = 1 - lat[(hi, "QTLS")] / lat[(hi, "SW")]
    result.add_check(f"conc={hi}: QTLS ~85% latency reduction vs SW",
                     "78-92%", f"{red_q * 100:.0f}%", 0.75 < red_q < 0.93)
    return result
