"""Experiment result containers and table rendering."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence

__all__ = ["ExperimentResult", "format_table"]


@dataclass
class ExperimentResult:
    """The regenerated rows/series of one paper table or figure."""

    exp_id: str                  # e.g. "fig7a"
    title: str
    columns: Sequence[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    #: Shape statements from the paper and whether we reproduced them.
    checks: List[Dict[str, Any]] = field(default_factory=list)
    notes: str = ""

    def add_row(self, **values: Any) -> None:
        self.rows.append(values)

    def add_check(self, claim: str, expected: str, measured: str,
                  ok: bool) -> None:
        self.checks.append(dict(claim=claim, expected=expected,
                                measured=measured, ok=ok))

    def value(self, **match: Any) -> Any:
        """Look up the 'value' field of the row matching ``match``."""
        for row in self.rows:
            if all(row.get(k) == v for k, v in match.items()):
                return row["value"]
        raise KeyError(f"no row matching {match}")

    @property
    def all_checks_pass(self) -> bool:
        return all(c["ok"] for c in self.checks)

    def render(self) -> str:
        out = [f"== {self.exp_id}: {self.title} =="]
        out.append(format_table(self.columns, self.rows))
        if self.checks:
            out.append("shape checks (paper claim -> measured):")
            for c in self.checks:
                mark = "PASS" if c["ok"] else "MISS"
                out.append(f"  [{mark}] {c['claim']}: expected "
                           f"{c['expected']}, measured {c['measured']}")
        if self.notes:
            out.append(f"notes: {self.notes}")
        return "\n".join(out)


def _fmt(v: Any) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000:
            return f"{v:,.0f}"
        if abs(v) >= 1:
            return f"{v:.2f}"
        return f"{v:.4g}"
    return str(v)


def format_table(columns: Sequence[str],
                 rows: List[Dict[str, Any]]) -> str:
    cells = [[_fmt(row.get(c, "")) for c in columns] for row in rows]
    widths = [max(len(c), *(len(r[i]) for r in cells)) if cells else len(c)
              for i, c in enumerate(columns)]
    head = "  ".join(c.ljust(w) for c, w in zip(columns, widths))
    sep = "  ".join("-" * w for w in widths)
    body = [("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
            for row in cells]
    return "\n".join([head, sep, *body])
