"""CLI: regenerate paper tables/figures.

Usage::

    python -m repro.bench list
    python -m repro.bench run fig7a [--full] [--seed N]
    python -m repro.bench run all [--full]
"""

import argparse
import sys
import time

from .experiments import ALL_EXPERIMENTS


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro.bench")
    sub = parser.add_subparsers(dest="cmd", required=True)
    sub.add_parser("list", help="list experiment ids")
    runp = sub.add_parser("run", help="run one experiment (or 'all')")
    runp.add_argument("experiment")
    runp.add_argument("--full", action="store_true",
                      help="full sweep (paper-size points; slower)")
    runp.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    if args.cmd == "list":
        for name in ALL_EXPERIMENTS:
            print(name)
        return 0

    names = (list(ALL_EXPERIMENTS) if args.experiment == "all"
             else [args.experiment])
    ok = True
    for name in names:
        try:
            fn = ALL_EXPERIMENTS[name]
        except KeyError:
            print(f"unknown experiment {name!r}; try 'list'",
                  file=sys.stderr)
            return 2
        # Wall-clock reporting only, never fed into the simulation.
        t0 = time.time()  # determinism: allowed
        result = fn(quick=not args.full, seed=args.seed)
        print(result.render())
        wall = time.time() - t0  # determinism: allowed
        print(f"[{name} took {wall:.1f}s wall]")
        print()
        ok = ok and result.all_checks_pass
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
