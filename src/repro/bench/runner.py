"""Experiment testbed: assembles the full simulated world (server
machine + QAT card + client machines) and measures CPS / throughput /
latency over a warmed-up window, as the paper's testbed does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..clients import AbFleet, STimeFleet
from ..core.configurations import make_server_config
from ..core.costmodel import CostModel, default_cost_model
from ..core.metrics import ClientMetrics
from ..crypto.provider import CryptoProvider, ModeledCryptoProvider
from ..net.network import Network
from ..obs import RequestTracer
from ..qat.device import dh8970
from ..qat.faults import FaultPlan
from ..server.master import TlsServer
from ..sim.kernel import Simulator
from ..sim.rng import RngRegistry
from ..tls.config import TlsClientConfig
from ..tls.constants import ProtocolVersion
from ..tls.suites import get_suite

__all__ = ["Testbed", "Windows", "CLIENTS_PER_WORKER"]

#: Closed-loop client sizing per configuration ("multiple benchmark
#: processes may be needed to fully load the running Nginx" — artifact
#: appendix A.6). Blocking configs serialize per worker, so a handful
#: of clients saturates them; the async framework needs enough
#: concurrency to fill the accelerator.
CLIENTS_PER_WORKER: Dict[str, int] = {
    "SW": 16, "QAT+S": 16, "QAT+A": 100, "QAT+AH": 100, "QTLS": 100,
}


@dataclass(frozen=True)
class Windows:
    """Warm-up and measurement windows (simulated seconds)."""

    warmup: float = 0.1
    measure: float = 0.15

    @property
    def end(self) -> float:
        return self.warmup + self.measure


class Testbed:
    """One experiment run: a server under a config + a client fleet."""

    __test__ = False  # not a pytest collection target

    def __init__(self, config_name: str, workers: int,
                 suites: Tuple[str, ...] = ("TLS-RSA",),
                 curves: Tuple[str, ...] = ("P-256",),
                 tls_version: str = "1.2", rsa_bits: int = 2048,
                 provider: Optional[CryptoProvider] = None,
                 cost_model: Optional[CostModel] = None,
                 seed: int = 7,
                 fault_plan: Optional[Dict] = None,
                 trace: bool = False,
                 trace_sample_rate: float = 1.0,
                 **config_overrides) -> None:
        self.config_name = config_name
        self.sim = Simulator()
        #: Request-lifecycle tracing (``repro.obs``): attach a tracer
        #: before any server/client construction so every layer sees
        #: the same ``sim.obs``. None when tracing is off — the
        #: instrumentation then costs one attribute read per site.
        self.tracer: Optional[RequestTracer] = None
        if trace:
            self.tracer = RequestTracer(enabled=True,
                                        sample_rate=trace_sample_rate)
            self.sim.obs = self.tracer
        self.rng = RngRegistry(seed)
        self.net = Network(self.sim)
        self.provider = provider or ModeledCryptoProvider()
        self.cost_model = cost_model or default_cost_model()
        self.config = make_server_config(
            config_name, workers=workers, suites=suites, curves=curves,
            tls_version=tls_version, rsa_bits=rsa_bits, **config_overrides)
        self.device = dh8970(self.sim) if self.config.uses_qat else None
        #: Fault injection (robustness experiments): ``fault_plan`` is
        #: the FaultPlan kwargs; its randomness draws from the testbed's
        #: seeded registry, so the whole faulted run replays from seed.
        self.fault_plan: Optional[FaultPlan] = None
        if fault_plan is not None and self.device is not None:
            self.fault_plan = FaultPlan(self.rng.stream("faults"),
                                        **fault_plan)
            self.device.install_fault_plan(self.fault_plan)
        self.server = TlsServer(self.sim, self.net, self.config,
                                self.provider, self.rng,
                                qat_device=self.device,
                                cost_model=self.cost_model)
        self.server.start()
        self.metrics = ClientMetrics()
        self.suites = suites
        self.curves = curves
        self.version = (ProtocolVersion.TLS13 if tls_version == "1.3"
                        else ProtocolVersion.TLS12)

    # -- client plumbing ---------------------------------------------------

    def _client_config_factory(self):
        suites = tuple(get_suite(s) for s in self.suites)

        def factory(cid: int) -> TlsClientConfig:
            return TlsClientConfig(
                provider=self.provider, suites=suites,
                rng=self.rng.stream(f"client-{cid}"), curves=self.curves)

        return factory

    def default_clients(self) -> int:
        return (CLIENTS_PER_WORKER[self.config_name]
                * self.config.worker_processes)

    def add_s_time_fleet(self, n_clients: Optional[int] = None,
                         addresses: Optional[List[str]] = None,
                         **kw) -> STimeFleet:
        """``addresses`` overrides the per-worker listener list; pass a
        weighted (repeated) list to skew load across workers — clients
        map to ``addresses[client_id % len(addresses)]``."""
        fleet = STimeFleet(
            self.sim, self.net,
            addresses if addresses is not None else self.server.addresses(),
            self._client_config_factory(), self.cost_model, self.metrics,
            n_clients=(n_clients if n_clients is not None
                       else self.default_clients()),
            version=self.version, mix_rng=self.rng.stream("mix"), **kw)
        fleet.start()
        return fleet

    def add_ab_fleet(self, n_clients: int, file_size: int,
                     **kw) -> AbFleet:
        fleet = AbFleet(
            self.sim, self.net, self.server.addresses(),
            self._client_config_factory(), self.cost_model, self.metrics,
            n_clients=n_clients, file_size=file_size,
            version=self.version, **kw)
        fleet.start()
        return fleet

    # -- measurements ----------------------------------------------------------

    def run_window(self, windows: Windows) -> None:
        self.sim.run(until=windows.end)

    def measure_cps(self, windows: Windows,
                    n_clients: Optional[int] = None, **fleet_kw) -> float:
        """Full s_time run: returns connections/second."""
        self.add_s_time_fleet(n_clients, **fleet_kw)
        self.run_window(windows)
        return self.metrics.cps(windows.warmup, windows.end)

    def measure_throughput(self, windows: Windows, n_clients: int,
                           file_size: int, **fleet_kw) -> float:
        """Keepalive ab run: returns payload bits/second."""
        self.add_ab_fleet(n_clients, file_size, **fleet_kw)
        self.run_window(windows)
        return self.metrics.throughput_bps(windows.warmup, windows.end)

    def measure_latency(self, windows: Windows, n_clients: int,
                        file_size: int = 64) -> float:
        """Full-handshake-per-request ab run: mean response time (s)."""
        self.add_ab_fleet(n_clients, file_size, keepalive=False)
        self.run_window(windows)
        return self.metrics.mean_latency(windows.warmup, windows.end)
