"""TLS endpoint configuration objects."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

from ..crypto.provider import CryptoProvider, ServerCredentials
from .session import SessionCache
from .suites import CipherSuite
from .ticket import TicketKeeper

__all__ = ["TlsServerConfig", "TlsClientConfig"]


@dataclass
class TlsServerConfig:
    """Server-side TLS parameters.

    ``credentials_rsa`` / ``credentials_ecdsa`` must match the auth
    algorithms of the enabled suites. ``curves`` is the server's
    preference list for ECDHE and ECDSA.
    """

    provider: CryptoProvider
    suites: Tuple[CipherSuite, ...]
    rng: np.random.Generator
    credentials_rsa: Optional[ServerCredentials] = None
    credentials_ecdsa: Optional[ServerCredentials] = None
    curves: Tuple[str, ...] = ("P-256",)
    session_cache: Optional[SessionCache] = None
    issue_tickets: bool = False
    #: Stateless-ticket support (RFC 5077); used when issue_tickets.
    ticket_keeper: Optional[TicketKeeper] = None
    #: Simulated-time source for ticket lifetimes.
    clock: Callable[[], float] = lambda: 0.0

    def credentials_for(self, suite: CipherSuite) -> ServerCredentials:
        cred = (self.credentials_rsa if suite.auth == "rsa"
                else self.credentials_ecdsa)
        if cred is None:
            raise ValueError(f"no {suite.auth} credentials configured "
                             f"for suite {suite.name}")
        return cred


@dataclass
class TlsClientConfig:
    """Client-side TLS parameters."""

    provider: CryptoProvider
    suites: Tuple[CipherSuite, ...]
    rng: np.random.Generator
    curves: Tuple[str, ...] = ("P-256",)
    # Resumption state from a previous connection, if any.
    session_id: bytes = b""
    session_ticket: Optional[bytes] = None
    session_master_secret: bytes = b""
    session_suite: Optional[CipherSuite] = None
