"""Stateless session tickets (RFC 5077).

Instead of a server-side cache, the session state is sealed under a
server ticket-encryption key (STEK) and handed to the client; any
server holding the key can resume the session without shared state —
how large deployments (the paper's CDN adopters) actually run
resumption. Lifetime limits still apply: the issue timestamp is sealed
inside the ticket.
"""

from __future__ import annotations

from typing import Optional

from ..crypto.gcm import AesGcm, GcmAuthError
from .session import SessionState
from .suites import get_suite

__all__ = ["TicketKeeper"]

_MAGIC = b"STK1"


class TicketKeeper:
    """Seals and opens session tickets under a rotating STEK."""

    def __init__(self, key: bytes, lifetime: float = 3600.0) -> None:
        if len(key) != 16:
            raise ValueError("STEK must be 16 bytes")
        if lifetime <= 0:
            raise ValueError("lifetime must be positive")
        self._gcm = AesGcm(key)
        self.lifetime = lifetime
        self._seq = 0
        self.issued = 0
        self.accepted = 0
        self.rejected = 0

    def seal(self, state: SessionState, now: float) -> bytes:
        """Encrypt session state into an opaque ticket."""
        self._seq += 1
        nonce = self._seq.to_bytes(12, "big")
        suite_name = state.suite.name.encode()
        body = (_MAGIC
                + int(now * 1e6).to_bytes(8, "big")
                + bytes([len(suite_name)]) + suite_name
                + bytes([len(state.session_id)]) + state.session_id
                + state.master_secret)
        self.issued += 1
        return nonce + self._gcm.seal(nonce, body)

    def open(self, ticket: bytes, now: float) -> Optional[SessionState]:
        """Decrypt and validate a ticket; None if invalid/expired."""
        if len(ticket) < 12 + 16 + len(_MAGIC):
            self.rejected += 1
            return None
        nonce, sealed = ticket[:12], ticket[12:]
        try:
            body = self._gcm.open(nonce, sealed)
        except GcmAuthError:
            self.rejected += 1
            return None
        if body[:4] != _MAGIC:
            self.rejected += 1
            return None
        issued_at = int.from_bytes(body[4:12], "big") / 1e6
        if now - issued_at > self.lifetime:
            self.rejected += 1
            return None
        off = 12
        slen = body[off]
        suite_name = body[off + 1:off + 1 + slen].decode()
        off += 1 + slen
        idlen = body[off]
        session_id = body[off + 1:off + 1 + idlen]
        off += 1 + idlen
        master_secret = body[off:]
        try:
            suite = get_suite(suite_name)
        except ValueError:
            self.rejected += 1
            return None
        self.accepted += 1
        return SessionState(session_id=session_id, suite=suite,
                            master_secret=master_secret,
                            created_at=issued_at)
