"""Session resumption state (session IDs and session tickets).

Resumption lets later connections skip the asymmetric-key operations
(paper section 2.1). The cache enforces a lifetime, mirroring how
service providers restrict ticket lifetime to bound the forward-
secrecy exposure.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from .suites import CipherSuite

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.kernel import Simulator

__all__ = ["SessionState", "SessionCache"]


@dataclass(frozen=True)
class SessionState:
    """What the server needs to resume a session."""

    session_id: bytes
    suite: CipherSuite
    master_secret: bytes
    created_at: float


class SessionCache:
    """Server-side session store with LRU eviction and expiry."""

    def __init__(self, sim: "Simulator", lifetime: float = 3600.0,
                 capacity: int = 100_000) -> None:
        if lifetime <= 0 or capacity < 1:
            raise ValueError("invalid cache parameters")
        self.sim = sim
        self.lifetime = lifetime
        self.capacity = capacity
        self._store: "OrderedDict[bytes, SessionState]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def put(self, state: SessionState) -> None:
        self._store[state.session_id] = state
        self._store.move_to_end(state.session_id)
        while len(self._store) > self.capacity:
            self._store.popitem(last=False)

    def get(self, session_id: bytes) -> Optional[SessionState]:
        state = self._store.get(session_id)
        if state is None:
            self.misses += 1
            return None
        if self.sim.now - state.created_at > self.lifetime:
            del self._store[session_id]
            self.misses += 1
            return None
        self.hits += 1
        self._store.move_to_end(session_id)
        return state

    def invalidate(self, session_id: bytes) -> None:
        self._store.pop(session_id, None)

    def __len__(self) -> int:
        return len(self._store)
