"""Session resumption state (session IDs and session tickets).

Resumption lets later connections skip the asymmetric-key operations
(paper section 2.1). The cache enforces a lifetime, mirroring how
service providers restrict ticket lifetime to bound the forward-
secrecy exposure.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from .suites import CipherSuite

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.kernel import Simulator

__all__ = ["SessionState", "SessionCache"]


@dataclass(frozen=True)
class SessionState:
    """What the server needs to resume a session."""

    session_id: bytes
    suite: CipherSuite
    master_secret: bytes
    created_at: float


class SessionCache:
    """Server-side session store with LRU eviction and expiry."""

    def __init__(self, sim: "Simulator", lifetime: float = 3600.0,
                 capacity: int = 100_000) -> None:
        if lifetime <= 0 or capacity < 1:
            raise ValueError("invalid cache parameters")
        self.sim = sim
        self.lifetime = lifetime
        self.capacity = capacity
        self._store: "OrderedDict[bytes, SessionState]" = OrderedDict()
        self.hits = 0
        #: Lookup found nothing at all vs. found an entry already past
        #: its lifetime. ``misses`` stays the sum of both.
        self.cold_misses = 0
        self.expiry_misses = 0
        #: Entries dropped because they outlived ``lifetime``
        #: (lookup-side purges plus put-side sweeps).
        self.expired_evictions = 0

    @property
    def misses(self) -> int:
        return self.cold_misses + self.expiry_misses

    def _expired(self, state: SessionState) -> bool:
        return self.sim.now - state.created_at > self.lifetime

    def _sweep_expired(self) -> None:
        """Drop every dead entry. Without this, a cache full of
        expired sessions LRU-evicts *live* ones first: expired entries
        were only ever purged on lookup, never by ``put``."""
        dead = [sid for sid, state in self._store.items()
                if self._expired(state)]
        for sid in dead:
            del self._store[sid]
        self.expired_evictions += len(dead)

    def put(self, state: SessionState) -> None:
        self._store[state.session_id] = state
        self._store.move_to_end(state.session_id)
        if len(self._store) > self.capacity:
            self._sweep_expired()
        while len(self._store) > self.capacity:
            self._store.popitem(last=False)

    def get(self, session_id: bytes) -> Optional[SessionState]:
        state = self._store.get(session_id)
        if state is None:
            self.cold_misses += 1
            return None
        if self._expired(state):
            del self._store[session_id]
            self.expired_evictions += 1
            self.expiry_misses += 1
            return None
        self.hits += 1
        self._store.move_to_end(session_id)
        return state

    def invalidate(self, session_id: bytes) -> None:
        self._store.pop(session_id, None)

    def __len__(self) -> int:
        return len(self._store)
