"""Handshake message objects.

Messages are dataclasses with a canonical deterministic encoding
(:meth:`to_bytes`) used for transcript hashing and signatures, and a
:meth:`wire_size` used for network accounting. The encoding is
complete (every security-relevant field is covered) but is not the
exact RFC 5246/8446 wire format — the simulation transports message
objects, not raw octets (see DESIGN.md).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, fields
from typing import Optional, Tuple

from .constants import HandshakeType, ProtocolVersion

__all__ = ["HandshakeMessage", "ClientHello", "ServerHello", "Certificate",
           "ServerKeyExchange", "ServerHelloDone", "ClientKeyExchange",
           "ChangeCipherSpec", "Finished", "EncryptedExtensions",
           "CertificateVerify", "NewSessionTicket", "Alert",
           "transcript_hash"]


def _encode_field(value) -> bytes:
    if value is None:
        return b"\x00"
    if isinstance(value, bytes):
        return len(value).to_bytes(4, "big") + value
    if isinstance(value, bool):
        return b"\x01" if value else b"\x02"
    if isinstance(value, int):
        return value.to_bytes(8, "big", signed=True)
    if isinstance(value, str):
        b = value.encode()
        return len(b).to_bytes(4, "big") + b
    if isinstance(value, (tuple, list)):
        out = len(value).to_bytes(2, "big")
        for v in value:
            out += _encode_field(v)
        return out
    raise TypeError(f"cannot encode field of type {type(value)!r}")


@dataclass(frozen=True)
class HandshakeMessage:
    """Base class; subclasses define ``msg_type`` and ``overhead``."""

    msg_type = None   # type: Optional[HandshakeType]
    overhead = 8      # header/extension framing bytes on the wire

    def to_bytes(self) -> bytes:
        """Canonical encoding for transcripts and signatures."""
        out = bytearray()
        out += int(self.msg_type).to_bytes(1, "big")
        for f in fields(self):
            out += _encode_field(getattr(self, f.name))
        return bytes(out)

    def wire_size(self) -> int:
        """Approximate on-the-wire size in bytes."""
        size = self.overhead + 4  # handshake header
        for f in fields(self):
            v = getattr(self, f.name)
            if isinstance(v, bytes):
                size += len(v)
            elif isinstance(v, str):
                size += len(v)
            elif isinstance(v, (tuple, list)):
                size += 2 * len(v) + 2
            elif v is not None:
                size += 2
        return size


@dataclass(frozen=True)
class ClientHello(HandshakeMessage):
    msg_type = HandshakeType.CLIENT_HELLO
    overhead = 60  # legacy fields + extension framing

    client_random: bytes = b""
    versions: Tuple[int, ...] = (ProtocolVersion.TLS12,)
    cipher_suites: Tuple[str, ...] = ()
    session_id: bytes = b""                 # resumption attempt if set
    session_ticket: Optional[bytes] = None  # ticket-based resumption
    supported_curves: Tuple[str, ...] = ()
    key_share_curve: Optional[str] = None   # TLS 1.3
    key_share: Optional[bytes] = None       # TLS 1.3 client share
    #: TLS 1.3 PSK offer: the identity is carried in session_ticket;
    #: the binder proves possession of the PSK (RFC 8446 section 4.2.11).
    psk_binder: Optional[bytes] = None


@dataclass(frozen=True)
class ServerHello(HandshakeMessage):
    msg_type = HandshakeType.SERVER_HELLO
    overhead = 40

    server_random: bytes = b""
    version: int = ProtocolVersion.TLS12
    cipher_suite: str = ""
    session_id: bytes = b""
    resumed: bool = False
    key_share_curve: Optional[str] = None   # TLS 1.3
    key_share: Optional[bytes] = None       # TLS 1.3 server share
    #: TLS 1.3: the accepted PSK offer (0 = the only one we send).
    selected_psk: Optional[int] = None


@dataclass(frozen=True)
class Certificate(HandshakeMessage):
    msg_type = HandshakeType.CERTIFICATE
    # X.509 framing, issuer/subject DNs, validity, signature by the CA:
    # dwarfs the raw public key. A 2048-bit RSA leaf cert is ~1 KB.
    overhead = 700

    kind: str = "rsa"                 # "rsa" | "ecdsa"
    public_bytes: bytes = b""
    curve: Optional[str] = None


@dataclass(frozen=True)
class ServerKeyExchange(HandshakeMessage):
    msg_type = HandshakeType.SERVER_KEY_EXCHANGE
    overhead = 12

    curve: str = ""
    public: bytes = b""               # server ephemeral EC point
    signature: bytes = b""            # over randoms + params

    def signed_portion(self, client_random: bytes,
                       server_random: bytes) -> bytes:
        return (b"SKE" + client_random + server_random
                + self.curve.encode() + self.public)


@dataclass(frozen=True)
class ServerHelloDone(HandshakeMessage):
    msg_type = HandshakeType.SERVER_HELLO_DONE
    overhead = 4


@dataclass(frozen=True)
class ClientKeyExchange(HandshakeMessage):
    msg_type = HandshakeType.CLIENT_KEY_EXCHANGE
    overhead = 6

    encrypted_premaster: Optional[bytes] = None  # TLS-RSA
    public: Optional[bytes] = None               # ECDHE client point


@dataclass(frozen=True)
class ChangeCipherSpec(HandshakeMessage):
    msg_type = HandshakeType.CLIENT_KEY_EXCHANGE  # placeholder, see below
    overhead = 1

    # CCS is its own content type, not a handshake message; modelled
    # here for uniform transport. It is excluded from transcripts.
    marker: str = "ccs"

    def to_bytes(self) -> bytes:
        return b"\x14ccs"


@dataclass(frozen=True)
class Finished(HandshakeMessage):
    msg_type = HandshakeType.FINISHED
    overhead = 28  # record encryption overhead (IV + MAC + padding)

    verify_data: bytes = b""


@dataclass(frozen=True)
class EncryptedExtensions(HandshakeMessage):
    msg_type = HandshakeType.ENCRYPTED_EXTENSIONS
    overhead = 10


@dataclass(frozen=True)
class CertificateVerify(HandshakeMessage):
    msg_type = HandshakeType.CERTIFICATE_VERIFY
    overhead = 8

    signature: bytes = b""


@dataclass(frozen=True)
class NewSessionTicket(HandshakeMessage):
    msg_type = HandshakeType.NEW_SESSION_TICKET
    overhead = 16

    ticket: bytes = b""
    lifetime: int = 3600
    #: TLS 1.3: per-ticket nonce feeding the resumption-PSK derivation.
    nonce: bytes = b""


@dataclass(frozen=True)
class Alert(HandshakeMessage):
    """A fatal TLS alert (its own content type on the real wire;
    transported like other messages here and excluded from
    transcripts)."""

    msg_type = HandshakeType.FINISHED  # placeholder; not transcripted
    overhead = 7

    description: str = "internal_error"

    def to_bytes(self) -> bytes:
        return b"\x15" + self.description.encode()


def transcript_hash(messages, hash_name: str = "sha256") -> bytes:
    """Hash of the canonical encodings of handshake messages, excluding
    ChangeCipherSpec (as TLS does)."""
    ctx = hashlib.new(hash_name)
    for m in messages:
        if isinstance(m, (ChangeCipherSpec, Alert)):
            continue
        ctx.update(m.to_bytes())
    return ctx.digest()
