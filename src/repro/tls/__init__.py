"""From-scratch TLS protocol stack (1.2 + 1.3, sans-IO).

State machines yield explicit actions (messages to send, messages
needed, crypto operations) so the SSL layer above can run them
synchronously or pause/resume them around asynchronous offload — the
core mechanism of QTLS.
"""

from .actions import (CryptoCall, DirectionKeys, HandshakeResult,
                      NeedMessage, SendMessage, TlsAlert)
from .config import TlsClientConfig, TlsServerConfig
from .constants import (MAX_FRAGMENT, ContentType, HandshakeType,
                        ProtocolVersion)
from .handshake import (client_handshake12, client_handshake13,
                        server_handshake12, server_handshake13)
from .loopback import OpLog, SyncDriver, run_loopback_handshake
from .record import RecordLayer, TlsRecord
from .session import SessionCache, SessionState
from .suites import (ECDHE_ECDSA, ECDHE_RSA, TLS13_ECDHE_RSA, TLS_RSA,
                     CipherSuite, get_suite, list_suites)

__all__ = [
    "CryptoCall", "NeedMessage", "SendMessage", "HandshakeResult",
    "DirectionKeys", "TlsAlert",
    "TlsServerConfig", "TlsClientConfig",
    "ProtocolVersion", "ContentType", "HandshakeType", "MAX_FRAGMENT",
    "server_handshake12", "client_handshake12",
    "server_handshake13", "client_handshake13",
    "OpLog", "SyncDriver", "run_loopback_handshake",
    "RecordLayer", "TlsRecord",
    "SessionCache", "SessionState",
    "CipherSuite", "get_suite", "list_suites",
    "TLS_RSA", "ECDHE_RSA", "ECDHE_ECDSA", "TLS13_ECDHE_RSA",
]
