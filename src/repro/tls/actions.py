"""Actions yielded by the sans-IO handshake state machines.

The handshake generators in :mod:`repro.tls.handshake` never touch
sockets, engines or the simulator. They yield these action objects and
receive results back through ``gen.send``:

- :class:`NeedMessage` — wants the next inbound handshake message; the
  driver replies with the message object (or raises into the
  generator on protocol errors).
- :class:`SendMessage` — hand an outbound message to the driver
  (reply: None).
- :class:`CryptoCall` — run a crypto operation. The reply is the
  result of ``compute()``. **This is the pause point**: an async
  driver submits the op to the accelerator and suspends the whole
  generator until the response arrives (paper sections 3.2/4.1).

Keeping the protocol logic sans-IO is what makes the same state
machine run under the sync driver, the stack-async driver and the
fiber-async driver without modification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, Tuple, Type

from ..crypto.ops import CryptoOp
from .messages import HandshakeMessage
from .suites import CipherSuite

__all__ = ["NeedMessage", "SendMessage", "CryptoCall", "HandshakeResult",
           "TlsAlert"]


class TlsAlert(Exception):
    """A fatal TLS alert (protocol violation, bad MAC, bad signature…)."""

    def __init__(self, description: str) -> None:
        super().__init__(description)
        self.description = description


@dataclass
class NeedMessage:
    """Request the next inbound handshake message."""

    expected: Tuple[Type[HandshakeMessage], ...] = ()


@dataclass
class SendMessage:
    """Queue an outbound handshake message (flushed per flight)."""

    message: HandshakeMessage
    encrypted: bool = False
    flush: bool = False  # end of flight: push to the wire


@dataclass
class CryptoCall:
    """Request execution of one crypto operation."""

    op: CryptoOp
    compute: Callable[[], Any]
    label: str = ""


@dataclass
class HandshakeResult:
    """Outcome of a completed handshake."""

    suite: CipherSuite
    master_secret: bytes
    client_write_keys: "DirectionKeys"
    server_write_keys: "DirectionKeys"
    session_id: bytes = b""
    session_ticket: Optional[bytes] = None
    #: TLS 1.3: the PSK to offer with ``session_ticket`` next time.
    resumption_psk: Optional[bytes] = None
    resumed: bool = False
    negotiated_curve: Optional[str] = None


@dataclass(frozen=True)
class DirectionKeys:
    """Record-protection keys for one direction."""

    mac_key: bytes
    enc_key: bytes
    iv: bytes
