"""TLS 1.3 client handshake state machine (RFC 8446, 1-RTT), with
psk_dhe_ke resumption support."""

from __future__ import annotations

from dataclasses import replace
from typing import Generator, Optional

from ...crypto.hmac_impl import hmac_digest
from ...crypto.ops import CryptoOp, CryptoOpKind
from ..actions import (CryptoCall, HandshakeResult, NeedMessage, SendMessage,
                       TlsAlert)
from ..config import TlsClientConfig
from ..constants import RANDOM_LEN, ProtocolVersion
from ..keyschedule import Tls13Schedule
from ..messages import (Certificate, CertificateVerify, ClientHello,
                        EncryptedExtensions, Finished, NewSessionTicket,
                        ServerHello, transcript_hash)
from .psk13 import compute_binder, derive_resumption_psk, partial_ch_hash

__all__ = ["client_handshake13"]


def _hkdf_op(nbytes: int = 32) -> CryptoOp:
    return CryptoOp(CryptoOpKind.HKDF, nbytes=nbytes)


def client_handshake13(config: TlsClientConfig
                       ) -> Generator[object, object, HandshakeResult]:
    """Run one TLS 1.3 client-side handshake; offers PSK resumption
    when ``config.session_ticket`` carries a previous connection's
    ticket (+ resumption PSK in ``session_master_secret``)."""
    provider = config.provider
    schedule = Tls13Schedule(provider)
    transcript = []
    curve = config.curves[0]

    share = yield CryptoCall(
        CryptoOp(CryptoOpKind.ECDH_KEYGEN, curve=curve),
        compute=lambda: provider.ecdh_keygen(curve, config.rng),
        label="keyshare-keygen")

    offer_psk = (config.session_ticket is not None
                 and bool(config.session_master_secret))
    ch = ClientHello(
        client_random=bytes(config.rng.bytes(RANDOM_LEN)),
        versions=(ProtocolVersion.TLS13,),
        cipher_suites=tuple(s.name for s in config.suites),
        supported_curves=tuple(config.curves),
        key_share_curve=curve,
        key_share=share.public_bytes,
        session_ticket=config.session_ticket if offer_psk else None)
    if offer_psk:
        binder = yield from compute_binder(
            schedule, config.session_master_secret, partial_ch_hash(ch))
        ch = replace(ch, psk_binder=binder)
    transcript.append(ch)
    yield SendMessage(ch, flush=True)

    sh = yield NeedMessage((ServerHello,))
    if not isinstance(sh, ServerHello):
        raise TlsAlert("unexpected_message: expected ServerHello")
    transcript.append(sh)
    suite = next((s for s in config.suites if s.name == sh.cipher_suite),
                 None)
    if suite is None or suite.version != ProtocolVersion.TLS13:
        raise TlsAlert("illegal_parameter: bad suite in ServerHello")
    if sh.key_share is None or sh.key_share_curve != curve:
        raise TlsAlert("illegal_parameter: bad server key share")
    resumed = sh.selected_psk is not None
    if resumed and not offer_psk:
        raise TlsAlert("illegal_parameter: server accepted unoffered PSK")

    peer = sh.key_share
    shared = yield CryptoCall(
        CryptoOp(CryptoOpKind.ECDH_COMPUTE, curve=curve),
        compute=lambda: provider.ecdh_shared(share, peer),
        label="ecdh-compute")

    the_psk = config.session_master_secret if resumed else b""
    early = yield CryptoCall(
        _hkdf_op(), compute=lambda: schedule.early_secret(the_psk),
        label="early-secret")
    hs_secret = yield CryptoCall(
        _hkdf_op(), compute=lambda: schedule.handshake_secret(early, shared),
        label="handshake-secret")
    th_sh = transcript_hash(transcript)
    c_hs = yield CryptoCall(
        _hkdf_op(), compute=lambda: schedule.derive_secret(
            hs_secret, b"c hs traffic", th_sh),
        label="client-hs-traffic")
    s_hs = yield CryptoCall(
        _hkdf_op(), compute=lambda: schedule.derive_secret(
            hs_secret, b"s hs traffic", th_sh),
        label="server-hs-traffic")
    master = yield CryptoCall(
        _hkdf_op(), compute=lambda: schedule.master_secret(hs_secret),
        label="master-secret")

    ee = yield NeedMessage((EncryptedExtensions,))
    if not isinstance(ee, EncryptedExtensions):
        raise TlsAlert("unexpected_message: expected EncryptedExtensions")
    transcript.append(ee)

    if not resumed:
        cert = yield NeedMessage((Certificate,))
        if not isinstance(cert, Certificate):
            raise TlsAlert("unexpected_message: expected Certificate")
        transcript.append(cert)
        if cert.kind != suite.auth:
            raise TlsAlert("bad_certificate: key type does not match suite")

        cv = yield NeedMessage((CertificateVerify,))
        if not isinstance(cv, CertificateVerify):
            raise TlsAlert("unexpected_message: expected CertificateVerify")
        to_verify = b"TLS 1.3, server CertificateVerify" + b"\x00" \
            + transcript_hash(transcript)
        verify_kind = (CryptoOpKind.RSA_PUB if suite.auth == "rsa"
                       else CryptoOpKind.ECDSA_VERIFY)
        ok = yield CryptoCall(
            CryptoOp(verify_kind, curve=cert.curve,
                     rsa_bits=(len(cert.public_bytes) - 4) * 8
                     if suite.auth == "rsa" else None),
            compute=lambda: provider.verify(
                suite.auth, cert.public_bytes, to_verify, cv.signature,
                curve=cert.curve),
            label="certificate-verify")
        if not ok:
            raise TlsAlert("decrypt_error: bad CertificateVerify signature")
        transcript.append(cv)

    # -- optional NewSessionTicket before the server Finished -------------------
    new_ticket: Optional[bytes] = None
    new_psk: Optional[bytes] = None
    msg = yield NeedMessage((NewSessionTicket, Finished))
    if isinstance(msg, NewSessionTicket):
        pre_nst = transcript_hash(transcript)
        new_psk = yield from derive_resumption_psk(schedule, master,
                                                   pre_nst, msg.nonce)
        new_ticket = msg.ticket
        msg = yield NeedMessage((Finished,))

    server_fin = msg
    if not isinstance(server_fin, Finished):
        raise TlsAlert("unexpected_message: expected Finished")
    s_fin_key = yield CryptoCall(
        _hkdf_op(), compute=lambda: schedule.finished_key(s_hs),
        label="server-finished-key")
    th_cv = transcript_hash(transcript)
    if server_fin.verify_data != hmac_digest(s_fin_key, th_cv):
        raise TlsAlert("decrypt_error: server Finished verify failed")
    transcript.append(server_fin)

    c_fin_key = yield CryptoCall(
        _hkdf_op(), compute=lambda: schedule.finished_key(c_hs),
        label="client-finished-key")
    th_sf = transcript_hash(transcript)
    client_fin = Finished(verify_data=hmac_digest(c_fin_key, th_sf))
    transcript.append(client_fin)
    yield SendMessage(client_fin, encrypted=True, flush=True)

    th_full = transcript_hash(transcript)
    c_app = yield CryptoCall(
        _hkdf_op(), compute=lambda: schedule.derive_secret(
            master, b"c ap traffic", th_full),
        label="client-app-traffic")
    s_app = yield CryptoCall(
        _hkdf_op(), compute=lambda: schedule.derive_secret(
            master, b"s ap traffic", th_full),
        label="server-app-traffic")
    client_keys = yield CryptoCall(
        _hkdf_op(), compute=lambda: schedule.traffic_keys(c_app, suite),
        label="client-app-keys")
    server_keys = yield CryptoCall(
        _hkdf_op(), compute=lambda: schedule.traffic_keys(s_app, suite),
        label="server-app-keys")

    return HandshakeResult(
        suite=suite, master_secret=master,
        client_write_keys=client_keys, server_write_keys=server_keys,
        session_ticket=new_ticket, resumption_psk=new_psk,
        resumed=resumed, negotiated_curve=curve)
