"""TLS 1.3 PSK resumption helpers (RFC 8446 sections 4.2.11 / 4.6.1).

The resumption PSK is derived from the resumption master secret and a
per-ticket nonce; the client proves possession with a *binder* over a
partial ClientHello transcript. Resumption here always uses psk_dhe_ke
(fresh ECDHE alongside the PSK), preserving forward secrecy — and the
two ECC offload ops.

Flow simplification vs the RFC (documented in DESIGN.md): the
NewSessionTicket is delivered inside the server's handshake flight
(immediately before its Finished) rather than post-handshake, so the
resumption master secret is derived from the transcript at that point
on both sides.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Generator

from ...crypto.hmac_impl import hmac_digest
from ...crypto.ops import CryptoOp, CryptoOpKind
from ..actions import CryptoCall
from ..keyschedule import Tls13Schedule
from ..messages import ClientHello, transcript_hash

__all__ = ["compute_binder", "derive_resumption_psk", "partial_ch_hash"]


def _hkdf_op() -> CryptoOp:
    # nbytes=0 marks the lightweight (no transcript digest) HKDF steps
    # for the cost model.
    return CryptoOp(CryptoOpKind.HKDF, nbytes=0)


def partial_ch_hash(ch: ClientHello) -> bytes:
    """Hash of the ClientHello with the binder zeroed (the RFC's
    truncated-ClientHello transcript)."""
    return transcript_hash([replace(ch, psk_binder=None)])


def compute_binder(schedule: Tls13Schedule, psk: bytes, ch_hash: bytes
                   ) -> Generator[object, object, bytes]:
    """Derive the PSK binder (three HKDF steps + one HMAC)."""
    early = yield CryptoCall(
        _hkdf_op(), compute=lambda: schedule.early_secret(psk),
        label="psk-early-secret")
    binder_key = yield CryptoCall(
        _hkdf_op(), compute=lambda: schedule.derive_secret(
            early, b"res binder", b""),
        label="psk-binder-key")
    finished_key = yield CryptoCall(
        _hkdf_op(), compute=lambda: schedule.finished_key(binder_key),
        label="psk-binder-finished-key")
    return hmac_digest(finished_key, ch_hash)


def derive_resumption_psk(schedule: Tls13Schedule, master: bytes,
                          pre_nst_hash: bytes, ticket_nonce: bytes
                          ) -> Generator[object, object, bytes]:
    """resumption_master_secret -> per-ticket PSK (two HKDF steps)."""
    res_master = yield CryptoCall(
        _hkdf_op(), compute=lambda: schedule.derive_secret(
            master, b"res master", pre_nst_hash),
        label="resumption-master")
    psk = yield CryptoCall(
        _hkdf_op(), compute=lambda: schedule.provider.hkdf_expand_label(
            res_master, b"resumption", ticket_nonce, 32),
        label="resumption-psk")
    return psk
