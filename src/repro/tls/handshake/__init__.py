"""TLS handshake state machines (sans-IO generators)."""

from .client12 import client_handshake12
from .client13 import client_handshake13
from .server12 import server_handshake12
from .server13 import server_handshake13

__all__ = ["server_handshake12", "client_handshake12",
           "server_handshake13", "client_handshake13"]
