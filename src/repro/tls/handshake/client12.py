"""TLS 1.2 client handshake state machine (full and abbreviated)."""

from __future__ import annotations

from typing import Generator

from ...crypto.ops import CryptoOp, CryptoOpKind
from ..actions import (CryptoCall, HandshakeResult, NeedMessage, SendMessage,
                       TlsAlert)
from ..config import TlsClientConfig
from ..constants import PREMASTER_LEN, RANDOM_LEN, ProtocolVersion
from ..keyschedule import (derive_key_block, derive_master_secret,
                           finished_verify_data, split_key_block)
from ..messages import (Certificate, ChangeCipherSpec, ClientHello,
                        ClientKeyExchange, Finished, NewSessionTicket,
                        ServerHello, ServerHelloDone, ServerKeyExchange,
                        transcript_hash)

__all__ = ["client_handshake12"]


def client_handshake12(config: TlsClientConfig
                       ) -> Generator[object, object, HandshakeResult]:
    """Run one TLS 1.2 client-side handshake to completion.

    If ``config.session_id`` (with its master secret) is set, offers
    resumption; the server decides whether to accept.
    """
    provider = config.provider
    transcript = []
    client_random = bytes(config.rng.bytes(RANDOM_LEN))

    ch = ClientHello(
        client_random=client_random,
        versions=(ProtocolVersion.TLS12,),
        cipher_suites=tuple(s.name for s in config.suites),
        session_id=config.session_id,
        session_ticket=config.session_ticket,
        supported_curves=tuple(config.curves))
    transcript.append(ch)
    yield SendMessage(ch, flush=True)

    sh = yield NeedMessage((ServerHello,))
    if not isinstance(sh, ServerHello):
        raise TlsAlert("unexpected_message: expected ServerHello")
    transcript.append(sh)
    suite = next((s for s in config.suites if s.name == sh.cipher_suite),
                 None)
    if suite is None:
        raise TlsAlert("illegal_parameter: server chose unknown suite")

    if sh.resumed:
        offered_id = (config.session_id
                      and sh.session_id == config.session_id)
        offered_ticket = config.session_ticket is not None
        if (not (offered_id or offered_ticket)
                or config.session_suite != suite):
            raise TlsAlert("illegal_parameter: bogus resumption")
        return (yield from _abbreviated_client(
            config, suite, client_random, sh, transcript))

    cert = yield NeedMessage((Certificate,))
    if not isinstance(cert, Certificate):
        raise TlsAlert("unexpected_message: expected Certificate")
    transcript.append(cert)
    if cert.kind != suite.auth:
        raise TlsAlert("bad_certificate: key type does not match suite")

    server_point = None
    negotiated_curve = None
    if suite.kx == "ecdhe":
        ske = yield NeedMessage((ServerKeyExchange,))
        if not isinstance(ske, ServerKeyExchange):
            raise TlsAlert("unexpected_message: expected ServerKeyExchange")
        transcript.append(ske)
        negotiated_curve = ske.curve
        if negotiated_curve not in config.curves:
            raise TlsAlert("illegal_parameter: curve not offered")
        signed = ske.signed_portion(client_random, sh.server_random)
        verify_kind = (CryptoOpKind.RSA_PUB if suite.auth == "rsa"
                       else CryptoOpKind.ECDSA_VERIFY)
        ok = yield CryptoCall(
            CryptoOp(verify_kind, curve=cert.curve,
                     rsa_bits=len(cert.public_bytes) * 8 - 32
                     if suite.auth == "rsa" else None),
            compute=lambda: provider.verify(
                suite.auth, cert.public_bytes, signed, ske.signature,
                curve=cert.curve),
            label="ske-verify")
        if not ok:
            raise TlsAlert("decrypt_error: bad ServerKeyExchange signature")
        server_point = ske.public

    shd = yield NeedMessage((ServerHelloDone,))
    if not isinstance(shd, ServerHelloDone):
        raise TlsAlert("unexpected_message: expected ServerHelloDone")
    transcript.append(shd)

    # -- key exchange ---------------------------------------------------------
    if suite.kx == "rsa":
        premaster = bytes(config.rng.bytes(PREMASTER_LEN))
        pub = cert.public_bytes
        encrypted = yield CryptoCall(
            CryptoOp(CryptoOpKind.RSA_PUB,
                     rsa_bits=(len(pub) - 4) * 8),
            compute=lambda: provider.rsa_encrypt(pub, premaster, config.rng),
            label="premaster-encrypt")
        cke = ClientKeyExchange(encrypted_premaster=encrypted)
    else:
        curve = negotiated_curve
        share = yield CryptoCall(
            CryptoOp(CryptoOpKind.ECDH_KEYGEN, curve=curve),
            compute=lambda: provider.ecdh_keygen(curve, config.rng),
            label="cke-keygen")
        point = server_point
        premaster = yield CryptoCall(
            CryptoOp(CryptoOpKind.ECDH_COMPUTE, curve=curve),
            compute=lambda: provider.ecdh_shared(share, point),
            label="ecdh-compute")
        cke = ClientKeyExchange(public=share.public_bytes)
    transcript.append(cke)
    yield SendMessage(cke)

    master_secret = yield CryptoCall(
        CryptoOp(CryptoOpKind.PRF, nbytes=48),
        compute=lambda: derive_master_secret(
            provider, premaster, client_random, sh.server_random),
        label="master-secret")
    key_block = yield CryptoCall(
        CryptoOp(CryptoOpKind.PRF, nbytes=suite.key_block_len),
        compute=lambda: derive_key_block(
            provider, master_secret, client_random, sh.server_random, suite),
        label="key-expansion")
    client_keys, server_keys = split_key_block(key_block, suite)

    yield SendMessage(ChangeCipherSpec())
    th = transcript_hash(transcript)
    verify_data = yield CryptoCall(
        CryptoOp(CryptoOpKind.PRF, nbytes=12),
        compute=lambda: finished_verify_data(
            provider, master_secret, b"client finished", th),
        label="client-finished")
    client_fin = Finished(verify_data=verify_data)
    transcript.append(client_fin)
    yield SendMessage(client_fin, encrypted=True, flush=True)

    # -- server's final flight -------------------------------------------------
    ticket = None
    msg = yield NeedMessage((NewSessionTicket, ChangeCipherSpec))
    if isinstance(msg, NewSessionTicket):
        ticket = msg.ticket
        msg = yield NeedMessage((ChangeCipherSpec,))
    if not isinstance(msg, ChangeCipherSpec):
        raise TlsAlert("unexpected_message: expected ChangeCipherSpec")
    server_fin = yield NeedMessage((Finished,))
    if not isinstance(server_fin, Finished):
        raise TlsAlert("unexpected_message: expected Finished")
    th2 = transcript_hash(transcript)
    expected = yield CryptoCall(
        CryptoOp(CryptoOpKind.PRF, nbytes=12),
        compute=lambda: finished_verify_data(
            provider, master_secret, b"server finished", th2),
        label="server-finished-verify")
    if server_fin.verify_data != expected:
        raise TlsAlert("decrypt_error: server Finished verify failed")

    return HandshakeResult(
        suite=suite, master_secret=master_secret,
        client_write_keys=client_keys, server_write_keys=server_keys,
        session_id=sh.session_id, session_ticket=ticket, resumed=False,
        negotiated_curve=negotiated_curve)


def _abbreviated_client(config: TlsClientConfig, suite, client_random: bytes,
                        sh: ServerHello, transcript: list
                        ) -> Generator[object, object, HandshakeResult]:
    provider = config.provider
    master_secret = config.session_master_secret

    key_block = yield CryptoCall(
        CryptoOp(CryptoOpKind.PRF, nbytes=suite.key_block_len),
        compute=lambda: derive_key_block(
            provider, master_secret, client_random, sh.server_random, suite),
        label="key-expansion")
    client_keys, server_keys = split_key_block(key_block, suite)

    ccs = yield NeedMessage((ChangeCipherSpec,))
    if not isinstance(ccs, ChangeCipherSpec):
        raise TlsAlert("unexpected_message: expected ChangeCipherSpec")
    server_fin = yield NeedMessage((Finished,))
    if not isinstance(server_fin, Finished):
        raise TlsAlert("unexpected_message: expected Finished")
    th = transcript_hash(transcript)
    expected = yield CryptoCall(
        CryptoOp(CryptoOpKind.PRF, nbytes=12),
        compute=lambda: finished_verify_data(
            provider, master_secret, b"server finished", th),
        label="server-finished-verify")
    if server_fin.verify_data != expected:
        raise TlsAlert("decrypt_error: server Finished verify failed")
    transcript.append(server_fin)

    yield SendMessage(ChangeCipherSpec())
    th2 = transcript_hash(transcript)
    verify_data = yield CryptoCall(
        CryptoOp(CryptoOpKind.PRF, nbytes=12),
        compute=lambda: finished_verify_data(
            provider, master_secret, b"client finished", th2),
        label="client-finished")
    yield SendMessage(Finished(verify_data=verify_data), encrypted=True,
                      flush=True)

    return HandshakeResult(
        suite=suite, master_secret=master_secret,
        client_write_keys=client_keys, server_write_keys=server_keys,
        session_id=sh.session_id, resumed=True)
