"""TLS 1.2 server handshake state machine (full and abbreviated).

A sans-IO generator (see :mod:`repro.tls.actions`). The crypto op
sequence per suite matches the paper's Table 1:

==============  ===  ===  ====
Suite           RSA  ECC  PRF
==============  ===  ===  ====
TLS-RSA          1    0    4
ECDHE-RSA        1    2    4
ECDHE-ECDSA      0    3    4
abbreviated      0    0    3
==============  ===  ===  ====

(The four full-handshake PRFs: master secret, key expansion, client
Finished verify, server Finished.)
"""

from __future__ import annotations

from typing import Generator, Optional

from ...crypto.ops import CryptoOp, CryptoOpKind
from ..actions import (CryptoCall, HandshakeResult, NeedMessage, SendMessage,
                       TlsAlert)
from ..config import TlsServerConfig
from ..constants import PREMASTER_LEN, RANDOM_LEN, ProtocolVersion
from ..keyschedule import (derive_key_block, derive_master_secret,
                           finished_verify_data, split_key_block)
from ..messages import (Certificate, ChangeCipherSpec, ClientHello, Finished,
                        NewSessionTicket, ServerHello, ServerHelloDone,
                        ClientKeyExchange, ServerKeyExchange,
                        transcript_hash)
from ..session import SessionState
from ..suites import CipherSuite

__all__ = ["server_handshake12"]


def _select_suite(config: TlsServerConfig, ch: ClientHello) -> CipherSuite:
    offered = set(ch.cipher_suites)
    for suite in config.suites:
        if suite.name in offered and suite.version == ProtocolVersion.TLS12:
            return suite
    raise TlsAlert("handshake_failure: no common cipher suite")


def _select_curve(config: TlsServerConfig, ch: ClientHello) -> str:
    offered = set(ch.supported_curves)
    for curve in config.curves:
        if curve in offered:
            return curve
    raise TlsAlert("handshake_failure: no common curve")


def server_handshake12(config: TlsServerConfig
                       ) -> Generator[object, object, HandshakeResult]:
    """Run one TLS 1.2 server-side handshake to completion."""
    provider = config.provider
    transcript = []

    ch = yield NeedMessage((ClientHello,))
    if not isinstance(ch, ClientHello):
        raise TlsAlert("unexpected_message: expected ClientHello")
    transcript.append(ch)
    suite = _select_suite(config, ch)
    server_random = bytes(config.rng.bytes(RANDOM_LEN))

    # -- abbreviated handshake (session resumption)? ------------------------
    # Stateless tickets (RFC 5077) take precedence over the session-ID
    # cache, as in OpenSSL.
    cached: Optional[SessionState] = None
    if ch.session_ticket and config.ticket_keeper is not None:
        cached = config.ticket_keeper.open(ch.session_ticket,
                                           config.clock())
    if cached is None and ch.session_id \
            and config.session_cache is not None:
        cached = config.session_cache.get(ch.session_id)
    if cached is not None and cached.suite != suite:
        cached = None  # suite changed; fall back to full handshake
    if cached is not None:
        return (yield from _abbreviated(config, ch, cached, server_random,
                                        transcript))

    # -- full handshake ------------------------------------------------------
    session_id = bytes(config.rng.bytes(16)) \
        if config.session_cache is not None else b""
    sh = ServerHello(server_random=server_random,
                     version=ProtocolVersion.TLS12,
                     cipher_suite=suite.name, session_id=session_id)
    transcript.append(sh)
    yield SendMessage(sh)

    cred = config.credentials_for(suite)
    cert = Certificate(kind=cred.kind, public_bytes=cred.public_bytes,
                       curve=cred.curve)
    transcript.append(cert)
    yield SendMessage(cert)

    negotiated_curve = None
    server_share = None
    if suite.kx == "ecdhe":
        negotiated_curve = _select_curve(config, ch)
        curve = negotiated_curve
        server_share = yield CryptoCall(
            CryptoOp(CryptoOpKind.ECDH_KEYGEN, curve=curve),
            compute=lambda: provider.ecdh_keygen(curve, config.rng),
            label="ske-keygen")
        unsigned = ServerKeyExchange(curve=curve,
                                     public=server_share.public_bytes)
        to_sign = unsigned.signed_portion(ch.client_random, server_random)
        sign_kind = (CryptoOpKind.RSA_PRIV if cred.kind == "rsa"
                     else CryptoOpKind.ECDSA_SIGN)
        signature = yield CryptoCall(
            CryptoOp(sign_kind, rsa_bits=cred.rsa_bits, curve=cred.sig_curve),
            compute=lambda: provider.sign(cred, to_sign),
            label="ske-sign")
        ske = ServerKeyExchange(curve=curve,
                                public=server_share.public_bytes,
                                signature=signature)
        transcript.append(ske)
        yield SendMessage(ske)

    shd = ServerHelloDone()
    transcript.append(shd)
    yield SendMessage(shd, flush=True)

    # -- client's reply flight -----------------------------------------------
    cke = yield NeedMessage((ClientKeyExchange,))
    if not isinstance(cke, ClientKeyExchange):
        raise TlsAlert("unexpected_message: expected ClientKeyExchange")
    transcript.append(cke)

    if suite.kx == "rsa":
        if not cke.encrypted_premaster:
            raise TlsAlert("decode_error: missing encrypted premaster")
        ct = cke.encrypted_premaster
        premaster = yield CryptoCall(
            CryptoOp(CryptoOpKind.RSA_PRIV, rsa_bits=cred.rsa_bits),
            compute=lambda: provider.rsa_decrypt(cred, ct, PREMASTER_LEN),
            label="premaster-decrypt")
    else:
        if not cke.public:
            raise TlsAlert("decode_error: missing client key share")
        peer_pub = cke.public
        share = server_share
        premaster = yield CryptoCall(
            CryptoOp(CryptoOpKind.ECDH_COMPUTE, curve=negotiated_curve),
            compute=lambda: provider.ecdh_shared(share, peer_pub),
            label="ecdh-compute")

    master_secret = yield CryptoCall(
        CryptoOp(CryptoOpKind.PRF, nbytes=48),
        compute=lambda: derive_master_secret(
            provider, premaster, ch.client_random, server_random),
        label="master-secret")

    key_block = yield CryptoCall(
        CryptoOp(CryptoOpKind.PRF, nbytes=suite.key_block_len),
        compute=lambda: derive_key_block(
            provider, master_secret, ch.client_random, server_random, suite),
        label="key-expansion")
    client_keys, server_keys = split_key_block(key_block, suite)

    ccs_in = yield NeedMessage((ChangeCipherSpec,))
    if not isinstance(ccs_in, ChangeCipherSpec):
        raise TlsAlert("unexpected_message: expected ChangeCipherSpec")

    client_fin = yield NeedMessage((Finished,))
    if not isinstance(client_fin, Finished):
        raise TlsAlert("unexpected_message: expected Finished")
    th = transcript_hash(transcript)
    expected = yield CryptoCall(
        CryptoOp(CryptoOpKind.PRF, nbytes=12),
        compute=lambda: finished_verify_data(
            provider, master_secret, b"client finished", th),
        label="client-finished-verify")
    if client_fin.verify_data != expected:
        raise TlsAlert("decrypt_error: client Finished verify failed")
    transcript.append(client_fin)

    ticket = None
    if config.issue_tickets:
        if config.ticket_keeper is not None:
            ticket = config.ticket_keeper.seal(
                SessionState(session_id=session_id or b"\x00" * 16,
                             suite=suite, master_secret=master_secret,
                             created_at=config.clock()),
                config.clock())
        else:
            ticket = bytes(config.rng.bytes(32))  # opaque, cache-backed
        yield SendMessage(NewSessionTicket(ticket=ticket))
    yield SendMessage(ChangeCipherSpec())
    th2 = transcript_hash(transcript)
    server_verify = yield CryptoCall(
        CryptoOp(CryptoOpKind.PRF, nbytes=12),
        compute=lambda: finished_verify_data(
            provider, master_secret, b"server finished", th2),
        label="server-finished")
    server_fin = Finished(verify_data=server_verify)
    transcript.append(server_fin)
    yield SendMessage(server_fin, encrypted=True, flush=True)

    if config.session_cache is not None and session_id:
        config.session_cache.put(SessionState(
            session_id=session_id, suite=suite,
            master_secret=master_secret,
            created_at=config.session_cache.sim.now))

    return HandshakeResult(
        suite=suite, master_secret=master_secret,
        client_write_keys=client_keys, server_write_keys=server_keys,
        session_id=session_id, session_ticket=ticket, resumed=False,
        negotiated_curve=negotiated_curve)


def _abbreviated(config: TlsServerConfig, ch: ClientHello,
                 cached: SessionState, server_random: bytes,
                 transcript: list
                 ) -> Generator[object, object, HandshakeResult]:
    """Abbreviated handshake: PRF calculations only (paper section 5.3)."""
    provider = config.provider
    suite = cached.suite
    master_secret = cached.master_secret

    sh = ServerHello(server_random=server_random,
                     version=ProtocolVersion.TLS12,
                     cipher_suite=suite.name,
                     session_id=cached.session_id, resumed=True)
    transcript.append(sh)
    yield SendMessage(sh)

    key_block = yield CryptoCall(
        CryptoOp(CryptoOpKind.PRF, nbytes=suite.key_block_len),
        compute=lambda: derive_key_block(
            provider, master_secret, ch.client_random, server_random, suite),
        label="key-expansion")
    client_keys, server_keys = split_key_block(key_block, suite)

    yield SendMessage(ChangeCipherSpec())
    th = transcript_hash(transcript)
    server_verify = yield CryptoCall(
        CryptoOp(CryptoOpKind.PRF, nbytes=12),
        compute=lambda: finished_verify_data(
            provider, master_secret, b"server finished", th),
        label="server-finished")
    server_fin = Finished(verify_data=server_verify)
    transcript.append(server_fin)
    yield SendMessage(server_fin, encrypted=True, flush=True)

    ccs_in = yield NeedMessage((ChangeCipherSpec,))
    if not isinstance(ccs_in, ChangeCipherSpec):
        raise TlsAlert("unexpected_message: expected ChangeCipherSpec")
    client_fin = yield NeedMessage((Finished,))
    if not isinstance(client_fin, Finished):
        raise TlsAlert("unexpected_message: expected Finished")
    th2 = transcript_hash(transcript)
    expected = yield CryptoCall(
        CryptoOp(CryptoOpKind.PRF, nbytes=12),
        compute=lambda: finished_verify_data(
            provider, master_secret, b"client finished", th2),
        label="client-finished-verify")
    if client_fin.verify_data != expected:
        raise TlsAlert("decrypt_error: client Finished verify failed")

    return HandshakeResult(
        suite=suite, master_secret=master_secret,
        client_write_keys=client_keys, server_write_keys=server_keys,
        session_id=cached.session_id, resumed=True)
