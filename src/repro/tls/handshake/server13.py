"""TLS 1.3 server handshake state machine (RFC 8446, 1-RTT).

One network round trip is saved relative to TLS 1.2 but the crypto
cannot be omitted (paper section 2.1): the server still performs
1 RSA signature (CertificateVerify) + 2 ECC ops (key share generation
and ECDH), and *more* key-derivation work than TLS 1.2 — via HKDF,
which the QAT Engine cannot offload. That pins the Figure 8 result.

PSK resumption (psk_dhe_ke, an extension beyond the paper's
evaluation) skips the certificate and its RSA signature while keeping
the ECDHE pair — see :mod:`repro.tls.handshake.psk13`.
"""

from __future__ import annotations

from typing import Generator, Optional

from ...crypto.hmac_impl import hmac_digest
from ...crypto.ops import CryptoOp, CryptoOpKind
from ..actions import (CryptoCall, HandshakeResult, NeedMessage, SendMessage,
                       TlsAlert)
from ..config import TlsServerConfig
from ..constants import RANDOM_LEN, ProtocolVersion
from ..keyschedule import Tls13Schedule
from ..messages import (Certificate, CertificateVerify, ClientHello,
                        EncryptedExtensions, Finished, NewSessionTicket,
                        ServerHello, transcript_hash)
from ..session import SessionState
from ..suites import CipherSuite
from .psk13 import compute_binder, derive_resumption_psk, partial_ch_hash

__all__ = ["server_handshake13"]


def _select_suite13(config: TlsServerConfig, ch: ClientHello) -> CipherSuite:
    offered = set(ch.cipher_suites)
    for suite in config.suites:
        if suite.name in offered and suite.version == ProtocolVersion.TLS13:
            return suite
    raise TlsAlert("handshake_failure: no common TLS 1.3 suite")


def _hkdf_op(nbytes: int = 32) -> CryptoOp:
    return CryptoOp(CryptoOpKind.HKDF, nbytes=nbytes)


def server_handshake13(config: TlsServerConfig
                       ) -> Generator[object, object, HandshakeResult]:
    """Run one TLS 1.3 server-side handshake (full or PSK-resumed)."""
    provider = config.provider
    schedule = Tls13Schedule(provider)
    transcript = []

    ch = yield NeedMessage((ClientHello,))
    if not isinstance(ch, ClientHello):
        raise TlsAlert("unexpected_message: expected ClientHello")
    transcript.append(ch)
    suite = _select_suite13(config, ch)
    if ch.key_share is None or ch.key_share_curve is None:
        # A HelloRetryRequest round would be needed; the reproduction
        # requires clients to send a share (as modern clients do).
        raise TlsAlert("missing_extension: no key_share in ClientHello")
    curve = ch.key_share_curve
    if curve not in config.curves:
        raise TlsAlert("illegal_parameter: unsupported key-share group")

    # -- PSK offer (resumption)? ------------------------------------------------
    psk: Optional[bytes] = None
    if (ch.session_ticket and ch.psk_binder
            and config.ticket_keeper is not None):
        state = config.ticket_keeper.open(ch.session_ticket, config.clock())
        if state is not None and state.suite == suite:
            expected = yield from compute_binder(
                schedule, state.master_secret, partial_ch_hash(ch))
            if expected != ch.psk_binder:
                raise TlsAlert("decrypt_error: PSK binder verify failed")
            psk = state.master_secret
    resumed = psk is not None

    # -- (EC)DHE: two ECC ops (psk_dhe_ke keeps them on resumption) ---------------
    server_share = yield CryptoCall(
        CryptoOp(CryptoOpKind.ECDH_KEYGEN, curve=curve),
        compute=lambda: provider.ecdh_keygen(curve, config.rng),
        label="keyshare-keygen")
    peer = ch.key_share
    shared = yield CryptoCall(
        CryptoOp(CryptoOpKind.ECDH_COMPUTE, curve=curve),
        compute=lambda: provider.ecdh_shared(server_share, peer),
        label="ecdh-compute")

    sh = ServerHello(server_random=bytes(config.rng.bytes(RANDOM_LEN)),
                     version=ProtocolVersion.TLS13,
                     cipher_suite=suite.name,
                     resumed=resumed,
                     key_share_curve=curve,
                     key_share=server_share.public_bytes,
                     selected_psk=0 if resumed else None)
    transcript.append(sh)
    yield SendMessage(sh)

    # -- key schedule: HKDF ops (not offloadable) -----------------------------
    the_psk = psk or b""
    early = yield CryptoCall(
        _hkdf_op(), compute=lambda: schedule.early_secret(the_psk),
        label="early-secret")
    hs_secret = yield CryptoCall(
        _hkdf_op(), compute=lambda: schedule.handshake_secret(early, shared),
        label="handshake-secret")
    th_sh = transcript_hash(transcript)
    c_hs = yield CryptoCall(
        _hkdf_op(), compute=lambda: schedule.derive_secret(
            hs_secret, b"c hs traffic", th_sh),
        label="client-hs-traffic")
    s_hs = yield CryptoCall(
        _hkdf_op(), compute=lambda: schedule.derive_secret(
            hs_secret, b"s hs traffic", th_sh),
        label="server-hs-traffic")
    master = yield CryptoCall(
        _hkdf_op(), compute=lambda: schedule.master_secret(hs_secret),
        label="master-secret")

    ee = EncryptedExtensions()
    transcript.append(ee)
    yield SendMessage(ee, encrypted=True)

    if not resumed:
        cred = config.credentials_for(suite)
        cert = Certificate(kind=cred.kind, public_bytes=cred.public_bytes,
                           curve=cred.curve)
        transcript.append(cert)
        yield SendMessage(cert, encrypted=True)

        # CertificateVerify: the RSA op (skipped entirely on resumption).
        to_sign = b"TLS 1.3, server CertificateVerify" + b"\x00" \
            + transcript_hash(transcript)
        sign_kind = (CryptoOpKind.RSA_PRIV if cred.kind == "rsa"
                     else CryptoOpKind.ECDSA_SIGN)
        signature = yield CryptoCall(
            CryptoOp(sign_kind, rsa_bits=cred.rsa_bits,
                     curve=cred.sig_curve),
            compute=lambda: provider.sign(cred, to_sign),
            label="certificate-verify")
        cv = CertificateVerify(signature=signature)
        transcript.append(cv)
        yield SendMessage(cv, encrypted=True)

    # -- NewSessionTicket (flow simplification: sent pre-Finished) -------------
    ticket_out: Optional[bytes] = None
    if config.issue_tickets and config.ticket_keeper is not None:
        pre_nst = transcript_hash(transcript)
        nonce = bytes(config.rng.bytes(8))
        new_psk = yield from derive_resumption_psk(schedule, master,
                                                   pre_nst, nonce)
        ticket_out = config.ticket_keeper.seal(
            SessionState(session_id=b"", suite=suite,
                         master_secret=new_psk,
                         created_at=config.clock()),
            config.clock())
        yield SendMessage(NewSessionTicket(ticket=ticket_out, nonce=nonce),
                          encrypted=True)

    s_fin_key = yield CryptoCall(
        _hkdf_op(), compute=lambda: schedule.finished_key(s_hs),
        label="server-finished-key")
    th_cv = transcript_hash(transcript)
    server_fin = Finished(verify_data=hmac_digest(s_fin_key, th_cv))
    transcript.append(server_fin)
    yield SendMessage(server_fin, encrypted=True, flush=True)

    # -- client Finished --------------------------------------------------------
    client_fin = yield NeedMessage((Finished,))
    if not isinstance(client_fin, Finished):
        raise TlsAlert("unexpected_message: expected Finished")
    c_fin_key = yield CryptoCall(
        _hkdf_op(), compute=lambda: schedule.finished_key(c_hs),
        label="client-finished-key")
    th_sf = transcript_hash(transcript)
    if client_fin.verify_data != hmac_digest(c_fin_key, th_sf):
        raise TlsAlert("decrypt_error: client Finished verify failed")
    transcript.append(client_fin)

    # -- application traffic secrets ----------------------------------------------
    th_full = transcript_hash(transcript)
    c_app = yield CryptoCall(
        _hkdf_op(), compute=lambda: schedule.derive_secret(
            master, b"c ap traffic", th_full),
        label="client-app-traffic")
    s_app = yield CryptoCall(
        _hkdf_op(), compute=lambda: schedule.derive_secret(
            master, b"s ap traffic", th_full),
        label="server-app-traffic")
    client_keys = yield CryptoCall(
        _hkdf_op(), compute=lambda: schedule.traffic_keys(c_app, suite),
        label="client-app-keys")
    server_keys = yield CryptoCall(
        _hkdf_op(), compute=lambda: schedule.traffic_keys(s_app, suite),
        label="server-app-keys")

    return HandshakeResult(
        suite=suite, master_secret=master,
        client_write_keys=client_keys, server_write_keys=server_keys,
        session_ticket=ticket_out, resumed=resumed,
        negotiated_curve=curve)
