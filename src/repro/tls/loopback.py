"""In-memory synchronous driver for the sans-IO TLS state machines.

Runs a client generator against a server generator with immediate
crypto execution and zero network. Used by the test suite, the
examples, and Table 1's op-count reproduction — anywhere the protocol
logic matters but the simulation does not.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, List, Optional, Tuple

from ..crypto.ops import CryptoOp
from .actions import (CryptoCall, HandshakeResult, NeedMessage, SendMessage,
                      TlsAlert)

__all__ = ["run_loopback_handshake", "SyncDriver", "OpLog"]


class OpLog:
    """Records every CryptoCall a driver executed (for Table 1)."""

    def __init__(self) -> None:
        self.ops: List[CryptoOp] = []
        self.labels: List[str] = []

    def count(self, *kinds) -> int:
        return sum(1 for op in self.ops if op.kind in kinds)

    def by_category(self) -> dict:
        out: dict = {}
        for op in self.ops:
            out[op.category.value] = out.get(op.category.value, 0) + 1
        return out


class SyncDriver:
    """Drives one sans-IO generator with immediate crypto execution.

    Remembers the in-progress action across :meth:`pump` calls, so a
    generator parked on :class:`NeedMessage` resumes correctly when
    input arrives.
    """

    def __init__(self, gen: Generator, oplog: Optional[OpLog] = None) -> None:
        self.gen = gen
        self.oplog = oplog
        self._pending: Any = None
        self._started = False
        self.result: Any = None
        self.done = False

    def pump(self, inbox: Deque, outbox: List) -> Any:
        """Advance until completion (returns the generator's result) or
        until input is needed but ``inbox`` is empty (returns None)."""
        if self.done:
            return self.result
        try:
            if not self._started:
                self._started = True
                self._pending = self.gen.send(None)
            while True:
                action = self._pending
                if isinstance(action, CryptoCall):
                    if self.oplog is not None:
                        self.oplog.ops.append(action.op)
                        self.oplog.labels.append(action.label)
                    # Crypto failures resume the state machine as an
                    # exception at the pause point (mirroring how an
                    # errored accelerator response resumes an async job).
                    try:
                        result = action.compute()
                    except Exception as exc:
                        self._pending = self.gen.throw(exc)
                        continue
                    self._pending = self.gen.send(result)
                elif isinstance(action, SendMessage):
                    outbox.append(action.message)
                    self._pending = self.gen.send(None)
                elif isinstance(action, NeedMessage):
                    if not inbox:
                        return None  # parked; pump again once input lands
                    self._pending = self.gen.send(inbox.popleft())
                else:
                    raise TypeError(f"unknown action {action!r}")
        except StopIteration as stop:
            self.result = stop.value
            self.done = True
            return self.result


def run_loopback_handshake(client_gen: Generator, server_gen: Generator,
                           client_oplog: Optional[OpLog] = None,
                           server_oplog: Optional[OpLog] = None,
                           max_rounds: int = 50
                           ) -> Tuple[HandshakeResult, HandshakeResult]:
    """Run both handshake generators to completion against each other.

    Returns ``(client_result, server_result)``.
    """
    c2s: Deque = deque()
    s2c: Deque = deque()
    client = SyncDriver(client_gen, client_oplog)
    server = SyncDriver(server_gen, server_oplog)

    for _ in range(max_rounds):
        client.pump(s2c, c2s)
        server.pump(c2s, s2c)
        if client.done and server.done:
            return client.result, server.result
    raise TlsAlert("internal_error: handshake did not converge")


def run_record_exchange(gen: Generator, oplog: Optional[OpLog] = None) -> Any:
    """Run a record-layer generator (protect/unprotect) synchronously."""
    driver = SyncDriver(gen, oplog)
    result = driver.pump(deque(), [])
    if not driver.done:
        raise TlsAlert("internal_error: record op wanted a message")
    return result
