"""TLS record layer: fragmentation + record protection.

Application data larger than 16 KB is fragmented (paper section 2.1);
each fragment is protected by one chained cipher operation
(AES128-CBC + HMAC-SHA1) — the per-record op the paper's Figure 10
counts ("one 128 KB file incurs eight cipher operations").

Like the handshake state machines, the record layer is sans-IO: it
yields :class:`~repro.tls.actions.CryptoCall` actions so the cipher
work can be offloaded asynchronously.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List

import numpy as np

from ..crypto.ops import CryptoOp, CryptoOpKind
from ..crypto.provider import CryptoProvider
from .actions import CryptoCall, DirectionKeys, TlsAlert
from .constants import MAX_FRAGMENT, ContentType, ProtocolVersion

__all__ = ["TlsRecord", "RecordLayer", "RECORD_HEADER_LEN"]

RECORD_HEADER_LEN = 5


@dataclass(frozen=True)
class TlsRecord:
    """One protected record as it travels on the wire."""

    content_type: int
    version: int
    fragment: bytes          # IV || ciphertext (provider format)
    plaintext_len: int       # for accounting/tests only

    def wire_size(self) -> int:
        return RECORD_HEADER_LEN + len(self.fragment)


class RecordLayer:
    """Bidirectional record protection for one TLS connection."""

    def __init__(self, provider: CryptoProvider, write_keys: DirectionKeys,
                 read_keys: DirectionKeys, rng: np.random.Generator,
                 version: int = ProtocolVersion.TLS12) -> None:
        self.provider = provider
        self.write_keys = write_keys
        self.read_keys = read_keys
        self.rng = rng
        self.version = version
        #: TLS 1.3 protects records with AEAD (AES-128-GCM); TLS 1.2's
        #: AES128-SHA suite uses CBC + HMAC (MAC-then-encrypt).
        self.aead = version == ProtocolVersion.TLS13
        self._write_seq = 0
        self._read_seq = 0
        self.records_protected = 0
        self.records_opened = 0

    # -- outbound ----------------------------------------------------------

    @staticmethod
    def fragments(data: bytes) -> List[bytes]:
        """Split application data into <= 16 KB plaintext fragments."""
        if not data:
            return [b""]
        return [data[i:i + MAX_FRAGMENT]
                for i in range(0, len(data), MAX_FRAGMENT)]

    def protect(self, data: bytes,
                content_type: int = ContentType.APPLICATION_DATA
                ) -> Generator[object, object, List[TlsRecord]]:
        """Protect ``data``; one CryptoCall per 16 KB fragment."""
        records: List[TlsRecord] = []
        for frag in self.fragments(data):
            seq = self._write_seq
            self._write_seq += 1
            keys = self.write_keys
            provider = self.provider
            version = self.version
            if self.aead:
                compute = (lambda f=frag, s=seq:
                           provider.encrypt_record_aead(
                               keys.enc_key, keys.iv, s, content_type, f))
            else:
                iv = bytes(self.rng.bytes(16))
                compute = (lambda f=frag, s=seq, i2=iv:
                           provider.encrypt_record_cbc_hmac(
                               keys.enc_key, keys.mac_key, s, content_type,
                               version, f, i2))
            ciphertext = yield CryptoCall(
                CryptoOp(CryptoOpKind.RECORD_CIPHER, nbytes=len(frag)),
                compute=compute, label=f"protect-{seq}")
            records.append(TlsRecord(content_type, version, ciphertext,
                                     len(frag)))
            self.records_protected += 1
        return records

    # -- inbound ----------------------------------------------------------------

    def unprotect(self, record: TlsRecord
                  ) -> Generator[object, object, bytes]:
        """Open one inbound record; one CryptoCall."""
        seq = self._read_seq
        self._read_seq += 1
        keys = self.read_keys
        provider = self.provider
        if self.aead:
            compute = (lambda: provider.decrypt_record_aead(
                keys.enc_key, keys.iv, seq, record.content_type,
                record.fragment))
        else:
            compute = (lambda: provider.decrypt_record_cbc_hmac(
                keys.enc_key, keys.mac_key, seq, record.content_type,
                record.version, record.fragment))
        try:
            payload = yield CryptoCall(
                CryptoOp(CryptoOpKind.RECORD_CIPHER,
                         nbytes=max(0, len(record.fragment) - 36)),
                compute=compute,
                label=f"unprotect-{seq}")
        except Exception as exc:
            raise TlsAlert(f"bad_record_mac: {exc}") from exc
        self.records_opened += 1
        return payload
