"""TLS protocol constants (subset needed by the reproduction)."""

from __future__ import annotations

from enum import IntEnum

__all__ = ["ProtocolVersion", "ContentType", "HandshakeType",
           "MAX_FRAGMENT", "VERIFY_DATA_LEN", "MASTER_SECRET_LEN",
           "PREMASTER_LEN", "RANDOM_LEN"]

#: TLS plaintext fragment limit: larger application data is fragmented
#: (paper section 2.1: "the data object is fragmented into units of
#: 16KB if it is larger than this").
MAX_FRAGMENT = 16384

VERIFY_DATA_LEN = 12
MASTER_SECRET_LEN = 48
PREMASTER_LEN = 48
RANDOM_LEN = 32


class ProtocolVersion(IntEnum):
    TLS12 = 0x0303
    TLS13 = 0x0304


class ContentType(IntEnum):
    CHANGE_CIPHER_SPEC = 20
    ALERT = 21
    HANDSHAKE = 22
    APPLICATION_DATA = 23


class HandshakeType(IntEnum):
    CLIENT_HELLO = 1
    SERVER_HELLO = 2
    NEW_SESSION_TICKET = 4
    ENCRYPTED_EXTENSIONS = 8
    CERTIFICATE = 11
    SERVER_KEY_EXCHANGE = 12
    SERVER_HELLO_DONE = 14
    CERTIFICATE_VERIFY = 15
    CLIENT_KEY_EXCHANGE = 16
    FINISHED = 20
