"""Cipher suite registry covering the paper's evaluation matrix.

TLS 1.2: TLS-RSA, ECDHE-RSA, ECDHE-ECDSA (all with AES128-SHA records);
TLS 1.3: ECDHE-RSA. The negotiated ECDHE/ECDSA curve is a separate
parameter (Figure 7c sweeps six NIST curves).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from .constants import ProtocolVersion

__all__ = ["CipherSuite", "get_suite", "list_suites",
           "TLS_RSA", "ECDHE_RSA", "ECDHE_ECDSA", "TLS13_ECDHE_RSA"]


@dataclass(frozen=True)
class CipherSuite:
    """A negotiated algorithm bundle.

    ``kx``: key exchange — ``"rsa"`` (RSA-wrapped premaster) or
    ``"ecdhe"`` (ephemeral ECDH).
    ``auth``: server authentication — ``"rsa"`` or ``"ecdsa"``.
    Record protection is AES128-CBC + HMAC-SHA1 throughout (the paper's
    AES128-SHA data-transfer suite).
    """

    name: str
    version: ProtocolVersion
    kx: str
    auth: str
    mac_key_len: int = 20     # HMAC-SHA1
    enc_key_len: int = 16     # AES-128
    iv_len: int = 16

    @property
    def forward_secret(self) -> bool:
        return self.kx == "ecdhe"

    @property
    def key_block_len(self) -> int:
        """TLS 1.2 key block: 2 MAC keys + 2 cipher keys + 2 IVs."""
        return 2 * (self.mac_key_len + self.enc_key_len + self.iv_len)


TLS_RSA = CipherSuite("TLS-RSA", ProtocolVersion.TLS12, kx="rsa", auth="rsa")
ECDHE_RSA = CipherSuite("ECDHE-RSA", ProtocolVersion.TLS12,
                        kx="ecdhe", auth="rsa")
ECDHE_ECDSA = CipherSuite("ECDHE-ECDSA", ProtocolVersion.TLS12,
                          kx="ecdhe", auth="ecdsa")
TLS13_ECDHE_RSA = CipherSuite("TLS1.3-ECDHE-RSA", ProtocolVersion.TLS13,
                              kx="ecdhe", auth="rsa")

_SUITES: Dict[str, CipherSuite] = {
    s.name: s for s in (TLS_RSA, ECDHE_RSA, ECDHE_ECDSA, TLS13_ECDHE_RSA)
}


def get_suite(name: str) -> CipherSuite:
    try:
        return _SUITES[name]
    except KeyError:
        raise ValueError(
            f"unknown cipher suite {name!r}; available: {sorted(_SUITES)}"
        ) from None


def list_suites() -> Tuple[str, ...]:
    return tuple(sorted(_SUITES))
