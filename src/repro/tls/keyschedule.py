"""TLS key derivation.

TLS 1.2 (RFC 5246): master secret and key block via the PRF. Each PRF
invocation is exposed as a :class:`CryptoOp` by the handshake state
machines, because the QAT Engine offloads PRF (Table 1's PRF column).

TLS 1.3 (RFC 8446): the HKDF schedule. HKDF is *not* offloadable
(paper Figure 8) — its ops carry ``CryptoOpKind.HKDF``.
"""

from __future__ import annotations

from typing import Tuple

from ..crypto.provider import CryptoProvider
from .actions import DirectionKeys
from .constants import MASTER_SECRET_LEN, VERIFY_DATA_LEN
from .suites import CipherSuite

__all__ = ["derive_master_secret", "derive_key_block", "split_key_block",
           "finished_verify_data", "Tls13Schedule"]


def derive_master_secret(provider: CryptoProvider, premaster: bytes,
                         client_random: bytes, server_random: bytes) -> bytes:
    """RFC 5246 section 8.1 (one PRF op)."""
    return provider.prf(premaster, b"master secret",
                        client_random + server_random, MASTER_SECRET_LEN)


def derive_key_block(provider: CryptoProvider, master_secret: bytes,
                     client_random: bytes, server_random: bytes,
                     suite: CipherSuite) -> bytes:
    """RFC 5246 section 6.3 (one PRF op). Note the reversed randoms."""
    return provider.prf(master_secret, b"key expansion",
                        server_random + client_random, suite.key_block_len)


def split_key_block(block: bytes, suite: CipherSuite
                    ) -> Tuple[DirectionKeys, DirectionKeys]:
    """Partition the key block into client/server direction keys."""
    m, e, i = suite.mac_key_len, suite.enc_key_len, suite.iv_len
    if len(block) != 2 * (m + e + i):
        raise ValueError("key block length mismatch")
    off = 0
    cmac, smac = block[off:off + m], block[off + m:off + 2 * m]
    off += 2 * m
    cenc, senc = block[off:off + e], block[off + e:off + 2 * e]
    off += 2 * e
    civ, siv = block[off:off + i], block[off + i:off + 2 * i]
    return (DirectionKeys(cmac, cenc, civ), DirectionKeys(smac, senc, siv))


def finished_verify_data(provider: CryptoProvider, master_secret: bytes,
                         label: bytes, transcript: bytes) -> bytes:
    """RFC 5246 section 7.4.9 (one PRF op per Finished message)."""
    return provider.prf(master_secret, label, transcript, VERIFY_DATA_LEN)


class Tls13Schedule:
    """The TLS 1.3 HKDF key schedule (RFC 8446 section 7.1).

    Each method is one or more HKDF invocations; callers wrap them in
    ``CryptoOp(HKDF)`` calls so the cost model can charge CPU (never
    QAT) for them.
    """

    def __init__(self, provider: CryptoProvider) -> None:
        self.provider = provider
        self._zeros = b"\x00" * 32

    def early_secret(self, psk: bytes = b"") -> bytes:
        return self.provider.hkdf_extract(b"", psk or self._zeros)

    def derive_secret(self, secret: bytes, label: bytes,
                      transcript: bytes) -> bytes:
        return self.provider.hkdf_expand_label(secret, label, transcript, 32)

    def handshake_secret(self, early: bytes, ecdhe: bytes) -> bytes:
        salt = self.derive_secret(early, b"derived", b"")
        return self.provider.hkdf_extract(salt, ecdhe)

    def master_secret(self, handshake: bytes) -> bytes:
        salt = self.derive_secret(handshake, b"derived", b"")
        return self.provider.hkdf_extract(salt, self._zeros)

    def traffic_keys(self, traffic_secret: bytes, suite: CipherSuite
                     ) -> DirectionKeys:
        mac = self.provider.hkdf_expand_label(traffic_secret, b"mac", b"",
                                              suite.mac_key_len)
        key = self.provider.hkdf_expand_label(traffic_secret, b"key", b"",
                                              suite.enc_key_len)
        iv = self.provider.hkdf_expand_label(traffic_secret, b"iv", b"",
                                             suite.iv_len)
        return DirectionKeys(mac, key, iv)

    def finished_key(self, traffic_secret: bytes) -> bytes:
        return self.provider.hkdf_expand_label(traffic_secret, b"finished",
                                               b"", 32)
