"""AST-based static analysis for the simulation tree (DESIGN.md §13).

The repo's correctness story rests on cross-layer invariants — replay
determinism, simulation purity, the package import DAG, span
discipline, conf-directive documentation, reactor-source conformance —
that the dynamic fuzz harness (:mod:`repro.testing`) only probes one
seed at a time. This package encodes those rules as *static* checkers
over the :mod:`ast` of every file in ``src/``, so a violating pattern
is rejected in seconds on every push instead of waiting for a fuzz
seed to trip it.

Architecture:

- :mod:`repro.analysis.core` — the framework: :class:`Finding`,
  :class:`SourceFile` (one parse per file), :class:`AnalysisContext`,
  the :class:`Checker` registry, inline suppression comments and the
  checked-in baseline for grandfathered findings.
- one module per checker, each registering itself on import:
  :mod:`~repro.analysis.determinism` (RA1xx),
  :mod:`~repro.analysis.purity` (RA2xx),
  :mod:`~repro.analysis.layering` (RA3xx),
  :mod:`~repro.analysis.spans` (RA4xx),
  :mod:`~repro.analysis.confdoc` (RA5xx),
  :mod:`~repro.analysis.sources` (RA6xx).
- ``tools/analyze.py`` — the CLI (``--ci``, ``--baseline-write``,
  ``--select``/``--ignore``, ``--inject-violation``).

Stdlib only: the analysis must run in the bare lint job, before any
dependency install.
"""

from .core import (AnalysisContext, Baseline, Checker, Finding,
                   SourceFile, all_codes, checker_registry,
                   register_checker, run_analysis)

# Importing a checker module registers it; the import order below is
# the report order for same-line findings.
from . import determinism   # noqa: F401  (import-for-registration)
from . import purity        # noqa: F401
from . import layering      # noqa: F401
from . import spans         # noqa: F401
from . import confdoc       # noqa: F401
from . import sources       # noqa: F401

__all__ = ["AnalysisContext", "Baseline", "Checker", "Finding",
           "SourceFile", "all_codes", "checker_registry",
           "register_checker", "run_analysis"]
