"""Span-discipline checker (RA4xx): no leaked OpTrace spans.

The tracing layer's core well-formedness invariant (DESIGN.md §6,
enforced dynamically by ``tests/obs``) is *exactly one close per op*:
every trace opened via ``RequestTracer.begin(...)`` (or a raw
``OpTrace(...)`` construction) is eventually closed by ``finish`` /
``abort_open``, with clear ownership in between. The dynamic tests
only see traces on paths a seed actually exercises; this checker
reasons about the source instead.

The rule, per function body: a name bound to a freshly opened trace
must do one of

- get **closed** here — passed to a ``finish(...)`` /
  ``abort_open(...)`` / ``close(...)`` call;
- get its **ownership transferred** visibly — stored on an object
  (``job.trace = ...`` or any attribute/subscript/container store),
  returned, yielded, or passed as an argument to any call (the callee
  is then the owner);
- and a trace opened as a bare expression statement (result
  discarded) is always a leak.

This is a *liveness of ownership* check, not full path-sensitive
escape analysis: a function that closes on one branch and silently
drops the trace on another will still pass if the close is reachable
textually. That trade keeps the checker exact enough to have zero
false positives on the live tree while catching the real bug class —
opening a span and forgetting it entirely (exactly what the fuzz
invariant `span well-formedness` can only catch per-seed).

Code: **RA401** — trace opened but neither closed nor transferred.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from .core import (AnalysisContext, Checker, Finding, SourceFile,
                   register_checker)

__all__ = ["SpanChecker"]

#: Attribute calls that open a trace (value is the new span's owner).
_OPENERS = {"begin"}
#: Names whose direct construction opens a span.
_SPAN_TYPES = {"OpTrace"}
#: Attribute calls that close a trace passed as their first argument.
_CLOSERS = {"finish", "abort_open", "close"}


def _opens_trace(node: ast.expr) -> Optional[ast.Call]:
    """The opening Call inside an expression, if any (handles the
    ``trace = obs.begin(...) if obs.enabled else None`` idiom)."""
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Call):
            continue
        fn = sub.func
        if isinstance(fn, ast.Attribute) and fn.attr in _OPENERS:
            # Require a tracer-ish receiver: obs.begin / tracer.begin /
            # self.obs.begin — not e.g. re.match().begin.
            return sub
        if isinstance(fn, ast.Name) and fn.id in _SPAN_TYPES:
            return sub
    return None


class _FunctionAudit(ast.NodeVisitor):
    """Collect, within one function body, how each opened-trace name
    is used afterwards. Nested functions get their own audit."""

    def __init__(self) -> None:
        self.closed: Set[str] = set()       # passed to a closer
        self.escaped: Set[str] = set()      # stored/returned/passed on

    def _note_escape(self, node: Optional[ast.expr], names: Set[str],
                     kind: str) -> None:
        if node is None:
            return
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and sub.id in names:
                (self.closed if kind == "close"
                 else self.escaped).add(sub.id)

    def audit(self, fn: ast.AST, names: Set[str]) -> None:
        for node in ast.walk(fn):
            if isinstance(node, ast.Call):
                is_closer = (isinstance(node.func, ast.Attribute)
                             and node.func.attr in _CLOSERS)
                for arg in list(node.args) + [k.value
                                              for k in node.keywords]:
                    self._note_escape(
                        arg, names, "close" if is_closer else "escape")
            elif isinstance(node, ast.Return):
                self._note_escape(node.value, names, "escape")
            elif isinstance(node, (ast.Yield, ast.YieldFrom)):
                self._note_escape(node.value, names, "escape")
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)):
                        self._note_escape(node.value, names, "escape")
                # container displays on the RHS of a plain name
                # assignment still capture the trace:
                if any(isinstance(t, ast.Name) for t in node.targets):
                    if isinstance(node.value, (ast.Tuple, ast.List,
                                               ast.Dict, ast.Set)):
                        self._note_escape(node.value, names, "escape")


@register_checker
class SpanChecker(Checker):
    """RA401: every opened span is closed or handed off."""

    name = "span-discipline"
    codes = {
        "RA401": "OpTrace opened but never closed or transferred",
    }

    def check_file(self, src: SourceFile,
                   ctx: AnalysisContext) -> List[Finding]:
        out: List[Finding] = []
        for node in ast.walk(src.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                out.extend(self._check_function(src, node))
        return out

    def _check_function(self, src: SourceFile,
                        fn: ast.AST) -> List[Finding]:
        opened = {}  # name -> lineno
        discarded = []  # (lineno,) for bare-expression opens
        own_statements = list(ast.walk(fn))
        nested = set()
        for node in own_statements:
            if node is not fn and isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested.update(ast.walk(node))
        for node in own_statements:
            if node in nested:
                continue  # nested defs audited on their own
            if isinstance(node, ast.Assign):
                call = _opens_trace(node.value)
                if call is None:
                    continue
                # Only plain-name targets need auditing; an attribute
                # target (job.trace = begin(...)) is already a visible
                # ownership transfer.
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        opened[target.id] = call.lineno
            elif isinstance(node, ast.Expr):
                call = _opens_trace(node.value)
                if call is not None and call is node.value:
                    discarded.append(call.lineno)
        findings = [
            self.finding(src, lineno, "RA401",
                         "span opened and immediately discarded; bind "
                         "it and close it (or hand it to its owner)")
            for lineno in discarded]
        if opened:
            audit = _FunctionAudit()
            audit.audit(fn, set(opened))
            for name, lineno in sorted(opened.items(),
                                       key=lambda kv: kv[1]):
                if name in audit.closed or name in audit.escaped:
                    continue
                findings.append(self.finding(
                    src, lineno, "RA401",
                    f"trace bound to '{name}' is neither closed "
                    "(finish/abort_open) nor transferred (stored, "
                    "returned, or passed on) in this function"))
        return findings
