"""Determinism checker (RA1xx): no ambient entropy in the sim tree.

Every experiment replays bit-for-bit from its seed (DESIGN.md §2), so
``src/`` must never read wall clocks, process-seeded RNGs or
address-space-dependent values. The retired regex lint
(``tools/check_determinism.py``, now a shim over this module) matched
four literal spellings; this checker resolves *import aliases* through
the AST — ``from time import monotonic as mono`` is the same leak as
``time.monotonic()`` — and adds the ordering leaks the regex could
never see: iterating an unordered ``set`` into an ordering-sensitive
sink, and ``id()`` used as a sort key or hash input (CPython heap
addresses vary run to run).

Codes:

- **RA101** — wall-clock read: ``time.time/monotonic/perf_counter``
  (and their ``_ns`` twins), argless ``datetime.now()`` /
  ``datetime.today()``, ``datetime.utcnow()``.
- **RA102** — nondeterministically seeded RNG: module-level
  ``random.*`` draws (the global generator is process-seeded),
  ``numpy.random.*`` module-level draws / ``seed`` (global state),
  argless ``default_rng()``; seeded ``random.Random(n)`` /
  ``default_rng(n)`` streams are fine.
- **RA103** — iteration over a ``set``/``frozenset`` display or call
  (``for x in {...}``, ``list(set(...))``): string hashes are
  per-process, so the order leaks ``PYTHONHASHSEED`` into the
  simulation. Wrap in ``sorted(...)`` instead.
- **RA104** — ``id(...)`` inside a sort key or ``hash()`` argument:
  heap addresses differ across runs. Identity *membership* tests
  (``id(x) in seen``) are fine; ordering by identity is not.

Opt out per line with ``# determinism: allowed`` (legacy mark) or
``# analysis: allow[RA101]``.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple

from .core import (AnalysisContext, Checker, Finding, SourceFile,
                   register_checker)

__all__ = ["DeterminismChecker"]

#: time-module functions that read a host clock.
_WALL_CLOCK = {"time", "monotonic", "perf_counter", "time_ns",
               "monotonic_ns", "perf_counter_ns", "clock_gettime",
               "process_time"}

#: random-module draws that consume the process-seeded global stream.
_GLOBAL_RANDOM = {"random", "randint", "randrange", "choice", "choices",
                  "sample", "shuffle", "uniform", "gauss", "betavariate",
                  "expovariate", "normalvariate", "getrandbits",
                  "randbytes", "triangular", "seed"}

#: numpy.random module-level functions backed by the global RandomState.
_GLOBAL_NP_RANDOM = {"random", "rand", "randn", "randint", "choice",
                     "shuffle", "permutation", "uniform", "normal",
                     "seed", "random_sample", "bytes"}


class _ImportMap:
    """Aliases in one module: what does each local name refer to?"""

    def __init__(self, tree: ast.Module) -> None:
        #: local alias -> imported module path ("time", "numpy.random")
        self.modules: Dict[str, str] = {}
        #: local alias -> (module path, symbol) for from-imports
        self.symbols: Dict[str, Tuple[str, str]] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for a in node.names:
                    self.modules[(a.asname or a.name.split(".")[0])] = (
                        a.name if a.asname else a.name.split(".")[0])
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                for a in node.names:
                    if node.module and a.name != "*":
                        self.symbols[a.asname or a.name] = (
                            node.module, a.name)

    def resolve_call(self, func: ast.expr
                     ) -> Optional[Tuple[str, str]]:
        """``(module path, function name)`` for a call target, chasing
        one level of aliasing; None when it isn't an imported name."""
        if isinstance(func, ast.Name):
            return self.symbols.get(func.id)
        if isinstance(func, ast.Attribute):
            base = func.value
            # mod.fn(...)
            if isinstance(base, ast.Name):
                mod = self.modules.get(base.id)
                if mod is not None:
                    return (mod, func.attr)
                sym = self.symbols.get(base.id)
                if sym is not None:  # from numpy import random as nr
                    return (f"{sym[0]}.{sym[1]}", func.attr)
            # mod.sub.fn(...)  e.g. np.random.seed
            if (isinstance(base, ast.Attribute)
                    and isinstance(base.value, ast.Name)):
                mod = self.modules.get(base.value.id)
                if mod is not None:
                    return (f"{mod}.{base.attr}", func.attr)
        return None


def _is_set_expr(node: ast.expr, imports: _ImportMap) -> bool:
    """Does this expression produce an unordered set?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset"):
            # builtin, unless shadowed by an import
            return node.func.id not in imports.symbols
    return False


def _calls_id(node: ast.expr) -> Optional[ast.Call]:
    for sub in ast.walk(node):
        if (isinstance(sub, ast.Call) and isinstance(sub.func, ast.Name)
                and sub.func.id == "id"):
            return sub
    return None


@register_checker
class DeterminismChecker(Checker):
    """RA1xx: wall clocks, global RNGs, hash-order and id() leaks."""

    name = "determinism"
    codes = {
        "RA101": "wall-clock read (use sim.now)",
        "RA102": "process-seeded / unseeded RNG (use seeded streams)",
        "RA103": "iteration over an unordered set (hash-order leak)",
        "RA104": "id() used as ordering or hash input",
    }

    def check_file(self, src: SourceFile,
                   ctx: AnalysisContext) -> List[Finding]:
        imports = _ImportMap(src.tree)
        out: List[Finding] = []
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Call):
                out.extend(self._check_call(src, node, imports))
                out.extend(self._check_sort_key(src, node))
            elif isinstance(node, (ast.For, ast.comprehension)):
                it = node.iter
                if _is_set_expr(it, imports):
                    line = getattr(node, "lineno", it.lineno)
                    out.append(self.finding(
                        src, line, "RA103",
                        "iterating an unordered set feeds hash order "
                        "into the simulation; use sorted(...)"))
        return out

    # -- helpers -----------------------------------------------------------

    def _check_call(self, src: SourceFile, node: ast.Call,
                    imports: _ImportMap) -> List[Finding]:
        out: List[Finding] = []
        target = imports.resolve_call(node.func)
        if target is not None:
            mod, fn = target
            if mod == "time" and fn in _WALL_CLOCK:
                out.append(self.finding(
                    src, node.lineno, "RA101",
                    f"time.{fn}() reads the host clock; simulated "
                    "time is sim.now"))
            elif mod == "random" and fn in _GLOBAL_RANDOM:
                out.append(self.finding(
                    src, node.lineno, "RA102",
                    f"random.{fn}() draws from the process-seeded "
                    "global generator; use a seeded stream"))
            elif (mod in ("numpy.random", "np.random")
                    and fn in _GLOBAL_NP_RANDOM):
                out.append(self.finding(
                    src, node.lineno, "RA102",
                    f"numpy.random.{fn}() uses interpreter-global RNG "
                    "state; use default_rng(seed)"))
            elif fn == "default_rng" and not node.args and not node.keywords:
                out.append(self.finding(
                    src, node.lineno, "RA102",
                    "default_rng() without a seed draws OS entropy; "
                    "pass an explicit seed"))
            elif (fn in ("now", "today") and mod.endswith("datetime")
                    and not node.args and not node.keywords):
                out.append(self.finding(
                    src, node.lineno, "RA101",
                    f"datetime.{fn}() reads the wall clock; pass "
                    "timestamps explicitly"))
            elif fn == "utcnow" and mod.endswith("datetime"):
                out.append(self.finding(
                    src, node.lineno, "RA101",
                    "datetime.utcnow() reads the wall clock; pass "
                    "timestamps explicitly"))
        # list(set(...)) / tuple(set(...))
        if (isinstance(node.func, ast.Name)
                and node.func.id in ("list", "tuple")
                and len(node.args) == 1
                and _is_set_expr(node.args[0], imports)):
            out.append(self.finding(
                src, node.lineno, "RA103",
                f"{node.func.id}(set(...)) materializes hash order; "
                "use sorted(...)"))
        # hash(... id(...) ...)
        if (isinstance(node.func, ast.Name) and node.func.id == "hash"
                and node.args and _calls_id(node.args[0]) is not None):
            out.append(self.finding(
                src, node.lineno, "RA104",
                "hash over id() depends on heap addresses"))
        return out

    def _check_sort_key(self, src: SourceFile,
                        node: ast.Call) -> List[Finding]:
        """id() inside the key= of sorted/min/max/.sort."""
        fn = node.func
        is_sort = ((isinstance(fn, ast.Name)
                    and fn.id in ("sorted", "min", "max"))
                   or (isinstance(fn, ast.Attribute) and fn.attr == "sort"))
        if not is_sort:
            return []
        for kw in node.keywords:
            if kw.arg == "key":
                bad = _calls_id(kw.value)
                if bad is not None:
                    return [self.finding(
                        src, bad.lineno, "RA104",
                        "sort key uses id(): heap addresses differ "
                        "across runs; key on a stable field instead")]
        return []
