"""Conf-directive consistency checker (RA5xx).

The conf surface (``repro.server.conf_text``) is how every
experiment, example and fuzz scenario drives the system, so an
undocumented directive is a knob nobody can discover and an unsampled
one is a knob the fuzzer never turns. This checker cross-references
three sources of truth on every push:

1. **parsed** — directives extracted from the AST of
   ``server/conf_text.py`` (every ``directive == "literal"``
   comparison in the parser);
2. **documented** — backticked names in README.md (the directive
   reference tables);
3. **exercised** — override keys the scenario generator samples
   (``ov["..."] = ...`` subscript stores in ``testing/scenario.py``),
   plus the :data:`SAMPLED_VIA` map for directives driven through
   ``ScenarioSpec`` fields, plus the explicit :data:`ALLOWLIST` for
   knobs that are deliberately not fuzzed (each with its one-line
   justification).

Codes:

- **RA501** — directive parsed but not documented in README.
- **RA502** — directive parsed but neither sampled by ``ScenarioGen``
  nor allowlisted.
- **RA503** — stale allowlist/``SAMPLED_VIA`` entry: the directive is
  no longer parsed at all (checker rot — prune the entry).

Adding a directive therefore forces: parser + README row + (sampling
or an explicit allowlist entry here). That's the same
"registry-with-teeth" idea as the dynamic invariant catalogue.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional

from .core import (AnalysisContext, Checker, Finding, SourceFile,
                   register_checker)

__all__ = ["ConfDirectiveChecker", "ALLOWLIST", "SAMPLED_VIA"]

#: Directives exercised through ScenarioSpec fields rather than the
#: overrides dict: directive -> the spec field that drives it.
SAMPLED_VIA: Dict[str, str] = {
    "worker_processes": "ScenarioSpec.workers",
    "ssl_ciphers": "ScenarioSpec.suites",
    "ssl_protocols": "ScenarioSpec.tls_version",
    "use": "ScenarioSpec.config_name (paper configuration map)",
    "qat_offload_mode": "ScenarioSpec.config_name (sync for QAT+S)",
    "ssl_asynch_notify": "ScenarioSpec.config_name (queue for QTLS)",
    "keepalive_timeout": "ClientSpec.keepalive (ab fleets)",
    "ssl_session_cache": "ClientSpec.full_ratio (abbreviated "
                         "handshakes resume through the cache)",
}

#: Deliberately un-fuzzed directives: name -> one-line justification.
ALLOWLIST: Dict[str, str] = {
    # structural / informational
    "load_module": "informational in nginx confs; parser skips it",
    "ssl_engine": "structural block name, not a knob",
    "qat_engine": "structural block name, not a knob",
    "remote_accelerator": "structural block name, not a knob",
    "default_algorithm": "algorithm routing is fixed by the paper's "
                         "engine config; suites already vary the mix",
    "ssl_ecdh_curve": "curve choice only scales service times; suites "
                      "cover the crypto variety",
    # paper constants: changing them would unanchor the reproduction
    "qat_heuristic_poll_asym_threshold": "paper constant (48); the "
                                         "fig9 sweep varies it instead",
    "qat_heuristic_poll_sym_threshold": "paper constant (24); the "
                                        "fig9 sweep varies it instead",
    # robustness knobs held at defaults so fault-plan draws stay
    # comparable across seeds
    "qat_submit_max_retries": "retry budget fixed; fault plans vary "
                              "the failure pattern instead",
    "qat_breaker_failure_threshold": "breaker tuning fixed; outage "
                                     "fault draws exercise the breaker",
    "qat_breaker_reset_timeout": "breaker tuning fixed; outage fault "
                                 "draws exercise the breaker",
    "qat_software_fallback": "always-on default is the paper's "
                             "behaviour; the off path is unit-tested",
    "qat_batch_timeout": "batch size is sampled; the timeout only "
                         "bounds flush latency",
    # remote-backend shape: the backend itself is sampled via
    # offload_backend; its link/pool shape stays calibrated
    "processors": "remote service pool fixed at calibrated size",
    "window": "remote credit window fixed at calibrated size",
    "link_latency": "remote link characteristics fixed (calibrated)",
    "link_bandwidth": "remote link characteristics fixed (calibrated)",
    "service_scale": "remote service-time scale fixed (calibrated)",
}

#: Root-relative path suffixes of the cross-referenced sources.
_CONF_SUFFIX = "server/conf_text.py"
_SCENARIO_SUFFIX = "testing/scenario.py"

_BACKTICKED = re.compile(r"`([A-Za-z0-9_]+)`")


def _parsed_directives(src: SourceFile) -> Dict[str, int]:
    """directive -> first lineno, from ``directive == "lit"`` (and
    ``in ("a", "b")``) comparisons in the parser."""
    out: Dict[str, int] = {}

    def note(name: str, lineno: int) -> None:
        out.setdefault(name, lineno)

    for node in ast.walk(src.tree):
        if not isinstance(node, ast.Compare):
            continue
        left = node.left
        if not (isinstance(left, ast.Name) and left.id == "directive"):
            continue
        for op, comp in zip(node.ops, node.comparators):
            if isinstance(op, ast.Eq) and isinstance(comp, ast.Constant) \
                    and isinstance(comp.value, str):
                note(comp.value, node.lineno)
            elif isinstance(op, ast.In) and isinstance(comp, ast.Tuple):
                for elt in comp.elts:
                    if (isinstance(elt, ast.Constant)
                            and isinstance(elt.value, str)):
                        note(elt.value, node.lineno)
    return out


def _sampled_override_keys(src: Optional[SourceFile]) -> set:
    """String keys stored into a subscript (``ov["key"] = ...``)
    anywhere in the scenario generator."""
    if src is None:
        return set()
    keys = set()
    for node in ast.walk(src.tree):
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if (isinstance(target, ast.Subscript)
                    and isinstance(target.slice, ast.Constant)
                    and isinstance(target.slice.value, str)):
                keys.add(target.slice.value)
    return keys


@register_checker
class ConfDirectiveChecker(Checker):
    """RA5xx: parser ⊆ README, parser ⊆ (sampled ∪ allowlist)."""

    name = "conf-directives"
    codes = {
        "RA501": "conf directive not documented in README",
        "RA502": "conf directive neither fuzz-sampled nor allowlisted",
        "RA503": "stale allowlist entry (directive no longer parsed)",
    }

    def check_project(self, ctx: AnalysisContext) -> List[Finding]:
        conf = ctx.file_by_suffix(_CONF_SUFFIX)
        if conf is None:
            return []  # tree under analysis has no conf parser
        parsed = _parsed_directives(conf)
        documented = set(_BACKTICKED.findall(ctx.readme_text))
        sampled = _sampled_override_keys(
            ctx.file_by_suffix(_SCENARIO_SUFFIX))
        out: List[Finding] = []
        for directive, lineno in sorted(parsed.items()):
            if directive not in documented:
                out.append(self.finding(
                    conf, lineno, "RA501",
                    f"directive '{directive}' is parsed here but "
                    "appears nowhere in README.md; add it to the "
                    "directive reference"))
            if (directive not in sampled
                    and directive not in SAMPLED_VIA
                    and directive not in ALLOWLIST):
                out.append(self.finding(
                    conf, lineno, "RA502",
                    f"directive '{directive}' is never sampled by "
                    "ScenarioGen; sample it or allowlist it in "
                    "repro.analysis.confdoc with a justification"))
        for directive in sorted(set(ALLOWLIST) | set(SAMPLED_VIA)):
            if directive not in parsed:
                out.append(self.finding(
                    conf, 1, "RA503",
                    f"'{directive}' is allowlisted/mapped in "
                    "repro.analysis.confdoc but no longer parsed by "
                    "conf_text.py; prune the entry"))
        return out
