"""Sim-purity checker (RA2xx): the simulation tree never touches the
real OS.

Everything in ``src/`` blocks *via the sim kernel* — simulated
sockets (:mod:`repro.net.socket_sim`), simulated epoll, simulated
threads-as-processes (:mod:`repro.sim.process`). A real
``time.sleep``, a real ``threading.Thread`` or a real ``socket``
would stall or fork the deterministic event loop and break replay
silently (the run still *works*, it just stops being a pure function
of the seed). The dynamic fuzz harness cannot catch these at all — a
real sleep just makes the test slow, not wrong — so the static gate
is the only line of defense.

Codes:

- **RA201** — import of a real-concurrency / real-IO module
  (``threading``, ``select``, ``socket``, ``subprocess``,
  ``multiprocessing``, ``asyncio``, ``signal``, ``_thread``): the sim
  kernel owns all blocking and parallelism.
- **RA202** — blocking call into the host OS: ``time.sleep`` (and
  ``os.wait``/``os.system``); simulated delay is
  ``yield sim.timeout(dt)``.
- **RA203** — ambient entropy read: ``os.urandom``, ``os.getrandom``,
  the ``secrets`` module, ``uuid.uuid1``/``uuid.uuid4``,
  ``random.SystemRandom``.

Scope is the whole analysis root (``src/`` in CI) including function
bodies — a deferred ``import threading`` is just as real. Opt out
with ``# analysis: allow[RA201]`` (or the legacy
``# determinism: allowed`` mark).
"""

from __future__ import annotations

import ast
from typing import List

from .core import (AnalysisContext, Checker, Finding, SourceFile,
                   register_checker)

__all__ = ["PurityChecker"]

#: Modules whose import alone signals real concurrency / real IO.
_BANNED_MODULES = {
    "threading": "real threads; sim processes are repro.sim.process",
    "_thread": "real threads; sim processes are repro.sim.process",
    "multiprocessing": "real processes; workers are simulated",
    "asyncio": "a second event loop; the sim kernel owns scheduling",
    "select": "real FD polling; use repro.net.epoll_sim",
    "socket": "real sockets; use repro.net.socket_sim",
    "subprocess": "real processes outside the simulation",
    "signal": "host signal handlers perturb the event loop",
}

#: (module, function) calls that block on or mutate the host OS.
_BLOCKING_CALLS = {
    ("time", "sleep"): "real sleep stalls the event loop; simulated "
                       "delay is `yield sim.timeout(dt)`",
    ("os", "system"): "shells out of the simulation",
    ("os", "wait"): "blocks on real child processes",
}

#: (module, symbol) reads of ambient entropy.
_ENTROPY = {
    ("os", "urandom"), ("os", "getrandom"),
    ("uuid", "uuid1"), ("uuid", "uuid4"),
    ("random", "SystemRandom"),
}


@register_checker
class PurityChecker(Checker):
    """RA2xx: real threads, real blocking, real entropy."""

    name = "sim-purity"
    codes = {
        "RA201": "real-concurrency or real-IO module import",
        "RA202": "blocking call into the host OS",
        "RA203": "ambient entropy read",
    }

    def check_file(self, src: SourceFile,
                   ctx: AnalysisContext) -> List[Finding]:
        out: List[Finding] = []
        # Alias map so `import time as _t; _t.sleep(...)` is still
        # caught: bound name -> canonical module name.
        aliases = {}
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Import):
                for a in node.names:
                    if "." not in a.name:
                        aliases[a.asname or a.name] = a.name
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Import):
                for a in node.names:
                    root = a.name.split(".")[0]
                    if root in _BANNED_MODULES:
                        out.append(self.finding(
                            src, node.lineno, "RA201",
                            f"import {a.name}: {_BANNED_MODULES[root]}"))
                    if root == "secrets":
                        out.append(self.finding(
                            src, node.lineno, "RA203",
                            "the secrets module reads OS entropy; use "
                            "seeded RNG streams"))
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                root = (node.module or "").split(".")[0]
                if root in _BANNED_MODULES:
                    out.append(self.finding(
                        src, node.lineno, "RA201",
                        f"from {node.module} import ...: "
                        f"{_BANNED_MODULES[root]}"))
                elif root == "secrets":
                    out.append(self.finding(
                        src, node.lineno, "RA203",
                        "the secrets module reads OS entropy; use "
                        "seeded RNG streams"))
                else:
                    for a in node.names:
                        if (root, a.name) in _ENTROPY:
                            out.append(self.finding(
                                src, node.lineno, "RA203",
                                f"{node.module}.{a.name} reads ambient "
                                "entropy; use seeded RNG streams"))
            elif isinstance(node, ast.Call):
                out.extend(self._check_call(src, node, aliases))
        return out

    def _check_call(self, src: SourceFile, node: ast.Call,
                    aliases) -> List[Finding]:
        fn = node.func
        if not (isinstance(fn, ast.Attribute)
                and isinstance(fn.value, ast.Name)):
            return []
        key = (aliases.get(fn.value.id, fn.value.id), fn.attr)
        if key in _BLOCKING_CALLS:
            return [self.finding(
                src, node.lineno, "RA202",
                f"{key[0]}.{key[1]}(): {_BLOCKING_CALLS[key]}")]
        if key in _ENTROPY:
            return [self.finding(
                src, node.lineno, "RA203",
                f"{key[0]}.{key[1]}() reads ambient entropy; use "
                "seeded RNG streams")]
        return []
