"""Layering checker (RA3xx): enforce the package import DAG.

The reproduction is a strict layer cake (DESIGN.md §13): the sim
kernel at the bottom, hardware and protocol models above it, the
server above those, and the measurement/testing harnesses on top.
Upward imports create cycles that Python tolerates just long enough
to become load-bearing; this checker rejects them at push time.

Each ``repro.*`` package has a rank; a module may import from
packages of *strictly lower* rank only:

====  =======================================================
rank  packages
====  =======================================================
0     ``sim``
1     ``cpu``, ``net``, ``crypto``, ``obs``
2     ``core``
3     ``qat``, ``tls``
4     ``offload``
5     ``engine``
6     ``ssl``
7     ``server``
8     ``clients``
9     ``bench``
10    ``testing``, ``analysis``
====  =======================================================

Consequences the issue called out explicitly: ``crypto`` (rank 1) can
never import ``server`` (rank 7), and nothing below rank 10 imports
``bench`` — only the fuzz harness (``testing``) drives it.

Exemptions, by design:

- imports inside function/method bodies (deferred imports are the
  sanctioned cycle-breaker, e.g. ``core.configurations`` building a
  ``ServerConfig`` on demand);
- imports under ``if TYPE_CHECKING:`` (annotations never execute);
- intra-package imports.

Known grandfathered edge: ``repro.qat.rings`` imports the
deliberately dependency-free ``repro.offload.errors`` to re-export
the canonical ``RingFull`` (see that module's docstring). It lives in
the baseline file, not here, so the debt stays visible.

Codes: **RA301** upward/lateral import; **RA302** package missing
from the rank table (the DAG must be total — extend it, don't guess).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from .core import (AnalysisContext, Checker, Finding, SourceFile,
                   register_checker)

__all__ = ["LayeringChecker", "PACKAGE_RANKS"]

#: The import DAG, as package -> rank. Lower may never import higher
#: or equal (other than itself).
PACKAGE_RANKS: Dict[str, int] = {
    "sim": 0,
    "cpu": 1, "net": 1, "crypto": 1, "obs": 1,
    "core": 2,
    "qat": 3, "tls": 3,
    "offload": 4,
    "engine": 5,
    "ssl": 6,
    "server": 7,
    "clients": 8,
    "bench": 9,
    "testing": 10, "analysis": 10,
}


def _module_imports(tree: ast.Module) -> List[Tuple[int, int, Optional[str]]]:
    """(lineno, relative level, dotted module) for every import that
    executes at module scope — including class bodies and conditional
    top-level blocks, excluding function bodies and TYPE_CHECKING
    guards."""
    out: List[Tuple[int, int, Optional[str]]] = []

    def is_type_checking(test: ast.expr) -> bool:
        for node in ast.walk(test):
            if isinstance(node, ast.Name) and node.id == "TYPE_CHECKING":
                return True
            if isinstance(node, ast.Attribute) and (
                    node.attr == "TYPE_CHECKING"):
                return True
        return False

    def visit(body) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                continue
            if isinstance(node, ast.If) and is_type_checking(node.test):
                visit(node.orelse)
                continue
            if isinstance(node, ast.Import):
                for a in node.names:
                    out.append((node.lineno, 0, a.name))
            elif isinstance(node, ast.ImportFrom):
                out.append((node.lineno, node.level, node.module))
            elif isinstance(node, (ast.If, ast.Try, ast.With,
                                   ast.ClassDef, ast.For, ast.While)):
                for attr in ("body", "orelse", "finalbody", "handlers"):
                    sub = getattr(node, attr, [])
                    if attr == "handlers":
                        for h in sub:
                            visit(h.body)
                    else:
                        visit(sub)

    visit(tree.body)
    return out


def _target_package(src: SourceFile, level: int,
                    module: Optional[str]) -> Optional[str]:
    """The ``repro`` subpackage an import resolves to, or None for
    external / top-level imports."""
    if level == 0:
        if module and (module == "repro" or module.startswith("repro.")):
            parts = module.split(".")
            return parts[1] if len(parts) > 1 else None
        return None
    # Relative: resolve against the importing module's own package
    # (for an __init__.py the module *is* the package).
    own = src.module.split(".")          # e.g. repro.qat.rings
    pkg = own if src.is_package else own[:-1]
    if level - 1 >= len(pkg):
        return None                      # beyond the analysis root
    base = pkg[:len(pkg) - (level - 1)]  # level=1 -> package itself
    target = base + (module.split(".") if module else [])
    if len(target) > 1 and target[0] == "repro":
        return target[1]
    return None


@register_checker
class LayeringChecker(Checker):
    """RA3xx: the package DAG, module-scope imports only."""

    name = "layering"
    codes = {
        "RA301": "upward or lateral package import (layering violation)",
        "RA302": "package missing from the layering rank table",
    }

    def check_file(self, src: SourceFile,
                   ctx: AnalysisContext) -> List[Finding]:
        own_pkg = src.package
        if own_pkg is None:
            return []
        out: List[Finding] = []
        own_rank = PACKAGE_RANKS.get(own_pkg)
        reported: Set[Tuple[int, str]] = set()
        if own_rank is None:
            return [self.finding(
                src, 1, "RA302",
                f"package 'repro.{own_pkg}' has no rank in "
                "repro.analysis.layering.PACKAGE_RANKS; add it to "
                "the DAG")]
        for lineno, level, module in _module_imports(src.tree):
            target = _target_package(src, level, module)
            if target is None or target == own_pkg:
                continue
            if (lineno, target) in reported:
                continue
            reported.add((lineno, target))
            target_rank = PACKAGE_RANKS.get(target)
            if target_rank is None:
                out.append(self.finding(
                    src, lineno, "RA302",
                    f"imported package 'repro.{target}' has no rank "
                    "in PACKAGE_RANKS; add it to the DAG"))
            elif target_rank >= own_rank:
                out.append(self.finding(
                    src, lineno, "RA301",
                    f"repro.{own_pkg} (rank {own_rank}) imports "
                    f"repro.{target} (rank {target_rank}); the DAG "
                    "allows strictly-lower ranks only — invert the "
                    "dependency or defer the import into the using "
                    "function"))
        return out
