"""Reactor-source conformance checker (RA6xx).

Worker wake mechanisms plug into the reactor as
:class:`repro.server.reactor.EventSource` subclasses, and the reactor
trusts them structurally: ``name`` keys the stats/stub_status/obs
namespaces (so it must be a unique literal), ``has_stage`` sources
are driven through ``yield from source.on_pass(...)`` (so ``on_pass``
must be a generator — a plain ``return``-a-list override would
silently never run), and ``stats()`` overrides that skip
``super().stats()`` drop the base wake/event/busy counters from the
stub_status ``reactor:`` line. None of this is enforced at runtime —
a malformed source just misbehaves quietly inside the hot loop — so
the protocol is enforced here instead (the static half of the
corpus-fingerprint equivalence gate).

Codes:

- **RA601** — subclass without a class-level string-literal ``name``
  (or reusing the base default / another source's name in the same
  module).
- **RA602** — ``has_stage = True`` but ``on_pass`` is missing or not
  a generator function.
- **RA603** — overridden protocol hook with the wrong arity
  (``matches(self, pollable)``, ``on_event(self, pollable, owner)``,
  ``next_timeout(self, now)``, ``on_pass(self, owner)``,
  ``stats(self)``, ``start``/``stop(self)``).
- **RA604** — ``stats()`` override that never calls
  ``super().stats()`` (drops the base counters).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional

from .core import (AnalysisContext, Checker, Finding, SourceFile,
                   register_checker)

__all__ = ["ReactorSourceChecker"]

#: hook -> expected positional-arg count (including self).
_HOOK_ARITY = {
    "matches": 2,
    "on_event": 3,
    "next_timeout": 2,
    "on_pass": 2,
    "stats": 1,
    "start": 1,
    "stop": 1,
    "attach": 2,
}

#: Generator hooks: the reactor drives them with ``yield from``.
_GENERATOR_HOOKS = {"on_event", "on_pass"}


def _is_event_source_base(base: ast.expr) -> bool:
    if isinstance(base, ast.Name):
        return base.id == "EventSource"
    if isinstance(base, ast.Attribute):
        return base.attr == "EventSource"
    return False


def _is_generator(fn) -> bool:
    """Does this function itself yield? (yields inside nested defs
    don't count)."""
    stack = list(fn.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
        stack.extend(ast.iter_child_nodes(node))
    return False


def _calls_super_stats(fn: ast.AST) -> bool:
    for node in ast.walk(fn):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "stats"
                and isinstance(node.func.value, ast.Call)
                and isinstance(node.func.value.func, ast.Name)
                and node.func.value.func.id == "super"):
            return True
    return False


@register_checker
class ReactorSourceChecker(Checker):
    """RA6xx: EventSource subclasses structurally satisfy the
    protocol the reactor assumes."""

    name = "reactor-sources"
    codes = {
        "RA601": "EventSource subclass without a unique literal name",
        "RA602": "stage source whose on_pass is missing or not a "
                 "generator",
        "RA603": "protocol hook overridden with the wrong arity",
        "RA604": "stats() override that drops super().stats()",
    }

    def check_file(self, src: SourceFile,
                   ctx: AnalysisContext) -> List[Finding]:
        out: List[Finding] = []
        seen_names: Dict[str, str] = {}  # source name -> class
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if node.name == "EventSource":
                continue  # the protocol root itself
            if not any(_is_event_source_base(b) for b in node.bases):
                continue
            out.extend(self._check_class(src, node, seen_names))
        return out

    def _check_class(self, src: SourceFile, cls: ast.ClassDef,
                     seen_names: Dict[str, str]) -> List[Finding]:
        out: List[Finding] = []
        name_value: Optional[str] = None
        has_stage = False
        methods: Dict[str, ast.AST] = {}
        for stmt in cls.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if not isinstance(target, ast.Name):
                        continue
                    if target.id == "name":
                        if (isinstance(stmt.value, ast.Constant) and
                                isinstance(stmt.value.value, str)):
                            name_value = stmt.value.value
                    elif target.id == "has_stage":
                        has_stage = (isinstance(stmt.value, ast.Constant)
                                     and stmt.value.value is True)
            elif isinstance(stmt, (ast.FunctionDef,
                                   ast.AsyncFunctionDef)):
                methods[stmt.name] = stmt

        if name_value is None or name_value in ("", "source"):
            out.append(self.finding(
                src, cls.lineno, "RA601",
                f"{cls.name} needs a class-level literal `name` "
                "distinct from the base default (it keys stats, "
                "stub_status and obs timelines)"))
        elif name_value in seen_names:
            out.append(self.finding(
                src, cls.lineno, "RA601",
                f"{cls.name} reuses source name "
                f"{name_value!r} (already taken by "
                f"{seen_names[name_value]}); names must be unique"))
        else:
            seen_names[name_value] = cls.name

        if has_stage:
            on_pass = methods.get("on_pass")
            if on_pass is None:
                out.append(self.finding(
                    src, cls.lineno, "RA602",
                    f"{cls.name} sets has_stage=True but does not "
                    "override on_pass; the stage would run the "
                    "base no-op"))
            elif not _is_generator(on_pass):
                out.append(self.finding(
                    src, on_pass.lineno, "RA602",
                    f"{cls.name}.on_pass must be a generator (the "
                    "reactor drives it with `yield from`)"))

        for hook, fn in methods.items():
            expected = _HOOK_ARITY.get(hook)
            if expected is None:
                continue
            args = fn.args
            if args.vararg is not None or args.kwarg is not None:
                continue  # explicitly variadic: trust it
            # defaults make trailing params optional; count required +
            # optional positional params and accept the protocol arity
            # anywhere in that range.
            total = len(args.posonlyargs) + len(args.args)
            required = total - len(args.defaults)
            if not (required <= expected <= total):
                out.append(self.finding(
                    src, fn.lineno, "RA603",
                    f"{cls.name}.{hook} takes {total} positional "
                    f"arg(s); the reactor calls it with {expected} "
                    "(protocol arity mismatch)"))
            if (hook in _GENERATOR_HOOKS and hook == "on_event"
                    and not _is_generator(fn)):
                out.append(self.finding(
                    src, fn.lineno, "RA602",
                    f"{cls.name}.on_event must be a generator (the "
                    "reactor drives it with `yield from`)"))

        stats_fn = methods.get("stats")
        if stats_fn is not None and not _calls_super_stats(stats_fn):
            out.append(self.finding(
                src, stats_fn.lineno, "RA604",
                f"{cls.name}.stats() never calls super().stats(); "
                "the base wake/event/busy counters would vanish "
                "from stub_status"))
        return out
