"""The static-analysis framework: findings, files, registry, baseline.

Design (mirrors the dynamic invariant registry in
:mod:`repro.testing.invariants`, but over source text instead of a
finished simulation):

- every file under the analysis root is parsed **once** into a
  :class:`SourceFile` (AST + line table + suppression comments);
- each registered :class:`Checker` walks the files (or the whole
  project) and emits :class:`Finding`\\ s carrying a stable per-pattern
  code (``RA101``, ``RA301``, ...);
- deliberate violations opt out *inline* with a trailing
  ``# analysis: allow[RA101]`` comment (the legacy
  ``# determinism: allowed`` mark is honoured for the RA1xx/RA2xx
  codes so existing annotations keep working unchanged);
- *grandfathered* findings live in a checked-in :class:`Baseline` file
  (one ``CODE path — justification`` line each), so the CI gate can be
  strict for new code without rewriting history first.

Everything here is stdlib-only: the analysis runs in the bare CI lint
job before any dependency install.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["Finding", "SourceFile", "AnalysisContext", "Checker",
           "Baseline", "register_checker", "checker_registry",
           "all_codes", "run_analysis"]

#: Inline suppression: ``# analysis: allow`` silences every code on the
#: line; ``# analysis: allow[RA101,RA3]`` silences matching prefixes.
_ALLOW_RE = re.compile(
    r"#\s*analysis:\s*allow(?:\[(?P<codes>[A-Z0-9,\s]+)\])?")

#: The legacy determinism-lint opt-out (PR 6). Honoured for the
#: determinism and sim-purity checkers only, so every annotation that
#: satisfied ``tools/check_determinism.py`` keeps working unchanged.
_LEGACY_ALLOW = "determinism: allowed"
_LEGACY_CODES = ("RA1", "RA2")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    path: str          # analysis-root-relative, '/'-separated
    line: int
    code: str          # e.g. "RA301"
    message: str
    checker: str = ""  # registering checker's name

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"

    @property
    def baseline_key(self) -> Tuple[str, str]:
        """Baseline matching is per (code, file) — line numbers drift
        too easily to pin grandfathered findings to them."""
        return (self.code, self.path)


class SourceFile:
    """One parsed source file shared by every checker."""

    def __init__(self, root: Path, path: Path) -> None:
        self.abspath = path
        self.path = path.relative_to(root).as_posix()
        self.text = path.read_text(encoding="utf-8")
        self.lines = self.text.splitlines()
        self.tree = ast.parse(self.text, filename=str(path))
        #: Dotted module name relative to the root, e.g.
        #: ``repro.qat.rings`` for ``<root>/repro/qat/rings.py``.
        parts = list(path.relative_to(root).parts)
        parts[-1] = parts[-1][:-3]  # strip .py
        self.is_package = parts[-1] == "__init__"
        if self.is_package:
            parts.pop()
        self.module = ".".join(parts)

    @property
    def package(self) -> Optional[str]:
        """Second-level package (``qat`` for ``repro.qat.rings``)."""
        parts = self.module.split(".")
        return parts[1] if len(parts) > 1 and parts[0] == "repro" else None

    def suppressed(self, line: int, code: str) -> bool:
        """Is ``code`` inline-suppressed on 1-based ``line``?"""
        if not 1 <= line <= len(self.lines):
            return False
        text = self.lines[line - 1]
        if (_LEGACY_ALLOW in text
                and code.startswith(_LEGACY_CODES)):
            return True
        m = _ALLOW_RE.search(text)
        if m is None:
            return False
        if m.group("codes") is None:
            return True
        prefixes = [c.strip() for c in m.group("codes").split(",")]
        return any(code.startswith(p) for p in prefixes if p)


class AnalysisContext:
    """Everything a checker may consult: the parsed files plus the
    project documents some checkers cross-reference (README)."""

    def __init__(self, root: Path, files: Sequence[SourceFile],
                 readme_path: Optional[Path] = None) -> None:
        self.root = Path(root)
        self.files = list(files)
        self._readme_path = readme_path
        self._readme_text: Optional[str] = None

    @classmethod
    def from_paths(cls, root: Path, paths: Optional[Iterable[Path]] = None,
                   readme_path: Optional[Path] = None) -> "AnalysisContext":
        root = Path(root)
        files = []
        targets = list(paths) if paths else [root]
        seen = set()
        for target in targets:
            target = Path(target)
            candidates = (sorted(target.rglob("*.py"))
                          if target.is_dir() else [target])
            for p in candidates:
                if "__pycache__" in p.parts or p in seen:
                    continue
                seen.add(p)
                files.append(SourceFile(root, p))
        return cls(root, files, readme_path=readme_path)

    @property
    def readme_text(self) -> str:
        """README contents ('' when absent — checkers that need it
        emit a finding rather than crash)."""
        if self._readme_text is None:
            p = self._readme_path
            self._readme_text = (p.read_text(encoding="utf-8")
                                 if p is not None and p.exists() else "")
        return self._readme_text

    def file_by_suffix(self, suffix: str) -> Optional[SourceFile]:
        """The file whose root-relative path ends with ``suffix``."""
        for f in self.files:
            if f.path.endswith(suffix):
                return f
        return None


class Checker:
    """One registered analysis pass.

    Subclasses set :attr:`name`, :attr:`codes` (``code -> one-line
    description``) and implement either :meth:`check_file` (called per
    file) or :meth:`check_project` (called once with the context), or
    both. Emitted findings are filtered against inline suppressions
    and the baseline by the framework — checkers just report.
    """

    name = "checker"
    codes: Dict[str, str] = {}

    def check_file(self, src: SourceFile,
                   ctx: AnalysisContext) -> List[Finding]:
        return []

    def check_project(self, ctx: AnalysisContext) -> List[Finding]:
        return []

    def finding(self, src: Optional[SourceFile], line: int, code: str,
                message: str, path: Optional[str] = None) -> Finding:
        assert code in self.codes, f"{self.name} emitted unknown {code}"
        return Finding(path=path if path is not None else src.path,
                       line=line, code=code, message=message,
                       checker=self.name)


_REGISTRY: Dict[str, Checker] = {}


def register_checker(cls):
    """Class decorator: instantiate and register one checker."""
    inst = cls()
    if inst.name in _REGISTRY:
        raise ValueError(f"duplicate checker {inst.name!r}")
    for code in inst.codes:
        for other in _REGISTRY.values():
            if code in other.codes:
                raise ValueError(
                    f"code {code} claimed by both {other.name!r} "
                    f"and {inst.name!r}")
    _REGISTRY[inst.name] = inst
    return cls


def checker_registry() -> Dict[str, Checker]:
    return dict(_REGISTRY)


def all_codes() -> Dict[str, str]:
    """``code -> description`` over every registered checker."""
    out: Dict[str, str] = {}
    for checker in _REGISTRY.values():
        out.update(checker.codes)
    return out


class Baseline:
    """The checked-in grandfather file.

    Line format (one finding class per line)::

        RA301 repro/qat/rings.py — justification text

    Matching is per ``(code, path)``: the baseline suppresses every
    instance of that code in that file, so line-number drift never
    invalidates an entry. Entries that no longer match anything are
    reported as *stale* so the file shrinks as debt is paid down.
    """

    _LINE = re.compile(r"^(?P<code>RA\d+)\s+(?P<path>\S+)\s*"
                       r"(?:[—-]+\s*(?P<why>.*))?$")

    def __init__(self, entries: Optional[Dict[Tuple[str, str], str]] = None
                 ) -> None:
        #: (code, path) -> justification
        self.entries: Dict[Tuple[str, str], str] = dict(entries or {})
        self.matched: set = set()

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        baseline = cls()
        if not path.exists():
            return baseline
        for lineno, raw in enumerate(
                path.read_text(encoding="utf-8").splitlines(), 1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            m = cls._LINE.match(line)
            if m is None:
                raise ValueError(
                    f"{path}:{lineno}: malformed baseline line {raw!r} "
                    "(expected 'CODE path — justification')")
            baseline.entries[(m.group("code"), m.group("path"))] = (
                m.group("why") or "")
        return baseline

    def suppresses(self, finding: Finding) -> bool:
        key = finding.baseline_key
        if key in self.entries:
            self.matched.add(key)
            return True
        return False

    def stale_entries(self) -> List[Tuple[str, str]]:
        return sorted(set(self.entries) - self.matched)

    @staticmethod
    def render(findings: Iterable[Finding]) -> str:
        """Baseline text for the given findings (``--baseline-write``)."""
        lines = ["# repro.analysis baseline — grandfathered findings.",
                 "# One 'CODE path — justification' line per entry; the",
                 "# entry suppresses every instance of CODE in that file.",
                 "# Keep each justification honest: entries are debt.",
                 ""]
        for key in sorted({f.baseline_key for f in findings}):
            code, path = key
            lines.append(f"{code} {path} — TODO: justify or fix")
        return "\n".join(lines) + "\n"


@dataclass
class AnalysisResult:
    """Everything one run produced, pre-partitioned for reporting."""

    findings: List[Finding] = field(default_factory=list)   # actionable
    suppressed: int = 0          # inline-silenced
    baselined: int = 0           # grandfathered
    stale_baseline: List[Tuple[str, str]] = field(default_factory=list)
    files: int = 0
    checkers: int = 0


def _selected(code: str, checker_name: str,
              select: Optional[Sequence[str]],
              ignore: Optional[Sequence[str]]) -> bool:
    """A ``select``/``ignore`` entry matches a code prefix (``RA1``,
    ``RA301``) or a checker name (``layering``)."""
    if select and not any(code.startswith(s) or s == checker_name
                          for s in select):
        return False
    if ignore and any(code.startswith(s) or s == checker_name
                      for s in ignore):
        return False
    return True


def run_analysis(ctx: AnalysisContext,
                 select: Optional[Sequence[str]] = None,
                 ignore: Optional[Sequence[str]] = None,
                 baseline: Optional[Baseline] = None) -> AnalysisResult:
    """Run every registered checker over the context.

    ``select``/``ignore`` filter by code *prefix* (``RA1`` selects the
    whole determinism family) or checker name. Findings surviving the
    filters are checked against inline suppressions, then the
    baseline; the remainder is the actionable report, sorted by
    location for deterministic output.
    """
    result = AnalysisResult(files=len(ctx.files))
    baseline = baseline or Baseline()
    raw: List[Finding] = []
    active_codes: set = set()
    for checker in _REGISTRY.values():
        wanted = [c for c in checker.codes
                  if _selected(c, checker.name, select, ignore)]
        if not wanted:
            continue
        active_codes.update(wanted)
        result.checkers += 1
        found = list(checker.check_project(ctx))
        for src in ctx.files:
            found.extend(checker.check_file(src, ctx))
        raw.extend(f for f in found
                   if _selected(f.code, checker.name, select, ignore))
    srcs = {f.path: f for f in ctx.files}
    for f in sorted(raw, key=lambda f: (f.path, f.line, f.code)):
        src = srcs.get(f.path)
        if src is not None and src.suppressed(f.line, f.code):
            result.suppressed += 1
        elif baseline.suppresses(f):
            result.baselined += 1
        else:
            result.findings.append(f)
    # Only entries a *ran* checker could have matched, against files
    # actually analysed, can be judged stale — a --select or a
    # path-restricted run must not condemn the rest of the baseline.
    analysed = {f.path for f in ctx.files}
    result.stale_baseline = [
        (code, path) for code, path in baseline.stale_entries()
        if code in active_codes and path in analysed]
    return result
