"""QTLS core: cost model, configurations, metrics."""

from .configurations import CONFIG_NAMES, make_server_config
from .costmodel import CostModel, default_cost_model
from .metrics import ClientMetrics

__all__ = ["CostModel", "default_cost_model", "ClientMetrics",
           "CONFIG_NAMES", "make_server_config"]
