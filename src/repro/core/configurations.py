"""The five evaluation configurations of the paper (section 5.1).

==========  =========  ==========  ============  ==============
Name        Offload    Async       Polling       Notification
==========  =========  ==========  ============  ==============
SW          none       —           —             —
QAT+S       straight   —           busy-wait     —
QAT+A       async      fiber       timer 10 us   FD-based
QAT+AH      async      fiber       heuristic     FD-based
QTLS        async      fiber       heuristic     kernel-bypass
==========  =========  ==========  ============  ==============
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from ..server.config import ServerConfig

__all__ = ["CONFIG_NAMES", "make_server_config"]

CONFIG_NAMES: Tuple[str, ...] = ("SW", "QAT+S", "QAT+A", "QAT+AH", "QTLS")


def make_server_config(name: str, workers: int,
                       suites: Tuple[str, ...] = ("TLS-RSA",),
                       curves: Tuple[str, ...] = ("P-256",),
                       tls_version: str = "1.2",
                       rsa_bits: int = 2048,
                       timer_poll_interval: float = 10e-6,
                       async_impl: str = "fiber",
                       **overrides) -> "ServerConfig":
    """Build the ServerConfig for one of the five paper configurations."""
    # Imported here: repro.core is a low-level package (cost model)
    # that repro.server depends on; the configuration presets are glue
    # above both, so the import must not run at core-import time.
    from ..server.config import ServerConfig, SslEngineConfig
    base = dict(worker_processes=workers, suites=suites, curves=curves,
                tls_version=tls_version, rsa_bits=rsa_bits,
                async_impl=async_impl)
    if name == "SW":
        engine = SslEngineConfig(use_engine="")
        notify = "fd"
    elif name == "QAT+S":
        engine = SslEngineConfig(qat_offload_mode="sync")
        notify = "fd"
    elif name == "QAT+A":
        engine = SslEngineConfig(
            qat_offload_mode="async", qat_poll_mode="timer",
            qat_timer_poll_interval=timer_poll_interval)
        notify = "fd"
    elif name == "QAT+AH":
        engine = SslEngineConfig(qat_offload_mode="async",
                                 qat_poll_mode="heuristic")
        notify = "fd"
    elif name == "QTLS":
        engine = SslEngineConfig(qat_offload_mode="async",
                                 qat_poll_mode="heuristic")
        notify = "queue"
    else:
        raise ValueError(f"unknown configuration {name!r}; "
                         f"expected one of {CONFIG_NAMES}")
    cfg = ServerConfig(ssl_engine=engine, async_notify_mode=notify, **base)
    if overrides:
        engine_overrides = {k: v for k, v in overrides.items()
                            if hasattr(SslEngineConfig, k) or
                            k in SslEngineConfig.__dataclass_fields__}
        server_overrides = {k: v for k, v in overrides.items()
                            if k in ServerConfig.__dataclass_fields__}
        unknown = set(overrides) - set(engine_overrides) - set(server_overrides)
        if unknown:
            raise ValueError(f"unknown overrides: {sorted(unknown)}")
        if engine_overrides:
            cfg.ssl_engine = replace(cfg.ssl_engine, **engine_overrides)
        if server_overrides:
            cfg = replace(cfg, **server_overrides)
    cfg.validate()
    return cfg
