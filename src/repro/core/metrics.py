"""Measurement collection for the experiment harness.

Clients record events with timestamps; the harness computes windowed
statistics (CPS, Gbps, mean latency) over a measurement window that
excludes warm-up, as benchmark tools do.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import List, Optional, Tuple

__all__ = ["ClientMetrics", "mean"]


def mean(values) -> float:
    values = list(values)
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


class ClientMetrics:
    """Shared sink for all client processes of one experiment."""

    def __init__(self) -> None:
        # (completion_time, duration, resumed)
        self.handshakes: List[Tuple[float, float, bool]] = []
        # (completion_time, latency) per HTTP request
        self.requests: List[Tuple[float, float]] = []
        # (completion_time, payload_bytes)
        self.transfers: List[Tuple[float, int]] = []
        self.errors = 0

    # -- recording ---------------------------------------------------------

    def record_handshake(self, when: float, duration: float,
                         resumed: bool) -> None:
        self.handshakes.append((when, duration, resumed))

    def record_request(self, when: float, latency: float,
                       payload_bytes: int) -> None:
        self.requests.append((when, latency))
        self.transfers.append((when, payload_bytes))

    def record_error(self) -> None:
        self.errors += 1

    # -- windowed statistics ---------------------------------------------------

    @staticmethod
    def _window(events, start: float, end: float):
        times = [e[0] for e in events]
        lo = bisect_left(times, start)
        hi = bisect_right(times, end)
        return events[lo:hi]

    def cps(self, start: float, end: float,
            resumed: Optional[bool] = None) -> float:
        """Completed handshakes per second in [start, end]."""
        if end <= start:
            raise ValueError("empty window")
        events = self._window(self.handshakes, start, end)
        if resumed is not None:
            events = [e for e in events if e[2] == resumed]
        return len(events) / (end - start)

    def throughput_bps(self, start: float, end: float) -> float:
        """Payload bits per second delivered to clients in the window."""
        if end <= start:
            raise ValueError("empty window")
        events = self._window(self.transfers, start, end)
        return sum(e[1] for e in events) * 8 / (end - start)

    def mean_latency(self, start: float, end: float) -> float:
        """Mean request latency (seconds) over the window."""
        events = self._window(self.requests, start, end)
        return mean(e[1] for e in events)

    def latency_percentile(self, start: float, end: float,
                           q: float) -> float:
        """Latency percentile (q in [0, 100]) over the window."""
        if not 0 <= q <= 100:
            raise ValueError("percentile in [0, 100]")
        events = self._window(self.requests, start, end)
        if not events:
            raise ValueError("no requests in window")
        lat = sorted(e[1] for e in events)
        idx = min(len(lat) - 1, int(round(q / 100 * (len(lat) - 1))))
        return lat[idx]

    def mean_handshake_time(self, start: float, end: float) -> float:
        events = self._window(self.handshakes, start, end)
        return mean(e[1] for e in events)

    def count_handshakes(self, start: float, end: float) -> int:
        return len(self._window(self.handshakes, start, end))
