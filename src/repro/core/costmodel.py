"""CPU-side cost model (software crypto + server path costs).

All constants are simulated CPU seconds on one Broadwell-class
(E5-2699 v4, 2.2 GHz) hyper-thread, calibrated against published
OpenSSL speed numbers of that era and back-checked against the paper's
aggregate results (see EXPERIMENTS.md). The QAT-side service times
live in :mod:`repro.qat.service_times`.

Calibration anchors (8 HT workers unless noted):

- TLS-RSA(2048) full handshake, SW: ~4.3K CPS (Fig. 7a)
  => ~1.83 ms CPU/handshake = 1.55 ms RSA + 4x~25 us PRF + path costs.
- ECDHE-RSA adds ~2 P-256 ops; SW ~4K CPS (Fig. 7b).
- ECDSA P-256 sign is Montgomery-domain accelerated (2.33x faster than
  the generic path) — the Fig. 7c software anomaly.
- 100% abbreviated, SW ~ (3 PRF + path) => QTLS gains 30-40% by
  offloading PRF (Fig. 9a); hence PRF ~= 25 us on CPU (EVP/alloc
  overhead included), ~4 us + DMA on QAT.
- Secure data transfer: SW ~14 Gbps at 1 MB files with 8 workers
  (Fig. 10) => ~67 us CPU per 16 KB record, of which ~39 us is the
  chained cipher (offloadable) and the rest is network-stack tx.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..crypto.ops import CryptoOp, CryptoOpKind

__all__ = ["CostModel", "default_cost_model"]


# -- software crypto op costs (seconds) -------------------------------------

_SW_RSA_PRIV = {1024: 380e-6, 2048: 1550e-6, 3072: 4600e-6, 4096: 10500e-6}
_SW_RSA_PUB = {1024: 16e-6, 2048: 42e-6, 3072: 75e-6, 4096: 120e-6}

# Per-curve {op: cost}. P-256 reflects the Montgomery-friendly fast
# path (Gueron-Krasnov); the generic-path figures (used when the fast
# path is disabled) are 2.33x for sign and ~2x for mults.
_SW_EC: Dict[str, Dict[str, float]] = {
    "P-256": {"sign": 35e-6, "verify": 95e-6,
              "keygen": 52e-6, "compute": 150e-6},
    "P-384": {"sign": 1000e-6, "verify": 2000e-6,
              "keygen": 1150e-6, "compute": 1300e-6},
    "B-283": {"sign": 1300e-6, "verify": 2600e-6,
              "keygen": 1400e-6, "compute": 1600e-6},
    "B-409": {"sign": 2900e-6, "verify": 5800e-6,
              "keygen": 3100e-6, "compute": 3500e-6},
    "K-283": {"sign": 1100e-6, "verify": 2200e-6,
              "keygen": 1200e-6, "compute": 1350e-6},
    "K-409": {"sign": 2500e-6, "verify": 5000e-6,
              "keygen": 2700e-6, "compute": 3000e-6},
}

#: Generic (non-Montgomery) P-256 software path, for the ablation that
#: reproduces the "2.33x faster" claim of Fig. 7c's discussion.
_SW_EC_P256_GENERIC = {"sign": 81.6e-6, "verify": 200e-6,
                       "keygen": 110e-6, "compute": 300e-6}

_EC_OP_NAME = {
    CryptoOpKind.ECDSA_SIGN: "sign",
    CryptoOpKind.ECDSA_VERIFY: "verify",
    CryptoOpKind.ECDH_KEYGEN: "keygen",
    CryptoOpKind.ECDH_COMPUTE: "compute",
}


@dataclass
class CostModel:
    """Tunable cost constants; defaults reproduce the paper's shapes."""

    # -- software crypto --------------------------------------------------
    #: TLS 1.2 PRF op (EVP + transcript digest + allocation overhead).
    prf_cost: float = 25e-6
    #: One HKDF schedule step (TLS 1.3; never offloaded). Includes the
    #: per-step EVP/transcript-digest overhead (fig8 calibration).
    hkdf_cost: float = 40e-6
    #: Lightweight HKDF expansions with no transcript digest (PSK
    #: binder keys, resumption-PSK derivation), flagged by nbytes=0.
    hkdf_small_cost: float = 8e-6
    #: Chained AES128-CBC + HMAC-SHA1 record protection, software
    #: (AES-NI): fixed + per-byte.
    cipher_setup_cost: float = 6e-6
    cipher_per_byte: float = 2.0e-9
    #: Disable the Montgomery-domain P-256 fast path (ablation).
    p256_montgomery: bool = True

    # -- server path costs --------------------------------------------------
    #: Accept + connection object setup + epoll registration.
    accept_cost: float = 24e-6
    #: Parse/build one handshake flight message (per message).
    handshake_msg_cost: float = 10e-6
    #: Extra serialization work for EC points / SKE construction.
    ec_marshal_cost: float = 40e-6
    #: Dispatch one event from the event loop to its handler.
    event_dispatch_cost: float = 1.6e-6
    #: HTTP request parse + response head build (keepalive request).
    http_request_cost: float = 36e-6
    #: Network tx path per record: fixed + per byte (TCP/kernel).
    net_tx_fixed: float = 4e-6
    net_tx_per_byte: float = 1.35e-9
    #: Network rx path per inbound record/message.
    net_rx_fixed: float = 3e-6
    #: Connection teardown.
    close_cost: float = 9e-6

    # -- async machinery ---------------------------------------------------
    #: One fiber context swap (ASYNC_start/pause/resume each swap once).
    fiber_swap_cost: float = 0.35e-6
    #: Stack-async "careful skipping" per replayed step.
    stack_replay_cost: float = 0.12e-6
    #: Application-level async queue push/pop (kernel bypass; no syscall).
    async_queue_cost: float = 0.25e-6

    # -- client-side costs (the s_time / ab machines) -------------------------
    client_step_cost: float = 12e-6
    client_crypto_scale: float = 1.0

    def software_cost(self, op: CryptoOp) -> float:
        """Software (CPU) execution time of a crypto op."""
        kind = op.kind
        if kind is CryptoOpKind.RSA_PRIV:
            return _lookup(_SW_RSA_PRIV, op.rsa_bits or 2048, "RSA")
        if kind is CryptoOpKind.RSA_PUB:
            return _lookup(_SW_RSA_PUB, op.rsa_bits or 2048, "RSA")
        if kind in _EC_OP_NAME:
            table = _SW_EC.get(op.curve or "")
            if table is None:
                raise ValueError(f"no software cost for curve {op.curve!r}")
            if op.curve == "P-256" and not self.p256_montgomery:
                table = _SW_EC_P256_GENERIC
            return table[_EC_OP_NAME[kind]]
        if kind is CryptoOpKind.PRF:
            return self.prf_cost + 8e-9 * op.nbytes
        if kind is CryptoOpKind.HKDF:
            return self.hkdf_cost if op.nbytes else self.hkdf_small_cost
        if kind is CryptoOpKind.RECORD_CIPHER:
            return self.cipher_setup_cost + self.cipher_per_byte * op.nbytes
        raise ValueError(f"unknown op kind {kind}")  # pragma: no cover

    def net_tx_cost(self, nbytes: int) -> float:
        return self.net_tx_fixed + self.net_tx_per_byte * nbytes

    def client_crypto_cost(self, op: CryptoOp) -> float:
        """Client machines run the same software crypto (they are not
        the bottleneck, but their latency contributes to Fig. 11)."""
        return self.software_cost(op) * self.client_crypto_scale


def _lookup(table: Dict[int, float], bits: int, what: str) -> float:
    try:
        return table[bits]
    except KeyError:
        raise ValueError(f"no software cost for {what}-{bits}") from None


def default_cost_model() -> CostModel:
    return CostModel()
