"""Deterministic discrete-event simulation kernel.

This is the substrate for the QTLS reproduction: the CPU, QAT card,
network and server models are all processes and resources scheduled by
:class:`Simulator`.

Quick example::

    from repro.sim import Simulator

    sim = Simulator()

    def worker(sim):
        yield sim.timeout(1.5)
        return "done"

    proc = sim.process(worker(sim))
    sim.run(until=proc)
    assert sim.now == 1.5 and proc.value == "done"
"""

from .events import (AllOf, AnyOf, Condition, Event, EventCancelled, Timeout,
                     UNSET)
from .kernel import Simulator, StopSimulation
from .process import Interrupt, Process
from .resources import Resource, Store
from .rng import RngRegistry
from .trace import Tracer

__all__ = [
    "Simulator", "StopSimulation", "Event", "Timeout", "Condition", "AnyOf",
    "AllOf", "EventCancelled", "UNSET", "Process", "Interrupt", "Resource",
    "Store", "RngRegistry", "Tracer",
]
