"""Generator-based simulation processes.

A process wraps a Python generator that yields :class:`~repro.sim.events.Event`
instances. Yielding an event suspends the process until the event is
processed; the event's value becomes the result of the ``yield``
expression (or its exception is thrown into the generator).

A :class:`Process` is itself an event that triggers when the generator
returns, with the generator's return value as the event value — so
processes can wait on each other simply by yielding them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from .events import Event

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import Simulator

__all__ = ["Process", "Interrupt"]


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class Process(Event):
    """A running simulation process (also its own completion event)."""

    __slots__ = ("_gen", "_waiting_on")

    def __init__(self, sim: "Simulator", gen: Generator,
                 name: str = "") -> None:
        if not hasattr(gen, "send"):
            raise TypeError(
                f"Process requires a generator, got {type(gen).__name__} "
                "(did you forget to call the generator function?)")
        super().__init__(sim, name=name or getattr(gen, "__name__", ""))
        self._gen = gen
        self._waiting_on: Optional[Event] = None
        # Kick off the process at the current simulated instant.
        boot = Event(sim, name=f"{self.name}-boot")
        boot._value = None
        sim._schedule(boot, 0.0)
        boot.callbacks.append(self._resume)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        The event the process was waiting on remains pending; the process
        may re-wait on it or abandon it.
        """
        if not self.is_alive:
            raise RuntimeError(f"{self!r} has already terminated")
        if self._waiting_on is not None and not self._waiting_on.processed:
            # Detach so a later trigger does not double-resume us.
            try:
                assert self._waiting_on.callbacks is not None
                self._waiting_on.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._waiting_on = None
        kick = Event(self.sim, name=f"{self.name}-interrupt")
        kick._exc = Interrupt(cause)
        kick._value = None
        kick.defuse()
        self.sim._schedule(kick, 0.0)
        kick.callbacks.append(self._resume)

    # -- kernel callback ---------------------------------------------------

    def _resume(self, trigger: Event) -> None:
        self._waiting_on = None
        try:
            if trigger.exception is not None:
                trigger.defuse()
                nxt = self._gen.throw(trigger.exception)
            else:
                nxt = self._gen.send(trigger._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            # The process died. Fail our completion event; if nobody is
            # watching, Simulator.step() re-raises (undefused failure).
            self.fail(exc)
            return

        if not isinstance(nxt, Event):
            err = RuntimeError(
                f"process {self.name!r} yielded {nxt!r}; processes must "
                "yield Event instances")
            self._gen.close()
            self.fail(err)
            return
        if nxt.sim is not self.sim:
            self._gen.close()
            self.fail(RuntimeError("yielded event belongs to another simulator"))
            return

        if nxt.processed:
            # Already done: reschedule ourselves immediately with its value.
            kick = Event(self.sim, name=f"{self.name}-immediate")
            kick._value = nxt._value
            kick._exc = nxt._exc
            if kick._exc is not None:
                kick.defuse()
            self.sim._schedule(kick, 0.0)
            kick.callbacks.append(self._resume)
        else:
            self._waiting_on = nxt
            assert nxt.callbacks is not None
            nxt.callbacks.append(self._resume)
