"""Named deterministic random streams.

All stochastic behaviour in the simulation draws from a
:class:`RngRegistry` keyed by stream name, so that (a) two runs with the
same master seed are bit-identical and (b) adding a new consumer of
randomness does not perturb existing streams.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RngRegistry"]


class RngRegistry:
    """Factory for independent, reproducible random generators."""

    def __init__(self, master_seed: int = 0) -> None:
        if master_seed < 0:
            raise ValueError("seed must be non-negative")
        self.master_seed = master_seed
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The stream's seed is derived from ``(master_seed, name)`` via
        SHA-256, so the mapping is stable across processes and Python
        versions (unlike ``hash()``).
        """
        gen = self._streams.get(name)
        if gen is None:
            digest = hashlib.sha256(
                f"{self.master_seed}:{name}".encode()).digest()
            seed = int.from_bytes(digest[:8], "big")
            gen = np.random.default_rng(seed)
            self._streams[name] = gen
        return gen

    def spawn(self, suffix: str) -> "RngRegistry":
        """Derive a child registry (e.g. per-experiment-point)."""
        digest = hashlib.sha256(
            f"{self.master_seed}/{suffix}".encode()).digest()
        return RngRegistry(int.from_bytes(digest[:8], "big"))
